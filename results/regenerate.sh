#!/bin/sh
# Regenerate every archived experiment output. From the repo root:
#   sh results/regenerate.sh
# Each binary also writes a self-telemetry bundle (run manifest,
# metrics, Chrome trace) under results/telemetry/<bin>/.
#
# JOBS controls the experiment fan-out (0 = available parallelism,
# 1 = serial). Output is byte-identical for every value — the cells
# merge in deterministic order — so parallel regeneration is safe:
#   JOBS=8 sh results/regenerate.sh
set -e
JOBS="${JOBS:-0}"
cargo build --release -p nrlt-bench
for b in table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 narrative ablation counters; do
    echo "running $b ..."
    ./target/release/$b --jobs "$JOBS" \
        --telemetry results/telemetry/$b \
        --report results/report/$b > results/$b.txt
done

# Regenerate the exemplar resource-observatory bundle: MiniFE-1 under
# fig3's protocol with the machine observatory attached. The bundle is
# byte-identical for every JOBS value (runs merge by name), so it is
# safe to regenerate in parallel too.
echo "regenerating results/observe/fig3 ..."
./target/release/fig3 --only MiniFE-1 --jobs "$JOBS" \
    --observe results/observe/fig3 > /dev/null

# Regenerate the exemplar engine-profile bundle: LULESH-1 under fig3's
# protocol with the engine self-profiler attached. Like the observe
# bundle, the deterministic half (engineprof.json) is byte-identical
# for every JOBS value; only the wall sidecar (engineprof.wall.json)
# reflects this host's clock.
echo "regenerating results/engineprof/fig3 ..."
./target/release/fig3 --only LULESH-1 --jobs "$JOBS" \
    --engine-prof results/engineprof/fig3 > /dev/null

# Refresh the perf baseline from scratch. The harness stamps each
# entry with this host's `std::thread::available_parallelism` and the
# measured event throughput at write time; starting from an empty file
# (instead of merging into the old one) guarantees no stale row keeps
# the parallelism or zero throughput of a previous host. Every timed
# invocation also appends one record to the append-only perf ledger
# results/history.jsonl — that file is never reset, so `nrlt-report
# trend results/history.jsonl` shows the repo's trajectory across
# regenerations.
echo "timing fig3 for BENCH_pipeline.json ..."
rm -f BENCH_pipeline.json
for j in 1 2 4; do
    ./target/release/fig3 --jobs "$j" --bench-json BENCH_pipeline.json \
        --history results/history.jsonl > /dev/null
    ./target/release/fig3 --only MiniFE-1 --jobs "$j" --observe results/observe/fig3 \
        --bench-json BENCH_pipeline.json > /dev/null
done
./target/release/fig3 --only LULESH-1 --jobs 1 --engine-prof results/engineprof/fig3 \
    --bench-json BENCH_pipeline.json > /dev/null

# Regenerate the exemplar sampled profile: LULESH-1 under fig3's
# protocol with the wall-clock sampling profiler installed. The folded
# stacks (results/prof/fig3/samples.folded) and the sidecar are
# wall-clock data — run-to-run sample counts differ, the frame *names*
# always come from the static registry. The run's wall time lands in
# the baseline under the LULESH-1:sampleprof key, whose
# overhead_vs_plain_pct column is the sampling-overhead budget
# (target: <2% over the plain LULESH-1 run at the same jobs).
echo "regenerating results/prof/fig3 ..."
./target/release/fig3 --only LULESH-1 --jobs 1 --sample-prof results/prof/fig3 \
    --bench-json BENCH_pipeline.json --history results/history.jsonl > /dev/null

# Engine microbenchmarks: the hot-loop data structures in isolation
# (ladder calendar, wildcard book, batched noise draws), gated under
# the `engine-micro` bin key.
echo "timing engine microbenchmarks ..."
./target/release/engine --bench-json BENCH_pipeline.json --history results/history.jsonl

# Weak-scaling sweep through the sharded columnar trace store: the
# three mini-apps grow to ~10,000 simulated ranks under the default
# 64 MiB trace budget, so the largest sizes spill columnar segments
# and stream them back through the out-of-core analysis path. Each
# size lands in the baseline under the `scale` bin key with
# events/sec and peak-RSS KPIs; the bin first asserts that resident
# and force-spilled analysis output is byte-identical.
echo "timing weak-scaling sweep (scale) ..."
./target/release/scale --bench-json BENCH_pipeline.json \
    --history results/history.jsonl > results/scale.txt
# Query-service load benchmark: an in-process nrlt-serve over the
# exemplar bundles just regenerated, driven by the deterministic
# closed-loop client mix. Queries/sec and p50/p95/p99 latency land in
# the baseline under the `serve` bin key (client counts the host
# cannot run without oversubscribing are recorded but skipped by the
# gate, like every other entry).
echo "timing query-service load benchmark (serve) ..."
./target/release/serve --bench-json BENCH_pipeline.json \
    --history results/history.jsonl

echo "done; outputs in results/, telemetry in results/telemetry/,"
echo "report artifacts (report.txt, report.json, flamegraph.folded) in results/report/,"
echo "observe exemplar in results/observe/fig3/, engine profile in results/engineprof/fig3/,"
echo "sampled profile in results/prof/fig3/, perf ledger in results/history.jsonl,"
echo "perf baseline in BENCH_pipeline.json"
