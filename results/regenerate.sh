#!/bin/sh
# Regenerate every archived experiment output. From the repo root:
#   sh results/regenerate.sh
# Each binary also writes a self-telemetry bundle (run manifest,
# metrics, Chrome trace) under results/telemetry/<bin>/.
set -e
cargo build --release -p nrlt-bench
for b in table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 narrative ablation counters; do
    echo "running $b ..."
    ./target/release/$b --telemetry results/telemetry/$b > results/$b.txt
done
echo "done; outputs in results/, telemetry in results/telemetry/"
