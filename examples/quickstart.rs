//! Quickstart: build a small hybrid MPI+OpenMP program, measure it with
//! the physical clock and a logical clock, and compare the analyses.
//!
//! Run with: `cargo run --release --example quickstart`

use nrlt::prelude::*;

fn main() {
    // A toy solver on 4 ranks × 4 threads: rank 3 got the largest domain
    // partition, so everyone else waits for it at the reduction.
    let ranks = 4;
    let mut pb = ProgramBuilder::new(ranks);
    for r in 0..ranks {
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            rb.scoped("setup", |rb| {
                rb.kernel(Cost::scalar(5_000_000), 1 << 20);
            });
            let cells = if r == 3 { 60_000 } else { 40_000 };
            for _step in 0..20 {
                rb.scoped("smooth", |rb| {
                    rb.parallel("smooth", |omp| {
                        omp.for_loop(
                            "stencil",
                            cells,
                            Schedule::Static,
                            IterCost::Uniform(Cost::scalar(800).with_mem_bytes(64)),
                            8 << 20,
                        );
                    });
                });
                rb.scoped("residual", |rb| rb.allreduce(8));
            }
        });
    }
    let program = pb.finish();
    program.validate().expect("structurally sound");

    // Measure under the physical clock and the statement-counting
    // logical clock, on a simulated Jureca-DC node with realistic noise.
    let cfg = ExecConfig::jureca(1, JobLayout::block(ranks, 4), 2024);
    for mode in [ClockMode::Tsc, ClockMode::LtStmt] {
        let (trace, result) = measure(&program, &cfg, &MeasureConfig::new(mode));
        let profile = analyze(&trace);
        println!("=== {} ===", mode.name());
        println!("run time: {}   trace events: {}", result.total, trace.total_events());
        println!("{}", metric_table(&profile, 0.5));
        println!("{}", callpath_table(&profile, Metric::WaitNxN, 1.0));
        println!("{}", callpath_table(&profile, Metric::DelayN2n, 1.0));
    }
    println!("Both clocks report the same story: ranks 0-2 wait at the");
    println!("allreduce, and the delay cost points at rank 3's stencil loop.");
}
