//! Combined physical + logical analysis — the paper's proposed future
//! work (Section VI), implemented: measure the same configuration with
//! `tsc` and `lt_stmt`, then classify every wait state as *intrinsic*
//! (algorithmic imbalance, predicted by the effort model) or *extrinsic*
//! (resource contention / noise, visible only in physical time).
//!
//! The showcase is a LULESH-2-style run: work is perfectly balanced, but
//! 27 ranks cannot spread evenly over 8 NUMA domains, so ranks on full
//! domains have less memory bandwidth — a purely extrinsic problem.
//!
//! Run with: `cargo run --release --example intrinsic_vs_extrinsic`

use nrlt::analysis::combine;
use nrlt::miniapps::{LuleshConfig, LuleshCosts};
use nrlt::prelude::*;

fn run(instance: &BenchmarkInstance) {
    let cfg = ExecConfig::jureca(instance.nodes, instance.layout.clone(), 31);
    let (pt, _) = measure(&instance.program, &cfg, &MeasureConfig::new(ClockMode::Tsc));
    let (lt, _) = measure(&instance.program, &cfg, &MeasureConfig::new(ClockMode::LtStmt));
    let physical = analyze(&pt);
    let logical = analyze(&lt);
    let report = combine(&physical, &logical);
    println!("{}", report.render(0.2));
    for cell in report.extrinsic_hotspots(0.5) {
        println!(
            "  extrinsic hotspot: {} at {} ({:.2}%_T) — look at the machine, not the code",
            cell.metric.name(),
            cell.path_string,
            cell.extrinsic
        );
    }
    println!();
}

fn main() {
    // Balanced work, uneven NUMA occupancy: waits are extrinsic.
    println!("== LULESH-2-like: balanced work, uneven NUMA occupancy ==");
    let extrinsic_case = LuleshConfig {
        ranks: 27,
        threads_per_rank: 4,
        edge: 40,
        steps: 12,
        imbalance: 0.0,
        spread_placement: true,
        nodes: 1,
        costs: LuleshCosts::default(),
    }
    .build();
    run(&extrinsic_case);

    // Artificial imbalance, even hardware: waits are intrinsic.
    println!("== LULESH-1-like: imbalanced work, even hardware ==");
    let intrinsic_case = LuleshConfig {
        ranks: 27,
        threads_per_rank: 4,
        edge: 40,
        steps: 12,
        imbalance: 0.8,
        spread_placement: false,
        nodes: 1,
        costs: LuleshCosts::default(),
    }
    .build();
    run(&intrinsic_case);
}
