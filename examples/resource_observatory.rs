//! Resource observatory: watch the simulated machine underneath a
//! measured run.
//!
//! Runs MiniFE-1 under realistic noise with the `nrlt-observe` layer
//! attached, then answers the observatory's three questions from the
//! recorded bundle: which resource is most contended in each program
//! phase, how much noise each channel injected, and — for the most
//! severe wait state the analysis found — the causal chain of events
//! and the share of injected noise inside its causal window.
//!
//! Run with: `cargo run --release --example resource_observatory`

use nrlt::observe::export::ObserveBundle;
use nrlt::observe::query::{dominant_wait, noise_shares, top_contended};
use nrlt::observe::Observe;
use nrlt::prelude::*;
use nrlt::run_mode_with_observed;

fn main() {
    let instance = minife_1();
    let options = ExperimentOptions {
        noise: NoiseConfig::realistic(),
        repetitions: 1,
        base_seed: 4242,
        modes: vec![ClockMode::Tsc],
        jobs: 0,
        trace_budget: None,
    };

    // One physical-clock run with the observatory attached.
    let obs = Observe::new();
    let mcfg = nrlt::measure_config_for(&instance, ClockMode::Tsc);
    run_mode_with_observed(&instance, mcfg, &options, None, Some(&obs));
    let bundle = ObserveBundle::from_observe(&obs);
    let run_name = format!("{}:tsc:rep0", instance.name);
    let data = &bundle.runs[&run_name];

    println!("observed run: {run_name}");

    // Progress watermarks are nanosecond-valued and would drown the
    // occupancy/depth counters in a by-mean ranking; skip them here.
    println!("\ntop contended resource per phase (by mean sample):");
    for (phase, rows) in top_contended(data, 64) {
        let label = if phase.is_empty() { "(outside phases)".into() } else { phase };
        if let Some(c) = rows.iter().find(|c| !c.series.ends_with(".progress_ns")) {
            println!(
                "  {:<16} {:<28} mean {:>10.1}  max {:>8}  over {} samples",
                label, c.series, c.mean, c.max, c.count
            );
        }
    }

    println!("\nnoise injected per channel (all ranks, all phases):");
    let mut channels: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    for ((kind, _, _), agg) in &data.noise_aggs {
        let e = channels.entry(kind.name()).or_default();
        e.0 += agg.count;
        e.1 += agg.delay_ns;
    }
    for (name, (count, delay)) in channels {
        println!("  {name:<12} {count:>7} draws  {delay:>14} ns of injected delay");
    }

    if let Some((name, wait)) = dominant_wait(data) {
        println!("\ndominant wait state: {name}");
        println!(
            "  {} waited {} ns at {} (loc {})",
            wait.metric, wait.severity, wait.waiter_path, wait.waiter_loc
        );
        println!("  released by {} (loc {})", wait.delayer_path, wait.delayer_loc);
        let share = if wait.severity == 0 {
            0.0
        } else {
            100.0 * wait.noise_ns as f64 / wait.severity as f64
        };
        println!(
            "  injected noise inside its causal window: {} ns ({share:.1}% of the wait)",
            wait.noise_ns
        );
        println!("  causal chain (oldest first):");
        for link in &wait.chain {
            println!(
                "    {:<8} loc {:<3} [{:>12} .. {:>12}]  {}",
                link.what, link.loc, link.start, link.end, link.path
            );
        }
    }

    // The same decomposition per metric cell, over every wait the
    // analysis found (not just the retained provenance records).
    println!("\nnoise share per wait-metric cell (top 5 by severity):");
    for s in noise_shares(data).into_iter().take(5) {
        println!(
            "  {:<24} {:<40} severity {:>12}  noise share {:>5.1}%",
            s.metric, s.path, s.severity, s.share_pct
        );
    }
}
