//! Machine portability of logical measurements.
//!
//! Effort-model increments depend only on the program (iterations, basic
//! blocks, statements), not on the machine executing it — so an
//! `lt_stmt` trace taken on an EPYC cluster is *bit-identical* to one
//! taken on a Skylake cluster, while the physical pictures differ
//! wherever the machines' balance differs (cache capacity, NUMA layout,
//! bandwidth). This is the flip side of the paper's "cannot capture
//! external aspects": the external aspects are exactly what varies
//! between machines.
//!
//! Run with: `cargo run --release --example machine_portability`

use nrlt::prelude::*;
use nrlt::sim::NodeSpec;

fn stencil_job(ranks: u32) -> Program {
    let mut pb = ProgramBuilder::new(ranks);
    for r in 0..ranks {
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            for _ in 0..20 {
                rb.scoped("sweep", |rb| {
                    rb.parallel("sweep", |omp| {
                        omp.for_loop(
                            "stencil",
                            200_000,
                            Schedule::Static,
                            // Memory-hungry: 33 MB Skylake sockets will
                            // hurt where 256 MB EPYC sockets do not.
                            IterCost::Uniform(Cost::scalar(120).with_mem_bytes(320)),
                            48 << 20,
                        );
                    });
                });
                rb.scoped("reduce", |rb| rb.allreduce(8));
            }
        });
    }
    pb.finish()
}

fn main() {
    let ranks = 4;
    let threads = 8;
    let program = stencil_job(ranks);
    let machines = [("Jureca-DC (EPYC)", NodeSpec::jureca_dc()), ("Skylake", NodeSpec::skylake())];
    let mut logical_traces = Vec::new();
    println!("{:<20} {:>12} {:>9} {:>9} | logical trace", "machine", "tsc total", "comp%", "nxn%");
    for (name, spec) in machines {
        let cfg = ExecConfig {
            machine: Machine::new(spec, 1),
            layout: JobLayout::block(ranks, threads),
            noise: NoiseConfig::silent(),
            seed: 7,
            p2p: Default::default(),
            collective: Default::default(),
            omp: Default::default(),
        };
        let (pt, pres) = measure(&program, &cfg, &MeasureConfig::new(ClockMode::Tsc));
        let phys = analyze(&pt);
        let (lt, _) = measure(&program, &cfg, &MeasureConfig::new(ClockMode::LtStmt));
        println!(
            "{:<20} {:>12} {:>9.1} {:>9.1} | {} events, end tick {}",
            name,
            pres.total,
            phys.pct_t(Metric::Comp),
            phys.pct_t(Metric::WaitNxN),
            lt.total_events(),
            lt.end_time(),
        );
        logical_traces.push(lt);
    }
    assert_eq!(
        logical_traces[0].streams, logical_traces[1].streams,
        "lt_stmt traces must be identical across machines"
    );
    println!("\nThe lt_stmt traces from the two machines are bit-identical;");
    println!("the physical runs differ (cache fit, NUMA width, clock speed).");
}
