//! Trace files: record a measurement, write the binary trace to disk,
//! read it back, and analyze the loaded copy — the decoupled
//! measure-then-analyze workflow of Score-P + Scalasca.
//!
//! Run with: `cargo run --release --example trace_roundtrip`

use nrlt::prelude::*;
use nrlt::trace::{decode, encode};

fn main() {
    // A small TeaLeaf-like run (scaled down).
    let instance = nrlt::miniapps::TeaLeafConfig {
        n: 1000,
        ranks: 4,
        threads_per_rank: 8,
        steps: 2,
        cg_per_step: 10,
        costs: Default::default(),
    }
    .build();
    let cfg = ExecConfig::jureca(1, instance.layout.clone(), 99);
    let (trace, result) = measure(&instance.program, &cfg, &MeasureConfig::new(ClockMode::LtBb));
    println!(
        "measured {}: {} events, run time {}",
        instance.name,
        trace.total_events(),
        result.total
    );

    // Serialise, persist, reload.
    let bytes = encode(&trace);
    let path = std::env::temp_dir().join("nrlt_trace.otf2ish");
    std::fs::write(&path, &bytes).expect("write trace");
    println!(
        "wrote {} ({:.1} KiB, {:.1} bytes/event)",
        path.display(),
        bytes.len() as f64 / 1024.0,
        bytes.len() as f64 / trace.total_events() as f64
    );
    let loaded = decode(&std::fs::read(&path).expect("read trace")).expect("decode trace");
    assert_eq!(loaded, trace, "round-trip must be lossless");

    // Analyze the loaded copy.
    let profile = analyze(&loaded);
    println!("\nanalysis of the reloaded trace ({} clock):", loaded.defs.clock.name());
    println!("{}", metric_table(&profile, 0.5));
    std::fs::remove_file(&path).ok();
}
