//! Noise study: sweep the machine's noise intensity and watch the
//! physical clock's analysis degrade while the logical clocks stay put.
//!
//! This is the paper's central claim in one table: repeated `tsc`
//! measurements disagree with each other more and more as the machine
//! gets noisier (falling run-to-run Jaccard score), while `lt_stmt`
//! produces the identical profile every time — and still finds the
//! injected load imbalance.
//!
//! Run with: `cargo run --release --example noise_study`

use nrlt::prelude::*;

/// An imbalanced stencil job: rank 2 gets ~17 % more cells.
fn program(ranks: u32) -> Program {
    let mut pb = ProgramBuilder::new(ranks);
    for r in 0..ranks {
        let cells: u64 = if r == 2 { 70_000 } else { 60_000 };
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            for _ in 0..25 {
                rb.scoped("sweep", |rb| {
                    rb.parallel("sweep", |omp| {
                        omp.for_loop(
                            "stencil",
                            cells,
                            Schedule::Static,
                            IterCost::Uniform(Cost::scalar(150).with_mem_bytes(500)),
                            cells * 500,
                        );
                    });
                });
                rb.scoped("reduce", |rb| rb.allreduce(8));
            }
        });
    }
    pb.finish()
}

fn main() {
    let ranks = 8;
    let program = program(ranks);
    let instance = BenchmarkInstance {
        name: "noise-study".into(),
        program,
        nodes: 1,
        layout: JobLayout::block(ranks, 4),
        filter_rules: vec![],
    };

    println!(
        "{:>11} | {:>13} {:>13} | {:>12} {:>12}",
        "noise scale", "tsc r2r J", "lt_stmt r2r J", "tsc nxn%_T", "stmt nxn%_T"
    );
    for scale in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let options = ExperimentOptions {
            noise: NoiseConfig::realistic().scaled(scale),
            repetitions: 5,
            base_seed: 77,
            modes: vec![ClockMode::Tsc, ClockMode::LtStmt],
            jobs: 0,
            trace_budget: None,
        };
        let res = run_experiment(&instance, &options);
        let tsc = res.mode(ClockMode::Tsc);
        let stmt = res.mode(ClockMode::LtStmt);
        println!(
            "{:>11} | {:>13.3} {:>13.3} | {:>12.1} {:>12.1}",
            format!("x{scale}"),
            tsc.min_run_to_run_jaccard(),
            stmt.min_run_to_run_jaccard(),
            tsc.mean.pct_t(Metric::WaitNxN),
            stmt.mean.pct_t(Metric::WaitNxN),
        );
    }
    println!();
    println!("The logical profile is bit-identical at every noise level (J = 1),");
    println!("and both clocks keep reporting the rank-2 imbalance as wait_nxn.");
}
