//! Clock shoot-out on MiniFE-1: run the full measurement protocol under
//! all six clocks and print a side-by-side Scalasca-style report —
//! overheads, similarity to tsc, and where each effort model puts the
//! blame for the all-to-all waiting.
//!
//! Run with: `cargo run --release --example clock_shootout`

use nrlt::prelude::*;

fn main() {
    let instance = minife_1();
    println!("running the full protocol on {} …", instance.name);
    let res = run_experiment(&instance, &ExperimentOptions::default());

    println!(
        "\n{:<10} {:>10} {:>9} {:>9} | {:>7} {:>7}",
        "mode", "overhead%", "J vs tsc", "r2r J", "comp%", "nxn%"
    );
    for m in &res.modes {
        println!(
            "{:<10} {:>10.1} {:>9.3} {:>9.3} | {:>7.1} {:>7.1}",
            m.mode.name(),
            res.overhead_total(m.mode),
            res.jaccard_vs_tsc(m.mode),
            m.min_run_to_run_jaccard(),
            m.mean.pct_t(Metric::Comp),
            m.mean.pct_t(Metric::WaitNxN),
        );
    }

    println!("\nWho does each clock blame for the waiting (delay_mpi_collective_n2n)?");
    for m in &res.modes {
        let map = m.mean.map_c(Metric::DelayN2n);
        let mut rows: Vec<(f64, String)> =
            map.into_iter().map(|(c, v)| (v, m.mean.path_string(c))).collect();
        rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let top = rows
            .iter()
            .take(2)
            .map(|(v, p)| format!("{p} ({v:.0}%)"))
            .collect::<Vec<_>>()
            .join(", ");
        println!("  {:<10} {top}", m.mode.name());
    }
    println!("\nAll clocks agree the imbalance exists; the cheap effort models");
    println!("(lt_1, lt_loop) disagree with tsc about *where* it comes from.");
}
