//! The parallel experiment pipeline's contract: fanning (mode,
//! repetition) cells over worker threads changes wall time only. Every
//! cell derives its RNG stream from the base seed, and the merge walks
//! cells in deterministic order, so profiles, run times, phase timings,
//! and reference runs must be identical — not approximately, exactly —
//! for every worker count.

use nrlt::miniapps::{MiniFeConfig, MiniFeCosts};
use nrlt::prelude::*;

/// A deliberately tiny MiniFE so the whole protocol runs in seconds.
fn tiny_instance() -> BenchmarkInstance {
    MiniFeConfig {
        nx: 60,
        ranks: 4,
        threads_per_rank: 4,
        imbalance_pct: 50,
        cg_iters: 8,
        costs: MiniFeCosts::default(),
    }
    .build()
}

fn options(jobs: usize) -> ExperimentOptions {
    ExperimentOptions {
        repetitions: 3,
        base_seed: 900,
        modes: vec![ClockMode::Tsc, ClockMode::Lt1, ClockMode::LtStmt],
        jobs,
        ..Default::default()
    }
}

#[test]
fn jobs_do_not_change_experiment_results() {
    let instance = tiny_instance();
    let serial = run_experiment(&instance, &options(1));
    let parallel = run_experiment(&instance, &options(4));

    assert_eq!(serial.reference, parallel.reference, "reference runs diverged");
    assert_eq!(serial.phase_names, parallel.phase_names);
    assert_eq!(serial.modes.len(), parallel.modes.len());
    for (s, p) in serial.modes.iter().zip(&parallel.modes) {
        assert_eq!(s.mode, p.mode);
        assert_eq!(s.run_times, p.run_times, "{}: run times diverged", s.mode);
        assert_eq!(s.phase_times, p.phase_times, "{}: phase times diverged", s.mode);
        assert_eq!(s.profiles, p.profiles, "{}: per-repetition profiles diverged", s.mode);
        assert_eq!(s.mean, p.mean, "{}: mean profile diverged", s.mode);
    }
}

#[test]
fn jobs_do_not_change_mode_results() {
    let instance = tiny_instance();
    let serial = run_mode(&instance, ClockMode::Tsc, &options(1));
    let parallel = run_mode(&instance, ClockMode::Tsc, &options(4));
    assert_eq!(serial.profiles, parallel.profiles);
    assert_eq!(serial.run_times, parallel.run_times);
    assert_eq!(serial.phase_times, parallel.phase_times);
}

#[test]
fn derived_scores_are_identical_across_jobs() {
    let instance = tiny_instance();
    let serial = run_experiment(&instance, &options(1));
    let parallel = run_experiment(&instance, &options(3));
    for &mode in &[ClockMode::Lt1, ClockMode::LtStmt] {
        // Bitwise equality of the floats the tables print.
        assert_eq!(
            serial.jaccard_vs_tsc(mode).to_bits(),
            parallel.jaccard_vs_tsc(mode).to_bits(),
            "{mode}: J_(M,C) diverged"
        );
        assert_eq!(
            serial.overhead_total(mode).to_bits(),
            parallel.overhead_total(mode).to_bits(),
            "{mode}: overhead diverged"
        );
    }
    assert_eq!(
        serial.mode(ClockMode::Tsc).min_run_to_run_jaccard().to_bits(),
        parallel.mode(ClockMode::Tsc).min_run_to_run_jaccard().to_bits()
    );
}
