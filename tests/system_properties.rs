//! System-level property tests: random (valid) hybrid programs pushed
//! through the whole pipeline must uphold the library's invariants under
//! every clock mode. A deterministic splitmix64 generator replaces
//! proptest so the suite runs with no external dependencies.

use nrlt::prelude::*;
use nrlt::trace::{decode, encode, EventKind, Trace};

/// Deterministic pseudo-random generator (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 0
    }
}

/// One step of a random SPMD program — always globally consistent, so
/// generated programs never deadlock.
#[derive(Debug, Clone)]
enum Step {
    Kernel { instr: u64, bytes: u64 },
    Burst { calls: u64, instr: u64 },
    ParallelLoop { iters: u64, instr: u64, bytes: u64, ramp: bool },
    Allreduce,
    Alltoall,
    RingExchange { bytes: u64 },
}

fn random_step(g: &mut Gen) -> Step {
    match g.below(6) {
        0 => Step::Kernel { instr: g.range(1_000, 2_000_000), bytes: g.below(100_000) },
        1 => Step::Burst { calls: g.range(1, 2_000), instr: g.range(1_000, 500_000) },
        2 => Step::ParallelLoop {
            iters: g.range(16, 20_000),
            instr: g.range(50, 2_000),
            bytes: g.below(256),
            ramp: g.bool(),
        },
        3 => Step::Allreduce,
        4 => Step::Alltoall,
        _ => Step::RingExchange { bytes: g.range(64, 100_000) },
    }
}

fn random_steps(g: &mut Gen, lo: u64, hi: u64) -> Vec<Step> {
    let n = g.range(lo, hi) as usize;
    (0..n).map(|_| random_step(g)).collect()
}

fn build(ranks: u32, threads: u32, steps: &[Step], skew: bool) -> BenchmarkInstance {
    let mut pb = ProgramBuilder::new(ranks);
    for r in 0..ranks {
        let left = (r + ranks - 1) % ranks;
        let right = (r + 1) % ranks;
        // Optional per-rank skew so waits appear.
        let factor = if skew { 1.0 + r as f64 / ranks as f64 } else { 1.0 };
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            for (i, step) in steps.iter().enumerate() {
                match *step {
                    Step::Kernel { instr, bytes } => rb.kernel(
                        Cost::scalar((instr as f64 * factor) as u64).with_mem_bytes(bytes),
                        bytes,
                    ),
                    Step::Burst { calls, instr } => rb.kernel_burst(
                        "tiny",
                        calls,
                        Cost::scalar((instr as f64 * factor) as u64),
                        0,
                    ),
                    Step::ParallelLoop { iters, instr, bytes, ramp } => {
                        let name = format!("loop{i}");
                        rb.parallel(&name, |omp| {
                            let cost = Cost::scalar(instr).with_mem_bytes(bytes);
                            let ic = if ramp {
                                IterCost::Ramp { base: cost, last_factor: 3.0 }
                            } else {
                                IterCost::Uniform(cost)
                            };
                            omp.for_loop(
                                &name,
                                (iters as f64 * factor) as u64,
                                Schedule::Static,
                                ic,
                                bytes * iters,
                            );
                        });
                    }
                    Step::Allreduce => rb.allreduce(8),
                    Step::Alltoall => rb.alltoall(512),
                    Step::RingExchange { bytes } => {
                        rb.irecv(left, 5, bytes);
                        rb.isend(right, 5, bytes);
                        rb.waitall();
                    }
                }
            }
        });
    }
    BenchmarkInstance {
        name: "random".into(),
        program: pb.finish(),
        nodes: 1,
        layout: JobLayout::block(ranks, threads),
        filter_rules: vec![],
    }
}

/// Check Lamport's clock condition over all matched messages of a trace.
fn assert_clock_condition(trace: &Trace) {
    use std::collections::HashMap;
    let tpr = trace.defs.threads_per_rank;
    let mut sends: HashMap<(u32, u32, u32), Vec<u64>> = HashMap::new();
    for (i, stream) in trace.streams.iter().enumerate() {
        let rank = i as u32 / tpr;
        for ev in stream {
            if let EventKind::SendPost { peer, tag, .. } = ev.kind {
                sends.entry((rank, peer, tag)).or_default().push(ev.time);
            }
        }
    }
    let mut cursor: HashMap<(u32, u32, u32), usize> = HashMap::new();
    for (i, stream) in trace.streams.iter().enumerate() {
        let rank = i as u32 / tpr;
        for ev in stream {
            if let EventKind::RecvComplete { peer, tag, .. } = ev.kind {
                let key = (peer, rank, tag);
                let k = cursor.entry(key).or_insert(0);
                let send_ts = sends[&key][*k];
                *k += 1;
                assert!(ev.time > send_ts, "clock condition violated");
            }
        }
    }
}

#[test]
fn pipeline_invariants_hold_for_random_programs() {
    let mut g = Gen(0x5359_5354_454d); // "SYSTEM"
    for _case in 0..12 {
        let steps = random_steps(&mut g, 2, 10);
        let ranks = g.range(2, 5) as u32;
        let threads = [1u32, 2, 4][g.below(3) as usize];
        let skew = g.bool();
        let seed = g.below(1000);

        let instance = build(ranks, threads, &steps, skew);
        assert!(instance.program.validate().is_ok());
        let cfg = ExecConfig::jureca(1, instance.layout.clone(), seed);

        for mode in [ClockMode::Tsc, ClockMode::Lt1, ClockMode::LtStmt, ClockMode::LtHwctr] {
            let (trace, result) = measure(&instance.program, &cfg, &MeasureConfig::new(mode));
            // Trace structure.
            assert!(trace.check_consistency().is_ok());
            assert!(result.total.nanos() > 0);
            // Binary round trip is lossless.
            let back = decode(&encode(&trace)).unwrap();
            assert_eq!(&back, &trace);
            // Lamport condition under logical clocks — both the local
            // message check and the full happens-before oracle.
            if mode.is_logical() {
                assert_clock_condition(&trace);
                let violations = nrlt::analysis::verify_clock_condition(&trace);
                assert!(violations.is_empty(), "causality oracle: {violations:?}");
            }
            // Analysis conserves time and never goes negative.
            let profile = analyze(&trace);
            let total = profile.total_time();
            let parts: f64 =
                Metric::Time.subtree().into_iter().map(|m| profile.metric_excl_total(m)).sum();
            assert!((total - parts).abs() <= 1e-6 * total.max(1.0));
            for m in Metric::ALL {
                assert!(profile.metric_excl_total(m) >= 0.0);
            }
        }
    }
}

#[test]
fn noise_free_logical_traces_ignore_the_seed() {
    let mut g = Gen(0x4c54_4242); // "LTBB"
    for _case in 0..6 {
        let steps = random_steps(&mut g, 2, 6);
        let ranks = g.range(2, 4) as u32;
        let instance = build(ranks, 2, &steps, true);
        let a = measure(
            &instance.program,
            &ExecConfig::jureca(1, instance.layout.clone(), 1),
            &MeasureConfig::new(ClockMode::LtBb),
        )
        .0;
        let b = measure(
            &instance.program,
            &ExecConfig::jureca(1, instance.layout.clone(), 999),
            &MeasureConfig::new(ClockMode::LtBb),
        )
        .0;
        assert_eq!(a.streams, b.streams);
    }
}
