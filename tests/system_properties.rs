//! System-level property tests: random (valid) hybrid programs pushed
//! through the whole pipeline must uphold the library's invariants under
//! every clock mode.

use nrlt::prelude::*;
use nrlt::trace::{decode, encode, EventKind, Trace};
use proptest::prelude::*;

/// One step of a random SPMD program — always globally consistent, so
/// generated programs never deadlock.
#[derive(Debug, Clone)]
enum Step {
    Kernel { instr: u64, bytes: u64 },
    Burst { calls: u64, instr: u64 },
    ParallelLoop { iters: u64, instr: u64, bytes: u64, ramp: bool },
    Allreduce,
    Alltoall,
    RingExchange { bytes: u64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1_000u64..2_000_000, 0u64..100_000)
            .prop_map(|(instr, bytes)| Step::Kernel { instr, bytes }),
        (1u64..2_000, 1_000u64..500_000)
            .prop_map(|(calls, instr)| Step::Burst { calls, instr }),
        (16u64..20_000, 50u64..2_000, 0u64..256, any::<bool>()).prop_map(
            |(iters, instr, bytes, ramp)| Step::ParallelLoop { iters, instr, bytes, ramp }
        ),
        Just(Step::Allreduce),
        Just(Step::Alltoall),
        (64u64..100_000).prop_map(|bytes| Step::RingExchange { bytes }),
    ]
}

fn build(ranks: u32, threads: u32, steps: &[Step], skew: bool) -> BenchmarkInstance {
    let mut pb = ProgramBuilder::new(ranks);
    for r in 0..ranks {
        let left = (r + ranks - 1) % ranks;
        let right = (r + 1) % ranks;
        // Optional per-rank skew so waits appear.
        let factor = if skew { 1.0 + r as f64 / ranks as f64 } else { 1.0 };
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            for (i, step) in steps.iter().enumerate() {
                match *step {
                    Step::Kernel { instr, bytes } => rb.kernel(
                        Cost::scalar((instr as f64 * factor) as u64).with_mem_bytes(bytes),
                        bytes,
                    ),
                    Step::Burst { calls, instr } => rb.kernel_burst(
                        "tiny",
                        calls,
                        Cost::scalar((instr as f64 * factor) as u64),
                        0,
                    ),
                    Step::ParallelLoop { iters, instr, bytes, ramp } => {
                        let name = format!("loop{i}");
                        rb.parallel(&name, |omp| {
                            let cost = Cost::scalar(instr).with_mem_bytes(bytes);
                            let ic = if ramp {
                                IterCost::Ramp { base: cost, last_factor: 3.0 }
                            } else {
                                IterCost::Uniform(cost)
                            };
                            omp.for_loop(
                                &name,
                                (iters as f64 * factor) as u64,
                                Schedule::Static,
                                ic,
                                bytes * iters,
                            );
                        });
                    }
                    Step::Allreduce => rb.allreduce(8),
                    Step::Alltoall => rb.alltoall(512),
                    Step::RingExchange { bytes } => {
                        rb.irecv(left, 5, bytes);
                        rb.isend(right, 5, bytes);
                        rb.waitall();
                    }
                }
            }
        });
    }
    BenchmarkInstance {
        name: "random".into(),
        program: pb.finish(),
        nodes: 1,
        layout: JobLayout::block(ranks, threads),
        filter_rules: vec![],
    }
}

/// Check Lamport's clock condition over all matched messages of a trace.
fn assert_clock_condition(trace: &Trace) {
    use std::collections::HashMap;
    let tpr = trace.defs.threads_per_rank;
    let mut sends: HashMap<(u32, u32, u32), Vec<u64>> = HashMap::new();
    for (i, stream) in trace.streams.iter().enumerate() {
        let rank = i as u32 / tpr;
        for ev in stream {
            if let EventKind::SendPost { peer, tag, .. } = ev.kind {
                sends.entry((rank, peer, tag)).or_default().push(ev.time);
            }
        }
    }
    let mut cursor: HashMap<(u32, u32, u32), usize> = HashMap::new();
    for (i, stream) in trace.streams.iter().enumerate() {
        let rank = i as u32 / tpr;
        for ev in stream {
            if let EventKind::RecvComplete { peer, tag, .. } = ev.kind {
                let key = (peer, rank, tag);
                let k = cursor.entry(key).or_insert(0);
                let send_ts = sends[&key][*k];
                *k += 1;
                assert!(ev.time > send_ts, "clock condition violated");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn pipeline_invariants_hold_for_random_programs(
        steps in proptest::collection::vec(step_strategy(), 2..10),
        ranks in 2u32..5,
        threads in prop_oneof![Just(1u32), Just(2), Just(4)],
        skew in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let instance = build(ranks, threads, &steps, skew);
        prop_assert!(instance.program.validate().is_ok());
        let cfg = ExecConfig::jureca(1, instance.layout.clone(), seed);

        for mode in [ClockMode::Tsc, ClockMode::Lt1, ClockMode::LtStmt, ClockMode::LtHwctr] {
            let (trace, result) = measure(&instance.program, &cfg, &MeasureConfig::new(mode));
            // Trace structure.
            prop_assert!(trace.check_consistency().is_ok());
            prop_assert!(result.total.nanos() > 0);
            // Binary round trip is lossless.
            let back = decode(&encode(&trace)).unwrap();
            prop_assert_eq!(&back, &trace);
            // Lamport condition under logical clocks — both the local
            // message check and the full happens-before oracle.
            if mode.is_logical() {
                assert_clock_condition(&trace);
                let violations = nrlt::analysis::verify_clock_condition(&trace);
                prop_assert!(violations.is_empty(), "causality oracle: {violations:?}");
            }
            // Analysis conserves time and never goes negative.
            let profile = analyze(&trace);
            let total = profile.total_time();
            let parts: f64 = Metric::Time
                .subtree()
                .into_iter()
                .map(|m| profile.metric_excl_total(m))
                .sum();
            prop_assert!((total - parts).abs() <= 1e-6 * total.max(1.0));
            for m in Metric::ALL {
                prop_assert!(profile.metric_excl_total(m) >= 0.0);
            }
        }
    }

    #[test]
    fn noise_free_logical_traces_ignore_the_seed(
        steps in proptest::collection::vec(step_strategy(), 2..6),
        ranks in 2u32..4,
    ) {
        let instance = build(ranks, 2, &steps, true);
        let a = measure(
            &instance.program,
            &ExecConfig::jureca(1, instance.layout.clone(), 1),
            &MeasureConfig::new(ClockMode::LtBb),
        ).0;
        let b = measure(
            &instance.program,
            &ExecConfig::jureca(1, instance.layout.clone(), 999),
            &MeasureConfig::new(ClockMode::LtBb),
        ).0;
        prop_assert_eq!(a.streams, b.streams);
    }
}
