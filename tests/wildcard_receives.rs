//! Wildcard receives (`MPI_ANY_SOURCE`): the paper's Section II caveat.
//!
//! "In programs relying on nondeterministic MPI semantics, such as
//! wildcard receives, the happens-before relation is insufficient […]
//! messages can be matched differently depending on the timing,
//! therefore the event order and logical time stamps might vary between
//! executions."
//!
//! These tests demonstrate exactly that: a master/worker program with
//! wildcard receives produces *different logical traces* under different
//! noise seeds, while the same program with specific receives — and the
//! wildcard program on a noise-free machine — stays bit-identical.

use nrlt::prelude::*;
use nrlt::trace::EventKind;

/// Master/worker: rank 0 collects one result from every worker.
fn master_worker(wildcard: bool, ranks: u32, rounds: u32) -> Program {
    let mut pb = ProgramBuilder::new(ranks);
    {
        let mut rb = pb.rank(0);
        rb.scoped("master", |rb| {
            for _ in 0..rounds {
                rb.kernel(Cost::scalar(200_000), 0);
                if wildcard {
                    for _ in 1..ranks {
                        rb.recv_any(7, 4096);
                    }
                } else {
                    for src in 1..ranks {
                        rb.recv(src, 7, 4096);
                    }
                }
            }
        });
    }
    for r in 1..ranks {
        let mut rb = pb.rank(r);
        rb.scoped("worker", |rb| {
            for _ in 0..rounds {
                // Memory-heavy work whose duration is noise-sensitive, so
                // the finish order varies between repetitions.
                rb.kernel(
                    Cost::scalar(1_000_000 + r as u64 * 1_000).with_mem_bytes(2_000_000),
                    64 << 20,
                );
                rb.send(0, 7, 4096);
            }
        });
    }
    let p = pb.finish();
    p.validate().unwrap_or_else(|e| panic!("{e:?}"));
    p
}

fn trace_for(p: &Program, seed: u64, noise: NoiseConfig) -> nrlt::trace::Trace {
    let cfg = ExecConfig::jureca(1, JobLayout::block(p.n_ranks(), 1), seed).with_noise(noise);
    measure(p, &cfg, &MeasureConfig::new(ClockMode::LtStmt)).0
}

/// The order in which the master's completions name their sources.
fn completion_order(t: &nrlt::trace::Trace) -> Vec<u32> {
    t.streams[0]
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::RecvComplete { peer, .. } => Some(peer),
            _ => None,
        })
        .collect()
}

#[test]
fn wildcard_matching_is_timing_dependent() {
    let p = master_worker(true, 6, 8);
    let orders: Vec<Vec<u32>> = (0..8)
        .map(|seed| completion_order(&trace_for(&p, seed, NoiseConfig::realistic())))
        .collect();
    assert!(
        orders.iter().any(|o| o != &orders[0]),
        "with noise, wildcard matching must vary across seeds: {orders:?}"
    );
    // And the logical traces therefore differ too.
    let a = trace_for(&p, 0, NoiseConfig::realistic());
    let b = trace_for(&p, 1, NoiseConfig::realistic());
    assert_ne!(a.streams, b.streams, "logical repeatability is lost with wildcards");
}

#[test]
fn specific_receives_stay_deterministic() {
    let p = master_worker(false, 6, 8);
    let a = trace_for(&p, 0, NoiseConfig::realistic());
    let b = trace_for(&p, 1, NoiseConfig::realistic());
    assert_eq!(a.streams, b.streams, "specific receives keep logical traces identical");
}

#[test]
fn silent_machine_restores_determinism_even_with_wildcards() {
    let p = master_worker(true, 6, 8);
    let a = trace_for(&p, 0, NoiseConfig::silent());
    let b = trace_for(&p, 1, NoiseConfig::silent());
    assert_eq!(a.streams, b.streams);
}

#[test]
fn wildcard_traces_still_satisfy_causality_and_analyze() {
    let p = master_worker(true, 6, 8);
    for seed in 0..4 {
        let t = trace_for(&p, seed, NoiseConfig::realistic());
        t.check_consistency().unwrap();
        let violations = nrlt::analysis::verify_clock_condition(&t);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        let profile = analyze(&t);
        assert!(profile.total_time() > 0.0);
        // Wait time at the master's receives shows up regardless of the
        // matching order.
        assert!(profile.metric_incl_total(Metric::MpiP2p) > 0.0);
    }
}

#[test]
fn wildcard_completions_record_the_actual_source() {
    let p = master_worker(true, 4, 2);
    let t = trace_for(&p, 3, NoiseConfig::realistic());
    let order = completion_order(&t);
    assert_eq!(order.len(), 2 * 3);
    let mut sorted = order.clone();
    sorted.sort_unstable();
    // Every worker delivered exactly `rounds` messages.
    assert_eq!(sorted, vec![1, 1, 2, 2, 3, 3]);
    // No completion carries the ANY sentinel.
    assert!(order.iter().all(|&p| p != u32::MAX));
}
