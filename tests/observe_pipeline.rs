//! The resource observatory's pipeline contract, mirroring
//! `parallel_pipeline.rs`:
//!
//! * an `--observe` bundle is byte-identical across worker counts and
//!   repeats (runs are keyed by stable names, merged in sorted order),
//! * observing does not perturb the experiment — profiles, run times,
//!   and reference runs are exactly the results of an unobserved run,
//! * without a handle the pipeline does zero observability work.

use nrlt::miniapps::{MiniFeConfig, MiniFeCosts};
use nrlt::observe::export::ObserveBundle;
use nrlt::observe::Observe;
use nrlt::prelude::*;
use nrlt::run_experiment_observed;

/// A deliberately tiny MiniFE so the whole protocol runs in seconds.
fn tiny_instance() -> BenchmarkInstance {
    MiniFeConfig {
        nx: 60,
        ranks: 4,
        threads_per_rank: 4,
        imbalance_pct: 50,
        cg_iters: 8,
        costs: MiniFeCosts::default(),
    }
    .build()
}

fn options(jobs: usize) -> ExperimentOptions {
    ExperimentOptions {
        repetitions: 2,
        base_seed: 900,
        modes: vec![ClockMode::Tsc, ClockMode::LtStmt],
        jobs,
        ..Default::default()
    }
}

fn observed_bundle(jobs: usize) -> (ExperimentResult, ObserveBundle) {
    let instance = tiny_instance();
    let obs = Observe::new();
    let result = run_experiment_observed(&instance, &options(jobs), None, Some(&obs));
    (result, ObserveBundle::from_observe(&obs))
}

#[test]
fn observe_bundle_is_identical_across_jobs_and_repeats() {
    let (_, serial) = observed_bundle(1);
    let (_, parallel) = observed_bundle(4);
    let (_, again) = observed_bundle(4);

    // Byte-identical exports, not just equal structures.
    assert_eq!(serial.to_jsonl(), parallel.to_jsonl(), "JSONL diverged across jobs");
    assert_eq!(parallel.to_jsonl(), again.to_jsonl(), "JSONL diverged across repeats");
    assert_eq!(serial.to_chrome(), parallel.to_chrome(), "Chrome trace diverged across jobs");

    // And the JSONL round-trips losslessly.
    let reparsed = ObserveBundle::from_jsonl(&serial.to_jsonl()).expect("bundle reparses");
    assert_eq!(reparsed, serial);
}

#[test]
fn observing_does_not_perturb_the_experiment() {
    let instance = tiny_instance();
    let plain = run_experiment(&instance, &options(2));
    let (observed, bundle) = observed_bundle(2);

    assert_eq!(plain.reference, observed.reference, "observing changed reference runs");
    assert_eq!(plain.phase_names, observed.phase_names);
    for (p, o) in plain.modes.iter().zip(&observed.modes) {
        assert_eq!(p.mode, o.mode);
        assert_eq!(p.run_times, o.run_times, "{}: observing changed run times", p.mode);
        assert_eq!(p.phase_times, o.phase_times, "{}: observing changed phase times", p.mode);
        assert_eq!(p.profiles, o.profiles, "{}: observing changed profiles", p.mode);
    }

    // The bundle actually recorded the machine: one run per cell, with
    // counter samples and noise draws inside.
    let expected_runs = 2 + 2 + 1; // ref reps + tsc reps + lt_stmt (noise-free: 1 rep)
    assert_eq!(bundle.runs.len(), expected_runs);
    let tsc = &bundle.runs[&format!("{}:tsc:rep0", instance.name)];
    assert!(!tsc.series_aggs.is_empty(), "no counter timelines recorded");
    assert!(!tsc.noise_aggs.is_empty(), "no noise draws recorded");
    assert!(!tsc.waits.is_empty(), "no wait provenance recorded");
}

#[test]
fn no_handle_means_zero_observability_work() {
    let instance = tiny_instance();
    let obs = Observe::new();
    // Run the full pipeline WITHOUT passing the handle: the `None`
    // paths must leave the observatory untouched.
    let with_none = run_experiment_observed(&instance, &options(2), None, None);
    assert_eq!(obs.call_count(), 0, "a None run must perform zero observability work");
    assert!(ObserveBundle::from_observe(&obs).runs.is_empty());

    // And the None path is exactly the plain path.
    let plain = run_experiment(&instance, &options(2));
    assert_eq!(plain.reference, with_none.reference);
    for (p, o) in plain.modes.iter().zip(&with_none.modes) {
        assert_eq!(p.profiles, o.profiles);
        assert_eq!(p.run_times, o.run_times);
    }
}
