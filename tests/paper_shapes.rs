//! Integration tests asserting the paper's qualitative findings on the
//! actual benchmark configurations (scaled-down where noted). These are
//! the repository's ground truth: if a refactor breaks one of these, the
//! reproduction no longer tells the paper's story.

use nrlt::miniapps::{LuleshConfig, LuleshCosts, MiniFeConfig, MiniFeCosts};
use nrlt::prelude::*;

fn quick_options(modes: Vec<ClockMode>) -> ExperimentOptions {
    ExperimentOptions { repetitions: 3, base_seed: 400, modes, ..Default::default() }
}

/// Scaled-down MiniFE-2 (same structure, fewer iterations/elements).
fn minife2_small() -> BenchmarkInstance {
    MiniFeConfig {
        nx: 200,
        ranks: 8,
        threads_per_rank: 16,
        imbalance_pct: 50,
        cg_iters: 50,
        costs: MiniFeCosts::default(),
    }
    .build()
}

/// Scaled-down LULESH-1.
fn lulesh1_small() -> BenchmarkInstance {
    LuleshConfig {
        ranks: 8,
        threads_per_rank: 4,
        edge: 40,
        steps: 12,
        imbalance: 0.8,
        spread_placement: false,
        nodes: 1,
        costs: LuleshCosts::default(),
    }
    .build()
}

#[test]
fn minife2_idle_threads_dominate_and_lt1_overestimates_them() {
    let res = run_experiment(
        &minife2_small(),
        &quick_options(vec![ClockMode::Tsc, ClockMode::Lt1, ClockMode::LtLoop]),
    );
    let tsc = &res.mode(ClockMode::Tsc).mean;
    // tsc: idle threads are the dominant category (paper: 58 %_T).
    let idle = tsc.pct_t(Metric::IdleThreads);
    assert!((35.0..80.0).contains(&idle), "idle threads dominate: {idle:.1}");
    assert!(tsc.pct_t(Metric::Comp) > 15.0);
    // lt_1 sees almost no worker effort: >90 % idle (paper: 93 %_T).
    let lt1_idle = res.mode(ClockMode::Lt1).mean.pct_t(Metric::IdleThreads);
    assert!(lt1_idle > 88.0, "lt_1 must show ~93% idle: {lt1_idle:.1}");
    // lt_loop cannot see serial regions: far less idle than tsc.
    let loop_idle = res.mode(ClockMode::LtLoop).mean.pct_t(Metric::IdleThreads);
    assert!(loop_idle < idle, "lt_loop under-reports idle: {loop_idle:.1} vs {idle:.1}");
}

#[test]
fn minife2_imbalance_visible_to_all_clocks() {
    let res = run_experiment(&minife2_small(), &quick_options(ClockMode::ALL.to_vec()));
    for m in &res.modes {
        let nxn = m.mean.pct_t(Metric::WaitNxN);
        assert!(nxn > 0.5, "{}: the 3x rank imbalance must appear as wait_nxn ({nxn:.2})", m.mode);
    }
}

#[test]
fn minife2_counting_modes_cost_most_in_init() {
    let res =
        run_experiment(&minife2_small(), &quick_options(vec![ClockMode::Tsc, ClockMode::LtBb]));
    let bb_init = res.overhead_phase(ClockMode::LtBb, "init");
    let bb_solve = res.overhead_phase(ClockMode::LtBb, "solve");
    let tsc_init = res.overhead_phase(ClockMode::Tsc, "init");
    // Paper Table I: init ~98 % vs solve ~0.2 % for lt_bb; tsc init small.
    assert!(bb_init > 40.0, "bb counting must hammer the call-dense init: {bb_init:.1}");
    assert!(bb_solve < 8.0, "bb counting absorbed by the memory-bound solve: {bb_solve:.1}");
    assert!(tsc_init < 20.0, "tsc init overhead stays small: {tsc_init:.1}");
}

#[test]
fn lulesh_logical_modes_blame_the_material_update() {
    let res = run_experiment(
        &lulesh1_small(),
        &quick_options(vec![ClockMode::Tsc, ClockMode::LtStmt, ClockMode::LtHwctr]),
    );
    // The artificial imbalance lives in ApplyMaterialPropertiesForElems;
    // lt_stmt's delay costs must point there (paper Fig 9b).
    let stmt = &res.mode(ClockMode::LtStmt).mean;
    let material_share: f64 = stmt
        .map_c(Metric::DelayN2n)
        .iter()
        .filter(|(c, _)| stmt.path_string(**c).contains("Material"))
        .map(|(_, v)| v)
        .sum();
    assert!(
        material_share > 60.0,
        "lt_stmt delay must point at the material update: {material_share:.1}%"
    );
    // lt_hwctr mislocates part of the delay inside MPI waiting (spin
    // instructions), as the paper observes.
    let hw = &res.mode(ClockMode::LtHwctr).mean;
    let waitall_share: f64 = hw
        .map_c(Metric::DelayN2n)
        .iter()
        .filter(|(c, _)| hw.path_string(**c).contains("MPI_"))
        .map(|(_, v)| v)
        .sum();
    assert!(waitall_share > 20.0, "lt_hwctr delay partly sits in MPI calls: {waitall_share:.1}%");
}

#[test]
fn lulesh2_late_sender_only_for_tsc_and_hwctr() {
    // Uneven NUMA occupancy (27 ranks on 8 domains) slows the full
    // domains' ranks; only time-like clocks can see it. Scaled: same
    // spread placement with 27 ranks.
    let instance = LuleshConfig {
        ranks: 27,
        threads_per_rank: 4,
        edge: 40,
        steps: 12,
        imbalance: 0.0,
        spread_placement: true,
        nodes: 1,
        costs: LuleshCosts::default(),
    }
    .build();
    let res = run_experiment(&instance, &quick_options(ClockMode::ALL.to_vec()));
    let tsc_ls = res.mode(ClockMode::Tsc).mean.pct_t(Metric::LateSender);
    let hw_ls = res.mode(ClockMode::LtHwctr).mean.pct_t(Metric::LateSender);
    assert!(tsc_ls > 1.0, "tsc must find the NUMA late senders: {tsc_ls:.2}");
    assert!(hw_ls > 0.5, "lt_hwctr is the only logical clock seeing them: {hw_ls:.2}");
    for mode in [ClockMode::Lt1, ClockMode::LtLoop, ClockMode::LtBb, ClockMode::LtStmt] {
        let ls = res.mode(mode).mean.pct_t(Metric::LateSender);
        assert!(
            ls < tsc_ls / 4.0,
            "{mode} is blind to extrinsic waits by design: {ls:.2} vs tsc {tsc_ls:.2}"
        );
    }
}

#[test]
fn jaccard_ranking_lt1_is_worst() {
    let res = run_experiment(&minife2_small(), &quick_options(ClockMode::ALL.to_vec()));
    let j1 = res.jaccard_vs_tsc(ClockMode::Lt1);
    for mode in [ClockMode::LtBb, ClockMode::LtStmt, ClockMode::LtHwctr] {
        let j = res.jaccard_vs_tsc(mode);
        assert!(
            j > j1,
            "{mode} must beat lt_1 (paper: lt_1 has the lowest score): {j:.3} vs {j1:.3}"
        );
    }
}

#[test]
fn logical_measurements_are_exactly_repeatable_noise_free_modes() {
    let res = run_experiment(
        &lulesh1_small(),
        &quick_options(vec![ClockMode::Tsc, ClockMode::LtStmt, ClockMode::LtHwctr]),
    );
    // Noise-free logical modes run once; their stability is structural
    // (verified in crate tests); the noise-carrying modes vary:
    assert!(res.mode(ClockMode::Tsc).min_run_to_run_jaccard() < 1.0);
    assert!(res.mode(ClockMode::LtHwctr).min_run_to_run_jaccard() < 1.0);
    // And lt_stmt's profile is identical when run twice explicitly.
    let a = nrlt::run_mode(&lulesh1_small(), ClockMode::LtStmt, &quick_options(vec![]));
    let mut opts = quick_options(vec![]);
    opts.base_seed += 13;
    let b = nrlt::run_mode(&lulesh1_small(), ClockMode::LtStmt, &opts);
    let ja = a.mean.map_mc();
    let jb = b.mean.map_mc();
    assert_eq!(ja.len(), jb.len());
    for (k, v) in &ja {
        assert!((v - jb[k]).abs() < 1e-9, "lt_stmt must not depend on the seed");
    }
}

#[test]
fn tealeaf_cache_pollution_shows_only_in_physical_overhead() {
    // Scaled TeaLeaf whose working set just fits the socket L3.
    let instance = nrlt::miniapps::TeaLeafConfig {
        n: 4000,
        ranks: 2,
        threads_per_rank: 64,
        steps: 1,
        cg_per_step: 12,
        costs: Default::default(),
    }
    .build();
    let res = run_experiment(&instance, &quick_options(vec![ClockMode::Tsc, ClockMode::LtStmt]));
    let ovh = res.overhead_total(ClockMode::Tsc);
    assert!(ovh > 15.0, "measurement buffers must evict the cache-resident working set: {ovh:.1}%");
    // The logical analysis itself is not skewed: barrier overhead stays
    // small under lt_stmt (paper: < 2 %_T).
    let stmt_omp_ovh = res.mode(ClockMode::LtStmt).mean.pct_t(Metric::OmpBarrierOverhead)
        + res.mode(ClockMode::LtStmt).mean.pct_t(Metric::OmpManagement);
    assert!(stmt_omp_ovh < 4.0, "lt_stmt sees balanced threads: {stmt_omp_ovh:.1}");
}
