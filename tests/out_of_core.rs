//! Out-of-core golden determinism: a run whose trace spills columnar
//! segments to disk must produce results **byte-identical** to the
//! fully resident path — same profiles, same severity report, same
//! event counts. The spill layer may only change *where* events live
//! between measurement and analysis, never a single analysed number.
//!
//! The spilled runs use a deliberately absurd 1-byte budget, which
//! clamps to the minimum chunk size and forces maximum segment churn —
//! the worst case for any ordering or rounding bug in the segment
//! round-trip or the streaming analysis.

use nrlt::miniapps::{MiniFeConfig, MiniFeCosts};
use nrlt::prelude::*;
use nrlt_report::severity_text;

/// A small MiniFE: big enough to cross chunk boundaries many times
/// under the forced-spill budget, small enough to run in seconds.
fn instance() -> BenchmarkInstance {
    MiniFeConfig {
        nx: 40,
        ranks: 2,
        threads_per_rank: 2,
        imbalance_pct: 50,
        cg_iters: 4,
        costs: MiniFeCosts::default(),
    }
    .build()
}

fn options(jobs: usize, trace_budget: Option<u64>) -> ExperimentOptions {
    ExperimentOptions {
        repetitions: 2,
        base_seed: 4242,
        modes: vec![ClockMode::Tsc, ClockMode::Lt1],
        jobs,
        trace_budget,
        ..Default::default()
    }
}

#[test]
fn spilled_run_is_byte_identical_to_resident() {
    let instance = instance();
    let resident = nrlt::run_experiment(&instance, &options(1, None));
    let spilled = nrlt::run_experiment(&instance, &options(1, Some(1)));

    assert_eq!(resident.events, spilled.events, "event counts diverged under spill");
    assert_eq!(resident.reference, spilled.reference, "reference runs diverged under spill");
    for (rm, sm) in resident.modes.iter().zip(&spilled.modes) {
        assert_eq!(rm.mode, sm.mode);
        assert_eq!(rm.profiles, sm.profiles, "{}: per-rep profiles diverged under spill", rm.mode);
        assert_eq!(rm.mean, sm.mean, "{}: mean profile diverged under spill", rm.mode);
        assert_eq!(rm.run_times, sm.run_times, "{}: run times diverged under spill", rm.mode);
        assert_eq!(rm.phase_times, sm.phase_times, "{}: phase times diverged under spill", rm.mode);
    }

    // The rendered report — what a user actually diffs — is identical.
    let text = severity_text(&resident, 10);
    assert_eq!(text, severity_text(&spilled, 10), "severity report diverged under spill");
    assert!(text.contains("hotspot"), "{text}");
}

#[test]
fn spilled_run_is_deterministic_across_jobs() {
    let instance = instance();
    let serial = nrlt::run_experiment(&instance, &options(1, Some(1)));
    let fanned = nrlt::run_experiment(&instance, &options(4, Some(1)));
    assert_eq!(
        severity_text(&serial, 10),
        severity_text(&fanned, 10),
        "spilled severity report diverged across --jobs"
    );
}
