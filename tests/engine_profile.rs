//! The engine self-profiler's two contracts:
//!
//! 1. **Determinism** — the deterministic half of an `--engine-prof`
//!    bundle (`engineprof.json`: per-kind counts and virtual costs,
//!    gauge aggregates, high-water marks, allocation counts) is
//!    byte-identical across worker counts and repeats. Only the wall
//!    sidecar (`engineprof.wall.json`) may vary.
//! 2. **Zero overhead when off** — a `None`-profiler run performs no
//!    accounting work at all (the sink's attach counter proves no
//!    counter struct was ever constructed) and produces exactly the
//!    results of an uninstrumented run.

use nrlt::engineprof::{EngineProf, EventKind, ProfBundle};
use nrlt::miniapps::{MiniFeConfig, MiniFeCosts};
use nrlt::prelude::*;
use nrlt_core::run_experiment_instrumented;

/// A deliberately tiny MiniFE so the whole protocol runs in seconds.
fn tiny_instance() -> BenchmarkInstance {
    MiniFeConfig {
        nx: 60,
        ranks: 4,
        threads_per_rank: 4,
        imbalance_pct: 50,
        cg_iters: 8,
        costs: MiniFeCosts::default(),
    }
    .build()
}

fn options(jobs: usize) -> ExperimentOptions {
    ExperimentOptions {
        repetitions: 2,
        base_seed: 900,
        modes: vec![ClockMode::Tsc, ClockMode::LtStmt],
        jobs,
        ..Default::default()
    }
}

fn profile_json(jobs: usize) -> String {
    let prof = EngineProf::new();
    run_experiment_instrumented(&tiny_instance(), &options(jobs), None, None, Some(&prof));
    ProfBundle::from_prof(&prof).to_json()
}

#[test]
fn bundle_is_byte_identical_across_jobs_and_repeats() {
    let serial = profile_json(1);
    assert_eq!(serial, profile_json(2), "jobs=2 diverged from jobs=1");
    assert_eq!(serial, profile_json(4), "jobs=4 diverged from jobs=1");
    assert_eq!(serial, profile_json(1), "repeat diverged");
}

#[test]
fn profile_accounts_the_whole_event_stream() {
    let prof = EngineProf::new();
    let result =
        run_experiment_instrumented(&tiny_instance(), &options(1), None, None, Some(&prof));
    let runs = prof.runs();
    // 2 reference reps + 2 tsc reps + 1 lt_stmt rep (noise-free).
    assert_eq!(runs.len(), 5, "one attached profile per cell");
    assert!(runs.keys().any(|k| k.contains(":ref:")), "reference cells profile too");

    let events: u64 = runs.values().map(|d| d.events).sum();
    assert_eq!(events, result.events, "profiler and result disagree on event count");
    assert!(events > 0, "the pipeline dispatched no events?");

    for (name, data) in &runs {
        let kernel = &data.kinds[EventKind::KernelAdvance.index()];
        assert!(kernel.count > 0, "{name}: no kernels advanced");
        assert!(kernel.virtual_ns > 0, "{name}: kernels cost no virtual time");
        let barrier = &data.kinds[EventKind::Barrier.index()];
        assert!(barrier.count > 0, "{name}: MiniFE has OMP barriers");
        let coll = &data.kinds[EventKind::Collective.index()];
        assert!(coll.count > 0, "{name}: CG iterates over allreduces");
        let draws = &data.kinds[EventKind::NoiseDraw.index()];
        assert!(draws.count > 0, "{name}: realistic noise must draw");
        assert!(!data.gauges.is_empty(), "{name}: no queue gauges recorded");
        assert!(!data.hwms.is_empty(), "{name}: no high-water marks recorded");
    }
}

#[test]
fn disabled_profiler_does_no_work_and_changes_nothing() {
    let instance = tiny_instance();
    let plain = run_experiment(&instance, &options(1));

    let sink = EngineProf::new();
    // The sink exists but is never passed in: the engine must not touch
    // it — and must not construct any per-run accounting either.
    let off = run_experiment_instrumented(&instance, &options(1), None, None, None);
    assert_eq!(sink.call_count(), 0, "a None run must never reach a sink");
    assert!(sink.runs().is_empty());

    // And the instrumented path with a live profiler still produces the
    // exact same simulation results — profiling reads, never perturbs.
    let prof = EngineProf::new();
    let on = run_experiment_instrumented(&instance, &options(1), None, None, Some(&prof));

    for r in [&off, &on] {
        assert_eq!(plain.reference, r.reference, "reference runs diverged");
        assert_eq!(plain.phase_names, r.phase_names);
        for (a, b) in plain.modes.iter().zip(&r.modes) {
            assert_eq!(a.run_times, b.run_times, "{}: run times diverged", a.mode);
            assert_eq!(a.profiles, b.profiles, "{}: profiles diverged", a.mode);
        }
    }
    assert!(prof.call_count() > 0, "a Some run must attach its cells");
}
