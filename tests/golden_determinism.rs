//! Golden determinism: the full fig3 MiniFE-1 experiment — the same
//! configuration the CI throughput smoke drives — must produce
//! field-identical [`ExperimentResult`]s across worker counts and
//! across repeated invocations. This pins down the engine-speed
//! overhaul's core claim: arena books, the ladder calendar, SoA event
//! streams, and batched noise draws change wall time only, never a
//! result. Every comparison below is exact (`assert_eq!` on the full
//! field set), not approximate.

use nrlt::prelude::*;
use nrlt::ExperimentResult;

fn options(jobs: usize) -> ExperimentOptions {
    // fig3 runs the paper protocol (all six modes, five repetitions);
    // only the fan-out differs between the compared runs.
    ExperimentOptions { jobs, ..Default::default() }
}

/// Exact equality over every result field. `ExperimentResult` holds
/// floats (profiles) and durations; all of them must match bit-for-bit
/// because every cell derives from the seed alone.
fn assert_identical(a: &ExperimentResult, b: &ExperimentResult, what: &str) {
    assert_eq!(a.name, b.name, "{what}: name");
    assert_eq!(a.reference, b.reference, "{what}: reference runs");
    assert_eq!(a.phase_names, b.phase_names, "{what}: phase names");
    assert_eq!(a.events, b.events, "{what}: event counts");
    assert_eq!(a.modes.len(), b.modes.len(), "{what}: mode count");
    for (ma, mb) in a.modes.iter().zip(&b.modes) {
        assert_eq!(ma.mode, mb.mode, "{what}: mode order");
        assert_eq!(ma.profiles, mb.profiles, "{what}: {} per-rep profiles", ma.mode);
        assert_eq!(ma.mean, mb.mean, "{what}: {} mean profile", ma.mode);
        assert_eq!(ma.run_times, mb.run_times, "{what}: {} run times", ma.mode);
        assert_eq!(ma.phase_times, mb.phase_times, "{what}: {} phase times", ma.mode);
        assert_eq!(ma.events, mb.events, "{what}: {} event count", ma.mode);
    }
}

#[test]
fn minife1_is_identical_across_jobs_and_repeats() {
    let instance = minife_1();
    let serial = run_experiment(&instance, &options(1));
    let fanned = run_experiment(&instance, &options(2));
    assert_identical(&serial, &fanned, "--jobs 1 vs --jobs 2");
    let repeat = run_experiment(&instance, &options(1));
    assert_identical(&serial, &repeat, "first vs second invocation");
}
