//! Integration tests for the extension analyses: critical path,
//! combined physical+logical classification, online profiling, and
//! post-processed clocks — run on real mini-app configurations.

use nrlt::analysis::{assign_lamport_postprocess, combine, critical_path};
use nrlt::measure_sys::profile_run;
use nrlt::miniapps::{LuleshConfig, LuleshCosts, MiniFeConfig, MiniFeCosts};
use nrlt::prelude::*;

fn minife_small() -> BenchmarkInstance {
    MiniFeConfig {
        nx: 120,
        ranks: 4,
        threads_per_rank: 4,
        imbalance_pct: 50,
        cg_iters: 20,
        costs: MiniFeCosts::default(),
    }
    .build()
}

#[test]
fn critical_path_agrees_across_clocks_on_the_top_routine() {
    let instance = minife_small();
    let cfg = ExecConfig::jureca(1, instance.layout.clone(), 11);
    let mut tops = Vec::new();
    for mode in [ClockMode::Tsc, ClockMode::LtStmt] {
        let (trace, _) = measure(&instance.program, &cfg, &MeasureConfig::new(mode));
        let cp = critical_path(&trace);
        assert!(cp.length > 0);
        assert!(
            cp.attributed_fraction() > 0.25,
            "{mode}: a substantial share of the path is attributable ({:.2})",
            cp.attributed_fraction()
        );
        // The path must spend most of its time on the heavy ranks' code.
        let (top, _) = cp.by_callpath()[0];
        tops.push(cp.call_tree.path_string(top, |r| trace.defs.region(r).name.clone()));
    }
    // Both clocks agree on the dominant routine class (assembly/matvec).
    for t in &tops {
        assert!(
            t.contains("assemble") || t.contains("matvec") || t.contains("structure"),
            "unexpected top of critical path: {t}"
        );
    }
}

#[test]
fn combined_analysis_classifies_lulesh2_as_extrinsic() {
    let instance = LuleshConfig {
        ranks: 27,
        threads_per_rank: 4,
        edge: 30,
        steps: 10,
        imbalance: 0.0,
        spread_placement: true,
        nodes: 1,
        costs: LuleshCosts::default(),
    }
    .build();
    let cfg = ExecConfig::jureca(1, instance.layout.clone(), 21);
    let (pt, _) = measure(&instance.program, &cfg, &MeasureConfig::new(ClockMode::Tsc));
    let (lt, _) = measure(&instance.program, &cfg, &MeasureConfig::new(ClockMode::LtStmt));
    let report = combine(&analyze(&pt), &analyze(&lt));
    assert!(
        report.extrinsic_total() > report.intrinsic_total() * 3.0,
        "balanced work on uneven NUMA must be classified extrinsic: \
         intrinsic {:.2} vs extrinsic {:.2}",
        report.intrinsic_total(),
        report.extrinsic_total()
    );
    assert!(!report.extrinsic_hotspots(0.05).is_empty());
}

#[test]
fn online_profile_tracks_the_imbalance() {
    let instance = minife_small();
    let cfg = ExecConfig::jureca(1, instance.layout.clone(), 31);
    let profile = profile_run(&instance.program, &cfg, ClockMode::Tsc);
    // The CG solve paths exist and the total is positive.
    assert!(profile.total() > 0);
    let matvec: u64 =
        profile.exclusive.iter().filter(|((p, _), _)| p.contains("matvec")).map(|(_, v)| v).sum();
    assert!(matvec > 0, "matvec must appear in the online profile");
}

#[test]
fn postprocessed_lamport_matches_online_lt1_structure() {
    // Ravel-style post-processing of a physical trace yields timestamps
    // that satisfy the clock condition, like the online lt_1.
    let instance = minife_small();
    let cfg = ExecConfig::jureca(1, instance.layout.clone(), 41);
    let (trace, _) = measure(&instance.program, &cfg, &MeasureConfig::new(ClockMode::Tsc));
    let stamps = assign_lamport_postprocess(&trace);
    for (loc, stream) in stamps.iter().enumerate() {
        for w in stream.windows(2) {
            assert!(w[0] < w[1], "location {loc}: post-processed stamps must increase");
        }
    }
}
