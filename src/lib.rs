//! # nrlt — noise-resilient logical timers
//!
//! Workspace umbrella crate: re-exports the full public API of the
//! reproduction of *"Are Noise-Resilient Logical Timers Useful for
//! Performance Analysis?"* (SC 2024) and hosts the repository-level
//! examples and integration tests. See the [`nrlt_core`] documentation
//! and the README for the tour.

#![warn(missing_docs)]

pub use nrlt_core::*;

// Direct access to the component crates under their short names.
pub use nrlt_core::{
    analysis, exec, measure_sys, miniapps, mpisim, observe, ompsim, profile, prog, sim, trace,
};

/// The read-side observability layer: severity explorer, telemetry
/// inspector, and the bench regression gate.
pub use nrlt_report as report;

/// Everything most programs need, in one import.
pub use nrlt_core::prelude;
