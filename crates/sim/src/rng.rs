//! Deterministic random-number streams.
//!
//! Every stochastic quantity in the simulation (noise detours, jitter,
//! network variability) is drawn from a stream derived from a global
//! experiment seed plus a structured key identifying *what* the randomness
//! is for. This makes results independent of the order in which the
//! discrete-event engine happens to process locations: two runs with the
//! same seed produce bit-identical timings, and a "repetition" of an
//! experiment is simply a different seed.

use crate::chacha::ChaCha8;

/// Identifies the purpose of a random stream, so that independent
/// consumers never share a stream by accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum StreamKind {
    /// Multiplicative jitter on kernel execution time (memory/cpu noise).
    KernelJitter = 1,
    /// Operating-system detours stealing CPU from a core.
    OsDetour = 2,
    /// Network latency/bandwidth variability per message.
    Network = 3,
    /// Jitter on per-event measurement overhead.
    MeasureOverhead = 4,
    /// Hardware-counter read nondeterminism.
    HwCounter = 5,
    /// Collective-internal skew (per-rank exit stagger).
    CollectiveSkew = 6,
    /// Dynamic loop-schedule tie breaking.
    Schedule = 7,
    /// Persistent per-core memory-speed bias (page placement luck).
    MemBias = 8,
}

/// Factory for deterministic, structurally keyed RNG streams.
///
/// Streams are the in-repo [`ChaCha8`]: fast, high-quality, and stable
/// across platforms and versions by construction — the generator lives
/// in this repository, so no dependency upgrade can ever change the
/// streams an experiment seed produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Create a factory for one experiment repetition.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The experiment seed this factory was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive the stream for `(kind, entity, instance)`.
    ///
    /// `entity` typically identifies a location (rank/thread) or a core;
    /// `instance` distinguishes successive uses by the same entity when a
    /// fresh stream per use is wanted (e.g. one stream per message).
    pub fn stream(&self, kind: StreamKind, entity: u64, instance: u64) -> ChaCha8 {
        ChaCha8::from_seed(self.stream_key(kind, entity, instance))
    }

    /// The 256-bit ChaCha key that [`stream`](Self::stream) would seed
    /// for `(kind, entity, instance)`.
    pub fn stream_key(&self, kind: StreamKind, entity: u64, instance: u64) -> [u8; 32] {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&self.seed.to_le_bytes());
        key[8..16].copy_from_slice(&(kind as u64).to_le_bytes());
        key[16..24].copy_from_slice(&entity.to_le_bytes());
        key[24..32].copy_from_slice(&instance.to_le_bytes());
        // Mix the key through splitmix-style finalizers so that nearby
        // seeds/entities do not produce correlated ChaCha key schedules.
        for chunk in key.chunks_exact_mut(8) {
            let mut x = u64::from_le_bytes(chunk.try_into().unwrap());
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        key
    }

    /// Derive four streams at once, computing their first keystream
    /// blocks in a single interleaved ChaCha pass. Each returned stream
    /// is positioned identically to `self.stream(kind, entity, instance)`
    /// — same key, same keystream from the first word on — so batching
    /// never changes what a consumer draws.
    pub fn stream4(&self, specs: [(StreamKind, u64, u64); 4]) -> [ChaCha8; 4] {
        crate::chacha::warm4(specs.map(|(k, e, i)| self.stream_key(k, e, i)))
    }
}

/// Sample a multiplicative jitter factor `>= lo` with mean ~1.
///
/// The distribution is a shifted log-normal-like construction built from a
/// plain uniform draw: cheap, bounded below, right-skewed — a reasonable
/// match for run-time noise which occasionally slows things down a lot but
/// never speeds them up beyond the noiseless baseline by much.
pub fn jitter_factor(rng: &mut ChaCha8, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    // Sum of three uniforms approximates a normal (Irwin-Hall), then
    // exponentiate for right skew.
    let u: f64 = (rng.next_f64() + rng.next_f64() + rng.next_f64()) / 1.5 - 1.0; // ~[-1,1], mean 0
    (sigma * u).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let f = RngFactory::new(42);
        let a: u64 = f.stream(StreamKind::KernelJitter, 7, 0).next_u64();
        let b: u64 = f.stream(StreamKind::KernelJitter, 7, 0).next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_by_kind_entity_instance_seed() {
        let f = RngFactory::new(42);
        let base: u64 = f.stream(StreamKind::KernelJitter, 7, 0).next_u64();
        let by_kind: u64 = f.stream(StreamKind::OsDetour, 7, 0).next_u64();
        let by_entity: u64 = f.stream(StreamKind::KernelJitter, 8, 0).next_u64();
        let by_instance: u64 = f.stream(StreamKind::KernelJitter, 7, 1).next_u64();
        let by_seed: u64 = RngFactory::new(43).stream(StreamKind::KernelJitter, 7, 0).next_u64();
        assert_ne!(base, by_kind);
        assert_ne!(base, by_entity);
        assert_ne!(base, by_instance);
        assert_ne!(base, by_seed);
    }

    #[test]
    fn jitter_factor_is_one_without_sigma() {
        let f = RngFactory::new(1);
        let mut rng = f.stream(StreamKind::KernelJitter, 0, 0);
        assert_eq!(jitter_factor(&mut rng, 0.0), 1.0);
    }

    #[test]
    fn jitter_factor_is_positive_and_centered() {
        let f = RngFactory::new(1);
        let mut rng = f.stream(StreamKind::KernelJitter, 0, 0);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = jitter_factor(&mut rng, 0.05);
            assert!(x > 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean jitter {mean} too far from 1");
    }
}
