//! Memory-hierarchy cost model: cache fit and bandwidth contention.
//!
//! A compute kernel's duration has a CPU part (instructions retired at the
//! core's sustained IPC) and a memory part (bytes moved at the effective
//! bandwidth available to the thread). Two effects the paper relies on are
//! captured here:
//!
//! * **Bandwidth contention** — threads pinned to the same NUMA domain
//!   share its DRAM bandwidth. MiniFE-2's CG slowdown and LULESH-2's
//!   uneven-occupancy late senders come from this sharing.
//! * **Cache fit** — bytes served from L3 cost far less than DRAM bytes.
//!   TeaLeaf's working set fits the node's L3 until the measurement
//!   system's buffers evict it, which is how instrumentation skews the
//!   physical-clock analysis in the paper (Section V-C5).

use crate::topology::NodeSpec;

/// Fraction of a kernel's traffic that must go to DRAM given how much of
/// the socket's L3 the resident working set (plus any measurement
/// footprint) exceeds.
///
/// * `working_set` — bytes of application data resident on the socket.
/// * `footprint` — extra bytes competing for the same cache (e.g. trace
///   buffers of the measurement system).
/// * `l3` — socket L3 capacity in bytes.
///
/// Returns a value in `[floor, 1]`; even a fully cache-resident kernel
/// pays `floor` of its traffic to DRAM for cold misses and write-backs.
pub fn dram_fraction(working_set: u64, footprint: u64, l3: u64) -> f64 {
    const FLOOR: f64 = 0.05;
    let total = working_set.saturating_add(footprint);
    if total == 0 {
        return FLOOR;
    }
    let overflow = total.saturating_sub(l3);
    let frac = overflow as f64 / total as f64;
    frac.clamp(FLOOR, 1.0)
}

/// Effective per-thread DRAM bandwidth when `active_threads` threads on the
/// same NUMA domain stream memory concurrently.
///
/// Bandwidth scales sub-linearly with thread count up to a saturation
/// point: a single EPYC core cannot saturate its domain, so the first few
/// threads add throughput, after which everyone shares a fixed pie.
/// `overlap` ∈ [0, 1] models how synchronised the threads' memory phases
/// are: fully synchronised threads (1.0) contend maximally, desynchronised
/// threads (toward 0.0) interleave their bursts and see less contention —
/// the Afzal et al. effect responsible for the paper's *negative*
/// instrumentation overheads in MiniFE.
pub fn shared_bandwidth(domain_bw: f64, active_threads: u32, overlap: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&overlap));
    if active_threads <= 1 {
        // One thread achieves roughly 40% of the domain's bandwidth.
        return domain_bw * SINGLE_THREAD_FRACTION;
    }
    // Unshared demand: each thread would like the single-thread bandwidth.
    let demand = active_threads as f64 * SINGLE_THREAD_FRACTION * domain_bw;
    // Effective contention pool grows when threads are desynchronised:
    // with overlap < 1 a thread's bursts partially fit into others' gaps.
    let effective_capacity = domain_bw * (1.0 + DESYNC_GAIN * (1.0 - overlap));
    if demand <= effective_capacity {
        domain_bw * SINGLE_THREAD_FRACTION
    } else {
        effective_capacity / active_threads as f64
    }
}

/// Fraction of the domain bandwidth one lone thread can draw.
pub const SINGLE_THREAD_FRACTION: f64 = 0.4;
/// How much extra effective capacity full desynchronisation buys.
pub const DESYNC_GAIN: f64 = 0.55;

/// Time in seconds to move `bytes` with a DRAM fraction `dram_frac`,
/// per-thread DRAM bandwidth `dram_bw` and per-thread cache bandwidth
/// `cache_bw`.
pub fn memory_time(bytes: u64, dram_frac: f64, dram_bw: f64, cache_bw: f64) -> f64 {
    debug_assert!(dram_bw > 0.0 && cache_bw > 0.0);
    let b = bytes as f64;
    b * dram_frac / dram_bw + b * (1.0 - dram_frac) / cache_bw
}

/// Convenience: per-thread share of the socket's L3 bandwidth.
pub fn cache_bandwidth_share(spec: &NodeSpec, active_threads_on_socket: u32) -> f64 {
    spec.l3_bandwidth / active_threads_on_socket.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_fraction_bounds() {
        let l3 = 256 * 1024 * 1024;
        // Fits entirely: floor.
        assert_eq!(dram_fraction(l3 / 2, 0, l3), 0.05);
        // Vastly exceeds: near 1.
        assert!(dram_fraction(100 * l3, 0, l3) > 0.98);
        // Empty working set: floor.
        assert_eq!(dram_fraction(0, 0, l3), 0.05);
    }

    #[test]
    fn footprint_pushes_out_of_cache() {
        let l3 = 100u64;
        let no_fp = dram_fraction(90, 0, l3);
        let with_fp = dram_fraction(90, 40, l3);
        assert!(with_fp > no_fp, "measurement footprint must increase misses");
    }

    #[test]
    fn dram_fraction_monotone_in_working_set() {
        let l3 = 1000u64;
        let mut prev = 0.0;
        for ws in (0..5000).step_by(100) {
            let f = dram_fraction(ws, 0, l3);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn dram_fraction_at_and_below_capacity() {
        let l3 = 1000u64;
        // Working set + footprint exactly at capacity: no overflow, floor.
        assert_eq!(dram_fraction(600, 400, l3), 0.05);
        // Footprint alone at capacity, empty working set: still floor.
        assert_eq!(dram_fraction(0, l3, l3), 0.05);
        // One byte of overflow leaves the floor intact (overflow/total is
        // below the floor until the overflow is substantial).
        assert_eq!(dram_fraction(600, 401, l3), 0.05);
        // Saturating arithmetic: absurd totals clamp to 1, not panic.
        assert_eq!(dram_fraction(u64::MAX, u64::MAX, l3), 1.0);
    }

    #[test]
    fn shared_bandwidth_zero_threads_matches_one() {
        // Zero active threads falls into the `<= 1` branch: the caller
        // is asking what a lone thread would get, never dividing by 0.
        assert_eq!(shared_bandwidth(48e9, 0, 1.0), shared_bandwidth(48e9, 1, 1.0));
        assert_eq!(shared_bandwidth(48e9, 0, 0.0), 0.4 * 48e9);
    }

    #[test]
    fn cache_bandwidth_share_saturates() {
        let spec = NodeSpec::jureca_dc();
        // Zero active threads clamps to one share, never divides by 0.
        assert_eq!(cache_bandwidth_share(&spec, 0), spec.l3_bandwidth);
        assert_eq!(cache_bandwidth_share(&spec, 1), spec.l3_bandwidth);
        // The per-thread share decays as 1/n and the aggregate stays
        // pinned at the socket's L3 bandwidth — the cache does not scale.
        let full = spec.sockets * spec.numa_per_socket * spec.cores_per_numa;
        let share = cache_bandwidth_share(&spec, full);
        assert_eq!(share, spec.l3_bandwidth / full as f64);
        assert!((share * full as f64 - spec.l3_bandwidth).abs() < 1e-3);
        assert!(share < cache_bandwidth_share(&spec, full / 2));
    }

    #[test]
    fn single_thread_gets_fixed_share() {
        let bw = shared_bandwidth(48e9, 1, 1.0);
        assert!((bw - 0.4 * 48e9).abs() < 1.0);
    }

    #[test]
    fn contention_reduces_share() {
        let one = shared_bandwidth(48e9, 1, 1.0);
        let sixteen = shared_bandwidth(48e9, 16, 1.0);
        assert!(sixteen < one / 4.0, "16 threads must see heavy contention");
        // Aggregate throughput still exceeds single-thread throughput.
        assert!(16.0 * sixteen > one);
    }

    #[test]
    fn desync_increases_share_under_contention() {
        let synced = shared_bandwidth(48e9, 16, 1.0);
        let desynced = shared_bandwidth(48e9, 16, 0.0);
        assert!(desynced > synced);
        // But not when there is no contention to relieve.
        assert_eq!(shared_bandwidth(48e9, 1, 0.0), shared_bandwidth(48e9, 1, 1.0));
    }

    #[test]
    fn memory_time_prefers_cache() {
        let cached = memory_time(1 << 30, 0.05, 20e9, 900e9);
        let dram = memory_time(1 << 30, 1.0, 20e9, 900e9);
        assert!(cached < dram / 5.0);
    }

    #[test]
    fn memory_time_linear_in_bytes() {
        let t1 = memory_time(1000, 0.5, 1e9, 1e10);
        let t2 = memory_time(2000, 0.5, 1e9, 1e10);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
