//! Machine topology: nodes, sockets, NUMA domains, cores.
//!
//! The topology model carries exactly the structure the paper's findings
//! depend on: per-NUMA-domain memory bandwidth (contention between threads
//! sharing a domain), per-socket last-level cache (working sets that fit
//! until the measurement system pollutes the cache), and an interconnect
//! between nodes.

/// Index of a core within the whole machine (all nodes flattened).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

/// Index of a NUMA domain within the whole machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NumaId(pub u32);

/// Index of a socket within the whole machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId(pub u32);

/// Index of a node within the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Shape and speeds of one compute node.
///
/// All nodes of a [`Machine`] are identical, as on a homogeneous cluster
/// partition.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Sockets per node.
    pub sockets: u32,
    /// NUMA domains per socket.
    pub numa_per_socket: u32,
    /// Cores per NUMA domain.
    pub cores_per_numa: u32,
    /// Core clock frequency in Hz.
    pub core_freq_hz: f64,
    /// Sustained instructions per cycle for scalar-ish HPC code.
    pub ipc: f64,
    /// Sustained DRAM bandwidth of one NUMA domain, bytes/s.
    pub numa_bandwidth: f64,
    /// Last-level (L3) cache capacity per socket, bytes.
    pub l3_per_socket: u64,
    /// Aggregate L3 bandwidth per socket, bytes/s (shared by its cores).
    pub l3_bandwidth: f64,
    /// Inter-node network latency, seconds.
    pub net_latency: f64,
    /// Inter-node network bandwidth, bytes/s.
    pub net_bandwidth: f64,
    /// Intra-node (shared-memory) message latency, seconds.
    pub shm_latency: f64,
    /// Intra-node message bandwidth, bytes/s.
    pub shm_bandwidth: f64,
}

impl NodeSpec {
    /// The standard Jureca-DC node used throughout the paper:
    /// 2 × AMD EPYC 7742 (64 cores each), 8 NUMA domains of 16 cores,
    /// DDR4-3200, 256 MB L3 per socket, InfiniBand HDR100.
    pub fn jureca_dc() -> Self {
        NodeSpec {
            sockets: 2,
            numa_per_socket: 4,
            cores_per_numa: 16,
            core_freq_hz: 2.25e9,
            ipc: 2.0,
            // ~8 DDR4-3200 channels per socket ≈ 205 GB/s; one domain ≈ 1/4.
            numa_bandwidth: 48.0e9,
            // EPYC 7742: 16 CCX × 16 MB = 256 MB per socket.
            l3_per_socket: 256 * 1024 * 1024,
            l3_bandwidth: 900.0e9,
            // HDR100: ~1 us MPI latency, ~12 GB/s effective.
            net_latency: 1.2e-6,
            net_bandwidth: 12.0e9,
            shm_latency: 0.3e-6,
            shm_bandwidth: 20.0e9,
        }
    }

    /// A dual-socket Intel Xeon Platinum 8168 ("Skylake") node as found
    /// in many contemporary clusters: 2 × 24 cores, one NUMA domain per
    /// socket, 33 MB L3 per socket, 100 Gb/s fabric. Useful for studying
    /// how the effort models' accuracy depends on the machine balance
    /// (fewer, larger NUMA domains; far less cache than the EPYC).
    pub fn skylake() -> Self {
        NodeSpec {
            sockets: 2,
            numa_per_socket: 1,
            cores_per_numa: 24,
            core_freq_hz: 2.7e9,
            ipc: 2.2,
            numa_bandwidth: 105.0e9,
            l3_per_socket: 33 * 1024 * 1024,
            l3_bandwidth: 500.0e9,
            net_latency: 1.5e-6,
            net_bandwidth: 10.0e9,
            shm_latency: 0.25e-6,
            shm_bandwidth: 18.0e9,
        }
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> u32 {
        self.numa_per_socket * self.cores_per_numa
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> u32 {
        self.sockets * self.cores_per_socket()
    }

    /// NUMA domains per node.
    pub fn numa_per_node(&self) -> u32 {
        self.sockets * self.numa_per_socket
    }

    /// Time to retire `instructions` on one core, in seconds.
    pub fn cpu_time(&self, instructions: u64) -> f64 {
        instructions as f64 / (self.core_freq_hz * self.ipc)
    }
}

/// A cluster allocation: `nodes` identical nodes described by `spec`.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Per-node shape and speeds.
    pub spec: NodeSpec,
    /// Number of allocated nodes.
    pub nodes: u32,
}

impl Machine {
    /// Allocate `nodes` nodes of the given spec.
    pub fn new(spec: NodeSpec, nodes: u32) -> Self {
        assert!(nodes > 0, "a machine needs at least one node");
        Machine { spec, nodes }
    }

    /// Jureca-DC allocation with `nodes` standard nodes.
    pub fn jureca_dc(nodes: u32) -> Self {
        Machine::new(NodeSpec::jureca_dc(), nodes)
    }

    /// Total cores in the allocation.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.spec.cores_per_node()
    }

    /// Total NUMA domains in the allocation.
    pub fn total_numa(&self) -> u32 {
        self.nodes * self.spec.numa_per_node()
    }

    /// The node a core belongs to.
    pub fn node_of(&self, core: CoreId) -> NodeId {
        NodeId(core.0 / self.spec.cores_per_node())
    }

    /// The socket a core belongs to (machine-global index).
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        SocketId(core.0 / self.spec.cores_per_socket())
    }

    /// The NUMA domain a core belongs to (machine-global index).
    pub fn numa_of(&self, core: CoreId) -> NumaId {
        NumaId(core.0 / self.spec.cores_per_numa)
    }

    /// The socket a NUMA domain belongs to.
    pub fn socket_of_numa(&self, numa: NumaId) -> SocketId {
        SocketId(numa.0 / self.spec.numa_per_socket)
    }

    /// Whether two cores are on the same node (shared-memory reachable).
    pub fn same_node(&self, a: CoreId, b: CoreId) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jureca_shape() {
        let m = Machine::jureca_dc(2);
        assert_eq!(m.spec.cores_per_node(), 128);
        assert_eq!(m.spec.numa_per_node(), 8);
        assert_eq!(m.total_cores(), 256);
        assert_eq!(m.total_numa(), 16);
    }

    #[test]
    fn core_mapping() {
        let m = Machine::jureca_dc(2);
        // Core 0 is node 0, socket 0, numa 0.
        assert_eq!(m.node_of(CoreId(0)), NodeId(0));
        assert_eq!(m.numa_of(CoreId(0)), NumaId(0));
        // Core 16 starts the second NUMA domain.
        assert_eq!(m.numa_of(CoreId(16)), NumaId(1));
        assert_eq!(m.socket_of(CoreId(16)), SocketId(0));
        // Core 64 starts the second socket.
        assert_eq!(m.socket_of(CoreId(64)), SocketId(1));
        assert_eq!(m.numa_of(CoreId(64)), NumaId(4));
        // Core 128 starts the second node.
        assert_eq!(m.node_of(CoreId(128)), NodeId(1));
        assert_eq!(m.socket_of(CoreId(128)), SocketId(2));
        assert_eq!(m.numa_of(CoreId(128)), NumaId(8));
    }

    #[test]
    fn numa_to_socket() {
        let m = Machine::jureca_dc(1);
        assert_eq!(m.socket_of_numa(NumaId(0)), SocketId(0));
        assert_eq!(m.socket_of_numa(NumaId(3)), SocketId(0));
        assert_eq!(m.socket_of_numa(NumaId(4)), SocketId(1));
    }

    #[test]
    fn same_node_predicate() {
        let m = Machine::jureca_dc(2);
        assert!(m.same_node(CoreId(0), CoreId(127)));
        assert!(!m.same_node(CoreId(0), CoreId(128)));
    }

    #[test]
    fn skylake_shape() {
        let s = NodeSpec::skylake();
        assert_eq!(s.cores_per_node(), 48);
        assert_eq!(s.numa_per_node(), 2);
        let m = Machine::new(s, 4);
        assert_eq!(m.total_cores(), 192);
    }

    #[test]
    fn cpu_time_scales_with_instructions() {
        let s = NodeSpec::jureca_dc();
        let t1 = s.cpu_time(1_000_000);
        let t2 = s.cpu_time(2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        Machine::new(NodeSpec::jureca_dc(), 0);
    }
}
