//! Placement of MPI ranks and OpenMP threads onto cores.
//!
//! The job layout (ranks × threads) plus a pinning policy determine which
//! core every location runs on, and hence which NUMA domain's bandwidth and
//! which socket's cache it competes for. The paper's LULESH-2 experiment is
//! entirely about this mapping: 27 ranks spread over 8 NUMA domains leave
//! three domains fully occupied and five partially occupied.

use crate::topology::{CoreId, Machine, NumaId, SocketId};

/// Identifies one execution location: an OpenMP thread of an MPI rank.
///
/// Matches Score-P's location model, where every thread of every rank is a
/// separate location with its own event stream and its own logical clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// MPI rank.
    pub rank: u32,
    /// OpenMP thread within the rank (0 = master).
    pub thread: u32,
}

impl Location {
    /// Location of a rank's master thread.
    pub fn master(rank: u32) -> Self {
        Location { rank, thread: 0 }
    }
}

/// How ranks are distributed over a node's cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinPolicy {
    /// Ranks fill cores sequentially: rank r occupies cores
    /// `[r·tpr, (r+1)·tpr)` of its node. This is the usual
    /// `--cpu-bind=cores` block placement.
    Block,
    /// Ranks are dealt round-robin onto NUMA domains, each rank's threads
    /// staying within one domain where possible. This reproduces the
    /// LULESH-2 situation (27 ranks on 8 domains → occupancies 4,4,4,3,…).
    SpreadNuma,
}

/// The shape of a job: how many ranks, threads per rank, and how they pin.
#[derive(Debug, Clone, PartialEq)]
pub struct JobLayout {
    /// Number of MPI ranks.
    pub ranks: u32,
    /// OpenMP threads per rank (uniform, as in the paper's experiments).
    pub threads_per_rank: u32,
    /// Pinning policy.
    pub policy: PinPolicy,
}

impl JobLayout {
    /// Block-pinned layout.
    pub fn block(ranks: u32, threads_per_rank: u32) -> Self {
        JobLayout { ranks, threads_per_rank, policy: PinPolicy::Block }
    }

    /// NUMA-spread layout.
    pub fn spread(ranks: u32, threads_per_rank: u32) -> Self {
        JobLayout { ranks, threads_per_rank, policy: PinPolicy::SpreadNuma }
    }

    /// Total locations (ranks × threads).
    pub fn locations(&self) -> u32 {
        self.ranks * self.threads_per_rank
    }

    /// Dense index of a location, row-major by rank.
    pub fn location_index(&self, loc: Location) -> usize {
        debug_assert!(loc.rank < self.ranks && loc.thread < self.threads_per_rank);
        (loc.rank * self.threads_per_rank + loc.thread) as usize
    }

    /// Inverse of [`JobLayout::location_index`].
    pub fn location_at(&self, index: usize) -> Location {
        let index = index as u32;
        Location { rank: index / self.threads_per_rank, thread: index % self.threads_per_rank }
    }

    /// Iterate all locations in dense order.
    pub fn iter_locations(&self) -> impl Iterator<Item = Location> + '_ {
        (0..self.ranks).flat_map(move |rank| {
            (0..self.threads_per_rank).map(move |thread| Location { rank, thread })
        })
    }
}

/// The computed mapping of every location to a core, with occupancy
/// summaries used by the contention model.
#[derive(Debug, Clone)]
pub struct Placement {
    machine: Machine,
    layout: JobLayout,
    /// Core of each location, indexed by `layout.location_index`.
    cores: Vec<CoreId>,
    /// Number of job threads placed on each NUMA domain.
    numa_occupancy: Vec<u32>,
    /// Number of job threads placed on each socket.
    socket_occupancy: Vec<u32>,
}

impl Placement {
    /// Compute the placement of `layout` on `machine`.
    ///
    /// Panics if the job needs more cores than a node provides per node
    /// (the simulator does not model oversubscription).
    pub fn new(machine: Machine, layout: JobLayout) -> Self {
        let cpn = machine.spec.cores_per_node();
        let tpr = layout.threads_per_rank;
        assert!(tpr >= 1, "threads_per_rank must be >= 1");
        let ranks_per_node = (cpn / tpr).max(1);
        let cores = match layout.policy {
            PinPolicy::Block => Self::place_block(&machine, &layout, ranks_per_node),
            PinPolicy::SpreadNuma => Self::place_spread(&machine, &layout, ranks_per_node),
        };
        let mut numa_occupancy = vec![0u32; machine.total_numa() as usize];
        let mut socket_occupancy = vec![0u32; (machine.nodes * machine.spec.sockets) as usize];
        for &core in &cores {
            numa_occupancy[machine.numa_of(core).0 as usize] += 1;
            socket_occupancy[machine.socket_of(core).0 as usize] += 1;
        }
        Placement { machine, layout, cores, numa_occupancy, socket_occupancy }
    }

    fn place_block(machine: &Machine, layout: &JobLayout, ranks_per_node: u32) -> Vec<CoreId> {
        let cpn = machine.spec.cores_per_node();
        let mut cores = Vec::with_capacity(layout.locations() as usize);
        for rank in 0..layout.ranks {
            let node = rank / ranks_per_node;
            assert!(node < machine.nodes, "job does not fit the allocation");
            let base = node * cpn + (rank % ranks_per_node) * layout.threads_per_rank;
            for thread in 0..layout.threads_per_rank {
                cores.push(CoreId(base + thread));
            }
        }
        cores
    }

    fn place_spread(machine: &Machine, layout: &JobLayout, ranks_per_node: u32) -> Vec<CoreId> {
        let spec = &machine.spec;
        let domains_per_node = spec.numa_per_node();
        let ranks_per_domain_cap = (spec.cores_per_numa / layout.threads_per_rank).max(1);
        // Deal ranks round-robin over this node's domains; each domain holds
        // a slot list of rank-local offsets.
        let mut cores = vec![CoreId(0); layout.locations() as usize];
        let mut node_start = 0u32;
        while node_start < layout.ranks {
            let node = node_start / ranks_per_node;
            assert!(node < machine.nodes, "job does not fit the allocation");
            let node_ranks = ranks_per_node.min(layout.ranks - node_start);
            let mut fill = vec![0u32; domains_per_node as usize];
            for local in 0..node_ranks {
                let rank = node_start + local;
                // Round-robin over domains, skipping full ones.
                let mut d = local % domains_per_node;
                let mut tried = 0;
                while fill[d as usize] >= ranks_per_domain_cap {
                    d = (d + 1) % domains_per_node;
                    tried += 1;
                    assert!(tried <= domains_per_node, "spread placement overflow");
                }
                let slot = fill[d as usize];
                fill[d as usize] += 1;
                let base = node * spec.cores_per_node()
                    + d * spec.cores_per_numa
                    + slot * layout.threads_per_rank;
                for thread in 0..layout.threads_per_rank {
                    cores[(rank * layout.threads_per_rank + thread) as usize] =
                        CoreId(base + thread);
                }
            }
            node_start += node_ranks;
        }
        cores
    }

    /// The machine this placement lives on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The job layout.
    pub fn layout(&self) -> &JobLayout {
        &self.layout
    }

    /// Core of a location.
    pub fn core_of(&self, loc: Location) -> CoreId {
        self.cores[self.layout.location_index(loc)]
    }

    /// NUMA domain of a location.
    pub fn numa_of(&self, loc: Location) -> NumaId {
        self.machine.numa_of(self.core_of(loc))
    }

    /// Socket of a location.
    pub fn socket_of(&self, loc: Location) -> SocketId {
        self.machine.socket_of(self.core_of(loc))
    }

    /// Number of job threads pinned to the given NUMA domain.
    pub fn numa_occupancy(&self, numa: NumaId) -> u32 {
        self.numa_occupancy[numa.0 as usize]
    }

    /// Number of job threads pinned to the given socket.
    pub fn socket_occupancy(&self, socket: SocketId) -> u32 {
        self.socket_occupancy[socket.0 as usize]
    }

    /// Whether two locations can communicate through shared memory.
    pub fn same_node(&self, a: Location, b: Location) -> bool {
        self.machine.same_node(self.core_of(a), self.core_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_minife2() {
        // MiniFE-2: 8 ranks × 16 threads on one node → one rank per domain.
        let p = Placement::new(Machine::jureca_dc(1), JobLayout::block(8, 16));
        for rank in 0..8 {
            assert_eq!(p.numa_of(Location::master(rank)), NumaId(rank));
        }
        for d in 0..8 {
            assert_eq!(p.numa_occupancy(NumaId(d)), 16);
        }
    }

    #[test]
    fn block_placement_two_nodes_lulesh1() {
        // LULESH-1: 64 ranks × 4 threads on two nodes.
        let p = Placement::new(Machine::jureca_dc(2), JobLayout::block(64, 4));
        assert_eq!(p.machine().nodes, 2);
        // 32 ranks per node; rank 32 starts node 1.
        assert!(p.core_of(Location::master(31)).0 < 128);
        assert!(p.core_of(Location::master(32)).0 >= 128);
        // Every domain holds 4 ranks × 4 threads = 16 threads.
        for d in 0..16 {
            assert_eq!(p.numa_occupancy(NumaId(d)), 16);
        }
    }

    #[test]
    fn spread_placement_lulesh2() {
        // LULESH-2: 27 ranks × 4 threads spread on one node.
        let p = Placement::new(Machine::jureca_dc(1), JobLayout::spread(27, 4));
        let mut full = 0;
        let mut partial = 0;
        for d in 0..8 {
            match p.numa_occupancy(NumaId(d)) {
                16 => full += 1,
                12 => partial += 1,
                occ => panic!("unexpected occupancy {occ}"),
            }
        }
        assert_eq!(full, 3, "three domains fully occupied");
        assert_eq!(partial, 5, "five domains partially occupied");
    }

    #[test]
    fn tealeaf2_socket_occupancy() {
        // TeaLeaf-2: 2 ranks × 64 threads → one rank per socket.
        let p = Placement::new(Machine::jureca_dc(1), JobLayout::block(2, 64));
        assert_eq!(p.socket_of(Location::master(0)), SocketId(0));
        assert_eq!(p.socket_of(Location::master(1)), SocketId(1));
        assert_eq!(p.socket_occupancy(SocketId(0)), 64);
        assert_eq!(p.socket_occupancy(SocketId(1)), 64);
    }

    #[test]
    fn location_index_roundtrip() {
        let layout = JobLayout::block(5, 3);
        for (i, loc) in layout.iter_locations().enumerate() {
            assert_eq!(layout.location_index(loc), i);
            assert_eq!(layout.location_at(i), loc);
        }
        assert_eq!(layout.locations(), 15);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_job_rejected() {
        Placement::new(Machine::jureca_dc(1), JobLayout::block(256, 4));
    }

    #[test]
    fn same_node_communication() {
        let p = Placement::new(Machine::jureca_dc(2), JobLayout::block(64, 4));
        assert!(p.same_node(Location::master(0), Location::master(31)));
        assert!(!p.same_node(Location::master(0), Location::master(32)));
    }
}
