//! Virtual time for the discrete-event simulation.
//!
//! All simulated clocks in this workspace are expressed in *virtual
//! nanoseconds*. The unit is arbitrary but calibrated loosely to the wall
//! clock of the Jureca-DC nodes used in the paper, so that overheads and
//! run times land on a familiar scale.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `VirtualTime` is a monotone, totally ordered timestamp. It never goes
/// backwards on a location; the engine enforces this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualDuration(pub u64);

impl VirtualTime {
    /// Simulation epoch.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Raw nanosecond value.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reports).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Duration since an earlier instant. Saturates at zero rather than
    /// panicking so that analysis code can take differences defensively.
    #[inline]
    pub fn saturating_since(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.max(other.0))
    }
}

impl VirtualDuration {
    /// Zero-length span.
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        VirtualDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        VirtualDuration(ms * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond and clamping negatives to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        VirtualDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanosecond value.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Scale by a non-negative factor, rounding to the nearest nanosecond.
    ///
    /// Used by the contention and noise models, which express perturbations
    /// as multiplicative factors on a base duration.
    #[inline]
    pub fn scale(self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0, "duration scale factor must be >= 0");
        VirtualDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    #[inline]
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VirtualDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`VirtualTime::saturating_since`] where inversion is possible.
    #[inline]
    fn sub(self, rhs: VirtualTime) -> VirtualDuration {
        debug_assert!(self.0 >= rhs.0, "virtual time went backwards");
        VirtualDuration(self.0 - rhs.0)
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualDuration {
    #[inline]
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn sub(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for VirtualDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: VirtualDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn mul(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0 * rhs)
    }
}

impl Div<u64> for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn div(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0 / rhs)
    }
}

impl Sum for VirtualDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(VirtualDuration::ZERO, Add::add)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = VirtualTime(100) + VirtualDuration(50);
        assert_eq!(t, VirtualTime(150));
    }

    #[test]
    fn subtract_times_yields_duration() {
        assert_eq!(VirtualTime(150) - VirtualTime(100), VirtualDuration(50));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(VirtualTime(10).saturating_since(VirtualTime(100)), VirtualDuration::ZERO);
        assert_eq!(VirtualTime(100).saturating_since(VirtualTime(10)), VirtualDuration(90));
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(VirtualDuration(100).scale(1.5), VirtualDuration(150));
        assert_eq!(VirtualDuration(3).scale(0.5), VirtualDuration(2)); // 1.5 rounds to 2
        assert_eq!(VirtualDuration(100).scale(0.0), VirtualDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(VirtualDuration::from_micros(1), VirtualDuration(1_000));
        assert_eq!(VirtualDuration::from_millis(1), VirtualDuration(1_000_000));
        assert_eq!(VirtualDuration::from_secs_f64(1.5), VirtualDuration(1_500_000_000));
        assert_eq!(VirtualDuration::from_secs_f64(-1.0), VirtualDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(VirtualDuration(12).to_string(), "12ns");
        assert_eq!(VirtualDuration(12_000).to_string(), "12.000us");
        assert_eq!(VirtualDuration(12_000_000).to_string(), "12.000ms");
        assert_eq!(VirtualDuration(1_200_000_000).to_string(), "1.200s");
    }

    #[test]
    fn sum_of_durations() {
        let total: VirtualDuration =
            [VirtualDuration(1), VirtualDuration(2), VirtualDuration(3)].into_iter().sum();
        assert_eq!(total, VirtualDuration(6));
    }
}
