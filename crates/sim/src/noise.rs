//! Noise models.
//!
//! Following the classification of Ates et al. (HPAS), the simulator
//! injects noise at three points:
//!
//! * **CPU/OS noise** — operating-system detours that steal a core for a
//!   short while (Petrini et al.'s classic missing-performance effect).
//!   Modelled as Poisson-arriving interruptions of exponential-ish length
//!   during any computation interval.
//! * **Memory noise** — run-to-run variability of effective bandwidth and
//!   cache behaviour, modelled as multiplicative jitter on the memory part
//!   of a kernel's execution time.
//! * **Network noise** — variability of message latency and achievable
//!   bandwidth in the shared interconnect (cf. Beni et al.), modelled as
//!   multiplicative jitter per message or collective.
//!
//! All draws come from [`RngFactory`] streams keyed by core or message
//! identity, so the noise a location experiences does not depend on the
//! order the engine processes events in. Setting [`NoiseConfig::silent`]
//! reproduces an idealised noise-free machine — useful in tests to verify
//! that logical and physical measurements coincide structurally.

use crate::chacha::ChaCha8;
use crate::rng::{jitter_factor, RngFactory, StreamKind};
use nrlt_engineprof::{EventKind, RunProf};
use std::cell::RefCell;

/// Largest core id the per-core bias cache will grow to cover; draws for
/// cores beyond it stay uncached (they are equally deterministic, just
/// re-derived).
const BIAS_CACHE_MAX_CORES: u64 = 1 << 16;

/// Engine-profiler allocation site counting interleaved ChaCha warm-ups
/// (one count = one four-lane first-block batch).
pub const NOISE_BATCH_SITE: &str = "noise.warm_batch";

/// Tunable noise intensities. All default values are calibrated so that
/// uninstrumented run-to-run variation stays in the low single-digit
/// percent range, matching what the paper reports for its benchmarks
/// (e.g. "below 1 % run-to-run variation" for LULESH).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Log-scale sigma of multiplicative jitter on the CPU part of kernels.
    pub cpu_sigma: f64,
    /// Log-scale sigma of multiplicative jitter on the memory part.
    pub mem_sigma: f64,
    /// Mean rate of OS detours per core, in events per second.
    pub detour_rate: f64,
    /// Mean duration of one OS detour, in seconds.
    pub detour_mean: f64,
    /// Log-scale sigma of multiplicative jitter on message transfer times.
    pub net_sigma: f64,
    /// Log-scale sigma of a *persistent* per-core memory-speed bias,
    /// drawn once per repetition: page-placement and NUMA-distance luck
    /// makes some threads systematically slower at memory than others —
    /// the "timing variations of memory accesses" behind the paper's
    /// barrier waits in balanced loops (LULESH, Section V-C3).
    pub mem_bias_sigma: f64,
}

impl NoiseConfig {
    /// A quiet but realistic production machine.
    pub fn realistic() -> Self {
        NoiseConfig {
            cpu_sigma: 0.004,
            mem_sigma: 0.08,
            detour_rate: 25.0,
            detour_mean: 12.0e-6,
            net_sigma: 0.10,
            mem_bias_sigma: 0.05,
        }
    }

    /// A perfectly noise-free machine.
    pub fn silent() -> Self {
        NoiseConfig {
            cpu_sigma: 0.0,
            mem_sigma: 0.0,
            detour_rate: 0.0,
            detour_mean: 0.0,
            net_sigma: 0.0,
            mem_bias_sigma: 0.0,
        }
    }

    /// Scale every intensity by `factor` (for noise-sweep studies).
    pub fn scaled(&self, factor: f64) -> Self {
        NoiseConfig {
            cpu_sigma: self.cpu_sigma * factor,
            mem_sigma: self.mem_sigma * factor,
            detour_rate: self.detour_rate * factor,
            detour_mean: self.detour_mean,
            net_sigma: self.net_sigma * factor,
            mem_bias_sigma: self.mem_bias_sigma * factor,
        }
    }

    /// True if every channel is switched off.
    pub fn is_silent(&self) -> bool {
        self.cpu_sigma == 0.0
            && self.mem_sigma == 0.0
            && (self.detour_rate == 0.0 || self.detour_mean == 0.0)
            && self.net_sigma == 0.0
            && self.mem_bias_sigma == 0.0
    }
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig::realistic()
    }
}

/// Stateless sampler bound to one experiment repetition.
///
/// ("Stateless" refers to the draws: every factor is a pure function of
/// the stream key. The per-core memory-bias cache below only memoises
/// those pure values — it never changes what a draw returns.)
#[derive(Debug, Clone)]
pub struct NoiseModel {
    config: NoiseConfig,
    rng: RngFactory,
    /// Memoised [`mem_bias`](Self::mem_bias) per core (`NaN` = not yet
    /// drawn). The bias stream key is `(MemBias, core, 0)` — constant for
    /// the whole repetition — so the first draw fixes the value.
    bias_cache: RefCell<Vec<f64>>,
}

impl NoiseModel {
    /// Bind `config` to the RNG streams of one repetition.
    pub fn new(config: NoiseConfig, rng: RngFactory) -> Self {
        NoiseModel { config, rng, bias_cache: RefCell::new(Vec::new()) }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Multiplicative factor on the CPU part of the `instance`-th kernel
    /// on `core`.
    pub fn cpu_factor(&self, core: u64, instance: u64) -> f64 {
        if self.config.cpu_sigma == 0.0 {
            return 1.0;
        }
        let mut rng = self.rng.stream(StreamKind::KernelJitter, core, instance);
        jitter_factor(&mut rng, self.config.cpu_sigma)
    }

    /// Multiplicative factor on the memory part of the `instance`-th
    /// kernel on `core`.
    pub fn mem_factor(&self, core: u64, instance: u64) -> f64 {
        if self.config.mem_sigma == 0.0 {
            return 1.0;
        }
        let mut rng =
            self.rng.stream(StreamKind::KernelJitter, core, instance.wrapping_add(1 << 32));
        jitter_factor(&mut rng, self.config.mem_sigma)
    }

    /// Extra time stolen by OS detours from a computation of length
    /// `span_secs` on `core`, in seconds.
    ///
    /// The number of detours is drawn from a Poisson distribution with
    /// mean `detour_rate × span`, each detour contributing an exponential
    /// duration with the configured mean.
    pub fn detour_time(&self, core: u64, instance: u64, span_secs: f64) -> f64 {
        if self.config.detour_rate == 0.0 || self.config.detour_mean == 0.0 || span_secs <= 0.0 {
            return 0.0;
        }
        let mut rng = self.rng.stream(StreamKind::OsDetour, core, instance);
        let mean_events = self.config.detour_rate * span_secs;
        let n = poisson(&mut rng, mean_events);
        let mut total = 0.0;
        for _ in 0..n {
            // Exponential via inverse transform.
            let u: f64 = rng.range_f64(f64::EPSILON, 1.0);
            total += -self.config.detour_mean * u.ln();
        }
        total
    }

    /// Persistent memory-speed factor of `core` for this repetition.
    ///
    /// The stream key `(MemBias, core, 0)` carries no instance, so the
    /// value is constant per core — it is drawn once and memoised.
    pub fn mem_bias(&self, core: u64) -> f64 {
        if self.config.mem_bias_sigma == 0.0 {
            return 1.0;
        }
        if let Some(&f) = self.bias_cache.borrow().get(core as usize) {
            if !f.is_nan() {
                return f;
            }
        }
        let mut rng = self.rng.stream(StreamKind::MemBias, core, 0);
        let f = jitter_factor(&mut rng, self.config.mem_bias_sigma);
        if core < BIAS_CACHE_MAX_CORES {
            let mut cache = self.bias_cache.borrow_mut();
            if cache.len() <= core as usize {
                cache.resize(core as usize + 1, f64::NAN);
            }
            cache[core as usize] = f;
        }
        f
    }

    /// True if [`mem_bias`](Self::mem_bias) for `core` is already
    /// memoised (no ChaCha work left to do).
    fn bias_cached(&self, core: u64) -> bool {
        self.bias_cache.borrow().get(core as usize).is_some_and(|f| !f.is_nan())
    }

    /// Multiplicative factor on the transfer time of message or collective
    /// `msg_id`.
    pub fn net_factor(&self, msg_id: u64) -> f64 {
        if self.config.net_sigma == 0.0 {
            return 1.0;
        }
        let mut rng = self.rng.stream(StreamKind::Network, msg_id, 0);
        jitter_factor(&mut rng, self.config.net_sigma)
    }

    /// [`cpu_factor`](Self::cpu_factor), counting the draw against
    /// `prof` when profiling is on and the CPU channel actually draws.
    pub fn cpu_factor_prof(&self, core: u64, instance: u64, prof: Option<&RunProf>) -> f64 {
        match prof {
            Some(p) if self.config.cpu_sigma != 0.0 => {
                p.enter(EventKind::NoiseDraw);
                let f = self.cpu_factor(core, instance);
                p.leave(EventKind::NoiseDraw, 0);
                f
            }
            _ => self.cpu_factor(core, instance),
        }
    }

    /// [`mem_factor`](Self::mem_factor), counting the draw against
    /// `prof` when profiling is on and the memory channel actually
    /// draws.
    pub fn mem_factor_prof(&self, core: u64, instance: u64, prof: Option<&RunProf>) -> f64 {
        match prof {
            Some(p) if self.config.mem_sigma != 0.0 => {
                p.enter(EventKind::NoiseDraw);
                let f = self.mem_factor(core, instance);
                p.leave(EventKind::NoiseDraw, 0);
                f
            }
            _ => self.mem_factor(core, instance),
        }
    }

    /// [`detour_time`](Self::detour_time), counting the draw against
    /// `prof` when profiling is on and the detour channel actually
    /// draws. The stolen time is attributed as virtual nanoseconds of
    /// the noise draw.
    pub fn detour_time_prof(
        &self,
        core: u64,
        instance: u64,
        span_secs: f64,
        prof: Option<&RunProf>,
    ) -> f64 {
        match prof {
            Some(p)
                if self.config.detour_rate != 0.0
                    && self.config.detour_mean != 0.0
                    && span_secs > 0.0 =>
            {
                p.enter(EventKind::NoiseDraw);
                let t = self.detour_time(core, instance, span_secs);
                p.leave(EventKind::NoiseDraw, (t * 1e9) as u64);
                t
            }
            _ => self.detour_time(core, instance, span_secs),
        }
    }

    /// [`mem_bias`](Self::mem_bias), counting the draw against `prof`
    /// when profiling is on and the bias channel actually draws — i.e.
    /// on the first, cache-filling call per core; memoised hits do no
    /// ChaCha work and are not counted.
    pub fn mem_bias_prof(&self, core: u64, prof: Option<&RunProf>) -> f64 {
        match prof {
            Some(p) if self.config.mem_bias_sigma != 0.0 && !self.bias_cached(core) => {
                p.enter(EventKind::NoiseDraw);
                let f = self.mem_bias(core);
                p.leave(EventKind::NoiseDraw, 0);
                f
            }
            _ => self.mem_bias(core),
        }
    }

    /// [`net_factor`](Self::net_factor), counting the draw against
    /// `prof` when profiling is on and the network channel actually
    /// draws.
    pub fn net_factor_prof(&self, msg_id: u64, prof: Option<&RunProf>) -> f64 {
        match prof {
            Some(p) if self.config.net_sigma != 0.0 => {
                p.enter(EventKind::NoiseDraw);
                let f = self.net_factor(msg_id);
                p.leave(EventKind::NoiseDraw, 0);
                f
            }
            _ => self.net_factor(msg_id),
        }
    }

    /// Pre-draw every noise channel of one kernel in a single interleaved
    /// ChaCha batch.
    ///
    /// The batch derives the cpu-jitter, mem-jitter, and OS-detour stream
    /// keys exactly as the per-channel calls would and computes their
    /// first keystream blocks together ([`RngFactory::stream4`]), so each
    /// channel sees an identical stream position and the returned factors
    /// are bit-for-bit the values of [`cpu_factor`](Self::cpu_factor) /
    /// [`mem_factor`](Self::mem_factor); the detour stream is handed back
    /// warmed for [`detour_time_warmed`](Self::detour_time_warmed). When
    /// fewer than two channels are live the batch would waste block
    /// computations, so the call falls through to the scalar paths.
    ///
    /// Draw accounting against `prof` is unchanged: one `NoiseDraw` per
    /// channel that actually derives a value, plus one
    /// [`NOISE_BATCH_SITE`] allocation count per interleaved warm-up.
    pub fn kernel_noise(
        &self,
        core: u64,
        instance: u64,
        want_mem: bool,
        prof: Option<&RunProf>,
    ) -> KernelNoise {
        let cpu_on = self.config.cpu_sigma != 0.0;
        let mem_on = want_mem && self.config.mem_sigma != 0.0;
        let det_on = self.config.detour_rate != 0.0 && self.config.detour_mean != 0.0;
        if (cpu_on as u32) + (mem_on as u32) + (det_on as u32) < 2 {
            return KernelNoise {
                cpu_factor: self.cpu_factor_prof(core, instance, prof),
                mem_bias: if want_mem { self.mem_bias_prof(core, prof) } else { 1.0 },
                mem_factor: if want_mem { self.mem_factor_prof(core, instance, prof) } else { 1.0 },
                core,
                instance,
                detour: None,
            };
        }
        // Lane 3 pads the SIMD batch (its block is discarded); streams
        // are keyed independently, so computing an unused block changes
        // nothing downstream.
        let [mut cpu_rng, mut mem_rng, det_rng, _] = self.rng.stream4([
            (StreamKind::KernelJitter, core, instance),
            (StreamKind::KernelJitter, core, instance.wrapping_add(1 << 32)),
            (StreamKind::OsDetour, core, instance),
            (StreamKind::OsDetour, core, instance),
        ]);
        if let Some(p) = prof {
            p.alloc(NOISE_BATCH_SITE, 1);
        }
        let cpu_factor = if cpu_on {
            count_draw(prof, || jitter_factor(&mut cpu_rng, self.config.cpu_sigma))
        } else {
            1.0
        };
        let mem_bias = if want_mem { self.mem_bias_prof(core, prof) } else { 1.0 };
        let mem_factor = if mem_on {
            count_draw(prof, || jitter_factor(&mut mem_rng, self.config.mem_sigma))
        } else {
            1.0
        };
        KernelNoise {
            cpu_factor,
            mem_bias,
            mem_factor,
            core,
            instance,
            detour: det_on.then_some(det_rng),
        }
    }

    /// [`detour_time`](Self::detour_time) drawn from the stream warmed by
    /// [`kernel_noise`](Self::kernel_noise); identical values, the block
    /// is just already computed. Falls back to the scalar path when the
    /// batch skipped the detour lane. Counts one `NoiseDraw` against
    /// `prof` when the channel actually draws, attributing the stolen
    /// time as virtual nanoseconds, exactly like
    /// [`detour_time_prof`](Self::detour_time_prof).
    pub fn detour_time_warmed(
        &self,
        kn: &mut KernelNoise,
        span_secs: f64,
        prof: Option<&RunProf>,
    ) -> f64 {
        let Some(mut rng) = kn.detour.take() else {
            return self.detour_time_prof(kn.core, kn.instance, span_secs, prof);
        };
        if span_secs <= 0.0 {
            return 0.0;
        }
        let draw = |rng: &mut ChaCha8| {
            let mean_events = self.config.detour_rate * span_secs;
            let n = poisson(rng, mean_events);
            let mut total = 0.0;
            for _ in 0..n {
                let u: f64 = rng.range_f64(f64::EPSILON, 1.0);
                total += -self.config.detour_mean * u.ln();
            }
            total
        };
        match prof {
            Some(p) => {
                p.enter(EventKind::NoiseDraw);
                let t = draw(&mut rng);
                p.leave(EventKind::NoiseDraw, (t * 1e9) as u64);
                t
            }
            None => draw(&mut rng),
        }
    }
}

/// One kernel's pre-drawn noise, produced by
/// [`NoiseModel::kernel_noise`]: the multiplicative factors plus a warmed
/// OS-detour stream consumed later by
/// [`NoiseModel::detour_time_warmed`] (the detour's span is only known
/// once the cpu/mem roofline is priced).
#[derive(Debug)]
pub struct KernelNoise {
    /// Multiplicative factor on the kernel's CPU term.
    pub cpu_factor: f64,
    /// Persistent per-core memory-speed bias.
    pub mem_bias: f64,
    /// Multiplicative factor on the kernel's memory term.
    pub mem_factor: f64,
    core: u64,
    instance: u64,
    detour: Option<ChaCha8>,
}

/// Run `f` inside a `NoiseDraw` enter/leave pair when profiling is on.
fn count_draw(prof: Option<&RunProf>, f: impl FnOnce() -> f64) -> f64 {
    match prof {
        Some(p) => {
            p.enter(EventKind::NoiseDraw);
            let v = f();
            p.leave(EventKind::NoiseDraw, 0);
            v
        }
        None => f(),
    }
}

/// Poisson sampler (Knuth's method for small means, normal approximation
/// for large means — detour counts per kernel are almost always small).
fn poisson(rng: &mut crate::chacha::ChaCha8, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 64.0 {
        // Normal approximation with continuity correction.
        let u1: f64 = rng.range_f64(f64::EPSILON, 1.0);
        let u2: f64 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        return (mean + z * mean.sqrt()).round().max(0.0) as u64;
    }
    let threshold = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.next_f64();
        if p <= threshold {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(cfg: NoiseConfig) -> NoiseModel {
        NoiseModel::new(cfg, RngFactory::new(7))
    }

    #[test]
    fn silent_is_identity() {
        let m = model(NoiseConfig::silent());
        assert_eq!(m.cpu_factor(0, 0), 1.0);
        assert_eq!(m.mem_factor(0, 0), 1.0);
        assert_eq!(m.detour_time(0, 0, 1.0), 0.0);
        assert_eq!(m.net_factor(0), 1.0);
        assert!(NoiseConfig::silent().is_silent());
        assert!(!NoiseConfig::realistic().is_silent());
    }

    #[test]
    fn factors_are_deterministic_per_key() {
        let m = model(NoiseConfig::realistic());
        assert_eq!(m.cpu_factor(3, 9), m.cpu_factor(3, 9));
        assert_eq!(m.net_factor(11), m.net_factor(11));
        assert_ne!(m.cpu_factor(3, 9), m.cpu_factor(3, 10));
    }

    #[test]
    fn detour_time_grows_with_span() {
        let m =
            model(NoiseConfig { detour_rate: 1000.0, detour_mean: 1e-5, ..NoiseConfig::silent() });
        let short: f64 = (0..200).map(|i| m.detour_time(0, i, 0.001)).sum();
        let long: f64 = (0..200).map(|i| m.detour_time(0, i + 1000, 0.01)).sum();
        assert!(long > short * 3.0, "long spans must collect more detours ({long} vs {short})");
    }

    #[test]
    fn detour_time_nonnegative_and_zero_for_zero_span() {
        let m = model(NoiseConfig::realistic());
        assert_eq!(m.detour_time(0, 0, 0.0), 0.0);
        for i in 0..100 {
            assert!(m.detour_time(1, i, 0.005) >= 0.0);
        }
    }

    #[test]
    fn scaled_zero_is_silent() {
        assert!(NoiseConfig::realistic().scaled(0.0).is_silent());
    }

    #[test]
    fn prof_variants_count_only_real_draws() {
        let m = model(NoiseConfig::realistic());
        let run = RunProf::new("n");
        assert_eq!(m.cpu_factor_prof(3, 9, Some(&run)), m.cpu_factor(3, 9));
        assert_eq!(m.mem_factor_prof(3, 9, Some(&run)), m.mem_factor(3, 9));
        assert_eq!(m.mem_bias_prof(1, Some(&run)), m.mem_bias(1));
        assert_eq!(m.net_factor_prof(5, Some(&run)), m.net_factor(5));
        assert_eq!(m.detour_time_prof(0, 0, 0.001, Some(&run)), m.detour_time(0, 0, 0.001));
        let silent = model(NoiseConfig::silent());
        // Short-circuited channels draw nothing and are not counted.
        assert_eq!(silent.cpu_factor_prof(0, 0, Some(&run)), 1.0);
        assert_eq!(m.detour_time_prof(0, 0, 0.0, Some(&run)), 0.0);
        let (_, d) = run.finish();
        assert_eq!(d.kinds[EventKind::NoiseDraw.index()].count, 5);
    }

    #[test]
    fn mem_bias_memoisation_is_transparent() {
        let m = model(NoiseConfig::realistic());
        let fresh = model(NoiseConfig::realistic());
        let first = m.mem_bias(3);
        assert_eq!(first, m.mem_bias(3), "memoised hit must return the drawn value");
        assert_eq!(first, fresh.mem_bias(3), "cache must not change the drawn value");
        // Beyond the cache bound the draw is simply re-derived.
        let far = BIAS_CACHE_MAX_CORES + 7;
        assert_eq!(m.mem_bias(far), fresh.mem_bias(far));
    }

    #[test]
    fn mem_bias_prof_counts_only_the_filling_draw() {
        let m = model(NoiseConfig::realistic());
        let run = RunProf::new("b");
        assert_eq!(m.mem_bias_prof(2, Some(&run)), m.mem_bias(2));
        // Second call hits the cache: no ChaCha work, no count.
        assert_eq!(m.mem_bias_prof(2, Some(&run)), m.mem_bias(2));
        let (_, d) = run.finish();
        assert_eq!(d.kinds[EventKind::NoiseDraw.index()].count, 1);
    }

    #[test]
    fn kernel_noise_batch_matches_scalar_draws() {
        let m = model(NoiseConfig::realistic());
        let scalar = model(NoiseConfig::realistic());
        for instance in 0..50u64 {
            let mut kn = m.kernel_noise(1, instance, true, None);
            assert_eq!(kn.cpu_factor, scalar.cpu_factor(1, instance));
            assert_eq!(kn.mem_bias, scalar.mem_bias(1));
            assert_eq!(kn.mem_factor, scalar.mem_factor(1, instance));
            let span = 0.001 * (instance + 1) as f64;
            assert_eq!(
                m.detour_time_warmed(&mut kn, span, None),
                scalar.detour_time(1, instance, span),
                "warmed detour stream must continue the scalar keystream (instance {instance})"
            );
        }
    }

    #[test]
    fn kernel_noise_without_mem_skips_mem_channels() {
        let m = model(NoiseConfig::realistic());
        let kn = m.kernel_noise(0, 4, false, None);
        assert_eq!(kn.mem_bias, 1.0);
        assert_eq!(kn.mem_factor, 1.0);
        assert_eq!(kn.cpu_factor, m.cpu_factor(0, 4));
    }

    #[test]
    fn kernel_noise_scalar_fallback_matches() {
        // Only the detour channel live: below the batch threshold.
        let cfg = NoiseConfig { detour_rate: 100.0, detour_mean: 1e-5, ..NoiseConfig::silent() };
        let m = model(cfg.clone());
        let scalar = model(cfg);
        let mut kn = m.kernel_noise(0, 9, true, None);
        assert_eq!(kn.cpu_factor, 1.0);
        assert_eq!(kn.mem_factor, 1.0);
        assert_eq!(m.detour_time_warmed(&mut kn, 0.002, None), scalar.detour_time(0, 9, 0.002));
    }

    #[test]
    fn kernel_noise_counts_draws_and_batches() {
        let m = model(NoiseConfig::realistic());
        let run = RunProf::new("k");
        let mut kn = m.kernel_noise(0, 0, true, Some(&run));
        let _ = m.detour_time_warmed(&mut kn, 0.001, Some(&run));
        // Same core again: the bias is memoised, so one draw fewer.
        let mut kn = m.kernel_noise(0, 1, true, Some(&run));
        let _ = m.detour_time_warmed(&mut kn, 0.001, Some(&run));
        // Zero span: the detour channel does not draw.
        let mut kn = m.kernel_noise(0, 2, true, Some(&run));
        let _ = m.detour_time_warmed(&mut kn, 0.0, Some(&run));
        let (_, d) = run.finish();
        // (cpu+bias+mem+detour) + (cpu+mem+detour) + (cpu+mem) = 9.
        assert_eq!(d.kinds[EventKind::NoiseDraw.index()].count, 9);
        assert_eq!(d.allocs.get(NOISE_BATCH_SITE).copied(), Some(3));
    }

    #[test]
    fn poisson_mean_roughly_matches() {
        let f = RngFactory::new(3);
        let mut rng = f.stream(StreamKind::OsDetour, 0, 0);
        let n = 5000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 4.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "poisson mean {mean} too far from 4");
        // Large-mean branch.
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 100.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1.5, "poisson mean {mean} too far from 100");
    }
}
