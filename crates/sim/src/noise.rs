//! Noise models.
//!
//! Following the classification of Ates et al. (HPAS), the simulator
//! injects noise at three points:
//!
//! * **CPU/OS noise** — operating-system detours that steal a core for a
//!   short while (Petrini et al.'s classic missing-performance effect).
//!   Modelled as Poisson-arriving interruptions of exponential-ish length
//!   during any computation interval.
//! * **Memory noise** — run-to-run variability of effective bandwidth and
//!   cache behaviour, modelled as multiplicative jitter on the memory part
//!   of a kernel's execution time.
//! * **Network noise** — variability of message latency and achievable
//!   bandwidth in the shared interconnect (cf. Beni et al.), modelled as
//!   multiplicative jitter per message or collective.
//!
//! All draws come from [`RngFactory`] streams keyed by core or message
//! identity, so the noise a location experiences does not depend on the
//! order the engine processes events in. Setting [`NoiseConfig::silent`]
//! reproduces an idealised noise-free machine — useful in tests to verify
//! that logical and physical measurements coincide structurally.

use crate::rng::{jitter_factor, RngFactory, StreamKind};
use nrlt_engineprof::{EventKind, RunProf};

/// Tunable noise intensities. All default values are calibrated so that
/// uninstrumented run-to-run variation stays in the low single-digit
/// percent range, matching what the paper reports for its benchmarks
/// (e.g. "below 1 % run-to-run variation" for LULESH).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Log-scale sigma of multiplicative jitter on the CPU part of kernels.
    pub cpu_sigma: f64,
    /// Log-scale sigma of multiplicative jitter on the memory part.
    pub mem_sigma: f64,
    /// Mean rate of OS detours per core, in events per second.
    pub detour_rate: f64,
    /// Mean duration of one OS detour, in seconds.
    pub detour_mean: f64,
    /// Log-scale sigma of multiplicative jitter on message transfer times.
    pub net_sigma: f64,
    /// Log-scale sigma of a *persistent* per-core memory-speed bias,
    /// drawn once per repetition: page-placement and NUMA-distance luck
    /// makes some threads systematically slower at memory than others —
    /// the "timing variations of memory accesses" behind the paper's
    /// barrier waits in balanced loops (LULESH, Section V-C3).
    pub mem_bias_sigma: f64,
}

impl NoiseConfig {
    /// A quiet but realistic production machine.
    pub fn realistic() -> Self {
        NoiseConfig {
            cpu_sigma: 0.004,
            mem_sigma: 0.08,
            detour_rate: 25.0,
            detour_mean: 12.0e-6,
            net_sigma: 0.10,
            mem_bias_sigma: 0.05,
        }
    }

    /// A perfectly noise-free machine.
    pub fn silent() -> Self {
        NoiseConfig {
            cpu_sigma: 0.0,
            mem_sigma: 0.0,
            detour_rate: 0.0,
            detour_mean: 0.0,
            net_sigma: 0.0,
            mem_bias_sigma: 0.0,
        }
    }

    /// Scale every intensity by `factor` (for noise-sweep studies).
    pub fn scaled(&self, factor: f64) -> Self {
        NoiseConfig {
            cpu_sigma: self.cpu_sigma * factor,
            mem_sigma: self.mem_sigma * factor,
            detour_rate: self.detour_rate * factor,
            detour_mean: self.detour_mean,
            net_sigma: self.net_sigma * factor,
            mem_bias_sigma: self.mem_bias_sigma * factor,
        }
    }

    /// True if every channel is switched off.
    pub fn is_silent(&self) -> bool {
        self.cpu_sigma == 0.0
            && self.mem_sigma == 0.0
            && (self.detour_rate == 0.0 || self.detour_mean == 0.0)
            && self.net_sigma == 0.0
            && self.mem_bias_sigma == 0.0
    }
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig::realistic()
    }
}

/// Stateless sampler bound to one experiment repetition.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    config: NoiseConfig,
    rng: RngFactory,
}

impl NoiseModel {
    /// Bind `config` to the RNG streams of one repetition.
    pub fn new(config: NoiseConfig, rng: RngFactory) -> Self {
        NoiseModel { config, rng }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Multiplicative factor on the CPU part of the `instance`-th kernel
    /// on `core`.
    pub fn cpu_factor(&self, core: u64, instance: u64) -> f64 {
        if self.config.cpu_sigma == 0.0 {
            return 1.0;
        }
        let mut rng = self.rng.stream(StreamKind::KernelJitter, core, instance);
        jitter_factor(&mut rng, self.config.cpu_sigma)
    }

    /// Multiplicative factor on the memory part of the `instance`-th
    /// kernel on `core`.
    pub fn mem_factor(&self, core: u64, instance: u64) -> f64 {
        if self.config.mem_sigma == 0.0 {
            return 1.0;
        }
        let mut rng =
            self.rng.stream(StreamKind::KernelJitter, core, instance.wrapping_add(1 << 32));
        jitter_factor(&mut rng, self.config.mem_sigma)
    }

    /// Extra time stolen by OS detours from a computation of length
    /// `span_secs` on `core`, in seconds.
    ///
    /// The number of detours is drawn from a Poisson distribution with
    /// mean `detour_rate × span`, each detour contributing an exponential
    /// duration with the configured mean.
    pub fn detour_time(&self, core: u64, instance: u64, span_secs: f64) -> f64 {
        if self.config.detour_rate == 0.0 || self.config.detour_mean == 0.0 || span_secs <= 0.0 {
            return 0.0;
        }
        let mut rng = self.rng.stream(StreamKind::OsDetour, core, instance);
        let mean_events = self.config.detour_rate * span_secs;
        let n = poisson(&mut rng, mean_events);
        let mut total = 0.0;
        for _ in 0..n {
            // Exponential via inverse transform.
            let u: f64 = rng.range_f64(f64::EPSILON, 1.0);
            total += -self.config.detour_mean * u.ln();
        }
        total
    }

    /// Persistent memory-speed factor of `core` for this repetition.
    pub fn mem_bias(&self, core: u64) -> f64 {
        if self.config.mem_bias_sigma == 0.0 {
            return 1.0;
        }
        let mut rng = self.rng.stream(StreamKind::MemBias, core, 0);
        jitter_factor(&mut rng, self.config.mem_bias_sigma)
    }

    /// Multiplicative factor on the transfer time of message or collective
    /// `msg_id`.
    pub fn net_factor(&self, msg_id: u64) -> f64 {
        if self.config.net_sigma == 0.0 {
            return 1.0;
        }
        let mut rng = self.rng.stream(StreamKind::Network, msg_id, 0);
        jitter_factor(&mut rng, self.config.net_sigma)
    }

    /// [`cpu_factor`](Self::cpu_factor), counting the draw against
    /// `prof` when profiling is on and the CPU channel actually draws.
    pub fn cpu_factor_prof(&self, core: u64, instance: u64, prof: Option<&RunProf>) -> f64 {
        match prof {
            Some(p) if self.config.cpu_sigma != 0.0 => {
                p.enter(EventKind::NoiseDraw);
                let f = self.cpu_factor(core, instance);
                p.leave(EventKind::NoiseDraw, 0);
                f
            }
            _ => self.cpu_factor(core, instance),
        }
    }

    /// [`mem_factor`](Self::mem_factor), counting the draw against
    /// `prof` when profiling is on and the memory channel actually
    /// draws.
    pub fn mem_factor_prof(&self, core: u64, instance: u64, prof: Option<&RunProf>) -> f64 {
        match prof {
            Some(p) if self.config.mem_sigma != 0.0 => {
                p.enter(EventKind::NoiseDraw);
                let f = self.mem_factor(core, instance);
                p.leave(EventKind::NoiseDraw, 0);
                f
            }
            _ => self.mem_factor(core, instance),
        }
    }

    /// [`detour_time`](Self::detour_time), counting the draw against
    /// `prof` when profiling is on and the detour channel actually
    /// draws. The stolen time is attributed as virtual nanoseconds of
    /// the noise draw.
    pub fn detour_time_prof(
        &self,
        core: u64,
        instance: u64,
        span_secs: f64,
        prof: Option<&RunProf>,
    ) -> f64 {
        match prof {
            Some(p)
                if self.config.detour_rate != 0.0
                    && self.config.detour_mean != 0.0
                    && span_secs > 0.0 =>
            {
                p.enter(EventKind::NoiseDraw);
                let t = self.detour_time(core, instance, span_secs);
                p.leave(EventKind::NoiseDraw, (t * 1e9) as u64);
                t
            }
            _ => self.detour_time(core, instance, span_secs),
        }
    }

    /// [`mem_bias`](Self::mem_bias), counting the draw against `prof`
    /// when profiling is on and the bias channel actually draws.
    pub fn mem_bias_prof(&self, core: u64, prof: Option<&RunProf>) -> f64 {
        match prof {
            Some(p) if self.config.mem_bias_sigma != 0.0 => {
                p.enter(EventKind::NoiseDraw);
                let f = self.mem_bias(core);
                p.leave(EventKind::NoiseDraw, 0);
                f
            }
            _ => self.mem_bias(core),
        }
    }

    /// [`net_factor`](Self::net_factor), counting the draw against
    /// `prof` when profiling is on and the network channel actually
    /// draws.
    pub fn net_factor_prof(&self, msg_id: u64, prof: Option<&RunProf>) -> f64 {
        match prof {
            Some(p) if self.config.net_sigma != 0.0 => {
                p.enter(EventKind::NoiseDraw);
                let f = self.net_factor(msg_id);
                p.leave(EventKind::NoiseDraw, 0);
                f
            }
            _ => self.net_factor(msg_id),
        }
    }
}

/// Poisson sampler (Knuth's method for small means, normal approximation
/// for large means — detour counts per kernel are almost always small).
fn poisson(rng: &mut crate::chacha::ChaCha8, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 64.0 {
        // Normal approximation with continuity correction.
        let u1: f64 = rng.range_f64(f64::EPSILON, 1.0);
        let u2: f64 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        return (mean + z * mean.sqrt()).round().max(0.0) as u64;
    }
    let threshold = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.next_f64();
        if p <= threshold {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(cfg: NoiseConfig) -> NoiseModel {
        NoiseModel::new(cfg, RngFactory::new(7))
    }

    #[test]
    fn silent_is_identity() {
        let m = model(NoiseConfig::silent());
        assert_eq!(m.cpu_factor(0, 0), 1.0);
        assert_eq!(m.mem_factor(0, 0), 1.0);
        assert_eq!(m.detour_time(0, 0, 1.0), 0.0);
        assert_eq!(m.net_factor(0), 1.0);
        assert!(NoiseConfig::silent().is_silent());
        assert!(!NoiseConfig::realistic().is_silent());
    }

    #[test]
    fn factors_are_deterministic_per_key() {
        let m = model(NoiseConfig::realistic());
        assert_eq!(m.cpu_factor(3, 9), m.cpu_factor(3, 9));
        assert_eq!(m.net_factor(11), m.net_factor(11));
        assert_ne!(m.cpu_factor(3, 9), m.cpu_factor(3, 10));
    }

    #[test]
    fn detour_time_grows_with_span() {
        let m =
            model(NoiseConfig { detour_rate: 1000.0, detour_mean: 1e-5, ..NoiseConfig::silent() });
        let short: f64 = (0..200).map(|i| m.detour_time(0, i, 0.001)).sum();
        let long: f64 = (0..200).map(|i| m.detour_time(0, i + 1000, 0.01)).sum();
        assert!(long > short * 3.0, "long spans must collect more detours ({long} vs {short})");
    }

    #[test]
    fn detour_time_nonnegative_and_zero_for_zero_span() {
        let m = model(NoiseConfig::realistic());
        assert_eq!(m.detour_time(0, 0, 0.0), 0.0);
        for i in 0..100 {
            assert!(m.detour_time(1, i, 0.005) >= 0.0);
        }
    }

    #[test]
    fn scaled_zero_is_silent() {
        assert!(NoiseConfig::realistic().scaled(0.0).is_silent());
    }

    #[test]
    fn prof_variants_count_only_real_draws() {
        let m = model(NoiseConfig::realistic());
        let run = RunProf::new("n");
        assert_eq!(m.cpu_factor_prof(3, 9, Some(&run)), m.cpu_factor(3, 9));
        assert_eq!(m.mem_factor_prof(3, 9, Some(&run)), m.mem_factor(3, 9));
        assert_eq!(m.mem_bias_prof(1, Some(&run)), m.mem_bias(1));
        assert_eq!(m.net_factor_prof(5, Some(&run)), m.net_factor(5));
        assert_eq!(m.detour_time_prof(0, 0, 0.001, Some(&run)), m.detour_time(0, 0, 0.001));
        let silent = model(NoiseConfig::silent());
        // Short-circuited channels draw nothing and are not counted.
        assert_eq!(silent.cpu_factor_prof(0, 0, Some(&run)), 1.0);
        assert_eq!(m.detour_time_prof(0, 0, 0.0, Some(&run)), 0.0);
        let (_, d) = run.finish();
        assert_eq!(d.kinds[EventKind::NoiseDraw.index()].count, 5);
    }

    #[test]
    fn poisson_mean_roughly_matches() {
        let f = RngFactory::new(3);
        let mut rng = f.stream(StreamKind::OsDetour, 0, 0);
        let n = 5000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 4.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "poisson mean {mean} too far from 4");
        // Large-mean branch.
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 100.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1.5, "poisson mean {mean} too far from 100");
    }
}
