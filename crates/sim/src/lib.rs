//! # nrlt-sim — simulation substrate
//!
//! The bottom layer of the noise-resilient logical timers reproduction:
//! virtual time, deterministic random streams, a cluster topology model,
//! rank/thread placement, noise injection, and the memory-hierarchy cost
//! model. Everything above (the MPI and OpenMP simulators, the replay
//! engine, the measurement system) is built on these primitives.
//!
//! Design rules:
//!
//! * **Determinism** — given an experiment seed, every simulated quantity
//!   is reproducible bit-for-bit, regardless of processing order. This is
//!   what lets the reproduction make the paper's central point: logical
//!   measurements are *identical* across repetitions while physical ones
//!   vary with the injected noise.
//! * **Analytic costs** — kernels are described by cost vectors, not
//!   executed numerics; durations come from a roofline-style model over
//!   the topology. The paper's conclusions depend on relative effort and
//!   contention shapes, which this model captures, not on simulated
//!   physics output.

#![warn(missing_docs)]

pub mod chacha;
pub mod memory;
pub mod noise;
pub mod placement;
pub mod rng;
pub mod time;
pub mod topology;

pub use chacha::{warm4, ChaCha8};
pub use memory::{cache_bandwidth_share, dram_fraction, memory_time, shared_bandwidth};
pub use noise::{KernelNoise, NoiseConfig, NoiseModel, NOISE_BATCH_SITE};
pub use placement::{JobLayout, Location, PinPolicy, Placement};
pub use rng::{jitter_factor, RngFactory, StreamKind};
pub use time::{VirtualDuration, VirtualTime};
pub use topology::{CoreId, Machine, NodeId, NodeSpec, NumaId, SocketId};
