//! In-repo ChaCha8 stream generator.
//!
//! The simulator previously drew its random streams from the external
//! `rand_chacha` crate. This is the same ChaCha8 core (djb variant,
//! 64-bit block counter, zero nonce), reimplemented on `std` alone so
//! the workspace builds with no network access. The *keystream* for a
//! given key is bit-identical to any correct ChaCha8 (verified against
//! the djb test vector), and the `f64`/range helpers reproduce the old
//! crate's derivations exactly: regenerating `results/` after the
//! switch left every archived output byte-identical.

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

/// A deterministic ChaCha8 random stream.
#[derive(Debug, Clone)]
pub struct ChaCha8 {
    /// Key words (state positions 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state positions 12, 13).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    idx: usize,
}

impl ChaCha8 {
    /// Build a stream from a 256-bit key.
    pub fn from_seed(seed: [u8; 32]) -> ChaCha8 {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8 { key, counter: 0, block: [0; 16], idx: 16 }
    }

    fn refill(&mut self) {
        let mut x = [0u32; 16];
        x[..4].copy_from_slice(&CONSTANTS);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = 0;
        x[15] = 0;
        let input = x;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = x[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    /// Next 32 bits of keystream.
    pub fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.block[self.idx];
        self.idx += 1;
        w
    }

    /// Next 64 bits of keystream (low word first).
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

/// Compute the first keystream block of four independent streams in one
/// interleaved pass.
///
/// The working state is lane-transposed (`x[word][lane]`), so every
/// quarter-round operation acts on four independent lanes at once and the
/// compiler can vectorise the inner loops. Each returned generator is
/// positioned exactly as if it had been built with [`ChaCha8::from_seed`]
/// and had produced its first block: same key, block counter already
/// advanced to 1, sixteen unread words — the keystream continues
/// bit-identically across later refills.
pub fn warm4(seeds: [[u8; 32]; 4]) -> [ChaCha8; 4] {
    let mut keys = [[0u32; 8]; 4];
    for (l, seed) in seeds.iter().enumerate() {
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            keys[l][i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
    }
    // Lane-transposed state: x[word][lane].
    let mut x = [[0u32; 4]; 16];
    for w in 0..4 {
        x[w] = [CONSTANTS[w]; 4];
    }
    for w in 0..8 {
        for l in 0..4 {
            x[4 + w][l] = keys[l][w];
        }
    }
    // Counter and nonce words (12..16) start at zero for the first block.
    let input = x;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter4(&mut x, 0, 4, 8, 12);
        quarter4(&mut x, 1, 5, 9, 13);
        quarter4(&mut x, 2, 6, 10, 14);
        quarter4(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter4(&mut x, 0, 5, 10, 15);
        quarter4(&mut x, 1, 6, 11, 12);
        quarter4(&mut x, 2, 7, 8, 13);
        quarter4(&mut x, 3, 4, 9, 14);
    }
    std::array::from_fn(|l| {
        let mut block = [0u32; 16];
        for w in 0..16 {
            block[w] = x[w][l].wrapping_add(input[w][l]);
        }
        ChaCha8 { key: keys[l], counter: 1, block, idx: 0 }
    })
}

// The lane loop indexes four distinct rows at the same lane; an
// iterator form would obscure the column-wise ChaCha quarter round.
#[allow(clippy::needless_range_loop)]
fn quarter4(x: &mut [[u32; 4]; 16], a: usize, b: usize, c: usize, d: usize) {
    for l in 0..4 {
        x[a][l] = x[a][l].wrapping_add(x[b][l]);
        x[d][l] = (x[d][l] ^ x[a][l]).rotate_left(16);
        x[c][l] = x[c][l].wrapping_add(x[d][l]);
        x[b][l] = (x[b][l] ^ x[c][l]).rotate_left(12);
        x[a][l] = x[a][l].wrapping_add(x[b][l]);
        x[d][l] = (x[d][l] ^ x[a][l]).rotate_left(8);
        x[c][l] = x[c][l].wrapping_add(x[d][l]);
        x[b][l] = (x[b][l] ^ x[c][l]).rotate_left(7);
    }
}

fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_chacha8_reference_keystream() {
        // ChaCha8 test vector: all-zero key, all-zero nonce, first block
        // (TC1 of the classic ChaCha test-vector set).
        let expected: [u8; 32] = [
            0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
            0xa5, 0xa1, 0x2c, 0x84, 0x0e, 0xc3, 0xce, 0x9a, 0x7f, 0x3b, 0x18, 0x1b, 0xe1, 0x88,
            0xef, 0x71, 0x1a, 0x1e,
        ];
        let mut rng = ChaCha8::from_seed([0; 32]);
        let mut got = [0u8; 32];
        for chunk in got.chunks_exact_mut(4) {
            chunk.copy_from_slice(&rng.next_u32().to_le_bytes());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn streams_are_deterministic_and_key_sensitive() {
        let mut a = ChaCha8::from_seed([7; 32]);
        let mut b = ChaCha8::from_seed([7; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8::from_seed([8; 32]);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval_with_sane_mean() {
        let mut rng = ChaCha8::from_seed([1; 32]);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} too far from 0.5");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = ChaCha8::from_seed([2; 32]);
        for _ in 0..10_000 {
            let v = rng.range_f64(f64::EPSILON, 1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
        let v = rng.range_f64(-3.0, 5.0);
        assert!((-3.0..5.0).contains(&v));
    }

    #[test]
    fn warm4_matches_individual_streams() {
        let seeds = [[11u8; 32], [12; 32], [13; 32], [14; 32]];
        let mut batch = warm4(seeds);
        for (lane, seed) in seeds.into_iter().enumerate() {
            let mut single = ChaCha8::from_seed(seed);
            // 40 words crosses two refills past the warmed first block.
            for i in 0..40 {
                assert_eq!(
                    batch[lane].next_u32(),
                    single.next_u32(),
                    "lane {lane} word {i} diverged"
                );
            }
        }
    }

    #[test]
    fn warm4_lanes_are_independent_even_when_duplicated() {
        let seeds = [[5u8; 32], [5; 32], [6; 32], [7; 32]];
        let mut batch = warm4(seeds);
        let a: Vec<u32> = (0..16).map(|_| batch[0].next_u32()).collect();
        let b: Vec<u32> = (0..16).map(|_| batch[1].next_u32()).collect();
        let c: Vec<u32> = (0..16).map(|_| batch[2].next_u32()).collect();
        assert_eq!(a, b, "identical seeds must give identical lanes");
        assert_ne!(a, c, "distinct seeds must give distinct lanes");
    }

    #[test]
    fn blocks_continue_across_refills() {
        let mut rng = ChaCha8::from_seed([3; 32]);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut again = ChaCha8::from_seed([3; 32]);
        let second: Vec<u32> = (0..40).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
        // 40 words crosses two block boundaries; values must not repeat
        // block-to-block.
        assert_ne!(&first[..16], &first[16..32]);
    }
}
