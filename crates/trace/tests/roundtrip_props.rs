//! Property tests: the binary trace format round-trips arbitrary
//! well-formed traces losslessly, and rejects corruption.

use nrlt_trace::{
    decode, encode, ClockKind, CollectiveOp, Definitions, Event, EventKind, LocationDef,
    RegionDef, RegionRef, RegionRole, Trace, NO_ROOT,
};
use proptest::prelude::*;

fn region_strategy() -> impl Strategy<Value = RegionDef> {
    ("[a-zA-Z_!$@ ]{1,24}", 0u8..10).prop_map(|(name, role)| RegionDef {
        name,
        role: RegionRole::from_u8(role).unwrap(),
    })
}

fn kind_strategy(n_regions: u32) -> impl Strategy<Value = EventKind> {
    prop_oneof![
        (0..n_regions).prop_map(|r| EventKind::Enter { region: RegionRef(r) }),
        (0..n_regions).prop_map(|r| EventKind::Leave { region: RegionRef(r) }),
        (0..n_regions, 1u64..1_000_000).prop_map(|(r, count)| EventKind::CallBurst {
            region: RegionRef(r),
            count,
            start: 0, // fixed up below
        }),
        (0u32..16, 0u32..100, 0u64..1 << 40)
            .prop_map(|(peer, tag, bytes)| EventKind::SendPost { peer, tag, bytes }),
        (0u32..16, 0u32..100, 0u64..1 << 40)
            .prop_map(|(peer, tag, bytes)| EventKind::RecvPost { peer, tag, bytes }),
        (0u32..16, 0u32..100, 0u64..1 << 40)
            .prop_map(|(peer, tag, bytes)| EventKind::RecvComplete { peer, tag, bytes }),
        (0u8..6, 0u64..1 << 30).prop_map(|(op, bytes)| EventKind::CollectiveEnd {
            op: CollectiveOp::from_u8(op).unwrap(),
            bytes,
            root: NO_ROOT,
        }),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec(region_strategy(), 1..8),
        1u32..4, // threads per rank
        1u32..4, // ranks
        proptest::bool::ANY,
    )
        .prop_flat_map(|(regions, tpr, ranks, physical)| {
            let n_regions = regions.len() as u32;
            let n_locs = (tpr * ranks) as usize;
            let streams = proptest::collection::vec(
                proptest::collection::vec(
                    (0u64..1000, kind_strategy(n_regions)),
                    0..40,
                ),
                n_locs..=n_locs,
            );
            (Just(regions), Just(tpr), Just(ranks), Just(physical), streams)
        })
        .prop_map(|(regions, tpr, ranks, physical, raw_streams)| {
            let locations: Vec<LocationDef> = (0..ranks)
                .flat_map(|r| {
                    (0..tpr).map(move |t| LocationDef { rank: r, thread: t, core: r * tpr + t })
                })
                .collect();
            // Make timestamps monotone per stream (cumulative deltas) and
            // fix burst starts to lie before their event time.
            let streams = raw_streams
                .into_iter()
                .map(|raw| {
                    let mut t = 0u64;
                    raw.into_iter()
                        .map(|(delta, mut kind)| {
                            t += delta;
                            if let EventKind::CallBurst { start, .. } = &mut kind {
                                *start = t / 2;
                            }
                            Event { time: t, kind }
                        })
                        .collect()
                })
                .collect();
            Trace {
                defs: Definitions {
                    regions,
                    locations,
                    threads_per_rank: tpr,
                    clock: if physical {
                        ClockKind::Physical
                    } else {
                        ClockKind::Logical { model: "lt_test".into() }
                    },
                },
                streams,
            }
        })
}

proptest! {
    #[test]
    fn roundtrip_is_lossless(trace in trace_strategy()) {
        let bytes = encode(&trace);
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn truncation_never_panics(trace in trace_strategy(), cut in 0usize..4096) {
        let bytes = encode(&trace);
        let cut = cut.min(bytes.len());
        // Must error or produce a different trace, never panic.
        let _ = decode(&bytes[..cut]);
    }

    #[test]
    fn single_byte_corruption_never_panics(trace in trace_strategy(), pos in 0usize..4096, val in 0u8..255) {
        let mut bytes = encode(&trace);
        if bytes.is_empty() { return Ok(()); }
        let pos = pos % bytes.len();
        bytes[pos] ^= val.wrapping_add(1);
        let _ = decode(&bytes); // any Result is fine; panics are not
    }
}
