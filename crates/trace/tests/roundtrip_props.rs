//! Randomised-but-deterministic tests: the binary trace format
//! round-trips well-formed traces losslessly and never panics on
//! truncated or corrupted input. A fixed-seed splitmix64 generator
//! replaces proptest so the suite runs with no external dependencies
//! and identical cases on every machine.

use nrlt_trace::{
    decode, encode, ClockKind, CollectiveOp, Definitions, Event, EventKind, LocationDef, RegionDef,
    RegionRef, RegionRole, Trace, NO_ROOT,
};

/// Deterministic 64-bit generator (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn random_kind(g: &mut Gen, n_regions: u32, time: u64) -> EventKind {
    match g.below(7) {
        0 => EventKind::Enter { region: RegionRef(g.below(n_regions as u64) as u32) },
        1 => EventKind::Leave { region: RegionRef(g.below(n_regions as u64) as u32) },
        2 => EventKind::CallBurst {
            region: RegionRef(g.below(n_regions as u64) as u32),
            count: 1 + g.below(1_000_000),
            start: time / 2,
        },
        3 => EventKind::SendPost {
            peer: g.below(16) as u32,
            tag: g.below(100) as u32,
            bytes: g.below(1 << 40),
        },
        4 => EventKind::RecvPost {
            peer: g.below(16) as u32,
            tag: g.below(100) as u32,
            bytes: g.below(1 << 40),
        },
        5 => EventKind::RecvComplete {
            peer: g.below(16) as u32,
            tag: g.below(100) as u32,
            bytes: g.below(1 << 40),
        },
        _ => EventKind::CollectiveEnd {
            op: CollectiveOp::from_u8(g.below(6) as u8).unwrap(),
            bytes: g.below(1 << 30),
            root: NO_ROOT,
        },
    }
}

/// A random well-formed trace: monotone per-stream timestamps, burst
/// starts before their event, valid region references.
fn random_trace(g: &mut Gen) -> Trace {
    let n_regions = 1 + g.below(7) as usize;
    let names = ["main", "MPI_Send", "solve kernel!", "a$b", "x", "omp for", "crunch", "_"];
    let regions: Vec<RegionDef> = (0..n_regions)
        .map(|i| RegionDef {
            name: format!("{}{}", names[i % names.len()], g.below(100)),
            role: RegionRole::from_u8(g.below(10) as u8).unwrap(),
        })
        .collect();
    let tpr = 1 + g.below(3) as u32;
    let ranks = 1 + g.below(3) as u32;
    let locations: Vec<LocationDef> = (0..ranks)
        .flat_map(|r| (0..tpr).map(move |t| LocationDef { rank: r, thread: t, core: r * tpr + t }))
        .collect();
    let streams = (0..locations.len())
        .map(|_| {
            let n_events = g.below(40) as usize;
            let mut t = 0u64;
            (0..n_events)
                .map(|_| {
                    t += g.below(1000);
                    let kind = random_kind(g, n_regions as u32, t);
                    Event { time: t, kind }
                })
                .collect()
        })
        .collect();
    Trace {
        defs: Definitions {
            regions: std::sync::Arc::new(regions),
            locations: std::sync::Arc::new(locations),
            threads_per_rank: tpr,
            clock: if g.below(2) == 0 {
                ClockKind::Physical
            } else {
                ClockKind::Logical { model: "lt_test".into() }
            },
        },
        streams,
    }
}

#[test]
fn roundtrip_is_lossless() {
    let mut g = Gen(0xA11CE);
    for case in 0..200 {
        let trace = random_trace(&mut g);
        let bytes = encode(&trace);
        let back = decode(&bytes).unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        assert_eq!(back, trace, "case {case} not lossless");
    }
}

#[test]
fn truncation_never_panics() {
    let mut g = Gen(0xB0B);
    for _ in 0..50 {
        let trace = random_trace(&mut g);
        let bytes = encode(&trace);
        for cut in 0..bytes.len() {
            // Must error or produce a different trace, never panic.
            let _ = decode(&bytes[..cut]);
        }
    }
}

#[test]
fn single_byte_corruption_never_panics() {
    let mut g = Gen(0xC0FFEE);
    for _ in 0..50 {
        let trace = random_trace(&mut g);
        let bytes = encode(&trace);
        if bytes.is_empty() {
            continue;
        }
        for _ in 0..64 {
            let pos = g.below(bytes.len() as u64) as usize;
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 1 + g.below(255) as u8;
            let _ = decode(&corrupted); // any Result is fine; panics are not
        }
    }
}
