//! Event records.
//!
//! Every location (rank × thread) owns an ordered stream of timestamped
//! events. Timestamps are plain `u64` — virtual nanoseconds under the
//! physical clock, counter values under a logical clock. The analyzer is
//! deliberately clock-agnostic: it computes severities as timestamp
//! differences whatever the unit, exactly as Scalasca does when fed
//! logical traces in the paper.

use crate::defs::RegionRef;

/// Which collective operation a [`EventKind::CollectiveEnd`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CollectiveOp {
    /// `MPI_Barrier`.
    Barrier = 0,
    /// `MPI_Allreduce`.
    Allreduce = 1,
    /// `MPI_Alltoall`.
    Alltoall = 2,
    /// `MPI_Allgather`.
    Allgather = 3,
    /// `MPI_Bcast`.
    Bcast = 4,
    /// `MPI_Reduce`.
    Reduce = 5,
}

impl CollectiveOp {
    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> Option<CollectiveOp> {
        Some(match v {
            0 => CollectiveOp::Barrier,
            1 => CollectiveOp::Allreduce,
            2 => CollectiveOp::Alltoall,
            3 => CollectiveOp::Allgather,
            4 => CollectiveOp::Bcast,
            5 => CollectiveOp::Reduce,
            _ => return None,
        })
    }

    /// True for the N×N collectives (wait time classified as `wait_nxn`).
    pub fn is_nxn(self) -> bool {
        matches!(self, CollectiveOp::Allreduce | CollectiveOp::Alltoall | CollectiveOp::Allgather)
    }
}

/// Sentinel for "no root" in collective records.
pub const NO_ROOT: u32 = u32::MAX;

/// The payload of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Enter a region.
    Enter {
        /// Region entered.
        region: RegionRef,
    },
    /// Leave a region.
    Leave {
        /// Region left.
        region: RegionRef,
    },
    /// Summary of `count` enter/leave pairs of `region` spanning
    /// `[start, event time]` — the trace-compression representation of a
    /// burst of fine-grained function calls (see `nrlt_prog::CallBurst`).
    CallBurst {
        /// Callee region.
        region: RegionRef,
        /// Number of calls summarised.
        count: u64,
        /// Timestamp of the first call's enter.
        start: u64,
    },
    /// A message send was initiated (inside `MPI_Send`/`MPI_Isend`).
    /// The event time is the send start used by late-sender analysis.
    SendPost {
        /// Destination rank.
        peer: u32,
        /// Message tag.
        tag: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// A receive was posted (inside `MPI_Recv`/`MPI_Irecv`). The event
    /// time is the post time used by late-receiver analysis.
    RecvPost {
        /// Source rank.
        peer: u32,
        /// Message tag.
        tag: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// A posted receive completed (inside `MPI_Recv`/`MPI_Wait(all)`).
    /// Completions pair with posts FIFO per `(peer, tag)`.
    RecvComplete {
        /// Source rank.
        peer: u32,
        /// Message tag.
        tag: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// A collective completed on this location. The k-th collective
    /// record of every rank (in stream order) belongs to the same
    /// collective instance, as MPI mandates a single collective order
    /// per communicator.
    CollectiveEnd {
        /// Operation kind.
        op: CollectiveOp,
        /// Bytes contributed per rank.
        bytes: u64,
        /// Root rank, or [`NO_ROOT`].
        root: u32,
    },
}

/// One timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in the trace's clock.
    pub time: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// Convenience constructor.
    pub fn new(time: u64, kind: EventKind) -> Event {
        Event { time, kind }
    }

    /// True for `Enter`/`Leave`/`CallBurst` region events.
    pub fn is_region_event(&self) -> bool {
        matches!(
            self.kind,
            EventKind::Enter { .. } | EventKind::Leave { .. } | EventKind::CallBurst { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_op_roundtrip() {
        for v in 0..=5u8 {
            assert_eq!(CollectiveOp::from_u8(v).unwrap() as u8, v);
        }
        assert_eq!(CollectiveOp::from_u8(6), None);
    }

    #[test]
    fn nxn_ops() {
        assert!(CollectiveOp::Allreduce.is_nxn());
        assert!(CollectiveOp::Alltoall.is_nxn());
        assert!(CollectiveOp::Allgather.is_nxn());
        assert!(!CollectiveOp::Barrier.is_nxn());
        assert!(!CollectiveOp::Bcast.is_nxn());
    }

    #[test]
    fn region_event_predicate() {
        let r = RegionRef(0);
        assert!(Event::new(0, EventKind::Enter { region: r }).is_region_event());
        assert!(
            Event::new(0, EventKind::CallBurst { region: r, count: 1, start: 0 }).is_region_event()
        );
        assert!(!Event::new(0, EventKind::SendPost { peer: 0, tag: 0, bytes: 0 }).is_region_event());
    }
}
