//! Unified view over resident and spilled traces.
//!
//! Analysis passes consume a trace through [`TraceView`]: definition
//! tables plus one event iterator per location. The resident
//! [`Trace`] iterates its in-memory SoA columns; a
//! [`SpilledTrace`](crate::segment::SpilledTrace) streams chunks from
//! its segment file through a bounded scratch buffer. Both yield the
//! identical event sequence, which is what makes the out-of-core path
//! byte-identical end to end.

use crate::defs::Definitions;
use crate::event::Event;
use crate::segment::{SegmentCursor, SpilledTrace};
use crate::{stream, Trace};

/// An owned trace, either fully resident or spilled to a segment file.
#[derive(Debug)]
pub enum TraceData {
    /// All events in memory (the default path).
    Resident(Trace),
    /// Events in a segment file, definitions in memory.
    Spilled(SpilledTrace),
}

impl TraceData {
    /// Definition tables.
    pub fn defs(&self) -> &Definitions {
        match self {
            TraceData::Resident(t) => &t.defs,
            TraceData::Spilled(t) => &t.defs,
        }
    }

    /// Total events across all locations.
    pub fn total_events(&self) -> usize {
        match self {
            TraceData::Resident(t) => t.total_events(),
            TraceData::Spilled(t) => t.total_events(),
        }
    }

    /// A borrowing view for the analysis passes.
    pub fn view(&self) -> TraceView<'_> {
        match self {
            TraceData::Resident(t) => TraceView::Resident(t),
            TraceData::Spilled(t) => TraceView::Spilled(t),
        }
    }

    /// The resident trace, if this is one (tests, explorer paths that
    /// still need random access).
    pub fn as_resident(&self) -> Option<&Trace> {
        match self {
            TraceData::Resident(t) => Some(t),
            TraceData::Spilled(_) => None,
        }
    }
}

impl From<Trace> for TraceData {
    fn from(t: Trace) -> TraceData {
        TraceData::Resident(t)
    }
}

impl From<SpilledTrace> for TraceData {
    fn from(t: SpilledTrace) -> TraceData {
        TraceData::Spilled(t)
    }
}

/// A borrowed trace: definitions plus per-location event iterators.
#[derive(Debug, Clone, Copy)]
pub enum TraceView<'a> {
    /// View of a resident trace.
    Resident(&'a Trace),
    /// View of a spilled trace.
    Spilled(&'a SpilledTrace),
}

impl<'a> TraceView<'a> {
    /// Definition tables.
    pub fn defs(&self) -> &'a Definitions {
        match self {
            TraceView::Resident(t) => &t.defs,
            TraceView::Spilled(t) => &t.defs,
        }
    }

    /// Number of locations.
    pub fn n_locations(&self) -> usize {
        match self {
            TraceView::Resident(t) => t.streams.len(),
            TraceView::Spilled(t) => t.n_locations(),
        }
    }

    /// Total events across all locations.
    pub fn total_events(&self) -> usize {
        match self {
            TraceView::Resident(t) => t.total_events(),
            TraceView::Spilled(t) => t.total_events(),
        }
    }

    /// Iterate one location's events in time order.
    ///
    /// Panics if the spilled segment file disappeared mid-run — the
    /// file is process-private and owned by the `SpilledTrace`.
    pub fn events(&self, loc: usize) -> LocationEvents<'a> {
        match self {
            TraceView::Resident(t) => LocationEvents::Resident(t.streams[loc].iter()),
            TraceView::Spilled(t) => {
                LocationEvents::Spilled(t.cursor(loc).expect("segment file open"))
            }
        }
    }

    /// One iterator per location, for k-way merges.
    pub fn all_events(&self) -> Vec<LocationEvents<'a>> {
        (0..self.n_locations()).map(|loc| self.events(loc)).collect()
    }
}

/// Event iterator over one location of a [`TraceView`].
pub enum LocationEvents<'a> {
    /// Iterating in-memory columns.
    Resident(stream::Iter<'a>),
    /// Streaming chunks from a segment file.
    Spilled(SegmentCursor),
}

impl Iterator for LocationEvents<'_> {
    type Item = Event;

    #[inline]
    fn next(&mut self) -> Option<Event> {
        match self {
            LocationEvents::Resident(it) => it.next(),
            LocationEvents::Spilled(c) => c.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs::{ClockKind, LocationDef, RegionDef, RegionRef, RegionRole};
    use crate::event::EventKind;
    use crate::segment::{temp_segment_path, MergedEvents, SegmentWriter};
    use crate::EventStream;

    fn defs(n_locs: u32) -> Definitions {
        Definitions {
            regions: std::sync::Arc::new(vec![RegionDef {
                name: "main".into(),
                role: RegionRole::Function,
            }]),
            locations: std::sync::Arc::new(
                (0..n_locs).map(|r| LocationDef { rank: r, thread: 0, core: r }).collect(),
            ),
            threads_per_rank: 1,
            clock: ClockKind::Physical,
        }
    }

    fn events_for(loc: u64) -> Vec<Event> {
        (0..10)
            .map(|i| Event::new(loc + 3 * i, EventKind::Enter { region: RegionRef(0) }))
            .collect()
    }

    fn resident() -> TraceData {
        let streams: Vec<EventStream> = (0..3u64).map(|l| events_for(l).into()).collect();
        TraceData::Resident(Trace { defs: defs(3), streams })
    }

    fn spilled() -> TraceData {
        let path = temp_segment_path("test-store");
        let mut w = SegmentWriter::create(&path).unwrap();
        let mut buf = EventStream::new();
        for loc in 0..3u64 {
            for ev in events_for(loc) {
                buf.push(ev);
                if buf.len() == 4 {
                    w.spill(loc as u32, &mut buf).unwrap();
                }
            }
            w.spill(loc as u32, &mut buf).unwrap();
        }
        let index = w.finish().unwrap();
        TraceData::Spilled(SpilledTrace::from_parts(defs(3), path, index, 3))
    }

    #[test]
    fn resident_and_spilled_views_agree() {
        let r = resident();
        let s = spilled();
        assert_eq!(r.total_events(), s.total_events());
        assert_eq!(r.defs(), s.defs());
        assert_eq!(r.view().n_locations(), s.view().n_locations());
        for loc in 0..3 {
            let a: Vec<Event> = r.view().events(loc).collect();
            let b: Vec<Event> = s.view().events(loc).collect();
            assert_eq!(a, b, "location {loc}");
        }
    }

    #[test]
    fn merged_views_agree_and_bound_heap() {
        let r = resident();
        let s = spilled();
        let mut mr = MergedEvents::new(r.view().all_events());
        let mut ms = MergedEvents::new(s.view().all_events());
        let a: Vec<(u32, Event)> = mr.by_ref().collect();
        let b: Vec<(u32, Event)> = ms.by_ref().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        assert!(mr.max_heap_occupancy() <= 3);
        assert_eq!(mr.max_heap_occupancy(), ms.max_heap_occupancy());
        // Global order: time ascending, location breaking ties.
        for w in a.windows(2) {
            assert!((w[0].1.time, w[0].0) < (w[1].1.time, w[1].0));
        }
    }
}
