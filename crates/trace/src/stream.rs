//! Struct-of-arrays event streams.
//!
//! A recorded stream is pushed once and scanned many times (replay,
//! causality, rendering). Storing the events as an array of enum
//! structs wastes bandwidth on those scans: every pass drags the full
//! payload of every event through the cache even when it only needs
//! the timestamps, and the enum padding is dead weight. [`EventStream`]
//! stores one column per field instead — times, kind tags, and three
//! payload columns — so column-only scans touch a fraction of the
//! memory and the payload decode happens only for events actually
//! inspected.
//!
//! The public [`Event`] value type remains the interchange currency:
//! `push` decomposes one, `get`/iteration recompose them on the fly.

use crate::defs::RegionRef;
use crate::event::{CollectiveOp, Event, EventKind};

// Column tag bytes, one per `EventKind` variant. Shared with the
// segment spill format (`segment.rs`), which serialises the columns
// verbatim.
pub(crate) const T_ENTER: u8 = 0;
pub(crate) const T_LEAVE: u8 = 1;
pub(crate) const T_BURST: u8 = 2;
pub(crate) const T_SEND_POST: u8 = 3;
pub(crate) const T_RECV_POST: u8 = 4;
pub(crate) const T_RECV_COMPLETE: u8 = 5;
pub(crate) const T_COLLECTIVE_END: u8 = 6;
/// Largest valid column tag byte.
pub(crate) const T_MAX: u8 = T_COLLECTIVE_END;

/// Borrowed view of the raw columns, for the segment writer.
pub(crate) struct Columns<'a> {
    pub times: &'a [u64],
    pub tags: &'a [u8],
    pub a: &'a [u32],
    pub b: &'a [u32],
    pub x: &'a [u64],
    pub y: &'a [u64],
}

/// One location's event stream in struct-of-arrays layout.
///
/// Column roles per kind (unused columns hold 0):
///
/// | kind            | `a`      | `b`   | `x`     | `y`     |
/// |-----------------|----------|-------|---------|---------|
/// | `Enter`/`Leave` | region   | —     | —       | —       |
/// | `CallBurst`     | region   | —     | count   | start   |
/// | send/recv       | peer     | tag   | bytes   | —       |
/// | `CollectiveEnd` | root     | op    | bytes   | —       |
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventStream {
    times: Vec<u64>,
    tags: Vec<u8>,
    a: Vec<u32>,
    b: Vec<u32>,
    x: Vec<u64>,
    y: Vec<u64>,
}

impl EventStream {
    /// An empty stream.
    pub fn new() -> EventStream {
        EventStream::default()
    }

    /// An empty stream with room for `cap` events per column.
    pub fn with_capacity(cap: usize) -> EventStream {
        EventStream {
            times: Vec::with_capacity(cap),
            tags: Vec::with_capacity(cap),
            a: Vec::with_capacity(cap),
            b: Vec::with_capacity(cap),
            x: Vec::with_capacity(cap),
            y: Vec::with_capacity(cap),
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Append one event, decomposed into the columns.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        self.times.push(ev.time);
        let (tag, a, b, x, y) = match ev.kind {
            EventKind::Enter { region } => (T_ENTER, region.0, 0, 0, 0),
            EventKind::Leave { region } => (T_LEAVE, region.0, 0, 0, 0),
            EventKind::CallBurst { region, count, start } => (T_BURST, region.0, 0, count, start),
            EventKind::SendPost { peer, tag, bytes } => (T_SEND_POST, peer, tag, bytes, 0),
            EventKind::RecvPost { peer, tag, bytes } => (T_RECV_POST, peer, tag, bytes, 0),
            EventKind::RecvComplete { peer, tag, bytes } => (T_RECV_COMPLETE, peer, tag, bytes, 0),
            EventKind::CollectiveEnd { op, bytes, root } => {
                (T_COLLECTIVE_END, root, op as u32, bytes, 0)
            }
        };
        self.tags.push(tag);
        self.a.push(a);
        self.b.push(b);
        self.x.push(x);
        self.y.push(y);
    }

    /// Timestamp of event `i`.
    #[inline]
    pub fn time(&self, i: usize) -> u64 {
        self.times[i]
    }

    /// Rewrite the timestamp of event `i` (test fixtures).
    pub fn set_time(&mut self, i: usize, t: u64) {
        self.times[i] = t;
    }

    /// The full timestamp column — the cheap path for time-only scans.
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// Recompose the payload of event `i`.
    #[inline]
    pub fn kind(&self, i: usize) -> EventKind {
        let (a, b, x, y) = (self.a[i], self.b[i], self.x[i], self.y[i]);
        match self.tags[i] {
            T_ENTER => EventKind::Enter { region: RegionRef(a) },
            T_LEAVE => EventKind::Leave { region: RegionRef(a) },
            T_BURST => EventKind::CallBurst { region: RegionRef(a), count: x, start: y },
            T_SEND_POST => EventKind::SendPost { peer: a, tag: b, bytes: x },
            T_RECV_POST => EventKind::RecvPost { peer: a, tag: b, bytes: x },
            T_RECV_COMPLETE => EventKind::RecvComplete { peer: a, tag: b, bytes: x },
            T_COLLECTIVE_END => EventKind::CollectiveEnd {
                op: CollectiveOp::from_u8(b as u8).expect("tag byte written by push"),
                bytes: x,
                root: a,
            },
            t => unreachable!("corrupt stream tag {t}"),
        }
    }

    /// Recompose event `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Event {
        Event { time: self.times[i], kind: self.kind(i) }
    }

    /// First event, if any.
    pub fn first(&self) -> Option<Event> {
        if self.is_empty() {
            None
        } else {
            Some(self.get(0))
        }
    }

    /// Last event, if any.
    pub fn last(&self) -> Option<Event> {
        self.len().checked_sub(1).map(|i| self.get(i))
    }

    /// Remove and return the last event.
    pub fn pop(&mut self) -> Option<Event> {
        let last = self.last()?;
        self.times.pop();
        self.tags.pop();
        self.a.pop();
        self.b.pop();
        self.x.pop();
        self.y.pop();
        Some(last)
    }

    /// Drop all events, keeping the column allocations for reuse.
    ///
    /// The spill path encodes a full chunk out of the stream and then
    /// keeps recording into the same (already-sized) buffers.
    pub fn clear(&mut self) {
        self.times.clear();
        self.tags.clear();
        self.a.clear();
        self.b.clear();
        self.x.clear();
        self.y.clear();
    }

    /// Raw column view for the segment writer.
    pub(crate) fn columns(&self) -> Columns<'_> {
        Columns {
            times: &self.times,
            tags: &self.tags,
            a: &self.a,
            b: &self.b,
            x: &self.x,
            y: &self.y,
        }
    }

    /// Append one already-decomposed event (segment decode path). The
    /// caller guarantees `tag` is a valid column tag byte.
    #[inline]
    pub(crate) fn push_raw(&mut self, time: u64, tag: u8, a: u32, b: u32, x: u64, y: u64) {
        debug_assert!(tag <= T_MAX);
        self.times.push(time);
        self.tags.push(tag);
        self.a.push(a);
        self.b.push(b);
        self.x.push(x);
        self.y.push(y);
    }

    /// Iterate the events, recomposed by value.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            times: self.times.iter(),
            tags: self.tags.iter(),
            a: self.a.iter(),
            b: self.b.iter(),
            x: self.x.iter(),
            y: self.y.iter(),
        }
    }
}

/// Iterator over an [`EventStream`], yielding recomposed [`Event`]s.
///
/// Holds one slice iterator per column so advancing is a set of pointer
/// increments with a single end check — no per-column bounds checks.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    times: std::slice::Iter<'a, u64>,
    tags: std::slice::Iter<'a, u8>,
    a: std::slice::Iter<'a, u32>,
    b: std::slice::Iter<'a, u32>,
    x: std::slice::Iter<'a, u64>,
    y: std::slice::Iter<'a, u64>,
}

impl Iterator for Iter<'_> {
    type Item = Event;

    #[inline]
    fn next(&mut self) -> Option<Event> {
        let &time = self.times.next()?;
        // The columns are always the same length, so the remaining
        // `next()`s cannot fail.
        let &tag = self.tags.next()?;
        let &a = self.a.next()?;
        let &b = self.b.next()?;
        let &x = self.x.next()?;
        let &y = self.y.next()?;
        let kind = match tag {
            T_ENTER => EventKind::Enter { region: RegionRef(a) },
            T_LEAVE => EventKind::Leave { region: RegionRef(a) },
            T_BURST => EventKind::CallBurst { region: RegionRef(a), count: x, start: y },
            T_SEND_POST => EventKind::SendPost { peer: a, tag: b, bytes: x },
            T_RECV_POST => EventKind::RecvPost { peer: a, tag: b, bytes: x },
            T_RECV_COMPLETE => EventKind::RecvComplete { peer: a, tag: b, bytes: x },
            T_COLLECTIVE_END => EventKind::CollectiveEnd {
                op: CollectiveOp::from_u8(b as u8).expect("tag byte written by push"),
                bytes: x,
                root: a,
            },
            t => unreachable!("corrupt stream tag {t}"),
        };
        Some(Event { time, kind })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.times.size_hint()
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a EventStream {
    type Item = Event;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<Event> for EventStream {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> EventStream {
        let iter = iter.into_iter();
        let mut s = EventStream::with_capacity(iter.size_hint().0);
        for ev in iter {
            s.push(ev);
        }
        s
    }
}

impl From<Vec<Event>> for EventStream {
    fn from(events: Vec<Event>) -> EventStream {
        events.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_ROOT;

    fn one_of_each() -> Vec<Event> {
        vec![
            Event::new(1, EventKind::Enter { region: RegionRef(3) }),
            Event::new(5, EventKind::CallBurst { region: RegionRef(4), count: 9, start: 2 }),
            Event::new(6, EventKind::SendPost { peer: 1, tag: 7, bytes: 64 }),
            Event::new(7, EventKind::RecvPost { peer: 2, tag: 8, bytes: 128 }),
            Event::new(9, EventKind::RecvComplete { peer: 2, tag: 8, bytes: 128 }),
            Event::new(
                11,
                EventKind::CollectiveEnd { op: CollectiveOp::Bcast, bytes: 32, root: NO_ROOT },
            ),
            Event::new(12, EventKind::Leave { region: RegionRef(3) }),
        ]
    }

    #[test]
    fn push_get_roundtrips_every_kind() {
        let events = one_of_each();
        let s: EventStream = events.clone().into();
        assert_eq!(s.len(), events.len());
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(s.get(i), *ev);
            assert_eq!(s.time(i), ev.time);
            assert_eq!(s.kind(i), ev.kind);
        }
        let back: Vec<Event> = s.iter().collect();
        assert_eq!(back, events);
    }

    #[test]
    fn first_last_pop() {
        let mut s: EventStream = one_of_each().into();
        assert_eq!(s.first().unwrap().time, 1);
        assert_eq!(s.last().unwrap().time, 12);
        let popped = s.pop().unwrap();
        assert_eq!(popped.time, 12);
        assert_eq!(s.len(), 6);
        assert_eq!(s.last().unwrap().time, 11);
    }

    #[test]
    fn empty_stream_behaves() {
        let mut s = EventStream::new();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.last(), None);
        assert_eq!(s.pop(), None);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.times(), &[] as &[u64]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s: EventStream = one_of_each().into();
        let cap = s.times.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.times.capacity(), cap);
        s.push(Event::new(1, EventKind::Enter { region: RegionRef(0) }));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn equality_matches_event_equality() {
        let a: EventStream = one_of_each().into();
        let b: EventStream = one_of_each().into();
        assert_eq!(a, b);
        let mut c = b.clone();
        c.set_time(0, 99);
        assert_ne!(a, c);
    }
}
