//! Compact binary trace format.
//!
//! A self-contained, versioned encoding playing the role of OTF2:
//! definitions first, then one delta-timestamped event stream per
//! location. Integers use LEB128 varints; timestamps within a stream are
//! delta-encoded because both physical and logical clocks are
//! monotonically non-decreasing per location, which makes the deltas
//! small.

use crate::defs::{ClockKind, Definitions, LocationDef, RegionDef, RegionRef, RegionRole};
use crate::event::{CollectiveOp, Event, EventKind};
use crate::Trace;

/// Magic bytes at the start of every trace file.
pub const MAGIC: &[u8; 4] = b"NRLT";
/// Current format version.
pub const VERSION: u16 = 1;

/// A decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the magic bytes.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// Input ended in the middle of a record.
    Truncated,
    /// An enum byte had no defined meaning.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadString,
    /// Timestamps in a stream went backwards (corrupt delta).
    NonMonotoneTime,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an NRLT trace (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => write!(f, "trace truncated"),
            DecodeError::BadTag(t) => write!(f, "invalid tag byte {t:#x}"),
            DecodeError::BadString => write!(f, "invalid UTF-8 in string"),
            DecodeError::NonMonotoneTime => write!(f, "timestamps not monotone"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over the input slice; all reads are bounds-checked and
/// return [`DecodeError::Truncated`] past the end. Shared with the
/// segment spill format (`segment.rs`).
pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub(crate) fn get_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.data.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn get_u16(&mut self) -> Result<u16, DecodeError> {
        // Big-endian, matching what the format has always written.
        let hi = self.get_u8()?;
        let lo = self.get_u8()?;
        Ok(u16::from_be_bytes([hi, lo]))
    }

    pub(crate) fn get_slice(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < len {
            return Err(DecodeError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }
}

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

pub(crate) fn get_varint(buf: &mut Reader<'_>) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = buf.get_u8()?;
        if shift >= 64 {
            return Err(DecodeError::BadTag(byte));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &mut Reader<'_>) -> Result<String, DecodeError> {
    let len = get_varint(buf)? as usize;
    let raw = buf.get_slice(len)?;
    String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::BadString)
}

// Event tag bytes.
const TAG_ENTER: u8 = 1;
const TAG_LEAVE: u8 = 2;
const TAG_BURST: u8 = 3;
const TAG_SEND_POST: u8 = 4;
const TAG_RECV_POST: u8 = 5;
const TAG_RECV_COMPLETE: u8 = 6;
const TAG_COLLECTIVE_END: u8 = 7;

/// Serialise a trace to bytes.
pub fn encode(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1024 + trace.total_events() * 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_be_bytes());

    // Clock.
    match &trace.defs.clock {
        ClockKind::Physical => buf.push(0),
        ClockKind::Logical { model } => {
            buf.push(1);
            put_string(&mut buf, model);
        }
    }

    // Regions.
    put_varint(&mut buf, trace.defs.regions.len() as u64);
    for r in trace.defs.regions.iter() {
        put_string(&mut buf, &r.name);
        buf.push(r.role as u8);
    }

    // Locations.
    put_varint(&mut buf, trace.defs.threads_per_rank as u64);
    put_varint(&mut buf, trace.defs.locations.len() as u64);
    for l in trace.defs.locations.iter() {
        put_varint(&mut buf, l.rank as u64);
        put_varint(&mut buf, l.thread as u64);
        put_varint(&mut buf, l.core as u64);
    }

    // Streams.
    put_varint(&mut buf, trace.streams.len() as u64);
    for stream in &trace.streams {
        put_varint(&mut buf, stream.len() as u64);
        let mut last = 0u64;
        for ev in stream {
            debug_assert!(ev.time >= last, "stream timestamps must be monotone");
            put_varint(&mut buf, ev.time - last);
            last = ev.time;
            match ev.kind {
                EventKind::Enter { region } => {
                    buf.push(TAG_ENTER);
                    put_varint(&mut buf, region.0 as u64);
                }
                EventKind::Leave { region } => {
                    buf.push(TAG_LEAVE);
                    put_varint(&mut buf, region.0 as u64);
                }
                EventKind::CallBurst { region, count, start } => {
                    buf.push(TAG_BURST);
                    put_varint(&mut buf, region.0 as u64);
                    put_varint(&mut buf, count);
                    // start <= event time; store backwards delta.
                    put_varint(&mut buf, ev.time - start);
                }
                EventKind::SendPost { peer, tag, bytes } => {
                    buf.push(TAG_SEND_POST);
                    put_varint(&mut buf, peer as u64);
                    put_varint(&mut buf, tag as u64);
                    put_varint(&mut buf, bytes);
                }
                EventKind::RecvPost { peer, tag, bytes } => {
                    buf.push(TAG_RECV_POST);
                    put_varint(&mut buf, peer as u64);
                    put_varint(&mut buf, tag as u64);
                    put_varint(&mut buf, bytes);
                }
                EventKind::RecvComplete { peer, tag, bytes } => {
                    buf.push(TAG_RECV_COMPLETE);
                    put_varint(&mut buf, peer as u64);
                    put_varint(&mut buf, tag as u64);
                    put_varint(&mut buf, bytes);
                }
                EventKind::CollectiveEnd { op, bytes, root } => {
                    buf.push(TAG_COLLECTIVE_END);
                    buf.push(op as u8);
                    put_varint(&mut buf, bytes);
                    put_varint(&mut buf, root as u64);
                }
            }
        }
    }

    buf
}

/// Deserialise a trace from bytes.
pub fn decode(data: &[u8]) -> Result<Trace, DecodeError> {
    let mut buf = Reader::new(data);
    let magic = buf.get_slice(4)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }

    let clock = match require_u8(&mut buf)? {
        0 => ClockKind::Physical,
        1 => ClockKind::Logical { model: get_string(&mut buf)? },
        t => return Err(DecodeError::BadTag(t)),
    };

    // Length fields come from untrusted input: never pre-allocate more
    // than a sane bound, or a corrupted varint aborts the process.
    const CAP: usize = 1 << 16;
    let n_regions = get_varint(&mut buf)? as usize;
    let mut regions = Vec::with_capacity(n_regions.min(CAP));
    for _ in 0..n_regions {
        let name = get_string(&mut buf)?;
        let role_byte = require_u8(&mut buf)?;
        let role = RegionRole::from_u8(role_byte).ok_or(DecodeError::BadTag(role_byte))?;
        regions.push(RegionDef { name, role });
    }

    let threads_per_rank = get_varint(&mut buf)? as u32;
    let n_locations = get_varint(&mut buf)? as usize;
    let mut locations = Vec::with_capacity(n_locations.min(CAP));
    for _ in 0..n_locations {
        locations.push(LocationDef {
            rank: get_varint(&mut buf)? as u32,
            thread: get_varint(&mut buf)? as u32,
            core: get_varint(&mut buf)? as u32,
        });
    }

    let n_streams = get_varint(&mut buf)? as usize;
    let mut streams = Vec::with_capacity(n_streams.min(CAP));
    for _ in 0..n_streams {
        let n_events = get_varint(&mut buf)? as usize;
        let mut stream = crate::EventStream::with_capacity(n_events.min(CAP));
        let mut last = 0u64;
        for _ in 0..n_events {
            let delta = get_varint(&mut buf)?;
            let time = last.checked_add(delta).ok_or(DecodeError::NonMonotoneTime)?;
            last = time;
            let tag = require_u8(&mut buf)?;
            let kind = match tag {
                TAG_ENTER => EventKind::Enter { region: RegionRef(get_varint(&mut buf)? as u32) },
                TAG_LEAVE => EventKind::Leave { region: RegionRef(get_varint(&mut buf)? as u32) },
                TAG_BURST => {
                    let region = RegionRef(get_varint(&mut buf)? as u32);
                    let count = get_varint(&mut buf)?;
                    let back = get_varint(&mut buf)?;
                    let start = time.checked_sub(back).ok_or(DecodeError::NonMonotoneTime)?;
                    EventKind::CallBurst { region, count, start }
                }
                TAG_SEND_POST => EventKind::SendPost {
                    peer: get_varint(&mut buf)? as u32,
                    tag: get_varint(&mut buf)? as u32,
                    bytes: get_varint(&mut buf)?,
                },
                TAG_RECV_POST => EventKind::RecvPost {
                    peer: get_varint(&mut buf)? as u32,
                    tag: get_varint(&mut buf)? as u32,
                    bytes: get_varint(&mut buf)?,
                },
                TAG_RECV_COMPLETE => EventKind::RecvComplete {
                    peer: get_varint(&mut buf)? as u32,
                    tag: get_varint(&mut buf)? as u32,
                    bytes: get_varint(&mut buf)?,
                },
                TAG_COLLECTIVE_END => {
                    let op_byte = require_u8(&mut buf)?;
                    let op = CollectiveOp::from_u8(op_byte).ok_or(DecodeError::BadTag(op_byte))?;
                    let bytes = get_varint(&mut buf)?;
                    let root = get_varint(&mut buf)? as u32;
                    EventKind::CollectiveEnd { op, bytes, root }
                }
                t => return Err(DecodeError::BadTag(t)),
            };
            stream.push(Event { time, kind });
        }
        streams.push(stream);
    }

    Ok(Trace {
        defs: Definitions {
            regions: std::sync::Arc::new(regions),
            locations: std::sync::Arc::new(locations),
            threads_per_rank,
            clock,
        },
        streams,
    })
}

fn require_u8(buf: &mut Reader<'_>) -> Result<u8, DecodeError> {
    buf.get_u8()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs::LocationDef;

    fn sample_trace() -> Trace {
        let defs = Definitions {
            regions: std::sync::Arc::new(vec![
                RegionDef { name: "main".into(), role: RegionRole::Function },
                RegionDef { name: "MPI_Allreduce".into(), role: RegionRole::MpiApi },
            ]),
            locations: std::sync::Arc::new(vec![
                LocationDef { rank: 0, thread: 0, core: 0 },
                LocationDef { rank: 1, thread: 0, core: 16 },
            ]),
            threads_per_rank: 1,
            clock: ClockKind::Logical { model: "lt_stmt".into() },
        };
        let r0 = RegionRef(0);
        let r1 = RegionRef(1);
        let s0 = vec![
            Event::new(0, EventKind::Enter { region: r0 }),
            Event::new(10, EventKind::CallBurst { region: r1, count: 42, start: 2 }),
            Event::new(12, EventKind::Enter { region: r1 }),
            Event::new(12, EventKind::SendPost { peer: 1, tag: 7, bytes: 4096 }),
            Event::new(
                20,
                EventKind::CollectiveEnd {
                    op: CollectiveOp::Allreduce,
                    bytes: 8,
                    root: crate::event::NO_ROOT,
                },
            ),
            Event::new(21, EventKind::Leave { region: r1 }),
            Event::new(30, EventKind::Leave { region: r0 }),
        ];
        let s1 = vec![
            Event::new(5, EventKind::Enter { region: r0 }),
            Event::new(6, EventKind::RecvPost { peer: 0, tag: 7, bytes: 4096 }),
            Event::new(15, EventKind::RecvComplete { peer: 0, tag: 7, bytes: 4096 }),
            Event::new(33, EventKind::Leave { region: r0 }),
        ];
        Trace { defs, streams: vec![s0.into(), s1.into()] }
    }

    #[test]
    fn roundtrip() {
        let t = sample_trace();
        let bytes = encode(&t);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.defs, t.defs);
        assert_eq!(back.streams, t.streams);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample_trace());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&sample_trace());
        bytes[5] = 99;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadVersion(_))));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&sample_trace());
        for cut in [3, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn varint_roundtrip_extremes() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut reader = Reader::new(&buf);
        for &v in &values {
            assert_eq!(get_varint(&mut reader).unwrap(), v);
        }
        assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace {
            defs: Definitions {
                regions: std::sync::Arc::new(vec![]),
                locations: std::sync::Arc::new(vec![]),
                threads_per_rank: 1,
                clock: ClockKind::Physical,
            },
            streams: vec![],
        };
        let back = decode(&encode(&t)).unwrap();
        assert_eq!(back.streams.len(), 0);
        assert_eq!(back.defs.clock, ClockKind::Physical);
    }
}
