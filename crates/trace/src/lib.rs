//! # nrlt-trace — trace data model and binary format
//!
//! The trace layer between measurement and analysis, playing the role
//! OTF2 plays for Score-P and Scalasca: definition tables (regions,
//! locations, clock), per-location event streams, and a compact
//! versioned binary encoding.
//!
//! Timestamps are bare `u64`s on purpose. Under the physical clock they
//! are virtual nanoseconds; under a logical clock they are Lamport
//! counter values. Nothing downstream needs to know which — that is the
//! paper's point: Scalasca's wait-state analysis runs unchanged on
//! logical traces.

#![warn(missing_docs)]

pub mod defs;
pub mod event;
pub mod io;
pub mod segment;
pub mod store;
pub mod stream;

pub use defs::{
    ClockKind, Definitions, LocationDef, LocationRef, RegionDef, RegionRef, RegionRole,
};
pub use event::{CollectiveOp, Event, EventKind, NO_ROOT};
pub use io::{decode, encode, DecodeError};
pub use segment::{
    temp_segment_path, MergedEvents, SegmentCursor, SegmentError, SegmentIndex, SegmentWriter,
    SpillStats, SpilledTrace,
};
pub use store::{LocationEvents, TraceData, TraceView};
pub use stream::EventStream;

/// A complete trace: definitions plus one event stream per location.
///
/// Stream `i` belongs to location `LocationRef(i)`; streams are sorted by
/// (rank, thread) and timestamps are non-decreasing within each stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Definition tables.
    pub defs: Definitions,
    /// Event streams, one per location, in [`LocationRef`] order.
    pub streams: Vec<EventStream>,
}

impl Trace {
    /// Pre-sized event streams for `n_locations` locations, each with
    /// room for `events_per_stream` events. Recording a trace appends
    /// millions of events per location; growing each stream from empty
    /// costs a reallocation cascade per stream, so writers that can
    /// estimate the event count (the measurement system walks the
    /// program once) should start from this.
    pub fn presized_streams(n_locations: usize, events_per_stream: usize) -> Vec<EventStream> {
        // Cap the up-front reservation so a wild estimate cannot ask the
        // allocator for more than ~16M events (~528 MiB) per stream.
        let cap = events_per_stream.min(1 << 24);
        (0..n_locations).map(|_| EventStream::with_capacity(cap)).collect()
    }

    /// Total number of events across all streams.
    pub fn total_events(&self) -> usize {
        self.streams.iter().map(EventStream::len).sum()
    }

    /// The event stream of one location.
    pub fn stream(&self, loc: LocationRef) -> &EventStream {
        &self.streams[loc.0 as usize]
    }

    /// Largest timestamp in the trace (0 for an empty trace).
    pub fn end_time(&self) -> u64 {
        self.streams.iter().filter_map(|s| s.last()).map(|e| e.time).max().unwrap_or(0)
    }

    /// Smallest timestamp in the trace (0 for an empty trace).
    pub fn start_time(&self) -> u64 {
        self.streams.iter().filter_map(|s| s.first()).map(|e| e.time).min().unwrap_or(0)
    }

    /// Check stream invariants: per-stream monotone timestamps and
    /// balanced Enter/Leave nesting. Used by tests and by the analyzer's
    /// debug mode.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.streams.len() != self.defs.locations.len() {
            return Err(format!(
                "{} streams for {} locations",
                self.streams.len(),
                self.defs.locations.len()
            ));
        }
        for (i, stream) in self.streams.iter().enumerate() {
            let mut last = 0u64;
            let mut stack: Vec<RegionRef> = Vec::new();
            for ev in stream.iter() {
                if ev.time < last {
                    return Err(format!("location {i}: time went backwards at {}", ev.time));
                }
                last = ev.time;
                match ev.kind {
                    EventKind::Enter { region } => stack.push(region),
                    EventKind::Leave { region } => match stack.pop() {
                        Some(top) if top == region => {}
                        Some(top) => {
                            return Err(format!(
                                "location {i}: Leave({}) does not match Enter({})",
                                self.defs.region(region).name,
                                self.defs.region(top).name
                            ))
                        }
                        None => {
                            return Err(format!(
                                "location {i}: Leave({}) with empty stack",
                                self.defs.region(region).name
                            ))
                        }
                    },
                    EventKind::CallBurst { start, .. } if start > ev.time => {
                        return Err(format!("location {i}: burst start after end"));
                    }
                    _ => {}
                }
            }
            if !stack.is_empty() {
                return Err(format!("location {i}: {} regions left open", stack.len()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Trace {
        Trace {
            defs: Definitions {
                regions: std::sync::Arc::new(vec![RegionDef {
                    name: "main".into(),
                    role: RegionRole::Function,
                }]),
                locations: std::sync::Arc::new(vec![LocationDef { rank: 0, thread: 0, core: 0 }]),
                threads_per_rank: 1,
                clock: ClockKind::Physical,
            },
            streams: vec![vec![
                Event::new(3, EventKind::Enter { region: RegionRef(0) }),
                Event::new(9, EventKind::Leave { region: RegionRef(0) }),
            ]
            .into()],
        }
    }

    #[test]
    fn totals_and_bounds() {
        let t = tiny();
        assert_eq!(t.total_events(), 2);
        assert_eq!(t.start_time(), 3);
        assert_eq!(t.end_time(), 9);
        assert_eq!(t.stream(LocationRef(0)).len(), 2);
    }

    #[test]
    fn consistency_ok() {
        assert!(tiny().check_consistency().is_ok());
    }

    #[test]
    fn consistency_catches_backwards_time() {
        let mut t = tiny();
        t.streams[0].set_time(1, 1);
        assert!(t.check_consistency().unwrap_err().contains("backwards"));
    }

    #[test]
    fn consistency_catches_unbalanced() {
        let mut t = tiny();
        t.streams[0].pop();
        assert!(t.check_consistency().unwrap_err().contains("left open"));
    }

    #[test]
    fn consistency_catches_stream_count_mismatch() {
        let mut t = tiny();
        t.streams.push(EventStream::new());
        assert!(t.check_consistency().is_err());
    }
}
