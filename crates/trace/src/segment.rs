//! Sharded columnar spill segments — the out-of-core trace store.
//!
//! The resident [`Trace`](crate::Trace) keeps every event of every
//! location in memory, which caps experiments at the host's RAM
//! (~33 bytes/event across the six SoA columns). This module spills the
//! [`EventStream`] columns to an append-only segment file in
//! fixed-capacity **chunks** so recording and analysis both run in
//! O(locations × chunk) memory instead of O(events).
//!
//! ## File layout
//!
//! ```text
//! +--------+----------+----------+----     ----+------------+---------+
//! | header | chunk 0  | chunk 1  |    ...      |   footer   | trailer |
//! | NRLS,v | loc A    | loc B    |             | chunk index| len,sum |
//! +--------+----------+----------+----     ----+------------+---------+
//! ```
//!
//! * **header** — magic `NRLS` + big-endian `u16` version.
//! * **chunk** — the columnar encoding of ≤ `chunk_events` events of
//!   one location: varint event count, the time column (absolute first
//!   timestamp, then monotone deltas), the raw tag bytes, then the
//!   `a`/`b`/`x`/`y` payload columns as varints (`y` of a `CallBurst`
//!   is stored as a backwards delta from the event time, mirroring the
//!   wire format in `io.rs`). Chunks of different locations interleave
//!   in spill order; chunks of one location appear in time order.
//! * **footer** — varint chunk count, then one record per chunk:
//!   location, byte offset, byte length, event count, first and last
//!   timestamp. This is the whole index — a reader seeks straight to
//!   any chunk of any location.
//! * **trailer** — fixed 20 bytes: big-endian `u64` footer length,
//!   big-endian `u64` FNV-1a checksum of the footer bytes, magic
//!   `NRLF`. Readers locate the footer from the end of the file and
//!   reject truncated or corrupt indexes before touching any chunk.
//!
//! Definition tables are *not* stored here: they stay Arc-shared in
//! memory ([`Definitions`]) exactly as on the resident path, so a
//! spilled trace is `(defs, segment file)`.

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::defs::Definitions;
use crate::event::Event;
use crate::io::{get_varint, put_varint, Reader};
use crate::stream::{self, EventStream};

/// Magic bytes at the start of every segment file.
pub const SEG_MAGIC: &[u8; 4] = b"NRLS";
/// Magic bytes ending the trailer (last 4 bytes of the file).
pub const FOOTER_MAGIC: &[u8; 4] = b"NRLF";
/// Current segment format version.
pub const SEG_VERSION: u16 = 1;
/// Byte size of the fixed trailer (footer length + checksum + magic).
const TRAILER_LEN: u64 = 20;

/// A failure opening or decoding a segment file.
#[derive(Debug)]
pub enum SegmentError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The header or footer bytes are malformed.
    Format(crate::DecodeError),
    /// The footer checksum did not match (corrupt or truncated index).
    BadChecksum,
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment i/o: {e}"),
            SegmentError::Format(e) => write!(f, "segment format: {e}"),
            SegmentError::BadChecksum => write!(f, "segment footer checksum mismatch"),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<std::io::Error> for SegmentError {
    fn from(e: std::io::Error) -> SegmentError {
        SegmentError::Io(e)
    }
}

impl From<crate::DecodeError> for SegmentError {
    fn from(e: crate::DecodeError) -> SegmentError {
        SegmentError::Format(e)
    }
}

/// FNV-1a over the footer bytes — cheap, dependency-free, and enough
/// to catch the truncation/bit-rot cases the tests exercise.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Index record for one chunk: where it lives and what it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Location the chunk belongs to.
    pub loc: u32,
    /// Byte offset of the chunk in the segment file.
    pub offset: u64,
    /// Encoded byte length of the chunk.
    pub len: u64,
    /// Number of events in the chunk.
    pub n_events: u64,
    /// Timestamp of the first event.
    pub first_time: u64,
    /// Timestamp of the last event.
    pub last_time: u64,
}

/// Aggregate spill statistics, for the engineprof gauges and KPIs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Chunks written so far.
    pub chunks: u64,
    /// Encoded bytes written (excluding header/footer).
    pub bytes: u64,
    /// Events spilled.
    pub events: u64,
}

/// Appends columnar chunks to a segment file.
///
/// The writer owns a scratch encode buffer reused across chunks; a
/// [`spill`](SegmentWriter::spill) encodes one location's resident
/// columns, appends them, and clears the stream in place so recording
/// continues into the same allocations.
pub struct SegmentWriter {
    file: BufWriter<File>,
    pos: u64,
    chunks: Vec<ChunkMeta>,
    scratch: Vec<u8>,
    stats: SpillStats,
}

impl SegmentWriter {
    /// Create a segment file at `path`, truncating any existing file.
    pub fn create(path: &Path) -> Result<SegmentWriter, SegmentError> {
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(SEG_MAGIC)?;
        file.write_all(&SEG_VERSION.to_be_bytes())?;
        Ok(SegmentWriter {
            file,
            pos: 6,
            chunks: Vec::new(),
            scratch: Vec::new(),
            stats: SpillStats::default(),
        })
    }

    /// Encode and append `stream` as one chunk of location `loc`, then
    /// clear the stream (keeping its allocations). Empty streams spill
    /// to nothing.
    pub fn spill(&mut self, loc: u32, stream: &mut EventStream) -> Result<(), SegmentError> {
        if stream.is_empty() {
            return Ok(());
        }
        let cols = stream.columns();
        let n = cols.times.len();
        self.scratch.clear();
        put_varint(&mut self.scratch, n as u64);
        // Time column: absolute first value, then monotone deltas.
        put_varint(&mut self.scratch, cols.times[0]);
        for i in 1..n {
            debug_assert!(cols.times[i] >= cols.times[i - 1], "stream timestamps must be monotone");
            put_varint(&mut self.scratch, cols.times[i] - cols.times[i - 1]);
        }
        self.scratch.extend_from_slice(cols.tags);
        for &a in cols.a {
            put_varint(&mut self.scratch, a as u64);
        }
        for &b in cols.b {
            put_varint(&mut self.scratch, b as u64);
        }
        for &x in cols.x {
            put_varint(&mut self.scratch, x);
        }
        for i in 0..n {
            // `y` is only populated for CallBurst, where it is a start
            // time ≤ the event time: store the backwards delta, which
            // is small. Other kinds carry y = 0.
            if cols.tags[i] == stream::T_BURST {
                put_varint(&mut self.scratch, cols.times[i] - cols.y[i]);
            } else {
                put_varint(&mut self.scratch, cols.y[i]);
            }
        }
        let meta = ChunkMeta {
            loc,
            offset: self.pos,
            len: self.scratch.len() as u64,
            n_events: n as u64,
            first_time: cols.times[0],
            last_time: cols.times[n - 1],
        };
        self.file.write_all(&self.scratch)?;
        self.pos += meta.len;
        self.chunks.push(meta);
        self.stats.chunks += 1;
        self.stats.bytes += meta.len;
        self.stats.events += n as u64;
        stream.clear();
        Ok(())
    }

    /// Spill statistics so far.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Write the footer and trailer and flush. Returns the chunk index.
    pub fn finish(mut self) -> Result<SegmentIndex, SegmentError> {
        self.scratch.clear();
        put_varint(&mut self.scratch, self.chunks.len() as u64);
        for c in &self.chunks {
            put_varint(&mut self.scratch, c.loc as u64);
            put_varint(&mut self.scratch, c.offset);
            put_varint(&mut self.scratch, c.len);
            put_varint(&mut self.scratch, c.n_events);
            put_varint(&mut self.scratch, c.first_time);
            put_varint(&mut self.scratch, c.last_time);
        }
        let sum = fnv1a(&self.scratch);
        self.file.write_all(&self.scratch)?;
        self.file.write_all(&(self.scratch.len() as u64).to_be_bytes())?;
        self.file.write_all(&sum.to_be_bytes())?;
        self.file.write_all(FOOTER_MAGIC)?;
        self.file.flush()?;
        Ok(SegmentIndex::from_chunks(self.chunks))
    }
}

/// The decoded chunk index of a segment file, grouped per location.
#[derive(Debug, Clone, Default)]
pub struct SegmentIndex {
    per_loc: Vec<Vec<ChunkMeta>>,
    total_events: u64,
}

impl SegmentIndex {
    fn from_chunks(chunks: Vec<ChunkMeta>) -> SegmentIndex {
        let n_locs = chunks.iter().map(|c| c.loc as usize + 1).max().unwrap_or(0);
        let mut per_loc = vec![Vec::new(); n_locs];
        let mut total_events = 0;
        // Append order within a location is time order (a location's
        // chunks are spilled as its stream fills).
        for c in chunks {
            total_events += c.n_events;
            per_loc[c.loc as usize].push(c);
        }
        SegmentIndex { per_loc, total_events }
    }

    /// Read and validate the index of the segment file at `path`:
    /// header magic/version, trailer magic, footer checksum. Rejects
    /// truncated and corrupt files without reading any chunk.
    pub fn load(path: &Path) -> Result<SegmentIndex, SegmentError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < 6 + TRAILER_LEN {
            return Err(crate::DecodeError::Truncated.into());
        }
        let mut header = [0u8; 6];
        file.read_exact(&mut header)?;
        if &header[..4] != SEG_MAGIC {
            return Err(crate::DecodeError::BadMagic.into());
        }
        let version = u16::from_be_bytes([header[4], header[5]]);
        if version != SEG_VERSION {
            return Err(crate::DecodeError::BadVersion(version).into());
        }
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        file.read_exact(&mut trailer)?;
        if &trailer[16..20] != FOOTER_MAGIC {
            return Err(crate::DecodeError::BadMagic.into());
        }
        let footer_len = u64::from_be_bytes(trailer[0..8].try_into().expect("fixed slice"));
        let want_sum = u64::from_be_bytes(trailer[8..16].try_into().expect("fixed slice"));
        if footer_len > file_len - 6 - TRAILER_LEN {
            return Err(crate::DecodeError::Truncated.into());
        }
        let footer_off = file_len - TRAILER_LEN - footer_len;
        let mut footer = vec![0u8; footer_len as usize];
        file.seek(SeekFrom::Start(footer_off))?;
        file.read_exact(&mut footer)?;
        if fnv1a(&footer) != want_sum {
            return Err(SegmentError::BadChecksum);
        }
        let mut r = Reader::new(&footer);
        let n_chunks = get_varint(&mut r)? as usize;
        // Untrusted length: bound the pre-allocation.
        let mut chunks = Vec::with_capacity(n_chunks.min(1 << 16));
        for _ in 0..n_chunks {
            chunks.push(ChunkMeta {
                loc: get_varint(&mut r)? as u32,
                offset: get_varint(&mut r)?,
                len: get_varint(&mut r)?,
                n_events: get_varint(&mut r)?,
                first_time: get_varint(&mut r)?,
                last_time: get_varint(&mut r)?,
            });
        }
        Ok(SegmentIndex::from_chunks(chunks))
    }

    /// Number of locations with at least one indexed chunk slot.
    pub fn n_locations(&self) -> usize {
        self.per_loc.len()
    }

    /// Total events across all chunks.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// The chunk records of one location, in time order.
    pub fn chunks(&self, loc: usize) -> &[ChunkMeta] {
        self.per_loc.get(loc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Index of the first chunk of `loc` whose events can reach time
    /// `t` (i.e. `last_time >= t`), galloping forward from `hint` —
    /// the same exponential-probe idiom as the analysis delay cursors.
    /// Exact for any hint.
    pub fn chunk_lower_bound(&self, loc: usize, t: u64, hint: usize) -> usize {
        let xs = self.chunks(loc);
        let mut lo = hint.min(xs.len());
        if lo > 0 && xs[lo - 1].last_time >= t {
            lo = 0; // hint overshot: fall back to a full search
        }
        let mut step = 1;
        let mut hi = lo;
        while hi < xs.len() && xs[hi].last_time < t {
            lo = hi + 1;
            hi += step;
            step *= 2;
        }
        let hi = hi.min(xs.len());
        lo + xs[lo..hi].partition_point(|c| c.last_time < t)
    }
}

/// Decode one chunk's bytes back into an [`EventStream`].
pub fn decode_chunk(data: &[u8]) -> Result<EventStream, crate::DecodeError> {
    let mut r = Reader::new(data);
    let n = get_varint(&mut r)? as usize;
    let mut out = EventStream::with_capacity(n.min(1 << 24));
    let mut times = Vec::with_capacity(n.min(1 << 24));
    let mut last = 0u64;
    for i in 0..n {
        let d = get_varint(&mut r)?;
        let t = if i == 0 {
            d
        } else {
            last.checked_add(d).ok_or(crate::DecodeError::NonMonotoneTime)?
        };
        times.push(t);
        last = t;
    }
    let tags = r.get_slice(n)?.to_vec();
    for &tag in &tags {
        if tag > stream::T_MAX {
            return Err(crate::DecodeError::BadTag(tag));
        }
    }
    let mut col_a = Vec::with_capacity(n);
    for _ in 0..n {
        col_a.push(get_varint(&mut r)? as u32);
    }
    let mut col_b = Vec::with_capacity(n);
    for _ in 0..n {
        col_b.push(get_varint(&mut r)? as u32);
    }
    let mut col_x = Vec::with_capacity(n);
    for _ in 0..n {
        col_x.push(get_varint(&mut r)?);
    }
    for i in 0..n {
        let enc = get_varint(&mut r)?;
        let y = if tags[i] == stream::T_BURST {
            times[i].checked_sub(enc).ok_or(crate::DecodeError::NonMonotoneTime)?
        } else {
            enc
        };
        out.push_raw(times[i], tags[i], col_a[i], col_b[i], col_x[i], y);
    }
    if r.remaining() != 0 {
        return Err(crate::DecodeError::Truncated);
    }
    Ok(out)
}

static SEGMENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// A collision-free path for a fresh spill file under the system temp
/// directory: unique per process and per call.
pub fn temp_segment_path(tag: &str) -> PathBuf {
    let seq = SEGMENT_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("nrlt-{}-{}-{}.seg", tag, std::process::id(), seq))
}

/// A trace whose events live in a segment file: Arc-shared definition
/// tables in memory, columnar chunks on disk. The file is deleted when
/// the value drops.
#[derive(Debug)]
pub struct SpilledTrace {
    /// Definition tables (identical to the resident path's).
    pub defs: Definitions,
    path: PathBuf,
    index: SegmentIndex,
    n_locations: usize,
}

impl SpilledTrace {
    /// Assemble a spilled trace from a finished writer's parts.
    ///
    /// `n_locations` is the trace's location count (the index alone
    /// cannot know it: trailing locations may have recorded nothing).
    pub fn from_parts(
        defs: Definitions,
        path: PathBuf,
        index: SegmentIndex,
        n_locations: usize,
    ) -> SpilledTrace {
        SpilledTrace { defs, path, index, n_locations }
    }

    /// Open and validate an existing segment file.
    pub fn open(defs: Definitions, path: PathBuf) -> Result<SpilledTrace, SegmentError> {
        let index = SegmentIndex::load(&path)?;
        let n_locations = defs.locations.len();
        Ok(SpilledTrace { defs, path, index, n_locations })
    }

    /// Number of locations (= streams on the resident path).
    pub fn n_locations(&self) -> usize {
        self.n_locations
    }

    /// Total events in the segment file.
    pub fn total_events(&self) -> usize {
        self.index.total_events() as usize
    }

    /// The chunk index.
    pub fn index(&self) -> &SegmentIndex {
        &self.index
    }

    /// Path of the backing segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A streaming cursor over one location's events, decoded chunk by
    /// chunk into a bounded scratch buffer.
    pub fn cursor(&self, loc: usize) -> Result<SegmentCursor, SegmentError> {
        Ok(SegmentCursor {
            file: File::open(&self.path)?,
            chunks: self.index.chunks(loc).to_vec(),
            next_chunk: 0,
            buf: EventStream::new(),
            raw: Vec::new(),
            idx: 0,
        })
    }
}

impl Drop for SpilledTrace {
    fn drop(&mut self) {
        // Best effort: a leaked temp file is not worth a panic.
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Streaming iterator over one location's spilled events.
///
/// Holds one decoded chunk at a time, so memory stays bounded by the
/// chunk capacity regardless of how many events the location recorded.
pub struct SegmentCursor {
    file: File,
    chunks: Vec<ChunkMeta>,
    next_chunk: usize,
    buf: EventStream,
    raw: Vec<u8>,
    idx: usize,
}

impl SegmentCursor {
    fn load_next_chunk(&mut self) -> bool {
        while self.next_chunk < self.chunks.len() {
            let meta = self.chunks[self.next_chunk];
            self.next_chunk += 1;
            self.raw.resize(meta.len as usize, 0);
            // The index was validated at open and the chunks were
            // written by this process (or validated on load): a failure
            // here is a torn file mid-run, which we surface loudly.
            self.file.seek(SeekFrom::Start(meta.offset)).expect("segment seek");
            self.file.read_exact(&mut self.raw).expect("segment chunk read");
            self.buf = decode_chunk(&self.raw).expect("segment chunk decode");
            self.idx = 0;
            if !self.buf.is_empty() {
                return true;
            }
        }
        false
    }

    /// Advance past all events with time < `t`, galloping over whole
    /// chunks via the index metadata before decoding anything.
    pub fn skip_until(&mut self, t: u64) {
        // Skip whole undecoded chunks that end before t.
        while self.next_chunk < self.chunks.len()
            && self.idx >= self.buf.len()
            && self.chunks[self.next_chunk].last_time < t
        {
            self.next_chunk += 1;
        }
        // Skip within the decoded chunk.
        while self.idx < self.buf.len() && self.buf.time(self.idx) < t {
            self.idx += 1;
        }
    }
}

impl Iterator for SegmentCursor {
    type Item = Event;

    #[inline]
    fn next(&mut self) -> Option<Event> {
        if self.idx >= self.buf.len() && !self.load_next_chunk() {
            return None;
        }
        let ev = self.buf.get(self.idx);
        self.idx += 1;
        Some(ev)
    }
}

/// K-way merge over per-location event iterators, yielding
/// `(location, event)` in global `(time, location)` order.
///
/// At most one event per location is buffered in the heap, so the
/// merge's working set is O(locations) however large the trace. The
/// peak heap occupancy is tracked for the engineprof gauges.
pub struct MergedEvents<I> {
    sources: Vec<I>,
    heap: BinaryHeap<HeapItem>,
    max_occupancy: usize,
}

struct HeapItem {
    time: u64,
    loc: u32,
    ev: Event,
}

// Min-heap on (time, loc) via reversed Ord. Only one item per location
// is ever enqueued, so the (time, loc) key is unique and the order
// total and deterministic.
impl PartialEq for HeapItem {
    fn eq(&self, other: &HeapItem) -> bool {
        (self.time, self.loc) == (other.time, other.loc)
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &HeapItem) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &HeapItem) -> std::cmp::Ordering {
        (other.time, other.loc).cmp(&(self.time, self.loc))
    }
}

impl<I: Iterator<Item = Event>> MergedEvents<I> {
    /// Build a merge over one iterator per location (index = location).
    pub fn new(sources: Vec<I>) -> MergedEvents<I> {
        let mut m = MergedEvents {
            heap: BinaryHeap::with_capacity(sources.len()),
            sources,
            max_occupancy: 0,
        };
        for loc in 0..m.sources.len() {
            m.refill(loc as u32);
        }
        m.max_occupancy = m.heap.len();
        m
    }

    fn refill(&mut self, loc: u32) {
        if let Some(ev) = self.sources[loc as usize].next() {
            self.heap.push(HeapItem { time: ev.time, loc, ev });
        }
    }

    /// Largest number of simultaneously buffered events observed.
    pub fn max_heap_occupancy(&self) -> usize {
        self.max_occupancy
    }
}

impl<I: Iterator<Item = Event>> Iterator for MergedEvents<I> {
    type Item = (u32, Event);

    fn next(&mut self) -> Option<(u32, Event)> {
        let item = self.heap.pop()?;
        self.refill(item.loc);
        self.max_occupancy = self.max_occupancy.max(self.heap.len());
        Some((item.loc, item.ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs::RegionRef;
    use crate::event::{CollectiveOp, EventKind, NO_ROOT};

    /// Deterministic generator (same idiom as the other property tests
    /// in this workspace — splitmix64, no external crates).
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    fn random_event(rng: &mut SplitMix64, t: u64) -> Event {
        let kind = match rng.next() % 7 {
            0 => EventKind::Enter { region: RegionRef((rng.next() % 64) as u32) },
            1 => EventKind::Leave { region: RegionRef((rng.next() % 64) as u32) },
            2 => EventKind::CallBurst {
                region: RegionRef((rng.next() % 64) as u32),
                count: rng.next() % 1000,
                start: t.saturating_sub(rng.next() % 50),
            },
            3 => EventKind::SendPost {
                peer: (rng.next() % 16) as u32,
                tag: (rng.next() % 8) as u32,
                bytes: rng.next() % (1 << 20),
            },
            4 => EventKind::RecvPost {
                peer: (rng.next() % 16) as u32,
                tag: (rng.next() % 8) as u32,
                bytes: rng.next() % (1 << 20),
            },
            5 => EventKind::RecvComplete {
                peer: (rng.next() % 16) as u32,
                tag: (rng.next() % 8) as u32,
                bytes: rng.next() % (1 << 20),
            },
            _ => EventKind::CollectiveEnd {
                op: CollectiveOp::from_u8((rng.next() % 4) as u8).unwrap_or(CollectiveOp::Barrier),
                bytes: rng.next() % (1 << 16),
                root: if rng.next().is_multiple_of(2) { NO_ROOT } else { (rng.next() % 16) as u32 },
            },
        };
        Event::new(t, kind)
    }

    fn random_stream(rng: &mut SplitMix64, n: usize) -> Vec<Event> {
        let mut t = rng.next() % 100;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(random_event(rng, t));
            t += rng.next() % 5; // non-decreasing, frequent ties
        }
        out
    }

    #[test]
    fn chunk_roundtrip_property() {
        let mut rng = SplitMix64(0x5eed);
        for case in 0..50 {
            let n = (case % 17 + 1) * 7;
            let events = random_stream(&mut rng, n);
            let mut s: EventStream = events.clone().into();
            let path = temp_segment_path("test-roundtrip");
            let mut w = SegmentWriter::create(&path).unwrap();
            w.spill(0, &mut s).unwrap();
            assert!(s.is_empty(), "spill clears the stream");
            let index = w.finish().unwrap();
            assert_eq!(index.total_events(), n as u64);
            let spilled = SpilledTrace::from_parts(
                Definitions {
                    regions: std::sync::Arc::new(vec![]),
                    locations: std::sync::Arc::new(vec![]),
                    threads_per_rank: 1,
                    clock: crate::ClockKind::Physical,
                },
                path,
                index,
                1,
            );
            let back: Vec<Event> = spilled.cursor(0).unwrap().collect();
            assert_eq!(back, events, "case {case}");
        }
    }

    #[test]
    fn multi_chunk_multi_location_roundtrip() {
        let mut rng = SplitMix64(42);
        let per_loc: Vec<Vec<Event>> = (0..3).map(|_| random_stream(&mut rng, 100)).collect();
        let path = temp_segment_path("test-multi");
        let mut w = SegmentWriter::create(&path).unwrap();
        // Interleave chunks of different locations, 10 events at a time.
        let mut buf = EventStream::new();
        for start in (0..100).step_by(10) {
            for (loc, evs) in per_loc.iter().enumerate() {
                for ev in &evs[start..start + 10] {
                    buf.push(*ev);
                }
                w.spill(loc as u32, &mut buf).unwrap();
            }
        }
        assert_eq!(w.stats().chunks, 30);
        assert_eq!(w.stats().events, 300);
        let index = w.finish().unwrap();
        // Reload the index from disk and compare to the in-memory one.
        let loaded = SegmentIndex::load(&path).unwrap();
        assert_eq!(loaded.total_events(), index.total_events());
        for loc in 0..3 {
            assert_eq!(loaded.chunks(loc), index.chunks(loc));
        }
        let spilled = SpilledTrace::from_parts(
            Definitions {
                regions: std::sync::Arc::new(vec![]),
                locations: std::sync::Arc::new(vec![]),
                threads_per_rank: 1,
                clock: crate::ClockKind::Physical,
            },
            path,
            index,
            3,
        );
        for (loc, evs) in per_loc.iter().enumerate() {
            let back: Vec<Event> = spilled.cursor(loc).unwrap().collect();
            assert_eq!(&back, evs, "location {loc}");
        }
    }

    fn tiny_segment() -> (PathBuf, Vec<Event>) {
        let mut rng = SplitMix64(7);
        let events = random_stream(&mut rng, 20);
        let mut s: EventStream = events.clone().into();
        let path = temp_segment_path("test-corrupt");
        let mut w = SegmentWriter::create(&path).unwrap();
        w.spill(0, &mut s).unwrap();
        w.finish().unwrap();
        (path, events)
    }

    #[test]
    fn truncated_file_rejected() {
        let (path, _) = tiny_segment();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 5, 10, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(SegmentIndex::load(&path).is_err(), "cut at {cut} must fail");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_footer_rejected() {
        let (path, _) = tiny_segment();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the footer (between the chunks and the
        // trailer); the checksum must catch it.
        let idx = bytes.len() - TRAILER_LEN as usize - 1;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(SegmentIndex::load(&path), Err(SegmentError::BadChecksum)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let (path, _) = tiny_segment();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentIndex::load(&path),
            Err(SegmentError::Format(crate::DecodeError::BadMagic))
        ));
        // Corrupt trailer magic too.
        let n = bytes.len();
        bytes[0] = b'N';
        bytes[n - 1] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(SegmentIndex::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn spilled_trace_deletes_file_on_drop() {
        let (path, _) = tiny_segment();
        assert!(path.exists());
        {
            let _t = SpilledTrace::open(
                Definitions {
                    regions: std::sync::Arc::new(vec![]),
                    locations: std::sync::Arc::new(vec![]),
                    threads_per_rank: 1,
                    clock: crate::ClockKind::Physical,
                },
                path.clone(),
            )
            .unwrap();
            assert_eq!(_t.total_events(), 20);
        }
        assert!(!path.exists());
    }

    #[test]
    fn chunk_lower_bound_gallops_exactly() {
        let path = temp_segment_path("test-lb");
        let mut w = SegmentWriter::create(&path).unwrap();
        let mut buf = EventStream::new();
        // 8 chunks of 4 events: chunk k covers times [40k, 40k+30].
        for k in 0..8u64 {
            for i in 0..4 {
                buf.push(Event::new(40 * k + 10 * i, EventKind::Enter { region: RegionRef(0) }));
            }
            w.spill(0, &mut buf).unwrap();
        }
        let index = w.finish().unwrap();
        let _ = std::fs::remove_file(&path);
        let chunks = index.chunks(0);
        for t in [0u64, 1, 30, 31, 70, 155, 290, 311, 1000] {
            let want = chunks.partition_point(|c| c.last_time < t);
            for hint in 0..=chunks.len() {
                assert_eq!(index.chunk_lower_bound(0, t, hint), want, "t={t} hint={hint}");
            }
        }
    }

    #[test]
    fn merge_orders_by_time_then_location() {
        let a = vec![
            Event::new(1, EventKind::Enter { region: RegionRef(0) }),
            Event::new(5, EventKind::Leave { region: RegionRef(0) }),
        ];
        let b = vec![
            Event::new(1, EventKind::Enter { region: RegionRef(1) }),
            Event::new(3, EventKind::Leave { region: RegionRef(1) }),
        ];
        let mut merged = MergedEvents::new(vec![a.into_iter(), b.into_iter()]);
        let order: Vec<(u32, u64)> = merged.by_ref().map(|(loc, ev)| (loc, ev.time)).collect();
        assert_eq!(order, vec![(0, 1), (1, 1), (1, 3), (0, 5)]);
        assert_eq!(merged.max_heap_occupancy(), 2);
    }

    #[test]
    fn cursor_skip_until_lands_on_lower_bound() {
        let path = temp_segment_path("test-skip");
        let mut w = SegmentWriter::create(&path).unwrap();
        let mut buf = EventStream::new();
        for k in 0..4u64 {
            for i in 0..4 {
                buf.push(Event::new(20 * k + 5 * i, EventKind::Enter { region: RegionRef(0) }));
            }
            w.spill(0, &mut buf).unwrap();
        }
        let index = w.finish().unwrap();
        let spilled = SpilledTrace::from_parts(
            Definitions {
                regions: std::sync::Arc::new(vec![]),
                locations: std::sync::Arc::new(vec![]),
                threads_per_rank: 1,
                clock: crate::ClockKind::Physical,
            },
            path,
            index,
            1,
        );
        let mut c = spilled.cursor(0).unwrap();
        c.skip_until(37);
        assert_eq!(c.next().unwrap().time, 40);
        let mut c2 = spilled.cursor(0).unwrap();
        c2.skip_until(0);
        assert_eq!(c2.next().unwrap().time, 0);
    }
}
