//! Trace definitions: the global tables an event stream refers to.
//!
//! This mirrors OTF2's split between *definitions* (regions, locations,
//! clock properties — written once) and *events* (the per-location
//! streams). Keeping the trace format self-describing lets the analyzer
//! work on traces alone, without access to the program that produced them.

use std::sync::Arc;

/// Index into [`Definitions::regions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionRef(pub u32);

/// Index into [`Definitions::locations`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocationRef(pub u32);

/// Role of a region — the trace-level analogue of OTF2 region roles,
/// driving Scalasca's paradigm split (computation / MPI / OpenMP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RegionRole {
    /// Ordinary user function: computation.
    Function = 0,
    /// MPI API call.
    MpiApi = 1,
    /// OpenMP parallel construct.
    OmpParallel = 2,
    /// OpenMP worksharing loop body.
    OmpLoop = 3,
    /// Implicit barrier at the end of a worksharing construct.
    OmpImplicitBarrier = 4,
    /// Explicit OpenMP barrier.
    OmpBarrier = 5,
    /// OpenMP critical section.
    OmpCritical = 6,
    /// OpenMP `single` construct.
    OmpSingle = 7,
    /// OpenMP `master` construct.
    OmpMaster = 8,
    /// Thread fork/join management.
    OmpFork = 9,
}

impl RegionRole {
    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> Option<RegionRole> {
        Some(match v {
            0 => RegionRole::Function,
            1 => RegionRole::MpiApi,
            2 => RegionRole::OmpParallel,
            3 => RegionRole::OmpLoop,
            4 => RegionRole::OmpImplicitBarrier,
            5 => RegionRole::OmpBarrier,
            6 => RegionRole::OmpCritical,
            7 => RegionRole::OmpSingle,
            8 => RegionRole::OmpMaster,
            9 => RegionRole::OmpFork,
            _ => return None,
        })
    }

    /// True for any barrier-like OpenMP synchronisation region.
    pub fn is_omp_barrier(self) -> bool {
        matches!(self, RegionRole::OmpImplicitBarrier | RegionRole::OmpBarrier)
    }
}

/// One region definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionDef {
    /// Display name.
    pub name: String,
    /// Role classification.
    pub role: RegionRole,
}

/// One location definition: a thread of a rank, pinned to a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocationDef {
    /// MPI rank.
    pub rank: u32,
    /// OpenMP thread within the rank.
    pub thread: u32,
    /// Machine-global core index the location is pinned to.
    pub core: u32,
}

/// Which clock produced the timestamps in this trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClockKind {
    /// Physical timestamps in virtual nanoseconds (the simulated `tsc`).
    Physical,
    /// Logical timestamps from a Lamport clock with the named effort
    /// model (`lt_1`, `lt_loop`, `lt_bb`, `lt_stmt`, `lt_hwctr`).
    Logical {
        /// Effort-model name.
        model: String,
    },
}

impl ClockKind {
    /// Short display name (`tsc` for the physical clock).
    pub fn name(&self) -> &str {
        match self {
            ClockKind::Physical => "tsc",
            ClockKind::Logical { model } => model,
        }
    }
}

/// All definition tables of one trace.
///
/// The region and location tables are behind [`Arc`]s: a measurement
/// sweep builds them once per configuration and every trace/profile of
/// the sweep shares them, so cloning a `Definitions` (or handing the
/// tables to a [`crate::Trace`] consumer) is a reference-count bump, not
/// a table copy.
#[derive(Debug, Clone, PartialEq)]
pub struct Definitions {
    /// Region table; [`RegionRef`] indexes into it.
    pub regions: Arc<Vec<RegionDef>>,
    /// Location table; [`LocationRef`] indexes into it. Sorted by
    /// (rank, thread), dense.
    pub locations: Arc<Vec<LocationDef>>,
    /// Threads per rank (uniform in this simulator).
    pub threads_per_rank: u32,
    /// Clock that produced the timestamps.
    pub clock: ClockKind,
}

impl Definitions {
    /// Number of ranks.
    pub fn n_ranks(&self) -> u32 {
        if self.locations.is_empty() {
            0
        } else {
            self.locations.len() as u32 / self.threads_per_rank
        }
    }

    /// Location reference for `(rank, thread)`.
    pub fn location_ref(&self, rank: u32, thread: u32) -> LocationRef {
        debug_assert!(thread < self.threads_per_rank);
        LocationRef(rank * self.threads_per_rank + thread)
    }

    /// Definition behind a location reference.
    pub fn location(&self, r: LocationRef) -> &LocationDef {
        &self.locations[r.0 as usize]
    }

    /// Definition behind a region reference.
    pub fn region(&self, r: RegionRef) -> &RegionDef {
        &self.regions[r.0 as usize]
    }

    /// Look up a region by name.
    pub fn find_region(&self, name: &str) -> Option<RegionRef> {
        self.regions.iter().position(|r| r.name == name).map(|i| RegionRef(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Definitions {
        Definitions {
            regions: Arc::new(vec![
                RegionDef { name: "main".into(), role: RegionRole::Function },
                RegionDef { name: "MPI_Send".into(), role: RegionRole::MpiApi },
            ]),
            locations: Arc::new(vec![
                LocationDef { rank: 0, thread: 0, core: 0 },
                LocationDef { rank: 0, thread: 1, core: 1 },
                LocationDef { rank: 1, thread: 0, core: 16 },
                LocationDef { rank: 1, thread: 1, core: 17 },
            ]),
            threads_per_rank: 2,
            clock: ClockKind::Physical,
        }
    }

    #[test]
    fn location_ref_math() {
        let d = sample();
        assert_eq!(d.n_ranks(), 2);
        assert_eq!(d.location_ref(1, 0), LocationRef(2));
        assert_eq!(d.location(LocationRef(3)).rank, 1);
        assert_eq!(d.location(LocationRef(3)).thread, 1);
    }

    #[test]
    fn region_lookup() {
        let d = sample();
        assert_eq!(d.find_region("MPI_Send"), Some(RegionRef(1)));
        assert_eq!(d.find_region("nope"), None);
        assert_eq!(d.region(RegionRef(0)).name, "main");
    }

    #[test]
    fn role_roundtrip() {
        for v in 0..=9u8 {
            let role = RegionRole::from_u8(v).unwrap();
            assert_eq!(role as u8, v);
        }
        assert_eq!(RegionRole::from_u8(10), None);
    }

    #[test]
    fn clock_names() {
        assert_eq!(ClockKind::Physical.name(), "tsc");
        assert_eq!(ClockKind::Logical { model: "lt_bb".into() }.name(), "lt_bb");
    }

    #[test]
    fn barrier_role_predicate() {
        assert!(RegionRole::OmpImplicitBarrier.is_omp_barrier());
        assert!(RegionRole::OmpBarrier.is_omp_barrier());
        assert!(!RegionRole::OmpCritical.is_omp_barrier());
    }
}
