//! Full-pipeline tests: program → engine+measurement → trace → analysis
//! → profile, asserting that known performance problems surface in the
//! right metrics under both physical and logical clocks.

use nrlt_analysis::{analyze, analyze_with, AnalysisConfig};
use nrlt_exec::ExecConfig;
use nrlt_measure::{measure, ClockMode, MeasureConfig};
use nrlt_profile::{Metric, Profile};
use nrlt_prog::{Cost, IterCost, Program, ProgramBuilder, Schedule};
use nrlt_sim::{JobLayout, NoiseConfig};

fn run(p: &Program, cfg: &ExecConfig, mode: ClockMode) -> Profile {
    let (trace, _) = measure(p, cfg, &MeasureConfig::new(mode));
    trace.check_consistency().expect("trace must be consistent");
    analyze(&trace)
}

/// Rank 3 computes 4x more before an allreduce: a clean load imbalance.
fn imbalanced_allreduce() -> Program {
    let mut pb = ProgramBuilder::new(4);
    for r in 0..4 {
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            for _ in 0..10 {
                rb.scoped("light", |rb| rb.kernel(Cost::scalar(2_000_000), 0));
                if rb.rank_id() == 3 {
                    rb.scoped("heavy", |rb| rb.kernel(Cost::scalar(8_000_000), 0));
                }
                rb.allreduce(8);
            }
        });
    }
    pb.finish()
}

#[test]
fn wait_nxn_detected_under_all_clocks() {
    let p = imbalanced_allreduce();
    let cfg = ExecConfig::jureca(1, JobLayout::block(4, 1), 1);
    for mode in ClockMode::ALL {
        let prof = run(&p, &cfg, mode);
        let wait_pct = prof.pct_t(Metric::WaitNxN);
        assert!(
            wait_pct > 10.0,
            "{mode}: the imbalance must appear as wait_nxn, got {wait_pct:.1}%_T"
        );
        // Ranks 0-2 wait; rank 3 does not.
        let w3 = prof.metric_at_location(Metric::WaitNxN, 3);
        let w0 = prof.metric_at_location(Metric::WaitNxN, 0);
        assert!(w0 > w3 * 3.0, "{mode}: rank 0 must wait far more than rank 3");
    }
}

#[test]
fn delay_costs_point_to_the_heavy_function() {
    let p = imbalanced_allreduce();
    let cfg = ExecConfig::jureca(1, JobLayout::block(4, 1), 1);
    for mode in [ClockMode::Tsc, ClockMode::LtStmt] {
        let prof = run(&p, &cfg, mode);
        let heavy = prof.find_path("main/heavy").expect("heavy path exists");
        let delay = prof.map_c(Metric::DelayN2n);
        let heavy_share = delay.get(&heavy).copied().unwrap_or(0.0);
        assert!(
            heavy_share > 50.0,
            "{mode}: delay cost must point at `heavy` ({heavy_share:.1}%_M of {delay:?})"
        );
        // And it is attributed to rank 3 (the delayer).
        assert!(prof.get(Metric::DelayN2n, heavy, 3) > 0.0);
        assert_eq!(prof.get(Metric::DelayN2n, heavy, 0), 0.0);
    }
}

#[test]
fn late_sender_detected_and_attributed() {
    let mut pb = ProgramBuilder::new(2);
    {
        let mut rb = pb.rank(0);
        rb.scoped("main", |rb| {
            rb.scoped("slow_setup", |rb| rb.kernel(Cost::scalar(20_000_000), 0));
            rb.send(1, 0, 1024);
        });
    }
    {
        let mut rb = pb.rank(1);
        rb.scoped("main", |rb| {
            rb.recv(0, 0, 1024);
        });
    }
    let p = pb.finish();
    let cfg = ExecConfig::jureca(1, JobLayout::block(2, 1), 1);
    for mode in [ClockMode::Tsc, ClockMode::LtBb, ClockMode::LtHwctr] {
        let prof = run(&p, &cfg, mode);
        let ls = prof.metric_incl_total(Metric::LateSender);
        assert!(ls > 0.0, "{mode}: late sender must be found");
        // Severity sits on the receiver.
        assert!(prof.metric_at_location(Metric::LateSender, 1) > 0.0);
        assert_eq!(prof.metric_at_location(Metric::LateSender, 0), 0.0);
        // Delay cost points at the sender's slow setup.
        let setup = prof.find_path("main/slow_setup").unwrap();
        assert!(
            prof.get(Metric::DelayP2p, setup, 0) > 0.0,
            "{mode}: delay must blame slow_setup on rank 0"
        );
    }
}

#[test]
fn omp_barrier_wait_from_thread_imbalance() {
    let mut pb = ProgramBuilder::new(1);
    {
        let mut rb = pb.rank(0);
        rb.scoped("main", |rb| {
            rb.parallel("work", |omp| {
                omp.for_loop(
                    "ramp",
                    400,
                    Schedule::Static,
                    IterCost::Ramp { base: Cost::scalar(200_000), last_factor: 5.0 },
                    0,
                );
            });
        });
    }
    let p = pb.finish();
    let cfg = ExecConfig::jureca(1, JobLayout::block(1, 4), 1);
    for mode in [ClockMode::Tsc, ClockMode::LtLoop, ClockMode::LtStmt] {
        let prof = run(&p, &cfg, mode);
        let wait = prof.metric_incl_total(Metric::OmpBarrierWait);
        match mode {
            // Iterations are perfectly balanced across threads in count,
            // so lt_loop sees no barrier wait — the paper's LULESH
            // observation.
            ClockMode::LtLoop => {
                assert!(wait <= 4.0, "lt_loop counts iterations, which are balanced: {wait}")
            }
            _ => {
                assert!(wait > 0.0, "{mode}: ramp must cause barrier waiting");
                // Thread 0 (cheap half) waits more than thread 3.
                let w0 = prof.metric_at_location(Metric::OmpBarrierWait, 0);
                let w3 = prof.metric_at_location(Metric::OmpBarrierWait, 3);
                assert!(w0 > w3, "{mode}: thread 0 waits more ({w0} vs {w3})");
            }
        }
    }
}

#[test]
fn idle_threads_from_serial_region() {
    let mut pb = ProgramBuilder::new(1);
    {
        let mut rb = pb.rank(0);
        rb.scoped("main", |rb| {
            rb.scoped("serial_setup", |rb| rb.kernel(Cost::scalar(50_000_000), 0));
            rb.parallel("work", |omp| {
                omp.for_loop(
                    "loop",
                    1024,
                    Schedule::Static,
                    IterCost::Uniform(Cost::scalar(40_000)),
                    0,
                );
            });
        });
    }
    let p = pb.finish();
    let cfg = ExecConfig::jureca(1, JobLayout::block(1, 8), 1);
    let prof = run(&p, &cfg, ClockMode::Tsc);
    let idle_pct = prof.pct_t(Metric::IdleThreads);
    assert!(idle_pct > 20.0, "serial setup must idle 7 workers: {idle_pct:.1}%_T");
    // The idle time is attributed to the serial call path.
    let setup = prof.find_path("main/serial_setup").unwrap();
    let idle_share = prof.map_c(Metric::IdleThreads).get(&setup).copied().unwrap_or(0.0);
    assert!(idle_share > 50.0, "idle must blame serial_setup: {idle_share:.1}%_M");
    // Master has no idle severity; workers do.
    assert_eq!(prof.metric_at_location(Metric::IdleThreads, 0), 0.0);
    assert!(prof.metric_at_location(Metric::IdleThreads, 1) > 0.0);
}

#[test]
fn lt1_overweights_call_dense_code() {
    // Two equal-duration phases: one makes many cheap calls, the other
    // is a single flat kernel. Physical time splits ~50/50; lt_1 blames
    // the call-dense phase almost entirely — the paper's MiniFE-1
    // observation about matrix assembly.
    let mut pb = ProgramBuilder::new(1);
    {
        let mut rb = pb.rank(0);
        rb.scoped("main", |rb| {
            rb.scoped("call_dense", |rb| {
                rb.kernel_burst("tiny_fn", 20_000, Cost::scalar(40_000_000), 0);
            });
            rb.scoped("flat", |rb| rb.kernel(Cost::scalar(40_000_000), 0));
        });
    }
    let p = pb.finish();
    let cfg = ExecConfig::jureca(1, JobLayout::block(1, 1), 1).with_noise(NoiseConfig::silent());
    let tsc = run(&p, &cfg, ClockMode::Tsc);
    let lt1 = run(&p, &cfg, ClockMode::Lt1);
    let share = |prof: &Profile, path: &str| {
        let id = prof.find_path(path).unwrap();
        let map = prof.map_c(Metric::Comp);
        // Include the burst callee below the phase.
        let mut v = map.get(&id).copied().unwrap_or(0.0);
        for (c, x) in &map {
            if prof.path_string(*c).starts_with(&format!("{path}/")) {
                v += x;
            }
        }
        v
    };
    let tsc_dense = share(&tsc, "main/call_dense");
    let lt1_dense = share(&lt1, "main/call_dense");
    assert!((tsc_dense - 50.0).abs() < 15.0, "tsc sees roughly equal halves: {tsc_dense:.1}");
    assert!(lt1_dense > 90.0, "lt_1 must overweight the call-dense phase: {lt1_dense:.1}");
}

#[test]
fn analysis_is_deterministic() {
    let p = imbalanced_allreduce();
    let cfg = ExecConfig::jureca(1, JobLayout::block(4, 1), 1);
    let (trace, _) = measure(&p, &cfg, &MeasureConfig::new(ClockMode::Tsc));
    let a = analyze_with(&trace, &AnalysisConfig { delay_costs: true, workers: 3 });
    let b = analyze_with(&trace, &AnalysisConfig { delay_costs: true, workers: 7 });
    // Same cells regardless of worker count.
    let ma = a.map_mc();
    let mb = b.map_mc();
    assert_eq!(ma.len(), mb.len());
    for (k, va) in &ma {
        let vb = mb[k];
        assert!((va - vb).abs() < 1e-9, "{k:?}: {va} vs {vb}");
    }
}

#[test]
fn severity_is_conserved() {
    // Total time must equal the sum of all exclusive time severities,
    // and every metric total must be non-negative.
    let p = imbalanced_allreduce();
    let cfg = ExecConfig::jureca(1, JobLayout::block(4, 1), 1);
    let prof = run(&p, &cfg, ClockMode::Tsc);
    let total = prof.total_time();
    let parts: f64 = Metric::Time.subtree().into_iter().map(|m| prof.metric_excl_total(m)).sum();
    assert!((total - parts).abs() < 1e-6);
    for m in Metric::ALL {
        assert!(prof.metric_excl_total(m) >= 0.0);
    }
}
