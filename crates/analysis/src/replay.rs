//! Per-location trace replay.
//!
//! Walks each location's event stream once, maintaining the call stack,
//! and produces the raw material of the wait-state analysis: exclusive
//! time segments classified by role, MPI call instances with their
//! communication records, barrier instances, synchronisation points and
//! visit counts. Everything downstream (pattern detection, delay costs,
//! idle-thread accounting) works on these structures, never on raw
//! events again.

use nrlt_profile::{CallPathId, CallTree};
use nrlt_trace::{
    CollectiveOp, Definitions, Event, EventKind, RegionRef, RegionRole, Trace, TraceView,
};

/// Classification of an exclusive segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegClass {
    /// User computation (functions, loop bodies, single/master/critical).
    Comp,
    /// OpenMP fork/join management.
    Management,
}

/// One exclusive time segment on a location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Call path the time belongs to.
    pub path: CallPathId,
    /// Classification.
    pub class: SegClass,
    /// Segment start (trace clock).
    pub start: u64,
    /// Segment end.
    pub end: u64,
    /// True when inside an OpenMP parallel region.
    pub in_parallel: bool,
}

impl Segment {
    /// Segment duration.
    pub fn dur(&self) -> u64 {
        self.end - self.start
    }
}

/// A send recorded inside an MPI instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendRec {
    /// Destination rank.
    pub peer: u32,
    /// Tag.
    pub tag: u32,
    /// Bytes.
    pub bytes: u64,
    /// Post timestamp.
    pub ts: u64,
    /// Index into the location's `mpi_instances`.
    pub instance: usize,
}

/// A receive post recorded inside an MPI instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecvPostRec {
    /// Source rank.
    pub peer: u32,
    /// Tag.
    pub tag: u32,
    /// Post timestamp.
    pub ts: u64,
}

/// A receive completion recorded inside an MPI instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecvCompleteRec {
    /// Source rank.
    pub peer: u32,
    /// Tag.
    pub tag: u32,
    /// Completion timestamp.
    pub ts: u64,
    /// Index into the location's `mpi_instances`.
    pub instance: usize,
}

/// One MPI API call instance on a location.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiInstance {
    /// Call path of the MPI region.
    pub path: CallPathId,
    /// Enter timestamp.
    pub enter: u64,
    /// Leave timestamp.
    pub leave: u64,
    /// Completed collective, if this instance was one.
    pub collective: Option<(CollectiveOp, u64)>,
    /// Timestamp of the collective-completion record inside the
    /// instance.
    pub collective_end_ts: Option<u64>,
    /// Number of receive completions inside (filled during replay).
    pub n_completes: u32,
    /// Number of sends posted inside.
    pub n_sends: u32,
}

impl MpiInstance {
    /// Instance duration.
    pub fn dur(&self) -> u64 {
        self.leave - self.enter
    }
}

/// One barrier passage of one thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierRec {
    /// Barrier region.
    pub region: RegionRef,
    /// Call path of the barrier.
    pub path: CallPathId,
    /// Arrival (enter) timestamp.
    pub enter: u64,
    /// Release (leave) timestamp.
    pub leave: u64,
}

/// Replay result for one location.
#[derive(Debug, Clone, Default)]
pub struct LocalReplay {
    /// Exclusive computation/management segments, in time order.
    pub segments: Vec<Segment>,
    /// MPI call instances, in time order.
    pub mpi_instances: Vec<MpiInstance>,
    /// Sends in stream order (FIFO per channel is implied).
    pub sends: Vec<SendRec>,
    /// Receive posts in stream order.
    pub recv_posts: Vec<RecvPostRec>,
    /// Receive completions in stream order.
    pub recv_completes: Vec<RecvCompleteRec>,
    /// Barrier passages in stream order.
    pub barriers: Vec<BarrierRec>,
    /// Synchronisation points (recv completions, collective ends,
    /// barrier releases), sorted ascending.
    pub syncs: Vec<u64>,
    /// Global synchronisation points only (collective completions): the
    /// horizon for rank-level delay analysis. Neither intra-team barriers
    /// nor point-to-point completions clip it — a barrier only syncs the
    /// team, and a receive only syncs a pair *partially*: a late rank
    /// stays late through its halo exchange, so its excess must remain
    /// attributable at the next collective (the transitive, "long-term"
    /// component of Scalasca's delay analysis, approximated here by the
    /// longer horizon).
    pub mpi_syncs: Vec<u64>,
    /// Spans of OpenMP parallel regions on this location.
    pub parallel_spans: Vec<(u64, u64)>,
    /// Visit counts per call path.
    pub visits: Vec<(CallPathId, u64)>,
    /// First event timestamp (u64::MAX when empty).
    pub first_ts: u64,
    /// Last event timestamp.
    pub last_ts: u64,
}

/// Replay every location of `trace`, interning call paths into a shared
/// tree. Returns the tree and one [`LocalReplay`] per location.
pub fn replay(trace: &Trace) -> (CallTree, Vec<LocalReplay>) {
    replay_view(&TraceView::Resident(trace))
}

/// [`replay`] over a [`TraceView`] — the streaming entry point. A
/// resident view iterates in-memory columns; a spilled view decodes
/// segment chunks through a bounded cursor, so peak memory stays
/// O(locations × chunk) however many events the trace holds. Either way
/// the produced structures are identical.
pub fn replay_view(view: &TraceView<'_>) -> (CallTree, Vec<LocalReplay>) {
    let mut tree = CallTree::new();
    let defs = view.defs();
    let mut out = Vec::with_capacity(view.n_locations());
    for loc in 0..view.n_locations() {
        out.push(replay_events(defs, view.events(loc), &mut tree));
    }
    (tree, out)
}

fn replay_events(
    defs: &Definitions,
    events: impl Iterator<Item = Event>,
    tree: &mut CallTree,
) -> LocalReplay {
    let mut r = LocalReplay { first_ts: u64::MAX, ..Default::default() };
    // (path, role, enter_ts)
    let mut stack: Vec<(CallPathId, RegionRole, u64)> = Vec::new();
    let mut last_ts = 0u64;
    let mut parallel_depth = 0u32;
    let mut parallel_enter = 0u64;
    // Index of the currently open MPI instance (MPI calls do not nest).
    let mut open_mpi: Option<usize> = None;
    // Running collective sequence number on this location.
    let mut n_collectives = 0u64;

    let role_of = |region: RegionRef| defs.region(region).role;

    for ev in events {
        let ts = ev.time;
        r.first_ts = r.first_ts.min(ts);
        r.last_ts = r.last_ts.max(ts);
        match ev.kind {
            EventKind::Enter { region } => {
                // Time since the previous event belongs to the parent.
                flush_segment(&mut r, &stack, last_ts, ts, parallel_depth > 0);
                let parent = stack.last().map(|&(p, _, _)| p);
                let path = tree.intern(parent, region);
                let role = role_of(region);
                stack.push((path, role, ts));
                r.visits.push((path, 1));
                match role {
                    RegionRole::MpiApi => {
                        debug_assert!(open_mpi.is_none(), "MPI calls do not nest");
                        open_mpi = Some(r.mpi_instances.len());
                        r.mpi_instances.push(MpiInstance {
                            path,
                            enter: ts,
                            leave: ts,
                            collective: None,
                            collective_end_ts: None,
                            n_completes: 0,
                            n_sends: 0,
                        });
                    }
                    RegionRole::OmpParallel => {
                        parallel_depth += 1;
                        if parallel_depth == 1 {
                            parallel_enter = ts;
                        }
                    }
                    _ => {}
                }
                last_ts = ts;
            }
            EventKind::Leave { region } => {
                let (path, role, enter) =
                    stack.pop().expect("unbalanced trace (run check_consistency)");
                debug_assert_eq!(tree.region(path), region);
                flush_segment_for(&mut r, path, role, last_ts, ts, parallel_depth > 0);
                match role {
                    RegionRole::MpiApi => {
                        let idx = open_mpi.take().expect("leave of unopened MPI region");
                        r.mpi_instances[idx].leave = ts;
                    }
                    RegionRole::OmpParallel => {
                        parallel_depth -= 1;
                        if parallel_depth == 0 {
                            r.parallel_spans.push((parallel_enter, ts));
                        }
                    }
                    RegionRole::OmpImplicitBarrier | RegionRole::OmpBarrier => {
                        r.barriers.push(BarrierRec { region, path, enter, leave: ts });
                        r.syncs.push(ts);
                    }
                    _ => {}
                }
                last_ts = ts;
            }
            EventKind::CallBurst { region, count, start } => {
                // Parent keeps the time before the burst; the callee gets
                // the burst span.
                flush_segment(&mut r, &stack, last_ts, start, parallel_depth > 0);
                let parent = stack.last().map(|&(p, _, _)| p);
                let path = tree.intern(parent, region);
                if ts > start {
                    r.segments.push(Segment {
                        path,
                        class: SegClass::Comp,
                        start,
                        end: ts,
                        in_parallel: parallel_depth > 0,
                    });
                }
                r.visits.push((path, count));
                last_ts = ts;
            }
            EventKind::SendPost { peer, tag, bytes } => {
                let instance = open_mpi.expect("send outside an MPI region");
                r.mpi_instances[instance].n_sends += 1;
                r.sends.push(SendRec { peer, tag, bytes, ts, instance });
            }
            EventKind::RecvPost { peer, tag, .. } => {
                r.recv_posts.push(RecvPostRec { peer, tag, ts });
            }
            EventKind::RecvComplete { peer, tag, .. } => {
                let instance = open_mpi.expect("completion outside an MPI region");
                r.mpi_instances[instance].n_completes += 1;
                r.recv_completes.push(RecvCompleteRec { peer, tag, ts, instance });
                r.syncs.push(ts);
            }
            EventKind::CollectiveEnd { op, .. } => {
                let instance = open_mpi.expect("collective end outside an MPI region");
                let seq = n_collectives;
                n_collectives += 1;
                r.mpi_instances[instance].collective = Some((op, seq));
                r.mpi_instances[instance].collective_end_ts = Some(ts);
                r.syncs.push(ts);
                r.mpi_syncs.push(ts);
            }
        }
    }
    debug_assert!(stack.is_empty(), "unbalanced trace");
    if r.first_ts == u64::MAX {
        r.first_ts = 0;
    }
    r.syncs.sort_unstable();
    r.mpi_syncs.sort_unstable();
    r
}

/// Flush exclusive time of the current stack top.
fn flush_segment(
    r: &mut LocalReplay,
    stack: &[(CallPathId, RegionRole, u64)],
    from: u64,
    to: u64,
    in_parallel: bool,
) {
    if let Some(&(path, role, _)) = stack.last() {
        flush_segment_for(r, path, role, from, to, in_parallel);
    }
}

fn flush_segment_for(
    r: &mut LocalReplay,
    path: CallPathId,
    role: RegionRole,
    from: u64,
    to: u64,
    in_parallel: bool,
) {
    if to <= from {
        return;
    }
    let class = match role {
        RegionRole::Function
        | RegionRole::OmpParallel
        | RegionRole::OmpLoop
        | RegionRole::OmpSingle
        | RegionRole::OmpMaster
        | RegionRole::OmpCritical => SegClass::Comp,
        RegionRole::OmpFork => SegClass::Management,
        // MPI and barrier time is accounted through instances.
        RegionRole::MpiApi | RegionRole::OmpImplicitBarrier | RegionRole::OmpBarrier => return,
    };
    r.segments.push(Segment { path, class, start: from, end: to, in_parallel });
}

/// The last synchronisation point on a location strictly before `t`
/// (0 when none).
pub fn prev_sync(r: &LocalReplay, t: u64) -> u64 {
    prev_in(&r.syncs, t)
}

/// The last *inter-process* synchronisation point strictly before `t`.
pub fn prev_mpi_sync(r: &LocalReplay, t: u64) -> u64 {
    prev_in(&r.mpi_syncs, t)
}

fn prev_in(syncs: &[u64], t: u64) -> u64 {
    let i = syncs.partition_point(|&x| x < t);
    if i == 0 {
        0
    } else {
        syncs[i - 1]
    }
}

/// [`prev_sync`]/[`prev_mpi_sync`] with a rolling cursor: `hint` is the
/// lower-bound index of the previous query, and the search gallops out
/// from it — O(log distance) instead of O(log n) when consecutive
/// queries land near each other, as the delay analysis's per-location
/// wait streams do. Returns exactly what [`prev_sync`]/[`prev_mpi_sync`]
/// return and updates `hint` for the next call.
pub fn prev_sync_hinted(r: &LocalReplay, t: u64, inter_process: bool, hint: &mut usize) -> u64 {
    let syncs: &[u64] = if inter_process { &r.mpi_syncs } else { &r.syncs };
    let i = lower_bound_from(syncs, t, *hint);
    *hint = i;
    if i == 0 {
        0
    } else {
        syncs[i - 1]
    }
}

/// First index `j` with `xs[j] >= t` (the `partition_point` of `< t`),
/// located by galloping out from `hint` instead of bisecting the whole
/// slice. Exact: returns the same index for any `hint`.
pub(crate) fn lower_bound_from(xs: &[u64], t: u64, hint: usize) -> usize {
    let n = xs.len();
    let h = hint.min(n);
    if h < n && xs[h] < t {
        // Boundary is to the right of the hint: widen the bracket
        // exponentially, then bisect the final window.
        let mut lo = h; // xs[lo] < t
        let mut hi = h + 1;
        let mut step = 1usize;
        while hi < n && xs[hi] < t {
            lo = hi;
            hi = (hi + step).min(n);
            step <<= 1;
        }
        lo + 1 + xs[lo + 1..hi.min(n)].partition_point(|&x| x < t)
    } else {
        // Boundary is at or left of the hint.
        let mut hi = h; // all of xs[h..] are >= t (or h == n)
        let mut step = 1usize;
        let mut lo = h;
        while lo > 0 && xs[lo - 1] >= t {
            hi = lo - 1;
            lo = lo.saturating_sub(step);
            step <<= 1;
        }
        lo + xs[lo..hi].partition_point(|&x| x < t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_trace::{ClockKind, Definitions, Event, LocationDef, RegionDef};

    fn defs() -> Definitions {
        Definitions {
            regions: std::sync::Arc::new(vec![
                RegionDef { name: "main".into(), role: RegionRole::Function },
                RegionDef { name: "MPI_Recv".into(), role: RegionRole::MpiApi },
                RegionDef { name: "leaf".into(), role: RegionRole::Function },
            ]),
            locations: std::sync::Arc::new(vec![LocationDef { rank: 0, thread: 0, core: 0 }]),
            threads_per_rank: 1,
            clock: ClockKind::Physical,
        }
    }

    fn ev(time: u64, kind: EventKind) -> Event {
        Event { time, kind }
    }

    #[test]
    fn exclusive_segments_and_mpi_instances() {
        let r0 = RegionRef(0);
        let r1 = RegionRef(1);
        let trace = Trace {
            defs: defs(),
            streams: vec![vec![
                ev(0, EventKind::Enter { region: r0 }),
                ev(10, EventKind::Enter { region: r1 }),
                ev(10, EventKind::RecvPost { peer: 1, tag: 0, bytes: 8 }),
                ev(40, EventKind::RecvComplete { peer: 1, tag: 0, bytes: 8 }),
                ev(42, EventKind::Leave { region: r1 }),
                ev(50, EventKind::Leave { region: r0 }),
            ]
            .into()],
        };
        let (tree, locals) = replay(&trace);
        let r = &locals[0];
        // main gets exclusive 0..10 and 42..50.
        assert_eq!(r.segments.len(), 2);
        assert_eq!(r.segments[0].dur(), 10);
        assert_eq!(r.segments[1].dur(), 8);
        assert_eq!(r.mpi_instances.len(), 1);
        let mi = &r.mpi_instances[0];
        assert_eq!((mi.enter, mi.leave), (10, 42));
        assert_eq!(mi.n_completes, 1);
        assert_eq!(r.recv_completes[0].ts, 40);
        assert_eq!(r.syncs, vec![40]);
        assert_eq!(tree.len(), 2);
        assert_eq!(prev_sync(r, 45), 40);
        assert_eq!(prev_sync(r, 40), 0);
        assert_eq!(prev_sync(r, 5), 0);
    }

    #[test]
    fn burst_attributes_span_to_callee() {
        let r0 = RegionRef(0);
        let r2 = RegionRef(2);
        let trace = Trace {
            defs: defs(),
            streams: vec![vec![
                ev(0, EventKind::Enter { region: r0 }),
                ev(30, EventKind::CallBurst { region: r2, count: 5, start: 10 }),
                ev(50, EventKind::Leave { region: r0 }),
            ]
            .into()],
        };
        let (tree, locals) = replay(&trace);
        let r = &locals[0];
        // main: 0..10 and 30..50; leaf burst: 10..30.
        assert_eq!(r.segments.len(), 3);
        assert_eq!(r.segments[1].dur(), 20);
        let leaf_path = r.segments[1].path;
        assert_eq!(tree.region(leaf_path), r2);
        // Visits: main 1, leaf 5.
        let total: u64 = r.visits.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn collective_sequence_numbers() {
        let r0 = RegionRef(0);
        let r1 = RegionRef(1); // reuse MPI role region
        let mk_coll = |t_enter: u64| {
            vec![
                ev(t_enter, EventKind::Enter { region: r1 }),
                ev(
                    t_enter + 5,
                    EventKind::CollectiveEnd {
                        op: CollectiveOp::Allreduce,
                        bytes: 8,
                        root: u32::MAX,
                    },
                ),
                ev(t_enter + 6, EventKind::Leave { region: r1 }),
            ]
        };
        let mut stream = vec![ev(0, EventKind::Enter { region: r0 })];
        stream.extend(mk_coll(10));
        stream.extend(mk_coll(30));
        stream.push(ev(50, EventKind::Leave { region: r0 }));
        let trace = Trace { defs: defs(), streams: vec![stream.into()] };
        let (_, locals) = replay(&trace);
        let colls: Vec<u64> =
            locals[0].mpi_instances.iter().filter_map(|i| i.collective.map(|(_, s)| s)).collect();
        assert_eq!(colls, vec![0, 1]);
    }

    #[test]
    fn lower_bound_from_is_exact_for_any_hint() {
        let xs = [5u64, 5, 10, 10, 10, 20, 35];
        for t in 0..40u64 {
            let want = xs.partition_point(|&x| x < t);
            for hint in 0..=xs.len() + 2 {
                assert_eq!(lower_bound_from(&xs, t, hint), want, "t={t} hint={hint}");
            }
        }
        assert_eq!(lower_bound_from(&[], 7, 0), 0);
        assert_eq!(lower_bound_from(&[], 7, 3), 0);
    }

    #[test]
    fn hinted_prev_sync_matches_unhinted() {
        let r = LocalReplay {
            syncs: vec![3, 9, 9, 14, 30],
            mpi_syncs: vec![9, 30],
            ..Default::default()
        };
        for t in 0..35u64 {
            for hint0 in 0..7usize {
                let mut hint = hint0;
                assert_eq!(prev_sync_hinted(&r, t, false, &mut hint), prev_sync(&r, t));
                let mut hint = hint0;
                assert_eq!(prev_sync_hinted(&r, t, true, &mut hint), prev_mpi_sync(&r, t));
            }
        }
    }
}
