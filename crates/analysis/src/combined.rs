//! Combined physical + logical analysis.
//!
//! The paper's discussion (Section VI) points out that "using the
//! combined results from a physical and a logical measurement, it is
//! possible to differentiate intrinsic wait states caused by uneven work
//! distribution from extrinsic wait states due to uneven resource
//! distribution" — and names such an analysis as future work. This
//! module implements it.
//!
//! The idea: normalise both profiles to fractions of their total effort.
//! A wait state that appears under the logical clock reflects an
//! *algorithmic* (intrinsic) imbalance — the effort model alone predicts
//! it. Wait time that only the physical clock sees must come from
//! *extrinsic* sources: resource contention, noise, system interference.
//! Per (wait metric, call path) cell:
//!
//! ```text
//! intrinsic  = min(physical, logical)
//! extrinsic  = max(0, physical − logical)
//! masked     = max(0, logical − physical)   // logical-only artefacts
//! ```
//!
//! `masked` is the honesty term: effort models also *over*-predict waits
//! (e.g. `lt_loop`'s late senders in MiniFE-1, which the paper calls
//! misleading); those cells are reported instead of being silently
//! folded into "intrinsic".

use nrlt_profile::{CallPathId, Metric, Profile};
use std::collections::HashMap;

/// Wait-state metrics subject to the intrinsic/extrinsic split.
pub const WAIT_METRICS: [Metric; 4] =
    [Metric::LateSender, Metric::LateReceiver, Metric::WaitNxN, Metric::OmpBarrierWait];

/// One classified wait cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedCell {
    /// Wait metric.
    pub metric: Metric,
    /// Call path (valid in both profiles — see [`combine`]).
    pub path: CallPathId,
    /// Rendered call path.
    pub path_string: String,
    /// Physical severity, %_T of the physical profile.
    pub physical: f64,
    /// Logical severity, %_T of the logical profile.
    pub logical: f64,
    /// Wait fraction predicted by both: algorithmic imbalance.
    pub intrinsic: f64,
    /// Wait fraction only the physical clock sees: resource contention,
    /// noise, interference.
    pub extrinsic: f64,
    /// Wait fraction only the effort model predicts: a bias of the
    /// logical model, to be distrusted.
    pub masked: f64,
}

/// The combined analysis result.
#[derive(Debug, Clone, Default)]
pub struct CombinedReport {
    /// Per-cell classification, sorted by descending physical severity.
    pub cells: Vec<CombinedCell>,
}

impl CombinedReport {
    /// Total intrinsic wait, %_T.
    pub fn intrinsic_total(&self) -> f64 {
        self.cells.iter().map(|c| c.intrinsic).sum()
    }

    /// Total extrinsic wait, %_T.
    pub fn extrinsic_total(&self) -> f64 {
        self.cells.iter().map(|c| c.extrinsic).sum()
    }

    /// Total logical-only (model-bias) wait, %_T.
    pub fn masked_total(&self) -> f64 {
        self.cells.iter().map(|c| c.masked).sum()
    }

    /// The dominant extrinsic cells (above `min_pct` %_T).
    pub fn extrinsic_hotspots(&self, min_pct: f64) -> Vec<&CombinedCell> {
        let mut v: Vec<&CombinedCell> =
            self.cells.iter().filter(|c| c.extrinsic >= min_pct).collect();
        v.sort_by(|a, b| b.extrinsic.partial_cmp(&a.extrinsic).unwrap());
        v
    }

    /// Render as a table.
    pub fn render(&self, min_pct: f64) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:<48} {:>8} {:>8} {:>9} {:>9} {:>7}",
            "metric", "call path", "phys%_T", "log%_T", "intrinsic", "extrinsic", "masked"
        );
        for c in &self.cells {
            if c.physical.max(c.logical) < min_pct {
                continue;
            }
            let path = if c.path_string.len() > 46 {
                format!("…{}", &c.path_string[c.path_string.len() - 45..])
            } else {
                c.path_string.clone()
            };
            let _ = writeln!(
                out,
                "{:<16} {:<48} {:>8.2} {:>8.2} {:>9.2} {:>9.2} {:>7.2}",
                c.metric.name(),
                path,
                c.physical,
                c.logical,
                c.intrinsic,
                c.extrinsic,
                c.masked
            );
        }
        let _ = writeln!(
            out,
            "totals: intrinsic {:.2}%_T, extrinsic {:.2}%_T, model-bias {:.2}%_T",
            self.intrinsic_total(),
            self.extrinsic_total(),
            self.masked_total()
        );
        out
    }
}

/// Combine a physical-clock profile with a logical-clock profile of the
/// same configuration.
///
/// Both profiles must come from the same program structure (same regions
/// and call-path ids — guaranteed when they were measured from the same
/// `Program`). Panics if the call trees have different shapes.
pub fn combine(physical: &Profile, logical: &Profile) -> CombinedReport {
    assert_eq!(
        physical.call_tree.len(),
        logical.call_tree.len(),
        "profiles must come from the same program"
    );
    let pt = physical.total_time();
    let lt = logical.total_time();
    assert!(pt > 0.0 && lt > 0.0, "profiles must be non-empty");

    let mut cells = Vec::new();
    for metric in WAIT_METRICS {
        // Per-call-path severities, normalised to %_T of each profile.
        let mut keys: HashMap<CallPathId, (f64, f64)> = HashMap::new();
        for path in physical.call_tree.iter() {
            let p = physical.excl(metric, path) / pt * 100.0;
            let l = logical.excl(metric, path) / lt * 100.0;
            if p > 1e-9 || l > 1e-9 {
                keys.insert(path, (p, l));
            }
        }
        for (path, (p, l)) in keys {
            cells.push(CombinedCell {
                metric,
                path,
                path_string: physical.path_string(path),
                physical: p,
                logical: l,
                intrinsic: p.min(l),
                extrinsic: (p - l).max(0.0),
                masked: (l - p).max(0.0),
            });
        }
    }
    cells.sort_by(|a, b| {
        b.physical.partial_cmp(&a.physical).unwrap().then_with(|| a.path_string.cmp(&b.path_string))
    });
    CombinedReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_profile::CallTree;
    use nrlt_trace::{LocationDef, RegionDef, RegionRef, RegionRole};

    fn profile(name: &str, comp: f64, nxn: f64, ls: f64) -> Profile {
        let regions = vec![
            RegionDef { name: "main".into(), role: RegionRole::Function },
            RegionDef { name: "MPI_Allreduce".into(), role: RegionRole::MpiApi },
            RegionDef { name: "MPI_Recv".into(), role: RegionRole::MpiApi },
        ];
        let mut ct = CallTree::new();
        let root = ct.intern(None, RegionRef(0));
        let ar = ct.intern(Some(root), RegionRef(1));
        let rv = ct.intern(Some(root), RegionRef(2));
        let locations = vec![LocationDef { rank: 0, thread: 0, core: 0 }];
        let mut p = Profile::new(name.into(), regions, ct, locations);
        p.add(Metric::Comp, root, 0, comp);
        p.add(Metric::WaitNxN, ar, 0, nxn);
        p.add(Metric::LateSender, rv, 0, ls);
        p
    }

    #[test]
    fn intrinsic_extrinsic_split() {
        // Physical: 60 comp, 25 nxn, 15 ls. Logical: 80 comp, 20 nxn, 0 ls.
        let phys = profile("tsc", 60.0, 25.0, 15.0);
        let log = profile("lt_stmt", 80.0, 20.0, 0.0);
        let rep = combine(&phys, &log);
        // nxn: phys 25%, log 20% → intrinsic 20, extrinsic 5.
        let nxn = rep.cells.iter().find(|c| c.metric == Metric::WaitNxN).unwrap();
        assert!((nxn.intrinsic - 20.0).abs() < 1e-9);
        assert!((nxn.extrinsic - 5.0).abs() < 1e-9);
        assert_eq!(nxn.masked, 0.0);
        // ls: only physical → fully extrinsic.
        let ls = rep.cells.iter().find(|c| c.metric == Metric::LateSender).unwrap();
        assert_eq!(ls.intrinsic, 0.0);
        assert!((ls.extrinsic - 15.0).abs() < 1e-9);
        assert!((rep.extrinsic_total() - 20.0).abs() < 1e-9);
        assert!((rep.intrinsic_total() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn model_bias_is_reported_as_masked() {
        // The logical model invents a late sender the physical run lacks
        // (lt_loop in MiniFE-1).
        let phys = profile("tsc", 90.0, 10.0, 0.0);
        let log = profile("lt_loop", 84.0, 10.0, 6.0);
        let rep = combine(&phys, &log);
        let ls = rep.cells.iter().find(|c| c.metric == Metric::LateSender).unwrap();
        assert!((ls.masked - 6.0).abs() < 1e-9);
        assert_eq!(ls.extrinsic, 0.0);
        assert!((rep.masked_total() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn render_contains_totals() {
        let rep = combine(&profile("tsc", 50.0, 50.0, 0.0), &profile("lt_bb", 50.0, 50.0, 0.0));
        let s = rep.render(0.1);
        assert!(s.contains("intrinsic 50.00%_T"), "{s}");
        assert!(s.contains("wait_nxn"), "{s}");
    }

    #[test]
    fn hotspots_sorted_by_extrinsic() {
        let phys = profile("tsc", 40.0, 30.0, 30.0);
        let log = profile("lt_stmt", 90.0, 10.0, 0.0);
        let rep = combine(&phys, &log);
        let hs = rep.extrinsic_hotspots(1.0);
        assert_eq!(hs.len(), 2);
        assert!(hs[0].extrinsic >= hs[1].extrinsic);
        assert_eq!(hs[0].metric, Metric::LateSender);
    }

    #[test]
    #[should_panic(expected = "same program")]
    fn mismatched_profiles_rejected() {
        let phys = profile("tsc", 50.0, 50.0, 0.0);
        let regions = vec![RegionDef { name: "m".into(), role: RegionRole::Function }];
        let mut ct = CallTree::new();
        ct.intern(None, RegionRef(0));
        let log = Profile::new(
            "lt".into(),
            regions,
            ct,
            vec![LocationDef { rank: 0, thread: 0, core: 0 }],
        );
        combine(&phys, &log);
    }
}
