//! Causality checking and post-processed clocks.
//!
//! The paper relies on the original Lamport clock computed *during*
//! measurement; it cites Ravel (Isaacs et al.), which assigns logical
//! time in post-processing, and the vector clock as the stronger
//! alternative that captures causality exactly. This module provides
//! both as trace post-processors:
//!
//! * [`happens_before_edges`] — the trace's causal graph: program order,
//!   message edges (send → receive completion), and collective edges
//!   (every member's entry → every member's completion).
//! * [`verify_clock_condition`] — checks Lamport's condition
//!   `a → b ⇒ C(a) < C(b)` for the trace's own timestamps. Used as a
//!   test oracle over every logical trace the measurement system emits.
//! * [`assign_vector_clocks`] — per-event vector timestamps, supporting
//!   exact concurrency queries (`a ∥ b` iff neither vector dominates).

use crate::replay::{replay, LocalReplay};
use nrlt_trace::Trace;
use std::collections::HashMap;

/// Identifies an event as (location index, index within the stream).
pub type EventId = (usize, usize);

/// One happens-before edge between events of different locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Cause.
    pub from: EventId,
    /// Effect.
    pub to: EventId,
}

/// Find the stream indices of communication events per location.
fn comm_indices(trace: &Trace) -> Vec<HashMap<u64, usize>> {
    // Map timestamps of send/recv/collective events to stream indices.
    // Timestamps are unique per location for logical clocks (strictly
    // increasing); for physical clocks ties are broken by first match.
    trace
        .streams
        .iter()
        .map(|stream| {
            let mut m = HashMap::new();
            for (i, ev) in stream.iter().enumerate() {
                m.entry(ev.time).or_insert(i);
            }
            m
        })
        .collect()
}

/// Cross-location happens-before edges of a trace: matched messages and
/// collective instances. Program order within a stream is implicit.
pub fn happens_before_edges(trace: &Trace) -> Vec<Edge> {
    let tpr = trace.defs.threads_per_rank;
    let (_, locals) = replay(trace);
    let ts_index = comm_indices(trace);
    let mut edges = Vec::new();

    // Message edges: k-th send on a channel → k-th completion.
    let messages = crate::patterns::match_messages(&locals, tpr);
    for m in &messages {
        let from_idx = ts_index[m.send_loc].get(&m.send_ts);
        let to_idx = ts_index[m.recv_loc].get(&m.complete_ts);
        if let (Some(&f), Some(&t)) = (from_idx, to_idx) {
            edges.push(Edge { from: (m.send_loc, f), to: (m.recv_loc, t) });
        }
    }

    // Collective edges: every member's enter → every member's end.
    let collectives = crate::patterns::gather_collectives(&locals, tpr);
    for inst in &collectives {
        let enters: Vec<EventId> = inst
            .members
            .iter()
            .filter_map(|&(loc, idx)| {
                let mi: &crate::replay::MpiInstance = &locals[loc].mpi_instances[idx];
                ts_index[loc].get(&mi.enter).map(|&i| (loc, i))
            })
            .collect();
        let ends: Vec<EventId> = inst
            .members
            .iter()
            .filter_map(|&(loc, idx)| {
                let mi = &locals[loc].mpi_instances[idx];
                let end_ts = mi.collective_end_ts.unwrap_or(mi.leave);
                ts_index[loc].get(&end_ts).map(|&i| (loc, i))
            })
            .collect();
        for &from in &enters {
            for &to in &ends {
                if from.0 != to.0 {
                    edges.push(Edge { from, to });
                }
            }
        }
    }

    // Barrier edges within each team.
    let n_ranks = trace.defs.n_ranks();
    for rank in 0..n_ranks {
        for inst in crate::patterns::gather_barriers(&locals, rank, tpr) {
            let recs: Vec<(usize, &crate::replay::BarrierRec)> =
                inst.members.iter().map(|&(loc, i)| (loc, &locals[loc].barriers[i])).collect();
            for &(floc, f) in &recs {
                for &(tloc, t) in &recs {
                    if floc != tloc {
                        if let (Some(&fi), Some(&ti)) =
                            (ts_index[floc].get(&f.enter), ts_index[tloc].get(&t.leave))
                        {
                            edges.push(Edge { from: (floc, fi), to: (tloc, ti) });
                        }
                    }
                }
            }
        }
    }
    edges
}

/// Verify Lamport's clock condition on the trace's own timestamps:
/// for every happens-before edge, `C(cause) < C(effect)`; and per
/// stream, timestamps are non-decreasing. Returns the violations.
pub fn verify_clock_condition(trace: &Trace) -> Vec<String> {
    let mut violations = Vec::new();
    for (loc, stream) in trace.streams.iter().enumerate() {
        for w in stream.times().windows(2) {
            if w[1] < w[0] {
                violations.push(format!(
                    "location {loc}: program order violated ({} after {})",
                    w[1], w[0]
                ));
            }
        }
    }
    for edge in happens_before_edges(trace) {
        let c_from = trace.streams[edge.from.0].time(edge.from.1);
        let c_to = trace.streams[edge.to.0].time(edge.to.1);
        if c_from >= c_to {
            violations.push(format!(
                "edge {:?} -> {:?}: C(cause)={} >= C(effect)={}",
                edge.from, edge.to, c_from, c_to
            ));
        }
    }
    violations
}

/// Vector timestamps for every event of (typically small) traces.
///
/// Entry `[loc][event][k]` counts the events of location `k` known to
/// happen before (or be) this event. Memory is `O(events × locations)`.
pub fn assign_vector_clocks(trace: &Trace) -> Vec<Vec<Vec<u64>>> {
    let n = trace.streams.len();
    // Incoming cross edges per event.
    let mut incoming: HashMap<EventId, Vec<EventId>> = HashMap::new();
    for e in happens_before_edges(trace) {
        incoming.entry(e.to).or_default().push(e.from);
    }
    let mut clocks: Vec<Vec<Vec<u64>>> =
        trace.streams.iter().map(|s| vec![vec![0; n]; s.len()]).collect();
    // Process events in timestamp order (valid topological order for
    // traces satisfying the clock condition), tie-broken by location.
    let mut order: Vec<EventId> = trace
        .streams
        .iter()
        .enumerate()
        .flat_map(|(l, s)| (0..s.len()).map(move |i| (l, i)))
        .collect();
    order.sort_by_key(|&(l, i)| (trace.streams[l].time(i), l, i));
    for (l, i) in order {
        let mut v = if i > 0 { clocks[l][i - 1].clone() } else { vec![0; n] };
        if let Some(sources) = incoming.get(&(l, i)) {
            for &(sl, si) in sources {
                let sv = clocks[sl][si].clone();
                for (a, b) in v.iter_mut().zip(&sv) {
                    *a = (*a).max(*b);
                }
            }
        }
        v[l] += 1;
        clocks[l][i] = v;
    }
    clocks
}

/// Are two events concurrent under the vector-clock order?
pub fn concurrent(clocks: &[Vec<Vec<u64>>], a: EventId, b: EventId) -> bool {
    let va = &clocks[a.0][a.1];
    let vb = &clocks[b.0][b.1];
    let a_le_b = va.iter().zip(vb).all(|(x, y)| x <= y);
    let b_le_a = vb.iter().zip(va).all(|(x, y)| x <= y);
    !a_le_b && !b_le_a
}

/// Ravel-style post-processing: assign fresh Lamport timestamps to a
/// trace from its causal structure alone, ignoring the recorded times.
/// Returns per-location timestamp vectors with increment 1 per event.
pub fn assign_lamport_postprocess(trace: &Trace) -> Vec<Vec<u64>> {
    let n = trace.streams.len();
    let mut incoming: HashMap<EventId, Vec<EventId>> = HashMap::new();
    for e in happens_before_edges(trace) {
        incoming.entry(e.to).or_default().push(e.from);
    }
    let mut out: Vec<Vec<u64>> = trace.streams.iter().map(|s| vec![0; s.len()]).collect();
    let mut order: Vec<EventId> =
        (0..n).flat_map(|l| (0..trace.streams[l].len()).map(move |i| (l, i))).collect();
    order.sort_by_key(|&(l, i)| (trace.streams[l].time(i), l, i));
    for (l, i) in order {
        let mut c = if i > 0 { out[l][i - 1] } else { 0 };
        if let Some(sources) = incoming.get(&(l, i)) {
            for &(sl, si) in sources {
                c = c.max(out[sl][si]);
            }
        }
        out[l][i] = c + 1;
    }
    out
}

/// Also checked by [`verify_clock_condition`], exposed for `LocalReplay`
/// consumers that already replayed.
pub fn replay_for_causality(trace: &Trace) -> Vec<LocalReplay> {
    replay(trace).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_trace::{
        ClockKind, Definitions, Event, EventKind, LocationDef, RegionDef, RegionRef, RegionRole,
        Trace,
    };

    /// Two ranks, one message 0 → 1, logical timestamps.
    fn msg_trace(send_ts: u64, recv_complete_ts: u64) -> Trace {
        let defs = Definitions {
            regions: std::sync::Arc::new(vec![
                RegionDef { name: "main".into(), role: RegionRole::Function },
                RegionDef { name: "MPI_Send".into(), role: RegionRole::MpiApi },
                RegionDef { name: "MPI_Recv".into(), role: RegionRole::MpiApi },
            ]),
            locations: std::sync::Arc::new(vec![
                LocationDef { rank: 0, thread: 0, core: 0 },
                LocationDef { rank: 1, thread: 0, core: 1 },
            ]),
            threads_per_rank: 1,
            clock: ClockKind::Logical { model: "lt_1".into() },
        };
        let r = |i| RegionRef(i);
        let s0 = vec![
            Event::new(1, EventKind::Enter { region: r(0) }),
            Event::new(2, EventKind::Enter { region: r(1) }),
            Event::new(send_ts, EventKind::SendPost { peer: 1, tag: 0, bytes: 8 }),
            Event::new(send_ts + 1, EventKind::Leave { region: r(1) }),
            Event::new(send_ts + 2, EventKind::Leave { region: r(0) }),
        ];
        let s1 = vec![
            Event::new(1, EventKind::Enter { region: r(0) }),
            Event::new(2, EventKind::Enter { region: r(2) }),
            Event::new(3, EventKind::RecvPost { peer: 0, tag: 0, bytes: 8 }),
            Event::new(recv_complete_ts, EventKind::RecvComplete { peer: 0, tag: 0, bytes: 8 }),
            Event::new(recv_complete_ts + 1, EventKind::Leave { region: r(2) }),
            Event::new(recv_complete_ts + 2, EventKind::Leave { region: r(0) }),
        ];
        Trace { defs, streams: vec![s0.into(), s1.into()] }
    }

    #[test]
    fn valid_trace_passes() {
        let t = msg_trace(3, 7);
        assert!(verify_clock_condition(&t).is_empty());
    }

    #[test]
    fn clock_violation_detected() {
        // Receive completion stamped before the send.
        let t = msg_trace(10, 5);
        let v = verify_clock_condition(&t);
        assert!(!v.is_empty());
        assert!(v[0].contains("C(cause)"), "{v:?}");
    }

    #[test]
    fn vector_clocks_capture_the_message() {
        let t = msg_trace(3, 7);
        let vc = assign_vector_clocks(&t);
        // The receive completion (stream 1, event 3) must know about the
        // sender's first three events.
        assert_eq!(vc[1][3][0], 3);
        assert_eq!(vc[1][3][1], 4);
        // The sender's leave events know nothing of the receiver.
        assert_eq!(vc[0][4][1], 0);
    }

    #[test]
    fn concurrency_query() {
        let t = msg_trace(3, 7);
        let vc = assign_vector_clocks(&t);
        // Sender enter (0,0) happens before receiver completion (1,3).
        assert!(!concurrent(&vc, (0, 0), (1, 3)));
        // Sender enter and receiver enter are concurrent.
        assert!(concurrent(&vc, (0, 0), (1, 0)));
        // Sender's last leave and receiver's completion are concurrent
        // (the leave is not part of the message's past).
        assert!(concurrent(&vc, (0, 4), (1, 3)));
    }

    #[test]
    fn postprocessed_lamport_satisfies_the_condition() {
        let t = msg_trace(3, 7);
        let ts = assign_lamport_postprocess(&t);
        // Program order strictly increasing.
        for stream in &ts {
            for w in stream.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
        // Message edge respected: recv completion after send post.
        assert!(ts[1][3] > ts[0][2]);
    }
}
