//! Critical-path analysis.
//!
//! Scalasca's companion to the wait-state analysis: the *critical path*
//! is the chain of activities that determines the program's run time —
//! shortening anything on it shortens the run; shortening anything off
//! it only grows somebody's wait. This implementation walks the trace's
//! happens-before structure backwards from the last event, at every
//! blocking completion jumping to the partner that determined its time,
//! and attributes the traversed computation spans to their call paths.
//!
//! Works on physical *and* logical traces: under a logical clock the
//! result is the critical path of the *effort model's* virtual schedule,
//! which is exactly how the paper's noise-resilient lens would rank
//! optimisation targets.

use crate::causality::{happens_before_edges, EventId};
use crate::delay::SpanIndex;
use crate::replay::replay;
use nrlt_profile::{CallPathId, CallTree};
use nrlt_trace::Trace;
use std::collections::HashMap;

/// The critical path of a trace.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Total length in trace ticks (last event − first event).
    pub length: u64,
    /// Ticks attributed to each (call path, location) along the path.
    pub contributions: Vec<(CallPathId, usize, u64)>,
    /// The walked events, in execution order.
    pub events: Vec<EventId>,
    /// Call-path tree (for rendering).
    pub call_tree: CallTree,
}

impl CriticalPath {
    /// Per-call-path totals (summed over locations), sorted descending.
    pub fn by_callpath(&self) -> Vec<(CallPathId, u64)> {
        let mut map: HashMap<CallPathId, u64> = HashMap::new();
        for &(p, _, v) in &self.contributions {
            *map.entry(p).or_default() += v;
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        out
    }

    /// Share of the path length attributed to computation spans (the
    /// rest is transfer/runtime time between the walked events).
    pub fn attributed_fraction(&self) -> f64 {
        if self.length == 0 {
            return 0.0;
        }
        let attributed: u64 = self.contributions.iter().map(|&(_, _, v)| v).sum();
        attributed as f64 / self.length as f64
    }
}

/// Compute the critical path of `trace`.
pub fn critical_path(trace: &Trace) -> CriticalPath {
    let (tree, locals) = replay(trace);
    let index = SpanIndex::build(&locals);

    // Incoming cross-location edges per event.
    let mut incoming: HashMap<EventId, Vec<EventId>> = HashMap::new();
    for e in happens_before_edges(trace) {
        incoming.entry(e.to).or_default().push(e.from);
    }

    // Start from the globally last event.
    let mut current: Option<EventId> = trace
        .streams
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .max_by_key(|(l, s)| (s.last().unwrap().time, *l))
        .map(|(l, s)| (l, s.len() - 1));
    let end_time = current.map_or(0u64, |(l, i)| trace.streams[l].time(i));
    let start_time = trace.start_time();

    let mut contributions: Vec<(CallPathId, usize, u64)> = Vec::new();
    let mut events = Vec::new();
    let ts = |e: EventId| trace.streams[e.0].time(e.1);

    while let Some(cur) = current {
        events.push(cur);
        let t_cur = ts(cur);
        // Candidate predecessors: the previous event on the same
        // location, and the latest cross-location cause.
        let local = if cur.1 > 0 { Some((cur.0, cur.1 - 1)) } else { None };
        let cross = incoming.get(&cur).and_then(|v| v.iter().copied().max_by_key(|&e| (ts(e), e)));
        let next = match (local, cross) {
            (Some(l), Some(c)) => {
                // The later predecessor determined this event's time: a
                // blocked completion waits for its cross cause; a busy
                // span follows its local predecessor.
                if ts(c) > ts(l) {
                    Some(c)
                } else {
                    Some(l)
                }
            }
            (Some(l), None) => Some(l),
            (None, c) => c,
        };
        if let Some(prev) = next {
            if prev.0 == cur.0 {
                // Local move: attribute the busy span to its call paths.
                let t_prev = ts(prev);
                for (path, ticks) in index.profile(cur.0, t_prev, t_cur) {
                    if ticks > 0 {
                        contributions.push((path, cur.0, ticks));
                    }
                }
            }
            // Cross moves carry transfer/collective time, attributed to
            // nothing (it is genuine communication on the path).
        }
        current = next;
        if events.len() > trace.total_events() + 1 {
            unreachable!("critical-path walk failed to terminate");
        }
    }
    events.reverse();
    contributions.sort_by_key(|&(p, l, _)| (p, l));

    CriticalPath {
        length: end_time.saturating_sub(start_time),
        contributions,
        events,
        call_tree: tree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_trace::{
        ClockKind, CollectiveOp, Definitions, Event, EventKind, LocationDef, RegionDef, RegionRef,
        RegionRole, NO_ROOT,
    };

    /// Two ranks: rank 1 computes 80 ticks, rank 0 computes 10 and waits
    /// at the allreduce. The critical path must run through rank 1's
    /// compute region.
    fn imbalanced_trace() -> Trace {
        let defs = Definitions {
            regions: std::sync::Arc::new(vec![
                RegionDef { name: "main".into(), role: RegionRole::Function },
                RegionDef { name: "light".into(), role: RegionRole::Function },
                RegionDef { name: "heavy".into(), role: RegionRole::Function },
                RegionDef { name: "MPI_Allreduce".into(), role: RegionRole::MpiApi },
            ]),
            locations: std::sync::Arc::new(vec![
                LocationDef { rank: 0, thread: 0, core: 0 },
                LocationDef { rank: 1, thread: 0, core: 1 },
            ]),
            threads_per_rank: 1,
            clock: ClockKind::Physical,
        };
        let r = RegionRef;
        let coll = |t| {
            Event::new(
                t,
                EventKind::CollectiveEnd { op: CollectiveOp::Allreduce, bytes: 8, root: NO_ROOT },
            )
        };
        let s0 = vec![
            Event::new(0, EventKind::Enter { region: r(0) }),
            Event::new(1, EventKind::Enter { region: r(1) }),
            Event::new(11, EventKind::Leave { region: r(1) }),
            Event::new(12, EventKind::Enter { region: r(3) }),
            coll(85),
            Event::new(86, EventKind::Leave { region: r(3) }),
            Event::new(90, EventKind::Leave { region: r(0) }),
        ];
        let s1 = vec![
            Event::new(0, EventKind::Enter { region: r(0) }),
            Event::new(2, EventKind::Enter { region: r(2) }),
            Event::new(82, EventKind::Leave { region: r(2) }),
            Event::new(83, EventKind::Enter { region: r(3) }),
            coll(85),
            Event::new(86, EventKind::Leave { region: r(3) }),
            Event::new(88, EventKind::Leave { region: r(0) }),
        ];
        Trace { defs, streams: vec![s0.into(), s1.into()] }
    }

    #[test]
    fn path_runs_through_the_heavy_rank() {
        let t = imbalanced_trace();
        let cp = critical_path(&t);
        assert_eq!(cp.length, 90);
        let by_path = cp.by_callpath();
        let heavy_total: u64 = by_path
            .iter()
            .filter(|(p, _)| {
                cp.call_tree.path_string(*p, |r| t.defs.region(r).name.clone()).contains("heavy")
            })
            .map(|&(_, v)| v)
            .sum();
        let light_total: u64 = by_path
            .iter()
            .filter(|(p, _)| {
                cp.call_tree.path_string(*p, |r| t.defs.region(r).name.clone()).contains("light")
            })
            .map(|&(_, v)| v)
            .sum();
        assert!(heavy_total >= 80, "heavy region dominates the path: {heavy_total}");
        assert_eq!(light_total, 0, "the waiting rank's work is off the path");
        // The walked path visits both locations (it ends on rank 0, which
        // finishes last, but came through rank 1's collective arrival).
        let locs: std::collections::HashSet<usize> = cp.events.iter().map(|e| e.0).collect();
        assert_eq!(locs.len(), 2);
    }

    #[test]
    fn attribution_is_bounded_by_length() {
        let t = imbalanced_trace();
        let cp = critical_path(&t);
        let attributed: u64 = cp.contributions.iter().map(|&(_, _, v)| v).sum();
        assert!(attributed <= cp.length);
        assert!(cp.attributed_fraction() > 0.8, "{}", cp.attributed_fraction());
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = Trace {
            defs: Definitions {
                regions: std::sync::Arc::new(vec![]),
                locations: std::sync::Arc::new(vec![]),
                threads_per_rank: 1,
                clock: ClockKind::Physical,
            },
            streams: vec![],
        };
        let cp = critical_path(&t);
        assert_eq!(cp.length, 0);
        assert!(cp.contributions.is_empty());
    }
}
