//! Idle-thread accounting.
//!
//! Outside parallel regions, a rank's worker threads sit idle while the
//! master executes serial code and MPI calls. Scalasca charges this time
//! to the *idle threads* metric at the call paths of the master's serial
//! activity — which is how single-threaded phases (MiniFE's
//! `generate_matrix_structure`) and MPI wait time ("the wait time is
//! responsible for 15× as much idle time") surface as idle-thread
//! contributions in the paper.

use crate::replay::LocalReplay;
use nrlt_profile::CallPathId;

/// One idle contribution: the master spent `ticks` at `path` outside a
/// parallel region, so each of the rank's workers was idle for `ticks`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleChunk {
    /// Master call path responsible.
    pub path: CallPathId,
    /// Duration in trace ticks.
    pub ticks: u64,
}

/// Compute the idle chunks of one rank from its master's replay: all
/// exclusive master activity outside parallel regions (computation,
/// management, and whole MPI calls including their wait states).
pub fn master_serial_chunks(master: &LocalReplay) -> Vec<IdleChunk> {
    let mut out = Vec::new();
    for s in &master.segments {
        if !s.in_parallel && s.dur() > 0 {
            out.push(IdleChunk { path: s.path, ticks: s.dur() });
        }
    }
    for m in &master.mpi_instances {
        if m.dur() > 0 {
            out.push(IdleChunk { path: m.path, ticks: m.dur() });
        }
    }
    out
}

/// Total idle per worker implied by the chunks.
pub fn total_idle(chunks: &[IdleChunk]) -> u64 {
    chunks.iter().map(|c| c.ticks).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{MpiInstance, SegClass, Segment};

    #[test]
    fn serial_chunks_exclude_parallel_segments() {
        let master = LocalReplay {
            segments: vec![
                Segment {
                    path: CallPathId(0),
                    class: SegClass::Comp,
                    start: 0,
                    end: 10,
                    in_parallel: false,
                },
                Segment {
                    path: CallPathId(1),
                    class: SegClass::Comp,
                    start: 10,
                    end: 40,
                    in_parallel: true,
                },
                Segment {
                    path: CallPathId(2),
                    class: SegClass::Management,
                    start: 40,
                    end: 45,
                    in_parallel: false,
                },
            ],
            mpi_instances: vec![MpiInstance {
                path: CallPathId(3),
                enter: 45,
                leave: 75,
                collective: None,
                collective_end_ts: None,
                n_completes: 0,
                n_sends: 0,
            }],
            ..Default::default()
        };
        let chunks = master_serial_chunks(&master);
        assert_eq!(chunks.len(), 3);
        assert_eq!(total_idle(&chunks), 10 + 5 + 30);
        assert!(chunks.iter().all(|c| c.path != CallPathId(1)));
    }

    #[test]
    fn empty_master_yields_nothing() {
        let chunks = master_serial_chunks(&LocalReplay::default());
        assert!(chunks.is_empty());
        assert_eq!(total_idle(&chunks), 0);
    }
}
