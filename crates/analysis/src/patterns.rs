//! Wait-state pattern detection (Section III).
//!
//! Matches communication records across locations and computes pattern
//! severities exactly as Scalasca defines them:
//!
//! * **Late Sender** — a receive blocked because the matching send
//!   started later: severity = difference of the `MPI_Send` and
//!   `MPI_Recv`(`/Waitall`) enter timestamps, clipped to the receive
//!   interval.
//! * **Late Receiver** — a rendezvous send blocked until the receive was
//!   posted.
//! * **Wait at N×N** — in all-to-all-style collectives every rank waits
//!   from its own arrival until the last participant arrives.
//! * **Wait at OpenMP barrier** and **barrier overhead** — arrival
//!   spread vs. release cost within a thread team.

use crate::replay::LocalReplay;
use nrlt_trace::CollectiveOp;
use std::collections::HashMap;

/// One matched point-to-point message, in analysis terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedMessage {
    /// Sender location index.
    pub send_loc: usize,
    /// Index into the sender's `sends`.
    pub send_idx: usize,
    /// Send post timestamp.
    pub send_ts: u64,
    /// Enter timestamp of the enclosing send call.
    pub send_enter: u64,
    /// Leave timestamp of the enclosing send call.
    pub send_leave: u64,
    /// Sender's MPI instance index.
    pub send_instance: usize,
    /// Receiver location index.
    pub recv_loc: usize,
    /// Receive post timestamp.
    pub recv_post: u64,
    /// Completion timestamp.
    pub complete_ts: u64,
    /// Receiver's MPI instance index (of the completing call).
    pub recv_instance: usize,
    /// Message size.
    pub bytes: u64,
}

/// Match all sends to receive posts/completions, FIFO per
/// (src rank, dst rank, tag). Location indices follow the trace layout
/// (rank-major); only masters communicate.
pub fn match_messages(locals: &[LocalReplay], threads_per_rank: u32) -> Vec<MatchedMessage> {
    // channel -> (sends, posts, completes)
    type Key = (u32, u32, u32);
    let mut sends: HashMap<Key, Vec<(usize, usize)>> = HashMap::new(); // (loc, idx)
    let mut posts: HashMap<Key, Vec<u64>> = HashMap::new();
    let mut completes: HashMap<Key, Vec<(usize, usize)>> = HashMap::new();
    // Wildcard receive posts (`MPI_ANY_SOURCE`) are tracked per
    // (dst rank, tag): their channel is only known at completion.
    const ANY: u32 = u32::MAX;
    let mut any_posts: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
    for (loc, r) in locals.iter().enumerate() {
        let rank = loc as u32 / threads_per_rank;
        for (i, s) in r.sends.iter().enumerate() {
            sends.entry((rank, s.peer, s.tag)).or_default().push((loc, i));
        }
        for p in &r.recv_posts {
            if p.peer == ANY {
                any_posts.entry((rank, p.tag)).or_default().push(p.ts);
            } else {
                posts.entry((p.peer, rank, p.tag)).or_default().push(p.ts);
            }
        }
        for (i, c) in r.recv_completes.iter().enumerate() {
            completes.entry((c.peer, rank, c.tag)).or_default().push((loc, i));
        }
    }
    let mut out = Vec::new();
    for (key, send_list) in &sends {
        let post_list = posts.get(key).map_or(&[] as &[u64], Vec::as_slice);
        let complete_list = completes.get(key).map_or(&[] as &[(usize, usize)], Vec::as_slice);
        assert_eq!(send_list.len(), complete_list.len(), "unmatched traffic on channel {key:?}");
        for k in 0..send_list.len() {
            let (sl, si) = send_list[k];
            let (rl, ri) = complete_list[k];
            let s = &locals[sl].sends[si];
            let c = &locals[rl].recv_completes[ri];
            let smi = &locals[sl].mpi_instances[s.instance];
            // Completions beyond the channel's specific posts were
            // satisfied by wildcard posts; their exact post time is
            // ambiguous, so fall back to the completing call's entry.
            let recv_post = post_list.get(k).copied().or_else(|| {
                let rank = rl as u32 / threads_per_rank;
                any_posts.get_mut(&(rank, c.tag)).and_then(|q| {
                    if q.is_empty() {
                        None
                    } else {
                        Some(q.remove(0))
                    }
                })
            });
            let recv_post = recv_post.unwrap_or_else(|| locals[rl].mpi_instances[c.instance].enter);
            out.push(MatchedMessage {
                send_loc: sl,
                send_idx: si,
                send_ts: s.ts,
                send_enter: smi.enter,
                send_leave: smi.leave,
                send_instance: s.instance,
                recv_loc: rl,
                recv_post,
                complete_ts: c.ts,
                recv_instance: c.instance,
                bytes: s.bytes,
            });
        }
    }
    // Deterministic order for downstream floating-point accumulation.
    out.sort_by_key(|m| (m.send_loc, m.send_idx));
    out
}

/// Late-sender severity of one receiving MPI instance, given the
/// messages completing inside it: the time from the receive call's enter
/// until the latest late send started, clipped to the instance.
pub fn late_sender_severity(instance_enter: u64, instance_leave: u64, send_ts: &[u64]) -> u64 {
    let latest = send_ts.iter().copied().max().unwrap_or(0);
    latest.saturating_sub(instance_enter).min(instance_leave - instance_enter)
}

/// Late-receiver severity of one sending MPI instance: how long the send
/// was blocked waiting for the receive post. Zero for eager sends, whose
/// call returns immediately regardless of the receiver.
pub fn late_receiver_severity(send_enter: u64, send_leave: u64, recv_post: u64) -> u64 {
    recv_post.saturating_sub(send_enter).min(send_leave - send_enter)
}

/// One collective instance gathered across ranks.
#[derive(Debug, Clone)]
pub struct CollectiveInstance {
    /// Operation.
    pub op: CollectiveOp,
    /// Per participating location: (location index, MPI instance index).
    pub members: Vec<(usize, usize)>,
}

/// Group the collective records of all masters into instances by
/// sequence number. Panics if ranks disagree on the operation order.
pub fn gather_collectives(
    locals: &[LocalReplay],
    threads_per_rank: u32,
) -> Vec<CollectiveInstance> {
    let masters: Vec<usize> = (0..locals.len()).step_by(threads_per_rank as usize).collect();
    let mut instances: Vec<CollectiveInstance> = Vec::new();
    for &loc in &masters {
        for (idx, mi) in locals[loc].mpi_instances.iter().enumerate() {
            if let Some((op, seq)) = mi.collective {
                let seq = seq as usize;
                if instances.len() <= seq {
                    instances
                        .resize_with(seq + 1, || CollectiveInstance { op, members: Vec::new() });
                }
                assert_eq!(instances[seq].op, op, "collective order mismatch at sequence {seq}");
                instances[seq].members.push((loc, idx));
            }
        }
    }
    for (i, inst) in instances.iter().enumerate() {
        assert_eq!(inst.members.len(), masters.len(), "collective {i} is missing participants");
    }
    instances
}

/// Wait-at-N×N severity for one member: time from its own arrival until
/// the last participant arrives, clipped to the instance.
pub fn wait_nxn_severity(enter: u64, leave: u64, latest_enter: u64) -> u64 {
    latest_enter.saturating_sub(enter).min(leave - enter)
}

/// A barrier instance across a thread team: per-thread records at the
/// same (region, occurrence).
#[derive(Debug, Clone)]
pub struct BarrierInstance {
    /// Per team thread: (location index, barrier record index).
    pub members: Vec<(usize, usize)>,
}

/// Group barrier passages of one rank's team into instances.
///
/// Threads pass the same barriers in the same order (OpenMP semantics),
/// so the k-th passage of a region on each thread belongs together.
pub fn gather_barriers(
    locals: &[LocalReplay],
    rank: u32,
    threads_per_rank: u32,
) -> Vec<BarrierInstance> {
    let base = (rank * threads_per_rank) as usize;
    let team = base..base + threads_per_rank as usize;
    // Group by (region, k-th passage of that region) with dense per-region
    // occurrence counters instead of hash maps. Output order is (region,
    // k) ascending and members are in team-thread order — the same order
    // the sorted map-based grouping produced.
    let n_regions = team
        .clone()
        .flat_map(|loc| locals[loc].barriers.iter().map(|b| b.region.0 as usize + 1))
        .max()
        .unwrap_or(0);
    // Occurrences of each region per thread; the region's instance count
    // is the maximum over threads.
    let mut occ = vec![0u32; n_regions];
    let mut max_occ = vec![0u32; n_regions];
    for loc in team.clone() {
        occ.iter_mut().for_each(|o| *o = 0);
        for b in &locals[loc].barriers {
            occ[b.region.0 as usize] += 1;
        }
        for (m, &o) in max_occ.iter_mut().zip(&occ) {
            *m = (*m).max(o);
        }
    }
    // Instance index = region offset + k, (region, k) ascending.
    let mut offsets = vec![0usize; n_regions + 1];
    for r in 0..n_regions {
        offsets[r + 1] = offsets[r] + max_occ[r] as usize;
    }
    let mut out: Vec<BarrierInstance> =
        (0..offsets[n_regions]).map(|_| BarrierInstance { members: Vec::new() }).collect();
    for loc in team {
        occ.iter_mut().for_each(|o| *o = 0);
        for (i, b) in locals[loc].barriers.iter().enumerate() {
            let r = b.region.0 as usize;
            let k = occ[r] as usize;
            occ[r] += 1;
            out[offsets[r] + k].members.push((loc, i));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_sender_clips_to_instance() {
        // Recv entered at 10, left at 100; send started at 60.
        assert_eq!(late_sender_severity(10, 100, &[60]), 50);
        // Send before the recv: no wait.
        assert_eq!(late_sender_severity(10, 100, &[5]), 0);
        // Send after the leave (possible under skewed clocks): clipped.
        assert_eq!(late_sender_severity(10, 100, &[500]), 90);
        // Multiple messages: the latest dominates.
        assert_eq!(late_sender_severity(10, 100, &[20, 70, 40]), 60);
        // No messages: zero.
        assert_eq!(late_sender_severity(10, 100, &[]), 0);
    }

    #[test]
    fn late_receiver_zero_for_fast_sends() {
        // Eager send: returned at 12, recv posted at 50 → clipped to 2.
        assert_eq!(late_receiver_severity(10, 12, 50), 2);
        // Rendezvous: blocked 10..60 for the post at 55.
        assert_eq!(late_receiver_severity(10, 60, 55), 45);
        // Receive posted first: no wait.
        assert_eq!(late_receiver_severity(10, 60, 5), 0);
    }

    #[test]
    fn wait_nxn_latest_arrival() {
        assert_eq!(wait_nxn_severity(10, 100, 70), 60);
        assert_eq!(wait_nxn_severity(70, 100, 70), 0);
        assert_eq!(wait_nxn_severity(10, 40, 70), 30); // clipped
    }
}
