//! The analysis driver: trace in, profile out.
//!
//! Mirrors Scalasca's pipeline: replay every location, match
//! communication, detect wait-state patterns, account idle threads, and
//! attribute delay costs. The delay phase — the expensive part — runs on
//! scoped worker threads (`std::thread::scope`) with deterministic
//! chunked merging, so repeated analyses of the same trace produce
//! bit-identical profiles.
//!
//! When handed a [`Telemetry`] handle, the driver records one span per
//! phase, per-pattern hit counters, replay throughput, and per-worker
//! timing of the delay phase. With `None`, no telemetry work happens.

use crate::delay::{delay_for_wait_into, DelayContribution, DelayScratch, SpanIndex};
use crate::idle::master_serial_chunks;
use crate::patterns::{
    gather_barriers, gather_collectives, late_receiver_severity, late_sender_severity,
    match_messages, wait_nxn_severity, MatchedMessage,
};
use crate::replay::{prev_mpi_sync, prev_sync, replay_view, LocalReplay, SegClass};
use nrlt_observe::{ChainLink, RunObserve, WaitProvenance};
use nrlt_profile::{CallPathId, Metric, Profile};
use nrlt_telemetry::sample::{self, frames};
use nrlt_telemetry::Telemetry;
use nrlt_trace::{ClockKind, Trace, TraceView};
use std::collections::BTreeMap;

/// Longest causal chain kept per wait-state provenance record — the
/// most recent events on the delayer before the wait (older links are
/// summarised by the window itself).
const CHAIN_CAP: usize = 8;

/// Analysis options.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Run the delay-cost phase (root-cause attribution).
    pub delay_costs: bool,
    /// Worker threads for the delay phase (0 = available parallelism).
    pub workers: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig { delay_costs: true, workers: 0 }
    }
}

/// Analyze a trace with default options.
pub fn analyze(trace: &Trace) -> Profile {
    analyze_with(trace, &AnalysisConfig::default())
}

/// One wait state scheduled for delay attribution.
struct WaitInstance {
    metric: Metric,
    waiter_loc: usize,
    waiter_path: CallPathId,
    waiter_enter: u64,
    delayer_loc: usize,
    delayer_path: CallPathId,
    delayer_enter: u64,
    severity: u64,
}

/// Analyze a trace.
pub fn analyze_with(trace: &Trace, config: &AnalysisConfig) -> Profile {
    analyze_telemetry(trace, config, None)
}

/// Analyze a trace, optionally recording self-telemetry.
pub fn analyze_telemetry(
    trace: &Trace,
    config: &AnalysisConfig,
    tel: Option<&Telemetry>,
) -> Profile {
    analyze_observed(trace, config, tel, None)
}

/// [`analyze_telemetry`] with an optional resource observatory: for each
/// wait state found, records its provenance (waiter/delayer call paths,
/// the chain of events on the delayer that produced it, and — for
/// physical-clock traces — how much injected noise falls into the causal
/// window). `None` performs zero observability work.
pub fn analyze_observed(
    trace: &Trace,
    config: &AnalysisConfig,
    tel: Option<&Telemetry>,
    obs: Option<&RunObserve>,
) -> Profile {
    analyze_view(&TraceView::Resident(trace), config, tel, obs)
}

/// [`analyze_observed`] over a [`TraceView`] — the streaming entry
/// point. A spilled view is replayed through bounded per-location
/// segment cursors, so the analysis holds O(locations × chunk) of raw
/// events at a time; the [`LocalReplay`] products (segments, instances,
/// sync lists) stay resident, exactly as on the in-memory path, which
/// keeps the result byte-identical between the two.
pub fn analyze_view(
    view: &TraceView<'_>,
    config: &AnalysisConfig,
    tel: Option<&Telemetry>,
    obs: Option<&RunObserve>,
) -> Profile {
    let defs = view.defs();
    let mut _phase = tel.map(|t| t.span_cat("analyze.replay", "analysis"));
    // Sampling-profiler frames mirror the phase spans. Frame pops are
    // positional, so each transition drops the old guard (`= None`)
    // *before* publishing the next frame.
    let mut _sframe = Some(sample::frame(frames::ANALYZE_REPLAY));
    let (tree, locals) = replay_view(view);
    if let Some(t) = tel {
        // Replay throughput: events per wall millisecond of the replay span.
        _phase = None;
        // Under a parallel sweep several analyses interleave; read the
        // replay span of *this* worker's track.
        let track = nrlt_telemetry::current_track();
        let replay_ns = t
            .spans()
            .iter()
            .rev()
            .find(|s| s.name == "analyze.replay" && s.track == track)
            .map_or(0, |s| s.dur_ns);
        t.add("analysis.replay.events", view.total_events() as u64);
        if let Some(rate) =
            (view.total_events() as u64).saturating_mul(1_000_000).checked_div(replay_ns)
        {
            t.set("analysis.replay.events_per_ms", rate);
        }
    }
    let tpr = defs.threads_per_rank;
    let n_ranks = defs.n_ranks();
    let mut profile = Profile::new(
        defs.clock.name().to_owned(),
        defs.regions.clone(),
        tree,
        defs.locations.clone(),
    );
    let mut waits: Vec<WaitInstance> = Vec::new();

    // --- computation, management, visits --------------------------------
    // Millions of segments funnel into a handful of (metric, path, loc)
    // cells; accumulate densely and flush each cell with one add.
    let n_paths = profile.call_tree.len();
    let n_locs = locals.len();
    {
        let mut acc = DenseAdds::new(
            vec![Metric::Comp, Metric::OmpManagement, Metric::Visits],
            n_paths,
            n_locs,
        );
        for (loc, r) in locals.iter().enumerate() {
            for s in &r.segments {
                let lane = match s.class {
                    SegClass::Comp => 0,
                    SegClass::Management => 1,
                };
                acc.add(lane, s.path, loc, s.dur() as f64);
            }
            for &(path, count) in &r.visits {
                acc.add(2, path, loc, count as f64);
            }
        }
        acc.flush(&mut profile);
    }

    // --- point-to-point patterns -----------------------------------------
    _phase = None;
    _phase = tel.map(|t| t.span_cat("analyze.p2p", "analysis"));
    _sframe = None;
    _sframe = Some(sample::frame(frames::ANALYZE_P2P));
    let messages = match_messages(&locals, tpr);
    if let Some(t) = tel {
        t.add("analysis.messages_matched", messages.len() as u64);
    }
    // Late sender: group messages by completing instance. Ordered maps:
    // nothing on a result path may depend on hash iteration order.
    let mut by_recv_instance: BTreeMap<(usize, usize), Vec<&MatchedMessage>> = BTreeMap::new();
    // Late receiver: group by sending instance.
    let mut by_send_instance: BTreeMap<(usize, usize), Vec<&MatchedMessage>> = BTreeMap::new();
    for m in &messages {
        by_recv_instance.entry((m.recv_loc, m.recv_instance)).or_default().push(m);
        by_send_instance.entry((m.send_loc, m.send_instance)).or_default().push(m);
    }

    for (loc, r) in locals.iter().enumerate() {
        for (idx, mi) in r.mpi_instances.iter().enumerate() {
            if mi.collective.is_some() {
                continue; // handled below
            }
            let dur = mi.dur();
            let mut classified = 0u64;
            if let Some(msgs) = by_recv_instance.get(&(loc, idx)) {
                let send_ts: Vec<u64> = msgs.iter().map(|m| m.send_enter).collect();
                let ls = late_sender_severity(mi.enter, mi.leave, &send_ts);
                if ls > 0 {
                    if let Some(t) = tel {
                        t.incr("analysis.patterns.late_sender");
                    }
                    profile.add(Metric::LateSender, mi.path, loc, ls as f64);
                    classified += ls;
                    // Delay: the latest sender is the culprit.
                    let culprit =
                        msgs.iter().max_by_key(|m| m.send_enter).expect("non-empty message group");
                    waits.push(WaitInstance {
                        metric: Metric::DelayP2p,
                        waiter_loc: loc,
                        waiter_path: mi.path,
                        waiter_enter: mi.enter,
                        delayer_loc: culprit.send_loc,
                        delayer_path: locals[culprit.send_loc].mpi_instances[culprit.send_instance]
                            .path,
                        delayer_enter: culprit.send_enter,
                        severity: ls,
                    });
                }
            }
            if let Some(msgs) = by_send_instance.get(&(loc, idx)) {
                let lr = msgs
                    .iter()
                    .map(|m| late_receiver_severity(mi.enter, mi.leave, m.recv_post))
                    .max()
                    .unwrap_or(0);
                // Only meaningful when the send actually blocked; tiny
                // values on eager sends are classified as plain p2p time.
                let lr = lr.min(dur - classified.min(dur));
                if lr > dur / 20 && lr > 0 {
                    if let Some(t) = tel {
                        t.incr("analysis.patterns.late_receiver");
                    }
                    profile.add(Metric::LateReceiver, mi.path, loc, lr as f64);
                    classified += lr;
                }
            }
            profile.add(Metric::MpiP2p, mi.path, loc, dur.saturating_sub(classified) as f64);
        }
    }

    // --- collectives -------------------------------------------------------
    _phase = None;
    _phase = tel.map(|t| t.span_cat("analyze.collectives", "analysis"));
    _sframe = None;
    _sframe = Some(sample::frame(frames::ANALYZE_COLLECTIVES));
    let collectives = gather_collectives(&locals, tpr);
    if let Some(t) = tel {
        t.add("analysis.collectives", collectives.len() as u64);
    }
    for inst in &collectives {
        let latest = inst
            .members
            .iter()
            .map(|&(loc, idx)| locals[loc].mpi_instances[idx].enter)
            .max()
            .unwrap_or(0);
        let delayer = inst
            .members
            .iter()
            .max_by_key(|&&(loc, idx)| (locals[loc].mpi_instances[idx].enter, loc))
            .copied()
            .expect("collective has members");
        let is_nxn = inst.op.is_nxn() || inst.op == nrlt_trace::CollectiveOp::Barrier;
        for &(loc, idx) in &inst.members {
            let mi = &locals[loc].mpi_instances[idx];
            let dur = mi.dur();
            if is_nxn {
                let wait = wait_nxn_severity(mi.enter, mi.leave, latest);
                if wait > 0 {
                    if let Some(t) = tel {
                        t.incr("analysis.patterns.wait_nxn");
                    }
                    profile.add(Metric::WaitNxN, mi.path, loc, wait as f64);
                    waits.push(WaitInstance {
                        metric: Metric::DelayN2n,
                        waiter_loc: loc,
                        waiter_path: mi.path,
                        waiter_enter: mi.enter,
                        delayer_loc: delayer.0,
                        delayer_path: locals[delayer.0].mpi_instances[delayer.1].path,
                        delayer_enter: locals[delayer.0].mpi_instances[delayer.1].enter,
                        severity: wait,
                    });
                }
                profile.add(Metric::MpiCollective, mi.path, loc, (dur - wait) as f64);
            } else {
                profile.add(Metric::MpiCollective, mi.path, loc, dur as f64);
            }
        }
    }

    // --- OpenMP barriers ----------------------------------------------------
    _phase = None;
    _phase = tel.map(|t| t.span_cat("analyze.omp_barriers", "analysis"));
    _sframe = None;
    _sframe = Some(sample::frame(frames::ANALYZE_OMP));
    {
        let mut acc = DenseAdds::new(
            vec![Metric::OmpBarrierWait, Metric::OmpBarrierOverhead],
            n_paths,
            n_locs,
        );
        for rank in 0..n_ranks {
            for inst in gather_barriers(&locals, rank, tpr) {
                let latest = inst
                    .members
                    .iter()
                    .map(|&(loc, i)| locals[loc].barriers[i].enter)
                    .max()
                    .unwrap_or(0);
                let delayer = inst
                    .members
                    .iter()
                    .max_by_key(|&&(loc, i)| (locals[loc].barriers[i].enter, loc))
                    .copied()
                    .expect("barrier has members");
                for &(loc, i) in &inst.members {
                    let b = &locals[loc].barriers[i];
                    let dur = b.leave - b.enter;
                    let wait = latest.saturating_sub(b.enter).min(dur);
                    if wait > 0 {
                        if let Some(t) = tel {
                            t.incr("analysis.patterns.omp_barrier_wait");
                        }
                        acc.add(0, b.path, loc, wait as f64);
                        waits.push(WaitInstance {
                            metric: Metric::DelayBarrier,
                            waiter_loc: loc,
                            waiter_path: b.path,
                            waiter_enter: b.enter,
                            delayer_loc: delayer.0,
                            delayer_path: locals[delayer.0].barriers[delayer.1].path,
                            delayer_enter: locals[delayer.0].barriers[delayer.1].enter,
                            severity: wait,
                        });
                    }
                    acc.add(1, b.path, loc, (dur - wait) as f64);
                }
            }
        }
        acc.flush(&mut profile);
    }

    // --- idle threads ---------------------------------------------------------
    _phase = None;
    _phase = tel.map(|t| t.span_cat("analyze.idle_threads", "analysis"));
    _sframe = None;
    _sframe = Some(sample::frame(frames::ANALYZE_IDLE));
    if tpr > 1 {
        let mut acc = DenseAdds::new(vec![Metric::IdleThreads], n_paths, n_locs);
        for rank in 0..n_ranks {
            let master = (rank * tpr) as usize;
            let chunks = master_serial_chunks(&locals[master]);
            for worker in 1..tpr {
                let loc = master + worker as usize;
                for c in &chunks {
                    acc.add(0, c.path, loc, c.ticks as f64);
                }
            }
        }
        acc.flush(&mut profile);
    }

    // --- delay costs -----------------------------------------------------------
    _phase = None;
    _phase = tel.map(|t| t.span_cat("analyze.delay_costs", "analysis"));
    _sframe = None;
    _sframe = Some(sample::frame(frames::ANALYZE_DELAY));
    if let Some(t) = tel {
        t.add("analysis.wait_instances", waits.len() as u64);
    }
    if config.delay_costs && !waits.is_empty() {
        let index = SpanIndex::build(&locals);
        let contributions = compute_delays(&waits, &index, &locals, config.workers, tel);
        // Sole writer of the three delay metrics, so the flat ordered
        // contribution list can be pre-summed densely (see DenseAdds).
        let mut acc = DenseAdds::new(
            vec![Metric::DelayP2p, Metric::DelayN2n, Metric::DelayBarrier],
            n_paths,
            n_locs,
        );
        for (metric, (path, loc, v)) in contributions {
            let lane = match metric {
                Metric::DelayP2p => 0,
                Metric::DelayN2n => 1,
                _ => 2,
            };
            acc.add(lane, path, loc, v);
        }
        acc.flush(&mut profile);
    }

    if let Some(o) = obs {
        let physical = defs.clock == ClockKind::Physical;
        record_wait_provenance(o, physical, &profile, &locals, &waits, tpr as usize);
    }

    profile
}

/// Record the provenance of every wait state into the observatory: the
/// waiter/delayer call paths, the causal window on the delayer (back to
/// its previous synchronisation, mirroring the delay-cost horizon), the
/// chain of events inside that window, and the injected noise the window
/// contains. Noise joins only make sense on physical traces — logical
/// timestamps are not commensurable with nanoseconds, so there
/// `noise_ns` stays 0 (which the noise-share query reports as such).
fn record_wait_provenance(
    obs: &RunObserve,
    physical: bool,
    profile: &Profile,
    locals: &[LocalReplay],
    waits: &[WaitInstance],
    tpr: usize,
) {
    for w in waits {
        let inter_process = w.metric != Metric::DelayBarrier;
        let delayer = &locals[w.delayer_loc];
        let from = if inter_process {
            prev_mpi_sync(delayer, w.delayer_enter)
        } else {
            prev_sync(delayer, w.delayer_enter)
        };
        let noise_ns = if physical {
            obs.noise_in_window((w.delayer_loc / tpr.max(1)) as u32, from, w.delayer_enter)
        } else {
            0
        };
        let mut chain = delayer_chain(profile, delayer, w.delayer_loc, from, w.delayer_enter);
        chain.push(ChainLink {
            what: "wait".to_owned(),
            path: profile.path_string(w.waiter_path),
            loc: w.waiter_loc,
            start: w.waiter_enter,
            end: w.waiter_enter + w.severity,
        });
        obs.wait(WaitProvenance {
            metric: w.metric.name().to_owned(),
            waiter_loc: w.waiter_loc,
            waiter_path: profile.path_string(w.waiter_path),
            waiter_enter: w.waiter_enter,
            severity: w.severity,
            delayer_loc: w.delayer_loc,
            delayer_path: profile.path_string(w.delayer_path),
            delayer_enter: w.delayer_enter,
            noise_ns,
            chain,
        });
    }
}

/// The delayer's activity inside `[from, to)`, oldest first, capped at
/// [`CHAIN_CAP`] most recent links.
fn delayer_chain(
    profile: &Profile,
    delayer: &LocalReplay,
    delayer_loc: usize,
    from: u64,
    to: u64,
) -> Vec<ChainLink> {
    let mut chain: Vec<ChainLink> = Vec::new();
    let mut push = |what: &str, path: CallPathId, start: u64, end: u64| {
        if end > from && start < to {
            chain.push(ChainLink {
                what: what.to_owned(),
                path: profile.path_string(path),
                loc: delayer_loc,
                start,
                end,
            });
        }
    };
    for s in &delayer.segments {
        let what = match s.class {
            SegClass::Comp => "comp",
            SegClass::Management => "mgmt",
        };
        push(what, s.path, s.start, s.end);
    }
    for mi in &delayer.mpi_instances {
        push("mpi", mi.path, mi.enter, mi.leave);
    }
    for b in &delayer.barriers {
        push("barrier", b.path, b.enter, b.leave);
    }
    chain.sort_by_key(|l| (l.start, l.end));
    if chain.len() > CHAIN_CAP {
        chain.drain(..chain.len() - CHAIN_CAP);
    }
    chain
}

/// Dense `(metric lane, call path, location)` accumulator for the
/// million-iteration analysis loops, flushed into the profile with a
/// single `Profile::add` per touched cell instead of one ordered-map
/// lookup per iteration.
///
/// Bit-identity argument: a cell accumulates its values in the same
/// order the direct adds would have applied them, starting from 0.0 —
/// exactly like a fresh profile cell — and `0.0 + x == x` for the
/// non-negative values these loops produce. Only loops that are the sole
/// writer of their metrics may batch this way.
struct DenseAdds {
    metrics: Vec<Metric>,
    n_paths: usize,
    n_locs: usize,
    vals: Vec<f64>,
    seen: Vec<bool>,
    /// Flat cell indices in first-touch order.
    touched: Vec<usize>,
}

impl DenseAdds {
    fn new(metrics: Vec<Metric>, n_paths: usize, n_locs: usize) -> DenseAdds {
        let cells = metrics.len() * n_paths * n_locs;
        DenseAdds {
            metrics,
            n_paths,
            n_locs,
            vals: vec![0.0; cells],
            seen: vec![false; cells],
            touched: Vec::new(),
        }
    }

    fn add(&mut self, lane: usize, path: CallPathId, loc: usize, value: f64) {
        let i = (lane * self.n_paths + path.0 as usize) * self.n_locs + loc;
        if !self.seen[i] {
            self.seen[i] = true;
            self.touched.push(i);
        }
        self.vals[i] += value;
    }

    fn flush(&mut self, profile: &mut Profile) {
        let per_lane = self.n_paths * self.n_locs;
        for &i in &self.touched {
            let (lane, rest) = (i / per_lane, i % per_lane);
            let (path, loc) = (rest / self.n_locs, rest % self.n_locs);
            profile.add(self.metrics[lane], CallPathId(path as u32), loc, self.vals[i]);
            self.vals[i] = 0.0;
            self.seen[i] = false;
        }
        self.touched.clear();
    }
}

/// Compute delay contributions for all wait instances in parallel,
/// merging deterministically (chunked by instance index).
fn compute_delays(
    waits: &[WaitInstance],
    index: &SpanIndex,
    locals: &[LocalReplay],
    workers: usize,
    tel: Option<&Telemetry>,
) -> Vec<(Metric, DelayContribution)> {
    let n_workers = if workers == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(16)
    } else {
        workers
    };
    let chunk_size = waits.len().div_ceil(n_workers).max(1);
    let chunks: Vec<&[WaitInstance]> = waits.chunks(chunk_size).collect();
    if let Some(t) = tel {
        t.set("analysis.delay.workers", chunks.len() as u64);
    }
    let mut results: Vec<Vec<(Metric, DelayContribution)>> = Vec::with_capacity(chunks.len());
    // When the whole analysis already runs on a fan-out worker track,
    // derive disjoint sub-tracks so concurrent cells don't interleave.
    let base_track = nrlt_telemetry::current_track() * 16;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(worker, chunk)| {
                scope.spawn(move || {
                    // `Telemetry` is `Sync`; each worker records on its
                    // own track so the spans render side by side.
                    let _span = tel.map(|t| {
                        t.span_track(
                            format!("delay worker {worker}"),
                            "analysis",
                            base_track + worker as u32 + 1,
                        )
                    });
                    // Dense scratch reused across the chunk: no per-wait
                    // map or vector allocations.
                    let mut scratch = DelayScratch::new(index.n_paths());
                    let mut tmp: Vec<DelayContribution> = Vec::new();
                    let mut out: Vec<(Metric, DelayContribution)> = Vec::new();
                    for w in chunk.iter() {
                        delay_for_wait_into(
                            index,
                            locals,
                            w.waiter_loc,
                            w.waiter_enter,
                            w.delayer_loc,
                            w.delayer_enter,
                            w.severity,
                            w.metric != Metric::DelayBarrier,
                            &mut scratch,
                            &mut tmp,
                        );
                        out.extend(tmp.drain(..).map(|c| (w.metric, c)));
                    }
                    if let Some(t) = tel {
                        t.add("analysis.delay.instances", chunk.len() as u64);
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("delay worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}
