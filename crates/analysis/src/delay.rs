//! Delay-cost analysis: root causes of wait states.
//!
//! For every wait state, Scalasca's delay analysis asks *who* made the
//! waiter wait and *what that location was doing* in the interval since
//! the previous synchronisation point. This implementation performs the
//! single-step (short-term) attribution: the waiter's severity is
//! distributed over the call paths in which the delaying location spent
//! more time than the waiter did since their respective last
//! synchronisation points. Transitive (long-term) propagation of delay
//! through chains of wait states is not modelled; DESIGN.md records this
//! simplification.
//!
//! Including the delayer's MPI spans in the interval profile is what
//! reproduces the paper's `lt_hwctr` observation that delay costs can
//! point *into* `MPI_Waitall`: under the instruction counter, spinning
//! inflates exactly those spans.

use crate::replay::{prev_sync_hinted, LocalReplay};
use nrlt_profile::CallPathId;
use std::collections::HashMap;

/// Per-location interval index over (comp + management + MPI) spans.
#[derive(Debug, Clone, Default)]
pub struct SpanIndex {
    /// Non-overlapping `(start, end, path)` in time order, per location.
    spans: Vec<Vec<(u64, u64, CallPathId)>>,
    /// One past the largest call-path id appearing in any span (sizes the
    /// dense [`DelayScratch`] arrays).
    n_paths: usize,
}

impl SpanIndex {
    /// Build the index from the replay data.
    pub fn build(locals: &[LocalReplay]) -> SpanIndex {
        let spans: Vec<Vec<(u64, u64, CallPathId)>> = locals
            .iter()
            .map(|r| {
                let mut v: Vec<(u64, u64, CallPathId)> = r
                    .segments
                    .iter()
                    .map(|s| (s.start, s.end, s.path))
                    .chain(r.mpi_instances.iter().map(|m| (m.enter, m.leave, m.path)))
                    .filter(|&(s, e, _)| e > s)
                    .collect();
                v.sort_unstable_by_key(|&(s, _, _)| s);
                v
            })
            .collect();
        let n_paths = spans
            .iter()
            .flat_map(|v| v.iter().map(|&(_, _, p)| p.0 as usize + 1))
            .max()
            .unwrap_or(0);
        SpanIndex { spans, n_paths }
    }

    /// One past the largest call-path id this index can produce.
    pub fn n_paths(&self) -> usize {
        self.n_paths
    }

    /// [`profile`](Self::profile) into reusable dense scratch: time per
    /// call path overlapping `[start, end)` on `loc` is accumulated into
    /// `acc[path]`, with each first-touched path recorded in `touched`
    /// (so the caller can reset only what was written).
    pub fn profile_into(
        &self,
        loc: usize,
        start: u64,
        end: u64,
        acc: &mut [u64],
        touched: &mut Vec<u32>,
    ) {
        if end <= start {
            return;
        }
        let mut hint = 0;
        self.profile_into_hinted(loc, start, end, acc, touched, &mut hint);
    }

    /// [`profile_into`](Self::profile_into) with a rolling cursor:
    /// `hint` is the lower-bound span index of the previous query on
    /// this location, and the search gallops out from it instead of
    /// bisecting the whole span list. Exact for any hint value; the
    /// delay workers' per-location wait streams are roughly
    /// time-ordered, so consecutive queries land a few spans apart.
    pub fn profile_into_hinted(
        &self,
        loc: usize,
        start: u64,
        end: u64,
        acc: &mut [u64],
        touched: &mut Vec<u32>,
        hint: &mut usize,
    ) {
        if end <= start {
            return;
        }
        let spans = &self.spans[loc];
        // First span that could overlap: the one before the first span
        // starting at/after `start`.
        let lb = {
            let h = *hint;
            let n = spans.len();
            // Gallop on the start column without materialising it: the
            // comparisons below mirror `lower_bound_from`.
            let mut j = h.min(n);
            if j < n && spans[j].0 < start {
                while j < n && spans[j].0 < start {
                    j += 1;
                }
                // Long forward jumps are rare (group boundaries); the
                // linear walk amortises over the in-order common case.
                j
            } else {
                spans[..j].partition_point(|&(s, _, _)| s < start)
            }
        };
        *hint = lb;
        let mut i = lb.saturating_sub(1);
        while i < spans.len() {
            let (s, e, path) = spans[i];
            if s >= end {
                break;
            }
            let overlap = e.min(end).saturating_sub(s.max(start));
            if overlap > 0 {
                let slot = &mut acc[path.0 as usize];
                if *slot == 0 {
                    touched.push(path.0);
                }
                *slot += overlap;
            }
            i += 1;
        }
    }

    /// Time per call path overlapping `[start, end)` on `loc`.
    pub fn profile(&self, loc: usize, start: u64, end: u64) -> HashMap<CallPathId, u64> {
        let mut out = HashMap::new();
        if end <= start {
            return out;
        }
        let spans = &self.spans[loc];
        // First span that could overlap: the one before the first span
        // starting at/after `start`.
        let mut i = spans.partition_point(|&(s, _, _)| s < start);
        i = i.saturating_sub(1);
        while i < spans.len() {
            let (s, e, path) = spans[i];
            if s >= end {
                break;
            }
            let overlap = e.min(end).saturating_sub(s.max(start));
            if overlap > 0 {
                *out.entry(path).or_insert(0) += overlap;
            }
            i += 1;
        }
        out
    }
}

/// One delay attribution target: call path + location + cost.
pub type DelayContribution = (CallPathId, usize, f64);

/// Distribute `severity` (the waiter's wait time) over the delayer's
/// excess call paths.
///
/// * `w_profile` — the waiter's interval profile since its last sync.
/// * `d_profile` — the delayer's interval profile since its last sync.
///
/// Returns an empty vector when the delayer shows no excess anywhere
/// (e.g. the wait was caused by timing noise only — a case the paper
/// flags as invisible to logical clocks).
pub fn attribute_delay(
    severity: u64,
    delayer_loc: usize,
    w_profile: &HashMap<CallPathId, u64>,
    d_profile: &HashMap<CallPathId, u64>,
) -> Vec<DelayContribution> {
    let mut excess: Vec<(CallPathId, u64)> = d_profile
        .iter()
        .map(|(&p, &d)| (p, d.saturating_sub(w_profile.get(&p).copied().unwrap_or(0))))
        .filter(|&(_, e)| e > 0)
        .collect();
    excess.sort_unstable_by_key(|&(p, _)| p);
    let total: u64 = excess.iter().map(|&(_, e)| e).sum();
    if total == 0 {
        return Vec::new();
    }
    excess
        .into_iter()
        .map(|(p, e)| (p, delayer_loc, severity as f64 * e as f64 / total as f64))
        .collect()
}

/// Reusable dense state for one delay worker: interval profiles indexed
/// by call-path id plus touched-path lists for sparse reset. Replaces a
/// pair of per-wait `HashMap` allocations in the hottest analysis loop.
#[derive(Debug, Clone, Default)]
pub struct DelayScratch {
    w: Vec<u64>,
    d: Vec<u64>,
    w_touched: Vec<u32>,
    d_touched: Vec<u32>,
    /// `(delayer_loc, from, to)` of the delayer profile currently held in
    /// `d`. Every waiter of one barrier/collective instance shares the
    /// same delayer, so consecutive waits hit this memo and skip the
    /// delayer's sync search and span walk entirely. The profile is a
    /// pure function of the key, so reuse is exact.
    d_key: Option<(usize, u64, u64)>,
    /// Per-location rolling cursors for the span and sync searches,
    /// lazily sized to the location count. Purely an access hint — every
    /// hinted search returns the same result for any hint value.
    hints: Vec<LocHints>,
}

/// Rolling search cursors for one location (see [`DelayScratch`]).
#[derive(Debug, Clone, Copy, Default)]
struct LocHints {
    /// Lower-bound span index of the last `profile_into_hinted` query.
    span: usize,
    /// Lower-bound index of the last intra-process sync search.
    sync: usize,
    /// Lower-bound index of the last inter-process sync search.
    mpi_sync: usize,
}

impl DelayScratch {
    /// Scratch sized for `n_paths` call paths ([`SpanIndex::n_paths`]).
    pub fn new(n_paths: usize) -> DelayScratch {
        DelayScratch {
            w: vec![0; n_paths],
            d: vec![0; n_paths],
            w_touched: Vec::new(),
            d_touched: Vec::new(),
            d_key: None,
            hints: Vec::new(),
        }
    }

    fn reset_waiter(&mut self) {
        for &p in &self.w_touched {
            self.w[p as usize] = 0;
        }
        self.w_touched.clear();
    }

    fn reset_delayer(&mut self) {
        for &p in &self.d_touched {
            self.d[p as usize] = 0;
        }
        self.d_touched.clear();
        self.d_key = None;
    }
}

/// Convenience: compute both interval profiles and attribute.
///
/// `inter_process` selects the synchronisation horizon: true for MPI
/// wait states (only recv/collective completions clip the interval),
/// false for OpenMP barrier waits (any sync point does).
#[allow(clippy::too_many_arguments)]
pub fn delay_for_wait(
    index: &SpanIndex,
    locals: &[LocalReplay],
    waiter_loc: usize,
    waiter_enter: u64,
    delayer_loc: usize,
    delayer_enter: u64,
    severity: u64,
    inter_process: bool,
) -> Vec<DelayContribution> {
    let mut scratch = DelayScratch::new(index.n_paths());
    let mut out = Vec::new();
    delay_for_wait_into(
        index,
        locals,
        waiter_loc,
        waiter_enter,
        delayer_loc,
        delayer_enter,
        severity,
        inter_process,
        &mut scratch,
        &mut out,
    );
    out
}

/// [`delay_for_wait`] into caller-owned scratch and output buffers.
/// Appends the contributions in ascending call-path order — the same
/// values and order as the map-based path, with zero allocation once the
/// buffers are warm.
#[allow(clippy::too_many_arguments)]
pub fn delay_for_wait_into(
    index: &SpanIndex,
    locals: &[LocalReplay],
    waiter_loc: usize,
    waiter_enter: u64,
    delayer_loc: usize,
    delayer_enter: u64,
    severity: u64,
    inter_process: bool,
    scratch: &mut DelayScratch,
    out: &mut Vec<DelayContribution>,
) {
    if severity == 0 || waiter_loc == delayer_loc {
        return;
    }
    if scratch.hints.len() < locals.len() {
        scratch.hints.resize(locals.len(), LocHints::default());
    }
    let w_hints = &mut scratch.hints[waiter_loc];
    let w_from = prev_sync_hinted(
        &locals[waiter_loc],
        waiter_enter,
        inter_process,
        if inter_process { &mut w_hints.mpi_sync } else { &mut w_hints.sync },
    );
    index.profile_into_hinted(
        waiter_loc,
        w_from,
        waiter_enter,
        &mut scratch.w,
        &mut scratch.w_touched,
        &mut scratch.hints[waiter_loc].span,
    );
    // The delayer profile is keyed only by (loc, from, to); reuse it
    // across the waiters of the same instance.
    let d_hints = &mut scratch.hints[delayer_loc];
    let d_from = prev_sync_hinted(
        &locals[delayer_loc],
        delayer_enter,
        inter_process,
        if inter_process { &mut d_hints.mpi_sync } else { &mut d_hints.sync },
    );
    let d_key = (delayer_loc, d_from, delayer_enter);
    if scratch.d_key != Some(d_key) {
        scratch.reset_delayer();
        index.profile_into_hinted(
            delayer_loc,
            d_from,
            delayer_enter,
            &mut scratch.d,
            &mut scratch.d_touched,
            &mut scratch.hints[delayer_loc].span,
        );
        // Ascending path order reproduces the sorted excess list of
        // `attribute_delay` exactly.
        scratch.d_touched.sort_unstable();
        scratch.d_key = Some(d_key);
    }
    let mut total = 0u64;
    for &p in &scratch.d_touched {
        total += scratch.d[p as usize].saturating_sub(scratch.w[p as usize]);
    }
    if total > 0 {
        for &p in &scratch.d_touched {
            let e = scratch.d[p as usize].saturating_sub(scratch.w[p as usize]);
            if e > 0 {
                out.push((CallPathId(p), delayer_loc, severity as f64 * e as f64 / total as f64));
            }
        }
    }
    scratch.reset_waiter();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{SegClass, Segment};

    fn seg(path: u32, start: u64, end: u64) -> Segment {
        Segment { path: CallPathId(path), class: SegClass::Comp, start, end, in_parallel: false }
    }

    #[test]
    fn span_profile_clips_overlaps() {
        let locals = vec![LocalReplay {
            segments: vec![seg(0, 0, 10), seg(1, 10, 30), seg(0, 40, 50)],
            ..Default::default()
        }];
        let idx = SpanIndex::build(&locals);
        let p = idx.profile(0, 5, 45);
        assert_eq!(p[&CallPathId(0)], 5 + 5);
        assert_eq!(p[&CallPathId(1)], 20);
        assert!(idx.profile(0, 100, 200).is_empty());
        assert!(idx.profile(0, 20, 20).is_empty());
    }

    #[test]
    fn attribution_proportional_to_excess() {
        let w: HashMap<CallPathId, u64> = [(CallPathId(0), 10)].into();
        let d: HashMap<CallPathId, u64> = [(CallPathId(0), 40), (CallPathId(1), 30)].into();
        let contributions = attribute_delay(60, 3, &w, &d);
        // excess: path0 = 30, path1 = 30 → 30/30 each of 60.
        assert_eq!(contributions.len(), 2);
        for &(_, loc, v) in &contributions {
            assert_eq!(loc, 3);
            assert!((v - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn no_excess_no_attribution() {
        let w: HashMap<CallPathId, u64> = [(CallPathId(0), 100)].into();
        let d: HashMap<CallPathId, u64> = [(CallPathId(0), 50)].into();
        assert!(attribute_delay(10, 0, &w, &d).is_empty());
    }

    #[test]
    fn dense_profile_matches_map_profile() {
        let locals = vec![LocalReplay {
            segments: vec![seg(0, 0, 10), seg(2, 10, 30), seg(0, 40, 50), seg(5, 55, 60)],
            ..Default::default()
        }];
        let idx = SpanIndex::build(&locals);
        assert_eq!(idx.n_paths(), 6);
        for &(start, end) in &[(5u64, 45u64), (0, 100), (20, 20), (100, 200), (12, 57)] {
            let map = idx.profile(0, start, end);
            let mut acc = vec![0u64; idx.n_paths()];
            let mut touched = Vec::new();
            idx.profile_into(0, start, end, &mut acc, &mut touched);
            assert_eq!(touched.len(), map.len(), "[{start},{end}) touched set mismatch");
            for &p in &touched {
                assert_eq!(acc[p as usize], map[&CallPathId(p)], "[{start},{end}) path {p}");
            }
        }
    }

    #[test]
    fn hinted_profile_is_exact_for_any_hint() {
        let locals = vec![LocalReplay {
            segments: vec![seg(0, 0, 10), seg(2, 10, 30), seg(0, 40, 50), seg(5, 55, 60)],
            ..Default::default()
        }];
        let idx = SpanIndex::build(&locals);
        for &(start, end) in &[(5u64, 45u64), (0, 100), (12, 57), (41, 42), (100, 200)] {
            let map = idx.profile(0, start, end);
            for hint0 in 0..6usize {
                let mut acc = vec![0u64; idx.n_paths()];
                let mut touched = Vec::new();
                let mut hint = hint0;
                idx.profile_into_hinted(0, start, end, &mut acc, &mut touched, &mut hint);
                assert_eq!(touched.len(), map.len(), "[{start},{end}) hint {hint0}");
                for &p in &touched {
                    assert_eq!(
                        acc[p as usize],
                        map[&CallPathId(p)],
                        "[{start},{end}) hint {hint0}"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_attribution_matches_map_attribution_and_resets() {
        let locals = vec![
            LocalReplay { segments: vec![seg(0, 0, 5)], ..Default::default() },
            LocalReplay {
                segments: vec![seg(1, 0, 40), seg(2, 40, 70), seg(1, 70, 80)],
                ..Default::default()
            },
        ];
        let idx = SpanIndex::build(&locals);
        let mut scratch = DelayScratch::new(idx.n_paths());
        let mut out = Vec::new();
        // Run the same wait twice through the shared scratch: a dirty
        // scratch would change the second result.
        for _ in 0..2 {
            out.clear();
            delay_for_wait_into(&idx, &locals, 0, 10, 1, 80, 60, true, &mut scratch, &mut out);
            let reference = delay_for_wait(&idx, &locals, 0, 10, 1, 80, 60, true);
            assert_eq!(out, reference);
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn delay_for_wait_uses_sync_points() {
        // Waiter did nothing, delayer computed 0..80 in path 1; both
        // synced at 0.
        let locals = vec![
            LocalReplay { syncs: vec![], ..Default::default() },
            LocalReplay { segments: vec![seg(1, 0, 80)], syncs: vec![], ..Default::default() },
        ];
        let idx = SpanIndex::build(&locals);
        let c = delay_for_wait(&idx, &locals, 0, 10, 1, 80, 70, true);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].0, CallPathId(1));
        assert!((c[0].2 - 70.0).abs() < 1e-9);
        // Zero severity or self-delay: nothing.
        assert!(delay_for_wait(&idx, &locals, 0, 10, 1, 80, 0, true).is_empty());
        assert!(delay_for_wait(&idx, &locals, 1, 10, 1, 80, 5, true).is_empty());
    }
}
