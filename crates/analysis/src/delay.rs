//! Delay-cost analysis: root causes of wait states.
//!
//! For every wait state, Scalasca's delay analysis asks *who* made the
//! waiter wait and *what that location was doing* in the interval since
//! the previous synchronisation point. This implementation performs the
//! single-step (short-term) attribution: the waiter's severity is
//! distributed over the call paths in which the delaying location spent
//! more time than the waiter did since their respective last
//! synchronisation points. Transitive (long-term) propagation of delay
//! through chains of wait states is not modelled; DESIGN.md records this
//! simplification.
//!
//! Including the delayer's MPI spans in the interval profile is what
//! reproduces the paper's `lt_hwctr` observation that delay costs can
//! point *into* `MPI_Waitall`: under the instruction counter, spinning
//! inflates exactly those spans.

use crate::replay::{prev_mpi_sync, prev_sync, LocalReplay};
use nrlt_profile::CallPathId;
use std::collections::HashMap;

/// Per-location interval index over (comp + management + MPI) spans.
#[derive(Debug, Clone, Default)]
pub struct SpanIndex {
    /// Non-overlapping `(start, end, path)` in time order, per location.
    spans: Vec<Vec<(u64, u64, CallPathId)>>,
}

impl SpanIndex {
    /// Build the index from the replay data.
    pub fn build(locals: &[LocalReplay]) -> SpanIndex {
        let spans = locals
            .iter()
            .map(|r| {
                let mut v: Vec<(u64, u64, CallPathId)> = r
                    .segments
                    .iter()
                    .map(|s| (s.start, s.end, s.path))
                    .chain(r.mpi_instances.iter().map(|m| (m.enter, m.leave, m.path)))
                    .filter(|&(s, e, _)| e > s)
                    .collect();
                v.sort_unstable_by_key(|&(s, _, _)| s);
                v
            })
            .collect();
        SpanIndex { spans }
    }

    /// Time per call path overlapping `[start, end)` on `loc`.
    pub fn profile(&self, loc: usize, start: u64, end: u64) -> HashMap<CallPathId, u64> {
        let mut out = HashMap::new();
        if end <= start {
            return out;
        }
        let spans = &self.spans[loc];
        // First span that could overlap: the one before the first span
        // starting at/after `start`.
        let mut i = spans.partition_point(|&(s, _, _)| s < start);
        i = i.saturating_sub(1);
        while i < spans.len() {
            let (s, e, path) = spans[i];
            if s >= end {
                break;
            }
            let overlap = e.min(end).saturating_sub(s.max(start));
            if overlap > 0 {
                *out.entry(path).or_insert(0) += overlap;
            }
            i += 1;
        }
        out
    }
}

/// One delay attribution target: call path + location + cost.
pub type DelayContribution = (CallPathId, usize, f64);

/// Distribute `severity` (the waiter's wait time) over the delayer's
/// excess call paths.
///
/// * `w_profile` — the waiter's interval profile since its last sync.
/// * `d_profile` — the delayer's interval profile since its last sync.
///
/// Returns an empty vector when the delayer shows no excess anywhere
/// (e.g. the wait was caused by timing noise only — a case the paper
/// flags as invisible to logical clocks).
pub fn attribute_delay(
    severity: u64,
    delayer_loc: usize,
    w_profile: &HashMap<CallPathId, u64>,
    d_profile: &HashMap<CallPathId, u64>,
) -> Vec<DelayContribution> {
    let mut excess: Vec<(CallPathId, u64)> = d_profile
        .iter()
        .map(|(&p, &d)| (p, d.saturating_sub(w_profile.get(&p).copied().unwrap_or(0))))
        .filter(|&(_, e)| e > 0)
        .collect();
    excess.sort_unstable_by_key(|&(p, _)| p);
    let total: u64 = excess.iter().map(|&(_, e)| e).sum();
    if total == 0 {
        return Vec::new();
    }
    excess
        .into_iter()
        .map(|(p, e)| (p, delayer_loc, severity as f64 * e as f64 / total as f64))
        .collect()
}

/// Convenience: compute both interval profiles and attribute.
///
/// `inter_process` selects the synchronisation horizon: true for MPI
/// wait states (only recv/collective completions clip the interval),
/// false for OpenMP barrier waits (any sync point does).
#[allow(clippy::too_many_arguments)]
pub fn delay_for_wait(
    index: &SpanIndex,
    locals: &[LocalReplay],
    waiter_loc: usize,
    waiter_enter: u64,
    delayer_loc: usize,
    delayer_enter: u64,
    severity: u64,
    inter_process: bool,
) -> Vec<DelayContribution> {
    if severity == 0 || waiter_loc == delayer_loc {
        return Vec::new();
    }
    let (w_from, d_from) = if inter_process {
        (
            prev_mpi_sync(&locals[waiter_loc], waiter_enter),
            prev_mpi_sync(&locals[delayer_loc], delayer_enter),
        )
    } else {
        (
            prev_sync(&locals[waiter_loc], waiter_enter),
            prev_sync(&locals[delayer_loc], delayer_enter),
        )
    };
    let w_profile = index.profile(waiter_loc, w_from, waiter_enter);
    let d_profile = index.profile(delayer_loc, d_from, delayer_enter);
    attribute_delay(severity, delayer_loc, &w_profile, &d_profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{SegClass, Segment};

    fn seg(path: u32, start: u64, end: u64) -> Segment {
        Segment { path: CallPathId(path), class: SegClass::Comp, start, end, in_parallel: false }
    }

    #[test]
    fn span_profile_clips_overlaps() {
        let locals = vec![LocalReplay {
            segments: vec![seg(0, 0, 10), seg(1, 10, 30), seg(0, 40, 50)],
            ..Default::default()
        }];
        let idx = SpanIndex::build(&locals);
        let p = idx.profile(0, 5, 45);
        assert_eq!(p[&CallPathId(0)], 5 + 5);
        assert_eq!(p[&CallPathId(1)], 20);
        assert!(idx.profile(0, 100, 200).is_empty());
        assert!(idx.profile(0, 20, 20).is_empty());
    }

    #[test]
    fn attribution_proportional_to_excess() {
        let w: HashMap<CallPathId, u64> = [(CallPathId(0), 10)].into();
        let d: HashMap<CallPathId, u64> = [(CallPathId(0), 40), (CallPathId(1), 30)].into();
        let contributions = attribute_delay(60, 3, &w, &d);
        // excess: path0 = 30, path1 = 30 → 30/30 each of 60.
        assert_eq!(contributions.len(), 2);
        for &(_, loc, v) in &contributions {
            assert_eq!(loc, 3);
            assert!((v - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn no_excess_no_attribution() {
        let w: HashMap<CallPathId, u64> = [(CallPathId(0), 100)].into();
        let d: HashMap<CallPathId, u64> = [(CallPathId(0), 50)].into();
        assert!(attribute_delay(10, 0, &w, &d).is_empty());
    }

    #[test]
    fn delay_for_wait_uses_sync_points() {
        // Waiter did nothing, delayer computed 0..80 in path 1; both
        // synced at 0.
        let locals = vec![
            LocalReplay { syncs: vec![], ..Default::default() },
            LocalReplay { segments: vec![seg(1, 0, 80)], syncs: vec![], ..Default::default() },
        ];
        let idx = SpanIndex::build(&locals);
        let c = delay_for_wait(&idx, &locals, 0, 10, 1, 80, 70, true);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].0, CallPathId(1));
        assert!((c[0].2 - 70.0).abs() < 1e-9);
        // Zero severity or self-delay: nothing.
        assert!(delay_for_wait(&idx, &locals, 0, 10, 1, 80, 0, true).is_empty());
        assert!(delay_for_wait(&idx, &locals, 1, 10, 1, 80, 5, true).is_empty());
    }
}
