//! # nrlt-analysis — the Scalasca analog
//!
//! Automatic wait-state analysis of event traces: per-location replay,
//! deterministic message matching, the late-sender / late-receiver /
//! wait-at-N×N / barrier-wait patterns, idle-thread accounting, and
//! single-step delay-cost (root cause) attribution — all clock-agnostic,
//! so the same analysis runs on physical and logical traces, which is
//! the experimental setup of the paper.

#![warn(missing_docs)]

pub mod analyze;
pub mod causality;
pub mod combined;
pub mod critical;
pub mod delay;
pub mod idle;
pub mod patterns;
pub mod replay;

pub use analyze::{
    analyze, analyze_observed, analyze_telemetry, analyze_view, analyze_with, AnalysisConfig,
};
pub use causality::{
    assign_lamport_postprocess, assign_vector_clocks, concurrent, happens_before_edges,
    verify_clock_condition, Edge, EventId,
};
pub use combined::{combine, CombinedCell, CombinedReport, WAIT_METRICS};
pub use critical::{critical_path, CriticalPath};
pub use delay::{attribute_delay, delay_for_wait, SpanIndex};
pub use idle::{master_serial_chunks, total_idle, IdleChunk};
pub use patterns::{
    gather_barriers, gather_collectives, late_receiver_severity, late_sender_severity,
    match_messages, wait_nxn_severity, BarrierInstance, CollectiveInstance, MatchedMessage,
};
pub use replay::{prev_sync, replay, replay_view, LocalReplay, MpiInstance, SegClass, Segment};
