//! `nrlt-serve` — serve archived observability bundles over HTTP.
//!
//! ```text
//! nrlt-serve <root> [--addr HOST:PORT] [--workers N]
//!            [--cache-budget BYTES] [--allow-shutdown]
//!            [--telemetry DIR]
//! ```
//!
//! `<root>` is a directory tree of artifact bundles (typically the
//! repo's `results/`). The server prints the bound address on stdout
//! (one line, `listening on http://ADDR`) so scripts binding port 0
//! can discover the ephemeral port, then runs until SIGTERM/SIGINT —
//! or until `GET /shutdown` when `--allow-shutdown` is set. Shutdown
//! drains in-flight requests; with `--telemetry DIR` the server's own
//! telemetry bundle is exported there on the way out.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use nrlt_serve::{Config, Server};

/// Set by the signal handler; polled by the main thread.
static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Route SIGTERM and SIGINT to a flag the main loop polls. `signal` is
/// part of the already-linked libc, not a new dependency (same pattern
/// as `malloc_trim` in the report crate).
fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_sig: std::os::raw::c_int) {
            SIGNALED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(
                signum: std::os::raw::c_int,
                handler: extern "C" fn(std::os::raw::c_int),
            ) -> usize;
        }
        const SIGINT: std::os::raw::c_int = 2;
        const SIGTERM: std::os::raw::c_int = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

fn usage() -> String {
    "usage: nrlt-serve <root> [--addr HOST:PORT] [--workers N] \
     [--cache-budget BYTES] [--allow-shutdown] [--telemetry DIR]"
        .to_owned()
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut root: Option<PathBuf> = None;
    let mut cfg = Config::new(PathBuf::new());
    cfg.addr = "127.0.0.1:7878".to_owned();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => {
                cfg.workers =
                    value("--workers")?.parse().map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--cache-budget" => {
                cfg.cache_budget = value("--cache-budget")?
                    .parse()
                    .map_err(|e| format!("bad --cache-budget: {e}"))?;
            }
            "--allow-shutdown" => cfg.allow_shutdown = true,
            "--telemetry" => cfg.telemetry_dir = Some(PathBuf::from(value("--telemetry")?)),
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{}", usage()));
            }
            other => {
                if root.replace(PathBuf::from(other)).is_some() {
                    return Err(format!("more than one root given\n{}", usage()));
                }
            }
        }
    }
    cfg.root = root.ok_or_else(usage)?;
    if !cfg.root.is_dir() {
        return Err(format!("root {} is not a directory", cfg.root.display()));
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    install_signal_handlers();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("nrlt-serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on http://{}", server.addr());
    let shared = server.shared();
    while !shared.stopping() && !SIGNALED.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("nrlt-serve: draining");
    match server.join() {
        Ok(shared) => {
            eprintln!(
                "nrlt-serve: served {} requests over {} connections",
                shared.telemetry().counter("serve.requests").unwrap_or(0),
                shared.telemetry().counter("serve.connections").unwrap_or(0),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("nrlt-serve: telemetry export failed: {e}");
            ExitCode::FAILURE
        }
    }
}
