//! The query server: an acceptor thread feeding a fixed worker pool,
//! request routing over the shared [`Store`], per-request
//! self-telemetry, a `/stats` endpoint, and graceful shutdown.
//!
//! The server observes itself with the same `nrlt-telemetry` handle it
//! serves bundles from: every request runs under a `serve`-category
//! span, and counters track requests per route, status codes, bytes
//! out, cache hits/misses/evictions, and connection-queue depth. On
//! shutdown (SIGTERM forwarded by the binary, or `/shutdown` when
//! enabled) the acceptor stops, workers drain the queue and finish
//! in-flight requests, and — when configured — the telemetry bundle is
//! flushed to disk so a service run leaves the same artifact trail as
//! a batch run.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nrlt_report::query::QueryError;
use nrlt_report::{engine_text, folded, observe_text, severity_subset, trend_text};
use nrlt_telemetry::json::{self, Value};
use nrlt_telemetry::{Manifest, RunInfo, Telemetry};

use crate::http::{response, Request, RequestParser};
use crate::store::{scan_catalog, Kind, Loaded, Store};

/// Server configuration. `addr` may name port 0 for an ephemeral port;
/// the bound address is available from [`Server::addr`].
pub struct Config {
    /// Directory tree the store serves bundles from.
    pub root: PathBuf,
    /// Bind address, e.g. `"127.0.0.1:0"`.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Byte budget for resident parsed bundles (LRU beyond this).
    pub cache_budget: u64,
    /// Whether `GET /shutdown` stops the server (test / CI mode).
    pub allow_shutdown: bool,
    /// Export the self-telemetry bundle here on shutdown.
    pub telemetry_dir: Option<PathBuf>,
}

impl Config {
    /// Defaults: loopback ephemeral port, 4 workers, 256 MiB cache,
    /// no `/shutdown`, no export.
    pub fn new(root: PathBuf) -> Config {
        Config {
            root,
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            cache_budget: 256 << 20,
            allow_shutdown: false,
            telemetry_dir: None,
        }
    }
}

/// State shared by the acceptor, the workers, and the owning handle.
pub struct Shared {
    store: Store,
    tel: Telemetry,
    stop: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    cv: Condvar,
    allow_shutdown: bool,
    started: Instant,
}

impl Shared {
    /// The self-telemetry handle (request spans, counters, histograms).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// The bundle store (cache statistics, parse counter).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Ask the server to stop: the acceptor closes, workers drain the
    /// connection queue and finish in-flight requests, then exit.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Whether a stop has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A running server: bound address plus the threads behind it.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    telemetry_dir: Option<PathBuf>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the acceptor and worker pool, and return the handle.
    pub fn start(cfg: Config) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store: Store::new(&cfg.root, cfg.cache_budget),
            tel: Telemetry::new(),
            stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            allow_shutdown: cfg.allow_shutdown,
            started: Instant::now(),
        });
        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
        }
        for i in 0..cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker"),
            );
        }
        Ok(Server { addr, shared, telemetry_dir: cfg.telemetry_dir, threads })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for stopping and for inspecting telemetry.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Block until a stop is requested (by `/shutdown` or by another
    /// thread calling [`Shared::request_stop`]).
    pub fn wait_for_stop(&self) {
        while !self.shared.stopping() {
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Drain and join every thread, then flush the telemetry bundle if
    /// an export directory was configured. Returns the shared state so
    /// callers can inspect final counters.
    pub fn join(mut self) -> std::io::Result<Arc<Shared>> {
        self.shared.request_stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(dir) = &self.telemetry_dir {
            let shared = &self.shared;
            let mut manifest = Manifest::new("nrlt-serve");
            manifest.wall_seconds = shared.started.elapsed().as_secs_f64();
            manifest.runs.push(RunInfo {
                name: "serve".to_owned(),
                config: format!(
                    "root={} requests={}",
                    shared.store.root().display(),
                    shared.tel.counter("serve.requests").unwrap_or(0)
                ),
                seed: 0,
                repetitions: 1,
            });
            std::fs::create_dir_all(dir)?;
            nrlt_telemetry::write_exports(dir, &shared.tel, &manifest)?;
        }
        Ok(Arc::clone(&self.shared))
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                shared.tel.incr("serve.connections");
                let mut q = shared.queue.lock().expect("queue poisoned");
                q.push_back(stream);
                let depth = q.len() as u64;
                drop(q);
                shared.tel.set("serve.queue_depth", depth);
                shared.tel.set_max("serve.queue_depth_max", depth);
                shared.cv.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    shared.cv.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(c) = q.pop_front() {
                    shared.tel.set("serve.queue_depth", q.len() as u64);
                    break Some(c);
                }
                if shared.stopping() {
                    break None;
                }
                q = shared.cv.wait(q).expect("queue poisoned");
            }
        };
        match conn {
            Some(c) => serve_connection(shared, c),
            None => return,
        }
    }
}

/// Serve every request on one connection: keep-alive with pipelining,
/// closing on request, parse error, read timeout, or server stop.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2000)));
    let mut parser = RequestParser::new();
    let mut buf = [0u8; 4096];
    loop {
        loop {
            match parser.next_request() {
                Ok(Some(req)) => {
                    let close = req.close || shared.stopping();
                    let bytes = respond(shared, &req, close);
                    if stream.write_all(&bytes).is_err() || close {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let body = error_body(e.status(), &e.message());
                    let bytes = response(e.status(), "application/json", body.as_bytes(), true);
                    let _ = stream.write_all(&bytes);
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => parser.feed(&buf[..n]),
            // Idle keep-alive past the timeout, or any transport error:
            // drop the connection (nothing is half-parsed or the peer
            // is gone either way).
            Err(_) => return,
        }
    }
}

/// Handle one parsed request under a telemetry span, record the
/// per-route / per-status counters and the latency histogram, and
/// return the serialized response.
fn respond(shared: &Shared, req: &Request, close: bool) -> Vec<u8> {
    let started = Instant::now();
    let route = route_name(&req.path);
    let (status, ctype, body) = {
        let _span = shared.tel.span_cat(route, "serve");
        route_request(shared, req)
    };
    let bytes = response(status, ctype, body.as_bytes(), close);
    let tel = &shared.tel;
    tel.incr("serve.requests");
    tel.incr(&format!("serve.route.{route}"));
    tel.incr(&format!("serve.status.{status}"));
    tel.add("serve.bytes_out", bytes.len() as u64);
    tel.observe("serve.request_ns", started.elapsed().as_nanos() as u64);
    bytes
}

/// Stable route label for counters and spans. Unknown paths collapse
/// to `"other"` so arbitrary probes cannot grow the counter map.
fn route_name(path: &str) -> &'static str {
    match path {
        "/" => "index",
        "/bundles" => "bundles",
        "/severity" => "severity",
        "/flamegraph" => "flamegraph",
        "/observe" => "observe",
        "/engine" => "engine",
        "/trend" => "trend",
        "/stats" => "stats",
        "/shutdown" => "shutdown",
        _ => "other",
    }
}

fn error_body(status: u16, message: &str) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("status".to_owned(), Value::Num(status as f64));
    obj.insert("error".to_owned(), Value::Str(message.to_owned()));
    json::render(&Value::Obj(obj))
}

fn status_of(e: &QueryError) -> u16 {
    match e {
        QueryError::NotFound(_) => 404,
        QueryError::BadRequest(_) => 400,
        QueryError::Artifact(_) => 500,
    }
}

const JSON: &str = "application/json";
const TEXT: &str = "text/plain; charset=utf-8";

fn route_request(shared: &Shared, req: &Request) -> (u16, &'static str, String) {
    let result = match req.path.as_str() {
        "/" => Ok((TEXT, index_text())),
        "/bundles" => bundles(shared).map(|b| (JSON, b)),
        "/severity" => severity(shared, req).map(|b| (JSON, b)),
        "/flamegraph" => flamegraph(shared, req).map(|b| (TEXT, b)),
        "/observe" => observe(shared, req).map(|b| (JSON, b)),
        "/engine" => engine(shared, req).map(|b| (JSON, b)),
        "/trend" => trend(shared, req).map(|b| (JSON, b)),
        "/stats" => Ok((JSON, stats(shared))),
        "/shutdown" => shutdown(shared).map(|b| (JSON, b)),
        other => Err(QueryError::NotFound(format!("no such route {other:?}"))),
    };
    match result {
        Ok((ctype, body)) => (200, ctype, body),
        Err(e) => {
            let status = status_of(&e);
            (status, JSON, error_body(status, e.message()))
        }
    }
}

fn index_text() -> String {
    "nrlt-serve: observability queries over archived bundles\n\
     routes:\n\
     \x20 /bundles                                  catalog of served artifacts\n\
     \x20 /severity?bundle=DIR[&run=R][&top=N]      archived severity report (JSON)\n\
     \x20 /flamegraph?bundle=DIR                    folded stacks (text)\n\
     \x20 /observe?bundle=DIR[&run=R][&top=N][&wait=W]  counter timelines + noise attribution\n\
     \x20 /engine?bundle=DIR[&run=R][&top=N]        per-event-kind engine KPIs\n\
     \x20 /trend[?bundle=DIR][&key=K]               perf ledger trends\n\
     \x20 /stats                                    server self-telemetry\n"
        .to_owned()
}

// ---- route handlers ----------------------------------------------------

fn param<'r>(req: &'r Request, key: &str) -> Option<&'r str> {
    req.query.get(key).map(|s| s.as_str())
}

fn bundle_param(req: &Request) -> Result<&str, QueryError> {
    param(req, "bundle")
        .ok_or_else(|| QueryError::BadRequest("missing required parameter \"bundle\"".to_owned()))
}

fn top_param(req: &Request, default: usize) -> Result<usize, QueryError> {
    match param(req, "top") {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| QueryError::BadRequest(format!("\"top\" must be an integer, got {s:?}"))),
    }
}

fn bundles(shared: &Shared) -> Result<String, QueryError> {
    let catalog = scan_catalog(shared.store.root());
    let rows: Vec<Value> = catalog
        .iter()
        .map(|e| {
            let mut obj = BTreeMap::new();
            obj.insert("path".to_owned(), Value::Str(e.rel.clone()));
            let mut kinds = BTreeMap::new();
            for (k, bytes) in &e.kinds {
                kinds.insert(k.name().to_owned(), Value::Num(*bytes as f64));
            }
            obj.insert("artifacts".to_owned(), Value::Obj(kinds));
            let manifest = shared.store.root().join(&e.rel).join("manifest.json");
            if let Ok(text) = std::fs::read_to_string(manifest) {
                if let Ok(v) = json::parse(&text) {
                    obj.insert("manifest".to_owned(), v);
                }
            }
            Value::Obj(obj)
        })
        .collect();
    let mut doc = BTreeMap::new();
    doc.insert("bundles".to_owned(), Value::Arr(rows));
    Ok(json::render(&Value::Obj(doc)))
}

fn severity(shared: &Shared, req: &Request) -> Result<String, QueryError> {
    let rel = bundle_param(req)?;
    let top = match param(req, "top") {
        None => None,
        Some(s) => Some(s.parse::<usize>().map_err(|_| {
            QueryError::BadRequest(format!("\"top\" must be an integer, got {s:?}"))
        })?),
    };
    let loaded = shared.store.get(Kind::Report, rel, Some(&shared.tel))?;
    let Loaded::Report(doc) = &*loaded else { unreachable!("report slot holds report") };
    let subset = severity_subset(doc, param(req, "run"), top).map_err(QueryError::NotFound)?;
    Ok(json::render(&subset))
}

fn flamegraph(shared: &Shared, req: &Request) -> Result<String, QueryError> {
    let rel = bundle_param(req)?;
    let loaded = shared.store.get(Kind::Telemetry, rel, Some(&shared.tel))?;
    let Loaded::Telemetry(bundle) = &*loaded else { unreachable!("telemetry slot") };
    Ok(folded(&bundle.spans))
}

fn text_view(bundle: &str, text: String) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("bundle".to_owned(), Value::Str(bundle.to_owned()));
    obj.insert("text".to_owned(), Value::Str(text));
    json::render(&Value::Obj(obj))
}

fn observe(shared: &Shared, req: &Request) -> Result<String, QueryError> {
    let rel = bundle_param(req)?;
    let top = top_param(req, 5)?;
    let loaded = shared.store.get(Kind::Observe, rel, Some(&shared.tel))?;
    let Loaded::Observe(bundle) = &*loaded else { unreachable!("observe slot") };
    let text = observe_text(bundle, param(req, "run"), top, param(req, "wait"))
        .map_err(QueryError::NotFound)?;
    Ok(text_view(rel, text))
}

fn engine(shared: &Shared, req: &Request) -> Result<String, QueryError> {
    let rel = bundle_param(req)?;
    let top = top_param(req, 5)?;
    let loaded = shared.store.get(Kind::Engineprof, rel, Some(&shared.tel))?;
    let Loaded::Engineprof(bundle) = &*loaded else { unreachable!("engineprof slot") };
    let text = engine_text(bundle, param(req, "run"), top).map_err(QueryError::NotFound)?;
    Ok(text_view(rel, text))
}

fn trend(shared: &Shared, req: &Request) -> Result<String, QueryError> {
    let rel = param(req, "bundle").unwrap_or("");
    let loaded = shared.store.get(Kind::Ledger, rel, Some(&shared.tel))?;
    let Loaded::Ledger(records) = &*loaded else { unreachable!("ledger slot") };
    let mut obj = BTreeMap::new();
    obj.insert("bundle".to_owned(), Value::Str(rel.to_owned()));
    obj.insert("records".to_owned(), Value::Num(records.len() as f64));
    obj.insert("text".to_owned(), Value::Str(trend_text(records, param(req, "key"))));
    Ok(json::render(&Value::Obj(obj)))
}

/// Self-telemetry snapshot: every counter, request-latency percentiles,
/// and the cache accounting the store keeps outside the telemetry
/// handle (parse and eviction totals, resident bytes).
fn stats(shared: &Shared) -> String {
    let tel = &shared.tel;
    let mut counters = BTreeMap::new();
    for (name, value) in tel.counters() {
        counters.insert(name, Value::Num(value as f64));
    }
    let mut latency = BTreeMap::new();
    if let Some((_, h)) = tel.histograms().into_iter().find(|(n, _)| n == "serve.request_ns") {
        latency.insert("p50_ns".to_owned(), Value::Num(h.percentile(0.50) as f64));
        latency.insert("p95_ns".to_owned(), Value::Num(h.percentile(0.95) as f64));
        latency.insert("p99_ns".to_owned(), Value::Num(h.percentile(0.99) as f64));
        latency.insert("mean_ns".to_owned(), Value::Num(h.mean()));
    }
    let mut cache = BTreeMap::new();
    cache.insert("parses".to_owned(), Value::Num(shared.store.parse_count() as f64));
    cache.insert("evictions".to_owned(), Value::Num(shared.store.eviction_count() as f64));
    cache.insert("resident_bytes".to_owned(), Value::Num(shared.store.resident_bytes() as f64));
    let mut doc = BTreeMap::new();
    doc.insert("uptime_seconds".to_owned(), Value::Num(shared.started.elapsed().as_secs_f64()));
    doc.insert("counters".to_owned(), Value::Obj(counters));
    doc.insert("latency".to_owned(), Value::Obj(latency));
    doc.insert("cache".to_owned(), Value::Obj(cache));
    json::render(&Value::Obj(doc))
}

fn shutdown(shared: &Shared) -> Result<String, QueryError> {
    if !shared.allow_shutdown {
        return Err(QueryError::NotFound("shutdown is not enabled on this server".to_owned()));
    }
    shared.request_stop();
    let mut obj = BTreeMap::new();
    obj.insert("draining".to_owned(), Value::Bool(true));
    Ok(json::render(&Value::Obj(obj)))
}
