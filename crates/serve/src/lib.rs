//! `nrlt-serve`: a concurrent observability query service over the
//! archived artifact bundles the rest of the workspace produces.
//!
//! The pipeline's analysis surfaces — severity reports, flamegraphs,
//! observe timelines, engine KPIs, perf trends — all exist as batch
//! CLI commands over on-disk bundles. This crate puts the same query
//! layer behind a small HTTP/1.1 server so dashboards, CI smoke
//! checks, and `curl` can ask the same questions without re-running
//! the pipeline:
//!
//! * [`http`] — a dependency-free incremental HTTP/1.1 request parser
//!   and response builder (GET-only, keep-alive, pipelining, bounded
//!   header size).
//! * [`store`] — the shared bundle store: catalog scan, `Arc`-cached
//!   immutable bundles, size-bounded LRU eviction, and single-flight
//!   loading so N concurrent first touches of a cold bundle cost one
//!   parse.
//! * [`server`] — the worker pool, routing, per-request
//!   self-telemetry (spans, route/status counters, latency
//!   histograms, `/stats`), and graceful shutdown that drains
//!   in-flight requests and flushes the telemetry bundle.
//!
//! Everything is `std`-only, matching the workspace's no-external-
//! dependencies rule: the HTTP layer is hand-rolled on `TcpListener`,
//! JSON comes from `nrlt_telemetry::json`, and concurrency uses
//! `Mutex`/`Condvar`.

#![warn(missing_docs)]

pub mod http;
pub mod server;
pub mod store;

pub use server::{Config, Server, Shared};
pub use store::{scan_catalog, CatalogEntry, Kind, Loaded, Store};
