//! The shared bundle store: catalog scan, `Arc`-cached immutable
//! bundles, size-bounded LRU eviction, and single-flight loading.
//!
//! Every query surface reads from an artifact on disk — an archived
//! `report.json`, a telemetry `metrics.jsonl`, an `observe.jsonl`, an
//! `engineprof.json`, or the `history.jsonl` ledger. Parsing any of
//! them costs milliseconds to seconds; a query service that re-parses
//! per request would spend its life in the loader. The store parses
//! each bundle **once**, shares the immutable result behind an `Arc`,
//! and bounds resident bytes with LRU eviction (approximated by the
//! artifact's on-disk size).
//!
//! **Single flight**: when N requests race for the same cold bundle,
//! the first becomes the loader; the rest block on the flight's condvar
//! and receive the same `Arc`. Exactly one parse happens — asserted by
//! a test driving 16 first-touch threads against [`Store::parse_count`].
//! Load *errors* are not cached: a corrupt bundle fails every waiter of
//! that flight, then the next request retries (the operator may have
//! fixed the file).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use nrlt_report::query::QueryError;
use nrlt_report::{load_report_doc, Bundle, EngineBundle, HistoryRecord};
use nrlt_telemetry::{json, Telemetry};

/// What kind of artifact a bundle path holds, keyed by its marker file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// `report.json` — archived severity document.
    Report,
    /// `metrics.jsonl` — telemetry bundle (spans, counters, histograms).
    Telemetry,
    /// `observe.jsonl` — resource-observatory bundle.
    Observe,
    /// `engineprof.json` — engine introspection bundle.
    Engineprof,
    /// `history.jsonl` — the append-only perf ledger.
    Ledger,
}

impl Kind {
    /// The marker file that identifies the kind inside a bundle dir.
    pub fn marker(self) -> &'static str {
        match self {
            Kind::Report => "report.json",
            Kind::Telemetry => "metrics.jsonl",
            Kind::Observe => "observe.jsonl",
            Kind::Engineprof => "engineprof.json",
            Kind::Ledger => "history.jsonl",
        }
    }

    /// Stable lowercase name for catalogs and counters.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Report => "report",
            Kind::Telemetry => "telemetry",
            Kind::Observe => "observe",
            Kind::Engineprof => "engineprof",
            Kind::Ledger => "ledger",
        }
    }

    const ALL: [Kind; 5] =
        [Kind::Report, Kind::Telemetry, Kind::Observe, Kind::Engineprof, Kind::Ledger];
}

/// One catalog row: a directory (relative to the root) holding at least
/// one recognized artifact.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Path relative to the serving root (`""` for the root itself).
    pub rel: String,
    /// The artifact kinds present, with their on-disk sizes in bytes.
    pub kinds: Vec<(Kind, u64)>,
}

/// Walk `root` and list every directory containing a recognized marker
/// file, sorted by relative path — the `/bundles` catalog. The walk is
/// bounded to a sane depth so a symlink loop cannot hang the server.
pub fn scan_catalog(root: &Path) -> Vec<CatalogEntry> {
    let mut out = Vec::new();
    let mut stack = vec![(root.to_path_buf(), 0usize)];
    while let Some((dir, depth)) = stack.pop() {
        let mut kinds = Vec::new();
        for kind in Kind::ALL {
            if let Ok(meta) = std::fs::metadata(dir.join(kind.marker())) {
                if meta.is_file() {
                    kinds.push((kind, meta.len()));
                }
            }
        }
        if !kinds.is_empty() {
            let rel = dir
                .strip_prefix(root)
                .unwrap_or(&dir)
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            out.push(CatalogEntry { rel, kinds });
        }
        if depth < 6 {
            if let Ok(entries) = std::fs::read_dir(&dir) {
                for e in entries.flatten() {
                    let p = e.path();
                    if p.is_dir() && !p.is_symlink() {
                        stack.push((p, depth + 1));
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    out
}

/// A loaded, immutable, shareable artifact.
pub enum Loaded {
    /// Parsed `report.json`.
    Report(json::Value),
    /// Telemetry bundle.
    Telemetry(Bundle),
    /// Observe bundle.
    Observe(nrlt_observe::export::ObserveBundle),
    /// Engineprof bundle.
    Engineprof(EngineBundle),
    /// History ledger records.
    Ledger(Vec<HistoryRecord>),
}

impl std::fmt::Debug for Loaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            Loaded::Report(_) => "report",
            Loaded::Telemetry(_) => "telemetry",
            Loaded::Observe(_) => "observe",
            Loaded::Engineprof(_) => "engineprof",
            Loaded::Ledger(_) => "ledger",
        };
        write!(f, "Loaded({kind})")
    }
}

/// A load in progress: the loader publishes its verdict here and
/// notifies every waiter.
type FlightResult = Result<(Arc<Loaded>, u64), QueryError>;

struct Flight {
    done: Mutex<Option<FlightResult>>,
    cv: Condvar,
}

enum Slot {
    Ready { data: Arc<Loaded>, bytes: u64, last_used: u64 },
    Loading(Arc<Flight>),
}

struct StoreInner {
    slots: BTreeMap<(Kind, String), Slot>,
    tick: u64,
    resident_bytes: u64,
}

/// The cache. All public methods are callable from any worker thread.
pub struct Store {
    root: PathBuf,
    budget_bytes: u64,
    inner: Mutex<StoreInner>,
    parses: AtomicU64,
    evictions: AtomicU64,
}

impl Store {
    /// A store serving bundles under `root`, keeping at most
    /// `budget_bytes` of parsed artifacts resident (approximated by
    /// on-disk size; at least one bundle always stays resident so a
    /// single artifact larger than the budget still serves).
    pub fn new(root: &Path, budget_bytes: u64) -> Self {
        Store {
            root: root.to_path_buf(),
            budget_bytes,
            inner: Mutex::new(StoreInner { slots: BTreeMap::new(), tick: 0, resident_bytes: 0 }),
            parses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The root directory this store serves from.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// How many artifact parses have happened since construction. The
    /// single-flight test drives 16 concurrent first-touch requests and
    /// asserts this advanced by exactly 1.
    pub fn parse_count(&self) -> u64 {
        self.parses.load(Ordering::Relaxed)
    }

    /// How many bundles have been evicted to stay under budget.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Bytes of parsed artifacts currently resident (on-disk estimate).
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().expect("store poisoned").resident_bytes
    }

    /// Resolve `rel` against the root, rejecting path traversal:
    /// absolute paths, `..` components, and empty components (`a//b`)
    /// are all bad requests. The empty string means the root itself.
    fn resolve(&self, rel: &str) -> Result<PathBuf, QueryError> {
        if rel.is_empty() {
            return Ok(self.root.clone());
        }
        let traversal = rel.starts_with('/')
            || rel.contains('\\')
            || rel.split('/').any(|c| c == ".." || c == "." || c.is_empty());
        if traversal {
            return Err(QueryError::BadRequest(format!("invalid bundle path {rel:?}")));
        }
        Ok(self.root.join(rel))
    }

    /// Fetch the `kind` artifact of bundle `rel`, loading it on first
    /// touch (single-flight) and bumping its LRU position. `tel`
    /// records hit/miss/eviction counters and the resident gauge.
    pub fn get(
        &self,
        kind: Kind,
        rel: &str,
        tel: Option<&Telemetry>,
    ) -> Result<Arc<Loaded>, QueryError> {
        let dir = self.resolve(rel)?;
        let key = (kind, rel.to_owned());
        let flight = {
            let mut inner = self.inner.lock().expect("store poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.slots.get_mut(&key) {
                Some(Slot::Ready { data, last_used, .. }) => {
                    *last_used = tick;
                    if let Some(t) = tel {
                        t.incr("serve.cache_hits");
                    }
                    return Ok(Arc::clone(data));
                }
                Some(Slot::Loading(flight)) => Arc::clone(flight),
                None => {
                    // We are the loader for this flight.
                    let flight = Arc::new(Flight { done: Mutex::new(None), cv: Condvar::new() });
                    inner.slots.insert(key.clone(), Slot::Loading(Arc::clone(&flight)));
                    drop(inner);
                    if let Some(t) = tel {
                        t.incr("serve.cache_misses");
                    }
                    return self.load_and_publish(kind, &dir, &key, &flight, tel);
                }
            }
        };
        // Someone else is loading: wait for their verdict.
        if let Some(t) = tel {
            t.incr("serve.cache_waits");
        }
        let mut done = flight.done.lock().expect("flight poisoned");
        while done.is_none() {
            done = flight.cv.wait(done).expect("flight poisoned");
        }
        match done.as_ref().expect("just checked") {
            Ok((data, _)) => Ok(Arc::clone(data)),
            // The loader failed. Errors are not cached — but this
            // waiter reports the same error rather than retrying, so
            // one corrupt artifact can't trigger a parse storm.
            Err(e) => Err(e.clone()),
        }
    }

    fn load_and_publish(
        &self,
        kind: Kind,
        dir: &Path,
        key: &(Kind, String),
        flight: &Arc<Flight>,
        tel: Option<&Telemetry>,
    ) -> Result<Arc<Loaded>, QueryError> {
        self.parses.fetch_add(1, Ordering::Relaxed);
        let result = load_artifact(kind, dir).map(|(loaded, bytes)| (Arc::new(loaded), bytes));

        let mut inner = self.inner.lock().expect("store poisoned");
        match &result {
            Ok((data, bytes)) => {
                let tick = inner.tick;
                inner.slots.insert(
                    key.clone(),
                    Slot::Ready { data: Arc::clone(data), bytes: *bytes, last_used: tick },
                );
                inner.resident_bytes += bytes;
                self.evict_over_budget(&mut inner, key, tel);
            }
            Err(_) => {
                // Not cached: remove the Loading slot so a later
                // request retries the load.
                inner.slots.remove(key);
            }
        }
        if let Some(t) = tel {
            t.set("serve.cache_resident_bytes", inner.resident_bytes);
            t.set("serve.cache_resident_bundles", inner.slots.len() as u64);
        }
        drop(inner);

        *flight.done.lock().expect("flight poisoned") = Some(result.clone());
        flight.cv.notify_all();
        result.map(|(data, _)| data)
    }

    /// Evict least-recently-used Ready slots until resident bytes fit
    /// the budget. The slot just inserted (`keep`) and in-flight loads
    /// are never evicted.
    fn evict_over_budget(
        &self,
        inner: &mut StoreInner,
        keep: &(Kind, String),
        tel: Option<&Telemetry>,
    ) {
        while inner.resident_bytes > self.budget_bytes {
            let victim = inner
                .slots
                .iter()
                .filter(|(k, _)| *k != keep)
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready { last_used, bytes, .. } => Some((*last_used, k.clone(), *bytes)),
                    Slot::Loading(_) => None,
                })
                .min();
            let Some((_, key, bytes)) = victim else { break };
            inner.slots.remove(&key);
            inner.resident_bytes -= bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = tel {
                t.incr("serve.cache_evictions");
            }
        }
    }
}

/// Parse the artifact and estimate its resident cost by on-disk size.
fn load_artifact(kind: Kind, dir: &Path) -> Result<(Loaded, u64), QueryError> {
    let marker = dir.join(kind.marker());
    let bytes = std::fs::metadata(&marker).map(|m| m.len()).unwrap_or(0);
    let with_path = |e: String| {
        if e.contains(&marker.display().to_string()) {
            QueryError::Artifact(e)
        } else {
            QueryError::Artifact(format!("{}: {e}", marker.display()))
        }
    };
    let loaded = match kind {
        Kind::Report => Loaded::Report(load_report_doc(&marker).map_err(QueryError::Artifact)?),
        Kind::Telemetry => Loaded::Telemetry(Bundle::load(dir).map_err(with_path)?),
        Kind::Observe => Loaded::Observe(
            nrlt_observe::export::ObserveBundle::load(dir).map_err(|e| with_path(e.to_string()))?,
        ),
        Kind::Engineprof => {
            Loaded::Engineprof(nrlt_report::load_engine_bundle(dir).map_err(with_path)?)
        }
        Kind::Ledger => Loaded::Ledger(
            nrlt_report::read_history(&marker).map_err(|e| with_path(e.to_string()))?,
        ),
    };
    Ok((loaded, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mkroot(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_report(dir: &Path, name: &str) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(
            dir.join("report.json"),
            format!("{{\"bin\": \"{name}\", \"runs\": [{{\"name\": \"R-1\", \"hotspots\": []}}]}}"),
        )
        .unwrap();
    }

    #[test]
    fn catalog_scan_finds_kinds_sorted() {
        let root = mkroot("nrlt_store_catalog");
        write_report(&root.join("report/fig3"), "fig3");
        std::fs::create_dir_all(root.join("observe/fig3")).unwrap();
        std::fs::write(root.join("observe/fig3/observe.jsonl"), "").unwrap();
        std::fs::write(root.join("history.jsonl"), "").unwrap();
        let cat = scan_catalog(&root);
        let rels: Vec<&str> = cat.iter().map(|e| e.rel.as_str()).collect();
        assert_eq!(rels, vec!["", "observe/fig3", "report/fig3"]);
        assert_eq!(cat[0].kinds[0].0, Kind::Ledger);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cold_load_races_parse_exactly_once() {
        let root = mkroot("nrlt_store_singleflight");
        write_report(&root.join("report/fig3"), "fig3");
        let store = Store::new(&root, u64::MAX);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..16)
                .map(|_| s.spawn(|| store.get(Kind::Report, "report/fig3", None).unwrap()))
                .collect();
            for h in handles {
                let loaded = h.join().unwrap();
                assert!(matches!(&*loaded, Loaded::Report(_)));
            }
        });
        assert_eq!(store.parse_count(), 1, "16 concurrent first-touch requests, one parse");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn warm_hits_share_one_arc_and_count_hits() {
        let root = mkroot("nrlt_store_hits");
        write_report(&root.join("r"), "x");
        let store = Store::new(&root, u64::MAX);
        let tel = Telemetry::new();
        let a = store.get(Kind::Report, "r", Some(&tel)).unwrap();
        let b = store.get(Kind::Report, "r", Some(&tel)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(tel.counter("serve.cache_hits"), Some(1));
        assert_eq!(tel.counter("serve.cache_misses"), Some(1));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let root = mkroot("nrlt_store_lru");
        write_report(&root.join("a"), "a");
        write_report(&root.join("b"), "b");
        write_report(&root.join("c"), "c");
        let one = std::fs::metadata(root.join("a/report.json")).unwrap().len();
        // Budget fits two bundles, not three.
        let store = Store::new(&root, one * 2);
        store.get(Kind::Report, "a", None).unwrap();
        store.get(Kind::Report, "b", None).unwrap();
        store.get(Kind::Report, "a", None).unwrap(); // refresh a
        store.get(Kind::Report, "c", None).unwrap(); // evicts b (LRU)
        assert_eq!(store.eviction_count(), 1);
        assert!(store.resident_bytes() <= one * 2);
        let before = store.parse_count();
        store.get(Kind::Report, "a", None).unwrap(); // still resident
        assert_eq!(store.parse_count(), before, "a must not reload");
        store.get(Kind::Report, "b", None).unwrap(); // evicted: reloads
        assert_eq!(store.parse_count(), before + 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_errors_are_not_cached_and_retry_after_repair() {
        let root = mkroot("nrlt_store_errors");
        let dir = root.join("r");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("report.json"), "{ corrupt").unwrap();
        let store = Store::new(&root, u64::MAX);
        let err = store.get(Kind::Report, "r", None).unwrap_err();
        assert!(matches!(err, QueryError::Artifact(_)), "{err}");
        // Repair the file: the next request must retry and succeed.
        write_report(&dir, "fixed");
        assert!(store.get(Kind::Report, "r", None).is_ok());
        assert_eq!(store.parse_count(), 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn path_traversal_is_rejected() {
        let root = mkroot("nrlt_store_traversal");
        let store = Store::new(&root, u64::MAX);
        for rel in ["../etc", "a/../../b", "/abs"] {
            let err = store.get(Kind::Report, rel, None).unwrap_err();
            assert!(matches!(err, QueryError::BadRequest(_)), "{rel}: {err}");
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
