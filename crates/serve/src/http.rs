//! Minimal HTTP/1.1 request parsing and response rendering, std-only.
//!
//! The server only ever answers `GET` requests without bodies, so a
//! request is complete at the blank line ending its header block. The
//! parser is **incremental**: bytes arrive in arbitrary TCP segments,
//! [`RequestParser::feed`] buffers them, and [`RequestParser::next`]
//! yields zero or more complete requests per read — which is exactly
//! what makes pipelining (several requests in one segment) and partial
//! reads (one request split across many segments) the same code path.
//!
//! Hard limits keep untrusted peers cheap: a header block larger than
//! [`MAX_HEAD_BYTES`] is rejected with `431`, a method other than `GET`
//! with `405`, and a malformed request line with `400` — all as typed
//! [`ParseError`]s so the connection handler can answer before closing.

use std::collections::BTreeMap;

/// Upper bound on a request's head (request line + headers + blank
/// line). Far above any legitimate query this server answers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (always `GET` once parsing succeeded).
    pub method: String,
    /// Path component of the request target (before `?`).
    pub path: String,
    /// Query parameters, percent-decoded, last occurrence wins.
    pub query: BTreeMap<String, String>,
    /// True when the client asked for `Connection: close`.
    pub close: bool,
}

/// Why a request could not be parsed. Each variant maps to the HTTP
/// status the handler answers before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Head exceeded [`MAX_HEAD_BYTES`] → `431`.
    HeadersTooLarge,
    /// Method is not `GET` → `405`.
    MethodNotAllowed(String),
    /// Anything else malformed → `400`.
    Bad(String),
}

impl ParseError {
    /// The HTTP status code this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::HeadersTooLarge => 431,
            ParseError::MethodNotAllowed(_) => 405,
            ParseError::Bad(_) => 400,
        }
    }

    /// The human-readable reason.
    pub fn message(&self) -> String {
        match self {
            ParseError::HeadersTooLarge => {
                format!("request head larger than {MAX_HEAD_BYTES} bytes")
            }
            ParseError::MethodNotAllowed(m) => format!("method {m} not allowed; use GET"),
            ParseError::Bad(m) => m.clone(),
        }
    }
}

/// Incremental request parser over a connection's byte stream.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append freshly read bytes to the buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed by a request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete request off the buffer.
    ///
    /// * `Ok(Some(req))` — a full head was buffered; its bytes are
    ///   consumed (pipelined successors stay buffered for the next
    ///   call).
    /// * `Ok(None)` — the head is still incomplete; feed more bytes.
    /// * `Err(e)` — the stream is unusable; answer `e.status()` and
    ///   close.
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(ParseError::HeadersTooLarge);
            }
            return Ok(None);
        };
        if head_end > MAX_HEAD_BYTES {
            return Err(ParseError::HeadersTooLarge);
        }
        let head = self.buf[..head_end].to_vec();
        self.buf.drain(..head_end);
        parse_head(&head).map(Some)
    }
}

/// Index one past the `\r\n\r\n` (or lenient `\n\n`) ending the head.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

fn parse_head(head: &[u8]) -> Result<Request, ParseError> {
    let text =
        std::str::from_utf8(head).map_err(|_| ParseError::Bad("head is not UTF-8".into()))?;
    let mut lines = text.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(ParseError::Bad(format!("malformed request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported version {version:?}")));
    }
    if method != "GET" {
        return Err(ParseError::MethodNotAllowed(method.to_owned()));
    }
    let mut close = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Bad(format!("malformed header line {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("connection")
            && value.trim().eq_ignore_ascii_case("close")
        {
            close = true;
        }
    }
    let (path, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(percent_decode(k), percent_decode(v));
    }
    Ok(Request { method: method.to_owned(), path: percent_decode(path), query, close })
}

/// Percent-decode a URL component (`+` also decodes to space). Invalid
/// escapes pass through literally rather than failing the request.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Render a full HTTP/1.1 response (head + body).
pub fn response(status: u16, content_type: &str, body: &[u8], close: bool) -> Vec<u8> {
    let reason = reason(status);
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    out
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_all(p: &mut RequestParser, bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        p.feed(bytes);
        p.next_request()
    }

    #[test]
    fn parses_a_simple_get() {
        let mut p = RequestParser::new();
        let req =
            feed_all(&mut p, b"GET /severity?bundle=report/fig3&top=5 HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/severity");
        assert_eq!(req.query.get("bundle").map(String::as_str), Some("report/fig3"));
        assert_eq!(req.query.get("top").map(String::as_str), Some("5"));
        assert!(!req.close);
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn partial_reads_split_across_segments_reassemble() {
        // One request delivered byte-by-byte: no segment boundary may
        // confuse the parser.
        let raw = b"GET /bundles HTTP/1.1\r\nHost: localhost:8080\r\nAccept: */*\r\n\r\n";
        let mut p = RequestParser::new();
        for (i, b) in raw.iter().enumerate() {
            let got = feed_all(&mut p, &[*b]).unwrap();
            if i + 1 < raw.len() {
                assert!(got.is_none(), "complete at byte {i}?");
            } else {
                assert_eq!(got.unwrap().path, "/bundles");
            }
        }
        // And split at every possible boundary.
        for cut in 1..raw.len() - 1 {
            let mut p = RequestParser::new();
            assert!(feed_all(&mut p, &raw[..cut]).unwrap().is_none());
            assert_eq!(feed_all(&mut p, &raw[cut..]).unwrap().unwrap().path, "/bundles");
        }
    }

    #[test]
    fn pipelined_requests_pop_one_at_a_time() {
        let mut p = RequestParser::new();
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
        let a = p.next_request().unwrap().unwrap();
        assert_eq!(a.path, "/a");
        assert!(!a.close);
        let b = p.next_request().unwrap().unwrap();
        assert_eq!(b.path, "/b");
        assert!(b.close);
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn oversized_heads_are_431() {
        let mut p = RequestParser::new();
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES)).as_bytes());
        let err = feed_all(&mut p, &raw).unwrap_err();
        assert_eq!(err, ParseError::HeadersTooLarge);
        assert_eq!(err.status(), 431);

        // Also when the terminator never arrives but the buffer is
        // already past the limit.
        let mut p = RequestParser::new();
        p.feed(&vec![b'a'; MAX_HEAD_BYTES + 1]);
        assert_eq!(p.next_request().unwrap_err().status(), 431);
    }

    #[test]
    fn non_get_methods_are_405() {
        let mut p = RequestParser::new();
        let err = feed_all(&mut p, b"POST /shutdown HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, ParseError::MethodNotAllowed("POST".into()));
        assert_eq!(err.status(), 405);
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in
            [&b"NOT-HTTP\r\n\r\n"[..], b"GET /\r\n\r\n", b"GET / SPDY/99\r\n\r\n", b"\r\n\r\n"]
        {
            let mut p = RequestParser::new();
            let err = feed_all(&mut p, raw).unwrap_err();
            assert_eq!(err.status(), 400, "{:?}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn percent_decoding_roundtrips_query_values() {
        let mut p = RequestParser::new();
        let req =
            feed_all(&mut p, b"GET /observe?run=MiniFE-1%3Alt_1%3Arep0&x=a+b HTTP/1.1\r\n\r\n")
                .unwrap()
                .unwrap();
        assert_eq!(req.query.get("run").map(String::as_str), Some("MiniFE-1:lt_1:rep0"));
        assert_eq!(req.query.get("x").map(String::as_str), Some("a b"));
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn responses_carry_length_and_connection() {
        let r = response(200, "application/json", b"{}", false);
        let text = String::from_utf8(r).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        let r = response(404, "application/json", b"{}", true);
        assert!(String::from_utf8(r).unwrap().contains("Connection: close"));
    }
}
