//! End-to-end tests for `nrlt-serve` over real TCP sockets and the
//! committed exemplar bundles under `results/`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use nrlt_serve::{Config, Server};
use nrlt_telemetry::json::{self, Value};

fn results_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn start(root: PathBuf) -> Server {
    let mut cfg = Config::new(root);
    cfg.allow_shutdown = true;
    Server::start(cfg).expect("bind ephemeral port")
}

/// Minimal HTTP client: one request per connection, `Connection:
/// close`, returns (status, body bytes).
fn get(addr: std::net::SocketAddr, target: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("receive");
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("head") + 4;
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    (status, raw[head_end..].to_vec())
}

fn get_json(addr: std::net::SocketAddr, target: &str) -> (u16, Value) {
    let (status, body) = get(addr, target);
    let text = String::from_utf8(body).expect("utf-8 body");
    (status, json::parse(&text).unwrap_or_else(|e| panic!("{target}: bad JSON ({e}): {text}")))
}

#[test]
fn every_endpoint_serves_the_committed_exemplars() {
    let server = start(results_root());
    let addr = server.addr();

    let (status, catalog) = get_json(addr, "/bundles");
    assert_eq!(status, 200);
    let bundles = catalog.get("bundles").and_then(Value::as_arr).expect("bundles array");
    let paths: Vec<&str> =
        bundles.iter().filter_map(|b| b.get("path").and_then(Value::as_str)).collect();
    assert!(paths.contains(&"report/fig3"), "catalog misses report/fig3: {paths:?}");
    assert!(paths.contains(&"observe/fig3"), "catalog misses observe/fig3: {paths:?}");
    assert!(paths.contains(&"engineprof/fig3"), "{paths:?}");
    assert!(paths.contains(&"telemetry/fig3"), "{paths:?}");
    // The telemetry exemplar ships a manifest; the catalog embeds it.
    let telem = bundles
        .iter()
        .find(|b| b.get("path").and_then(Value::as_str) == Some("telemetry/fig3"))
        .expect("telemetry row");
    assert!(telem.get("manifest").is_some(), "manifest.json not embedded");

    let (status, sev) = get_json(addr, "/severity?bundle=report/fig3&run=MiniFE-1&top=3");
    assert_eq!(status, 200);
    let runs = sev.get("runs").and_then(Value::as_arr).expect("runs");
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].get("name").and_then(Value::as_str), Some("MiniFE-1"));
    let hotspots = runs[0].get("hotspots").and_then(Value::as_arr).expect("hotspots");
    assert!(hotspots.len() <= 3);

    let (status, folded) = get(addr, "/flamegraph?bundle=telemetry/fig3");
    assert_eq!(status, 200);
    let folded = String::from_utf8(folded).unwrap();
    assert!(folded.lines().any(|l| l.contains(';') || l.contains(' ')), "folded stacks empty");

    let (status, obs) = get_json(addr, "/observe?bundle=observe/fig3&top=3");
    assert_eq!(status, 200);
    assert!(obs.get("text").and_then(Value::as_str).is_some_and(|t| !t.is_empty()));

    let (status, eng) = get_json(addr, "/engine?bundle=engineprof/fig3&top=3");
    assert_eq!(status, 200);
    assert!(eng.get("text").and_then(Value::as_str).is_some_and(|t| !t.is_empty()));

    let (status, trend) = get_json(addr, "/trend");
    assert_eq!(status, 200);
    assert!(trend.get("records").and_then(Value::as_f64).unwrap_or(0.0) >= 1.0);

    // Unknown routes and bad parameters map to JSON errors.
    let (status, err) = get_json(addr, "/nope");
    assert_eq!(status, 404);
    assert!(err.get("error").is_some());
    let (status, err) = get_json(addr, "/severity");
    assert_eq!(status, 400, "{err:?}");
    let (status, err) = get_json(addr, "/severity?bundle=../../etc");
    assert_eq!(status, 400, "{err:?}");
    let (status, err) = get_json(addr, "/severity?bundle=report/fig3&run=NoSuchRun");
    assert_eq!(status, 404, "{err:?}");

    server.shared().request_stop();
    server.join().unwrap();
}

#[test]
fn concurrent_severity_is_byte_identical_and_single_flight() {
    let server = start(results_root());
    let addr = server.addr();
    let target = "/severity?bundle=report/fig3&top=5";

    // 16 concurrent first-touch clients: same bytes, one parse.
    let responses: Vec<(u16, Vec<u8>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..16).map(|_| s.spawn(move || get(addr, target))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let serial = get(addr, target);
    assert_eq!(serial.0, 200);
    for (status, body) in &responses {
        assert_eq!(*status, 200);
        assert_eq!(body, &serial.1, "concurrent response differs from serial");
    }
    assert_eq!(
        server.shared().store().parse_count(),
        1,
        "16 concurrent first-touch requests must cost exactly one parse"
    );

    server.shared().request_stop();
    server.join().unwrap();
}

#[test]
fn stats_account_for_at_least_99_percent_of_requests() {
    let server = start(results_root());
    let addr = server.addr();
    let mix = [
        "/severity?bundle=report/fig3",
        "/engine?bundle=engineprof/fig3&top=2",
        "/trend",
        "/bundles",
        "/",
    ];
    let sent = 100;
    for i in 0..sent {
        let (status, _) = get(addr, mix[i % mix.len()]);
        assert_eq!(status, 200);
    }
    let (status, stats) = get_json(addr, "/stats");
    assert_eq!(status, 200);
    let counted = stats
        .get("counters")
        .and_then(|c| c.get("serve.requests"))
        .and_then(Value::as_f64)
        .expect("serve.requests counter");
    // `counted` was snapshotted while the /stats request itself was
    // still in flight, so it covers at least the `sent` requests.
    assert!(
        counted >= 0.99 * sent as f64,
        "self-telemetry accounts for {counted} of {sent} requests"
    );
    assert!(stats.get("latency").and_then(|l| l.get("p99_ns")).is_some(), "latency percentiles");
    assert!(stats.get("cache").and_then(|c| c.get("parses")).is_some(), "cache stats");

    server.shared().request_stop();
    server.join().unwrap();
}

#[test]
fn corrupt_bundles_are_json_errors_and_the_server_survives() {
    let root = std::env::temp_dir().join("nrlt_serve_corrupt");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("bad")).unwrap();
    std::fs::write(root.join("bad/report.json"), "{\"runs\": [{\"name\": oops").unwrap();
    std::fs::write(root.join("history.jsonl"), "").unwrap();
    let server = start(root.clone());
    let addr = server.addr();

    let (status, err) = get_json(addr, "/severity?bundle=bad");
    assert_eq!(status, 500);
    let msg = err.get("error").and_then(Value::as_str).expect("error message");
    assert!(msg.contains("report.json"), "error lacks path context: {msg}");

    // The worker that hit the corrupt bundle still serves.
    let (status, _) = get_json(addr, "/stats");
    assert_eq!(status, 200);

    server.shared().request_stop();
    server.join().unwrap();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn shutdown_endpoint_drains_and_flushes_the_telemetry_bundle() {
    let export = std::env::temp_dir().join("nrlt_serve_export");
    let _ = std::fs::remove_dir_all(&export);
    let mut cfg = Config::new(results_root());
    cfg.allow_shutdown = true;
    cfg.telemetry_dir = Some(export.clone());
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    let (status, _) = get_json(addr, "/severity?bundle=report/fig3");
    assert_eq!(status, 200);
    let (status, body) = get_json(addr, "/shutdown");
    assert_eq!(status, 200);
    assert_eq!(body.get("draining"), Some(&Value::Bool(true)));
    server.wait_for_stop();
    let shared = server.join().unwrap();
    assert!(shared.stopping());

    // The flushed bundle loads like any other telemetry bundle and
    // carries the request accounting.
    let bundle = nrlt_report::Bundle::load(&export).expect("exported bundle loads");
    assert!(bundle.counters.get("serve.requests").copied().unwrap_or(0) >= 2);
    assert!(bundle.hists.contains_key("serve.request_ns"), "latency histogram exported");
    let manifest = std::fs::read_to_string(export.join("manifest.json")).unwrap();
    assert!(manifest.contains("nrlt-serve"));
    std::fs::remove_dir_all(&export).unwrap();
}

#[test]
fn shutdown_is_hidden_unless_enabled() {
    let mut cfg = Config::new(results_root());
    cfg.allow_shutdown = false;
    let server = Server::start(cfg).unwrap();
    let (status, _) = get_json(server.addr(), "/shutdown");
    assert_eq!(status, 404);
    assert!(!server.shared().stopping(), "disabled /shutdown must not stop the server");
    server.shared().request_stop();
    server.join().unwrap();
}
