//! Property tests: every schedule must partition the iteration space
//! exactly, regardless of shape.

use nrlt_ompsim::{simulate_dynamic, static_partition};
use nrlt_prog::Schedule;
use proptest::prelude::*;

proptest! {
    #[test]
    fn static_partitions_cover_exactly(iters in 0u64..100_000, threads in 1u32..64) {
        let p = static_partition(iters, threads, Schedule::Static);
        prop_assert!(p.validate(iters).is_ok());
        // Static balance: no thread holds more than ceil(n/T) iterations.
        let cap = iters.div_ceil(threads as u64).max(1);
        for t in 0..threads as usize {
            prop_assert!(p.thread_iters(t) <= cap);
        }
    }

    #[test]
    fn chunked_partitions_cover_exactly(
        iters in 0u64..50_000,
        threads in 1u32..32,
        chunk in 1u64..500,
    ) {
        let p = static_partition(iters, threads, Schedule::StaticChunk(chunk));
        prop_assert!(p.validate(iters).is_ok());
        // All chunks except possibly the last have the requested size.
        let mut all: Vec<_> = p.chunks.iter().flatten().collect();
        all.sort_by_key(|r| r.begin);
        for r in &all[..all.len().saturating_sub(1)] {
            prop_assert_eq!(r.len(), chunk.min(iters));
        }
    }

    #[test]
    fn dynamic_partitions_cover_exactly(
        iters in 1u64..20_000,
        threads in 1usize..16,
        chunk in 1u64..200,
        ready in proptest::collection::vec(0.0f64..1e-3, 1..16),
    ) {
        let ready = if ready.len() >= threads { ready[..threads].to_vec() } else {
            vec![0.0; threads]
        };
        let res = simulate_dynamic(
            iters,
            Schedule::Dynamic(chunk),
            &ready,
            |_, b, e| (e - b) as f64 * 1e-6,
            1e-7,
        );
        prop_assert!(res.partition.validate(iters).is_ok());
        // Finish times never precede ready times.
        for (f, r) in res.finish.iter().zip(&ready) {
            prop_assert!(f >= r);
        }
    }

    #[test]
    fn guided_partitions_cover_exactly(iters in 1u64..20_000, threads in 1usize..16) {
        let ready = vec![0.0; threads];
        let res = simulate_dynamic(
            iters,
            Schedule::Guided,
            &ready,
            |_, b, e| (e - b) as f64 * 1e-6,
            0.0,
        );
        prop_assert!(res.partition.validate(iters).is_ok());
    }
}
