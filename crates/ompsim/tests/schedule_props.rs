//! Property tests: every schedule must partition the iteration space
//! exactly, regardless of shape. A deterministic splitmix64 generator
//! replaces proptest so the suite runs with no external dependencies.

use nrlt_ompsim::{simulate_dynamic, static_partition};
use nrlt_prog::Schedule;

/// Deterministic pseudo-random generator (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[test]
fn static_partitions_cover_exactly() {
    let mut g = Gen(1);
    for _case in 0..200 {
        let iters = g.below(100_000);
        let threads = g.range(1, 64) as u32;
        let p = static_partition(iters, threads, Schedule::Static);
        assert!(p.validate(iters).is_ok());
        // Static balance: no thread holds more than ceil(n/T) iterations.
        let cap = iters.div_ceil(threads as u64).max(1);
        for t in 0..threads as usize {
            assert!(p.thread_iters(t) <= cap);
        }
    }
}

#[test]
fn chunked_partitions_cover_exactly() {
    let mut g = Gen(2);
    for _case in 0..200 {
        let iters = g.below(50_000);
        let threads = g.range(1, 32) as u32;
        let chunk = g.range(1, 500);
        let p = static_partition(iters, threads, Schedule::StaticChunk(chunk));
        assert!(p.validate(iters).is_ok());
        // All chunks except possibly the last have the requested size.
        let mut all: Vec<_> = p.chunks.iter().flatten().collect();
        all.sort_by_key(|r| r.begin);
        for r in &all[..all.len().saturating_sub(1)] {
            assert_eq!(r.len(), chunk.min(iters));
        }
    }
}

#[test]
fn dynamic_partitions_cover_exactly() {
    let mut g = Gen(3);
    for _case in 0..150 {
        let iters = g.range(1, 20_000);
        let threads = g.range(1, 16) as usize;
        let chunk = g.range(1, 200);
        let ready: Vec<f64> = (0..threads).map(|_| g.f64() * 1e-3).collect();
        let res = simulate_dynamic(
            iters,
            Schedule::Dynamic(chunk),
            &ready,
            |_, b, e| (e - b) as f64 * 1e-6,
            1e-7,
        );
        assert!(res.partition.validate(iters).is_ok());
        // Finish times never precede ready times.
        for (f, r) in res.finish.iter().zip(&ready) {
            assert!(f >= r);
        }
    }
}

#[test]
fn guided_partitions_cover_exactly() {
    let mut g = Gen(4);
    for _case in 0..150 {
        let iters = g.range(1, 20_000);
        let threads = g.range(1, 16) as usize;
        let ready = vec![0.0; threads];
        let res =
            simulate_dynamic(iters, Schedule::Guided, &ready, |_, b, e| (e - b) as f64 * 1e-6, 0.0);
        assert!(res.partition.validate(iters).is_ok());
    }
}
