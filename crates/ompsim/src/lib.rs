//! # nrlt-ompsim — OpenMP runtime semantics and cost models
//!
//! The OpenMP substrate: deterministic worksharing-loop schedules
//! (static, static-chunked, simulated dynamic and guided) and the
//! runtime's overhead model (fork/join, loop dispatch, barriers,
//! critical sections). Thread teams themselves are orchestrated by the
//! replay engine in `nrlt-exec`; this crate supplies the partitioning
//! and timing rules.
//!
//! The paper's `lt_loop` effort model counts exactly the loop iterations
//! these schedules hand out, and its OpenMP-runtime effort constants
//! (X = 100 basic blocks, Y = 4300 statements per runtime call) attach to
//! the constructs modelled here.

#![warn(missing_docs)]

pub mod overhead;
pub mod schedule;

pub use overhead::OmpOverheadModel;
pub use schedule::{
    simulate_dynamic, simulate_dynamic_prof, static_partition, DynamicResult, IterRange,
    LoopPartition,
};
