//! OpenMP runtime overhead model.
//!
//! Iwainsky et al. ("How many threads will be too many?") showed that
//! OpenMP construct overheads grow with team size and differ between
//! implementations; the paper leans on that observation when it assigns
//! the LLVM-clock constants for runtime calls. This model provides the
//! physical-time costs of the simulated runtime: forking a team,
//! dispatching worksharing loops, and synchronising at barriers.

/// Cost parameters of the simulated OpenMP runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct OmpOverheadModel {
    /// Fixed cost of entering a parallel region, seconds.
    pub fork_base: f64,
    /// Additional fork cost per team thread, seconds.
    pub fork_per_thread: f64,
    /// Cost of joining (implicit barrier + teardown) at region end,
    /// seconds, in addition to the barrier itself.
    pub join_base: f64,
    /// Per-thread cost of starting a static worksharing loop, seconds.
    pub dispatch_static: f64,
    /// Per-chunk acquisition cost under dynamic/guided schedules, seconds.
    pub dispatch_dynamic: f64,
    /// Base cost of a barrier, seconds.
    pub barrier_base: f64,
    /// Barrier cost factor per log2(team size), seconds.
    pub barrier_log: f64,
    /// Wake-up delay of worker thread `t` after a fork: `t × this`,
    /// seconds. Workers do not start simultaneously.
    pub wake_stagger: f64,
    /// Cost of one critical-section lock acquire/release pair, seconds.
    pub critical_lock: f64,
}

impl Default for OmpOverheadModel {
    fn default() -> Self {
        // Calibrated to typical LLVM/GNU OpenMP runtimes on a 2.25 GHz
        // EPYC: ~1-2 us fork for small teams, tens of us for 128 threads.
        OmpOverheadModel {
            fork_base: 1.6e-6,
            fork_per_thread: 0.2e-6,
            join_base: 0.8e-6,
            dispatch_static: 0.15e-6,
            dispatch_dynamic: 0.3e-6,
            barrier_base: 1.0e-6,
            barrier_log: 0.9e-6,
            wake_stagger: 0.06e-6,
            critical_lock: 0.5e-6,
        }
    }
}

impl OmpOverheadModel {
    /// Cost for the master to fork a team of `n` threads, seconds.
    pub fn fork_cost(&self, n: u32) -> f64 {
        self.fork_base + self.fork_per_thread * n as f64
    }

    /// Delay before worker `thread` starts executing after the fork.
    pub fn wake_delay(&self, thread: u32) -> f64 {
        self.wake_stagger * thread as f64
    }

    /// Cost for the master to join/tear down a team, seconds.
    pub fn join_cost(&self) -> f64 {
        self.join_base
    }

    /// Time between the last thread arriving at a barrier and the team
    /// being released, seconds.
    pub fn barrier_cost(&self, n: u32) -> f64 {
        let stages = (n.max(2) as f64).log2().ceil();
        self.barrier_base + self.barrier_log * stages
    }

    /// Per-thread overhead of starting a worksharing loop with `chunks`
    /// chunk acquisitions (1 for static).
    pub fn loop_dispatch_cost(&self, dynamic: bool, chunks: usize) -> f64 {
        if dynamic {
            self.dispatch_dynamic * chunks as f64
        } else {
            self.dispatch_static
        }
    }

    /// Instruction-count equivalents of the runtime costs, for the
    /// virtual hardware counter: `lt_hwctr` sees effort inside the
    /// OpenMP runtime because the CPU retires instructions there.
    pub fn instructions_for(&self, seconds: f64, freq_hz: f64, ipc: f64) -> u64 {
        (seconds * freq_hz * ipc).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_grows_with_team() {
        let m = OmpOverheadModel::default();
        assert!(m.fork_cost(128) > m.fork_cost(4) * 3.0);
    }

    #[test]
    fn barrier_grows_logarithmically() {
        let m = OmpOverheadModel::default();
        let b4 = m.barrier_cost(4);
        let b128 = m.barrier_cost(128);
        assert!(b128 > b4);
        assert!(b128 < b4 * 4.0, "barrier growth must be logarithmic");
    }

    #[test]
    fn dynamic_dispatch_scales_with_chunks() {
        let m = OmpOverheadModel::default();
        assert!(m.loop_dispatch_cost(true, 100) > m.loop_dispatch_cost(true, 1) * 50.0);
        assert_eq!(m.loop_dispatch_cost(false, 100), m.loop_dispatch_cost(false, 1));
    }

    #[test]
    fn wake_delay_staggers_threads() {
        let m = OmpOverheadModel::default();
        assert_eq!(m.wake_delay(0), 0.0);
        assert!(m.wake_delay(5) > m.wake_delay(2));
    }

    #[test]
    fn instruction_conversion() {
        let m = OmpOverheadModel::default();
        // 1 us at 2.25 GHz, IPC 2 → 4500 instructions.
        assert_eq!(m.instructions_for(1e-6, 2.25e9, 2.0), 4500);
        assert_eq!(m.instructions_for(0.0, 2.25e9, 2.0), 0);
    }
}
