//! OpenMP worksharing-loop schedules.
//!
//! Static schedules partition iterations at compile time; dynamic and
//! guided schedules are simulated: free threads grab the next chunk, so
//! the partition depends on per-chunk durations and thread start times.
//! The simulation is deterministic — ties break by thread id, matching
//! the deterministic traces the paper needs.

use nrlt_engineprof::{EventKind, RunProf};
use nrlt_prog::Schedule;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A contiguous iteration range `[begin, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterRange {
    /// First iteration.
    pub begin: u64,
    /// One past the last iteration.
    pub end: u64,
}

impl IterRange {
    /// Number of iterations in the range.
    pub fn len(&self) -> u64 {
        self.end - self.begin
    }

    /// True for an empty range.
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }
}

/// The outcome of scheduling one loop: per-thread chunk lists.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopPartition {
    /// `chunks[t]` are the ranges thread `t` executes, in order.
    pub chunks: Vec<Vec<IterRange>>,
}

impl LoopPartition {
    /// Total iterations assigned to thread `t`.
    pub fn thread_iters(&self, t: usize) -> u64 {
        self.chunks[t].iter().map(IterRange::len).sum()
    }

    /// Number of chunks thread `t` received (each chunk costs one
    /// dispatch round-trip under dynamic scheduling).
    pub fn thread_chunks(&self, t: usize) -> usize {
        self.chunks[t].len()
    }

    /// Total chunks across the whole team — the loop's dispatch traffic,
    /// sampled by the resource observatory as `omp.loop_chunks`.
    pub fn total_chunks(&self) -> usize {
        self.chunks.iter().map(Vec::len).sum()
    }

    /// Largest per-thread iteration count — the team's critical path in
    /// iteration units (imbalance shows as `max_thread_iters` pulling
    /// away from the mean).
    pub fn max_thread_iters(&self) -> u64 {
        (0..self.chunks.len()).map(|t| self.thread_iters(t)).max().unwrap_or(0)
    }

    /// Check that the partition covers `[0, iters)` exactly once.
    pub fn validate(&self, iters: u64) -> Result<(), String> {
        let mut all: Vec<IterRange> =
            self.chunks.iter().flatten().copied().filter(|r| !r.is_empty()).collect();
        all.sort_by_key(|r| r.begin);
        let mut cursor = 0;
        for r in &all {
            if r.begin != cursor {
                return Err(format!(
                    "gap or overlap at iteration {cursor} (next range starts {})",
                    r.begin
                ));
            }
            cursor = r.end;
        }
        if cursor != iters {
            return Err(format!("partition covers {cursor} of {iters} iterations"));
        }
        Ok(())
    }
}

/// Partition a static schedule (no runtime feedback needed).
///
/// Panics if called with a dynamic/guided schedule — use
/// [`simulate_dynamic`] for those.
pub fn static_partition(iters: u64, nthreads: u32, schedule: Schedule) -> LoopPartition {
    let t = nthreads.max(1) as u64;
    match schedule {
        Schedule::Static => {
            // One contiguous block per thread, chunk = ceil(n / T).
            let chunk = iters.div_ceil(t).max(1);
            let chunks = (0..t)
                .map(|i| {
                    let begin = (i * chunk).min(iters);
                    let end = ((i + 1) * chunk).min(iters);
                    if begin < end {
                        vec![IterRange { begin, end }]
                    } else {
                        vec![]
                    }
                })
                .collect();
            LoopPartition { chunks }
        }
        Schedule::StaticChunk(c) => {
            let c = c.max(1);
            let mut chunks: Vec<Vec<IterRange>> = vec![Vec::new(); t as usize];
            let mut begin = 0;
            let mut turn = 0usize;
            while begin < iters {
                let end = (begin + c).min(iters);
                chunks[turn % t as usize].push(IterRange { begin, end });
                begin = end;
                turn += 1;
            }
            LoopPartition { chunks }
        }
        Schedule::Dynamic(_) | Schedule::Guided => {
            panic!("dynamic/guided schedules need runtime simulation")
        }
    }
}

#[derive(Debug, PartialEq)]
struct ReadyThread {
    time: f64,
    thread: u32,
}

impl Eq for ReadyThread {}

impl Ord for ReadyThread {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, thread id): earlier threads grab chunks first,
        // ties broken deterministically by id.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.thread.cmp(&self.thread))
    }
}

impl PartialOrd for ReadyThread {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of simulating a dynamic/guided loop.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicResult {
    /// The realised partition.
    pub partition: LoopPartition,
    /// Per-thread finish time (seconds), including dispatch overheads.
    pub finish: Vec<f64>,
}

/// Simulate a `dynamic` or `guided` schedule.
///
/// * `ready` — per-thread time (seconds) at which the thread reaches the
///   loop.
/// * `range_cost` — duration (seconds) for that thread to execute a
///   chunk; receives `(begin, end)`.
/// * `dispatch` — overhead per chunk acquisition (runtime lock/atomic).
pub fn simulate_dynamic(
    iters: u64,
    schedule: Schedule,
    ready: &[f64],
    range_cost: impl FnMut(u32, u64, u64) -> f64,
    dispatch: f64,
) -> DynamicResult {
    simulate_dynamic_prof(iters, schedule, ready, range_cost, dispatch, None, "")
}

/// [`simulate_dynamic`] with engine profiling: when `prof` is some,
/// every dispatched chunk is accounted as a [`EventKind::LoopChunk`]
/// (virtual time = the chunk's simulated duration) and the remaining
/// iteration count is sampled as the `omp.pending_iters` gauge under
/// `phase` before each grab.
pub fn simulate_dynamic_prof(
    iters: u64,
    schedule: Schedule,
    ready: &[f64],
    mut range_cost: impl FnMut(u32, u64, u64) -> f64,
    dispatch: f64,
    prof: Option<&RunProf>,
    phase: &str,
) -> DynamicResult {
    let nthreads = ready.len() as u32;
    let mut heap: BinaryHeap<ReadyThread> =
        ready.iter().enumerate().map(|(t, &time)| ReadyThread { time, thread: t as u32 }).collect();
    let mut chunks: Vec<Vec<IterRange>> = vec![Vec::new(); nthreads as usize];
    let mut finish = ready.to_vec();
    let mut next = 0u64;
    while next < iters {
        let ReadyThread { time, thread } = heap.pop().expect("heap cannot be empty");
        let chunk = match schedule {
            Schedule::Dynamic(c) => c.max(1),
            Schedule::Guided => {
                let remaining = iters - next;
                (remaining / (2 * nthreads as u64)).max(1)
            }
            _ => panic!("simulate_dynamic called with a static schedule"),
        };
        let begin = next;
        let end = (next + chunk).min(iters);
        next = end;
        chunks[thread as usize].push(IterRange { begin, end });
        let cost = match prof {
            None => range_cost(thread, begin, end),
            Some(p) => {
                p.gauge("omp.pending_iters", phase, (iters - begin) as i64);
                p.enter(EventKind::LoopChunk);
                let cost = range_cost(thread, begin, end);
                p.leave(EventKind::LoopChunk, (cost * 1e9) as u64);
                cost
            }
        };
        let done = time + dispatch + cost;
        finish[thread as usize] = done;
        heap.push(ReadyThread { time: done, thread });
    }
    DynamicResult { partition: LoopPartition { chunks }, finish }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_partition_covers_exactly() {
        for (iters, t) in [(100u64, 16u32), (7, 3), (1, 8), (0, 4), (1000, 1)] {
            let p = static_partition(iters, t, Schedule::Static);
            p.validate(iters).unwrap();
        }
    }

    #[test]
    fn occupancy_helpers_summarise_the_partition() {
        let p = static_partition(100, 4, Schedule::Static);
        assert_eq!(p.total_chunks(), (0..4).map(|t| p.thread_chunks(t)).sum::<usize>());
        assert_eq!(p.max_thread_iters(), 25);
        let chunked = static_partition(100, 4, Schedule::StaticChunk(10));
        assert_eq!(chunked.total_chunks(), 10);
        assert_eq!(LoopPartition { chunks: Vec::new() }.max_thread_iters(), 0);
    }

    #[test]
    fn static_is_contiguous_and_balanced() {
        let p = static_partition(100, 4, Schedule::Static);
        for t in 0..4 {
            assert_eq!(p.thread_iters(t), 25);
            assert_eq!(p.thread_chunks(t), 1);
        }
    }

    #[test]
    fn static_chunk_round_robins() {
        let p = static_partition(10, 2, Schedule::StaticChunk(2));
        p.validate(10).unwrap();
        assert_eq!(
            p.chunks[0],
            vec![
                IterRange { begin: 0, end: 2 },
                IterRange { begin: 4, end: 6 },
                IterRange { begin: 8, end: 10 },
            ]
        );
        assert_eq!(p.chunks[1].len(), 2);
    }

    #[test]
    fn dynamic_balances_uneven_costs() {
        // Iterations 0..50 are 10x the cost of 50..100; dynamic spreads
        // the expensive half over both threads.
        let ready = [0.0, 0.0];
        let res = simulate_dynamic(
            100,
            Schedule::Dynamic(5),
            &ready,
            |_, b, e| (b..e).map(|i| if i < 50 { 10.0 } else { 1.0 }).sum(),
            0.0,
        );
        res.partition.validate(100).unwrap();
        let spread = (res.finish[0] - res.finish[1]).abs();
        let total = res.finish[0].max(res.finish[1]);
        assert!(spread / total < 0.2, "dynamic schedule should balance: {res:?}");
    }

    #[test]
    fn static_would_imbalance_what_dynamic_balances() {
        // Same workload under static: thread 0 gets all expensive ones.
        let p = static_partition(100, 2, Schedule::Static);
        let cost = |ranges: &Vec<IterRange>| -> f64 {
            ranges
                .iter()
                .flat_map(|r| r.begin..r.end)
                .map(|i| if i < 50 { 10.0 } else { 1.0 })
                .sum()
        };
        let c0 = cost(&p.chunks[0]);
        let c1 = cost(&p.chunks[1]);
        assert!(c0 > 5.0 * c1);
    }

    #[test]
    fn guided_chunks_shrink() {
        let res =
            simulate_dynamic(1000, Schedule::Guided, &[0.0, 0.0], |_, b, e| (e - b) as f64, 0.0);
        res.partition.validate(1000).unwrap();
        let sizes: Vec<u64> = res.partition.chunks.iter().flatten().map(IterRange::len).collect();
        assert!(sizes.first().unwrap() > sizes.last().unwrap());
    }

    #[test]
    fn dispatch_overhead_counts_per_chunk() {
        let no = simulate_dynamic(100, Schedule::Dynamic(1), &[0.0], |_, b, e| (e - b) as f64, 0.0);
        let with =
            simulate_dynamic(100, Schedule::Dynamic(1), &[0.0], |_, b, e| (e - b) as f64, 0.5);
        assert!((with.finish[0] - no.finish[0] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn late_thread_gets_fewer_chunks() {
        let res = simulate_dynamic(
            100,
            Schedule::Dynamic(10),
            &[0.0, 45.0],
            |_, b, e| (e - b) as f64,
            0.0,
        );
        res.partition.validate(100).unwrap();
        assert!(res.partition.thread_iters(0) > res.partition.thread_iters(1));
    }

    #[test]
    #[should_panic(expected = "runtime simulation")]
    fn static_partition_rejects_dynamic() {
        static_partition(10, 2, Schedule::Dynamic(1));
    }

    #[test]
    fn prof_variant_matches_plain_and_counts_chunks() {
        let plain =
            simulate_dynamic(50, Schedule::Dynamic(3), &[0.0; 4], |_, b, e| (e - b) as f64, 0.1);
        let run = RunProf::new("r");
        let prof = simulate_dynamic_prof(
            50,
            Schedule::Dynamic(3),
            &[0.0; 4],
            |_, b, e| (e - b) as f64,
            0.1,
            Some(&run),
            "loop",
        );
        assert_eq!(plain, prof, "profiling must not perturb the schedule");
        let (_, d) = run.finish();
        let k = &d.kinds[EventKind::LoopChunk.index()];
        assert_eq!(k.count as usize, prof.partition.total_chunks());
        assert_eq!(k.virtual_ns, 50 * 1_000_000_000, "50 iterations at 1s each");
        let g = &d.gauges[&("omp.pending_iters".to_owned(), "loop".to_owned())];
        assert_eq!(g.count, k.count);
        assert_eq!(g.max, 50);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let a =
            simulate_dynamic(50, Schedule::Dynamic(3), &[0.0; 4], |_, b, e| (e - b) as f64, 0.1);
        let b =
            simulate_dynamic(50, Schedule::Dynamic(3), &[0.0; 4], |_, b, e| (e - b) as f64, 0.1);
        assert_eq!(a, b);
    }
}
