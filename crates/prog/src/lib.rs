//! # nrlt-prog — program intermediate representation
//!
//! Mini-apps are expressed as per-rank action lists over an IR of user
//! regions, compute kernels with static cost vectors, OpenMP constructs
//! and MPI operations. The IR plays the role of the *instrumented
//! application* in the paper: compiler instrumentation knows each code
//! block's LLVM basic-block and statement counts, Opari2 knows the OpenMP
//! construct boundaries, and PMPI knows the MPI calls — here all three
//! kinds of knowledge are attached to the IR directly.
//!
//! Control flow is unrolled when a skeleton is built. This is faithful to
//! the paper's benchmarks, whose iteration counts do not depend on
//! received data (no wildcard receives, deterministic traces).

#![warn(missing_docs)]

pub mod action;
pub mod builder;
pub mod cost;
pub mod program;
pub mod region;

pub use action::{
    Action, CallBurst, Kernel, MpiOp, OmpAction, OmpFor, ParallelRegion, PhaseId, Schedule,
};
pub use builder::{OmpBuilder, ProgramBuilder, RankBuilder};
pub use cost::{Cost, IterCost};
pub use program::{Program, ValidationError};
pub use region::{Region, RegionId, RegionKind, RegionTable};
