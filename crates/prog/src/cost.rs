//! Static cost vectors attached to compute kernels.
//!
//! A `Cost` carries exactly the quantities the paper's effort models read:
//! retired CPU instructions (`lt_hwctr`), LLVM IR basic blocks (`lt_bb`),
//! LLVM IR statements (`lt_stmt`), plus the floating-point work and memory
//! traffic the physical-time model needs. In the paper these counts come
//! from an LLVM instrumentation pass; here they are attached to the
//! program IR directly — the same information by a different route.

use std::ops::{Add, AddAssign, Mul};

/// Per-invocation (or per-iteration) static cost of a piece of code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Cost {
    /// Retired machine instructions.
    pub instructions: u64,
    /// Executed LLVM IR basic blocks.
    pub basic_blocks: u64,
    /// Executed LLVM IR statements (instructions in IR terms).
    pub statements: u64,
    /// Floating-point operations (for the roofline CPU term).
    pub flops: u64,
    /// Bytes moved to/from the memory hierarchy.
    pub mem_bytes: u64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost =
        Cost { instructions: 0, basic_blocks: 0, statements: 0, flops: 0, mem_bytes: 0 };

    /// A cost with every counter derived from an instruction count using
    /// typical ratios for compiled scalar C++ code: one IR statement per
    /// ~1.3 machine instructions, one basic block per ~6 statements.
    pub fn scalar(instructions: u64) -> Cost {
        Cost {
            instructions,
            basic_blocks: instructions / 8,
            statements: (instructions as f64 / 1.3) as u64,
            flops: 0,
            mem_bytes: 0,
        }
    }

    /// A floating-point kernel: `flops` useful flops with `instr_per_flop`
    /// total instructions per flop and `bytes_per_flop` memory traffic.
    pub fn fp_kernel(flops: u64, instr_per_flop: f64, bytes_per_flop: f64) -> Cost {
        let instructions = (flops as f64 * instr_per_flop) as u64;
        Cost {
            instructions,
            basic_blocks: instructions / 10,
            statements: (instructions as f64 / 1.3) as u64,
            flops,
            mem_bytes: (flops as f64 * bytes_per_flop) as u64,
        }
    }

    /// Override the basic-block count (branchy code has more blocks per
    /// instruction than streaming loops).
    pub fn with_basic_blocks(mut self, bb: u64) -> Cost {
        self.basic_blocks = bb;
        self
    }

    /// Override the statement count.
    pub fn with_statements(mut self, stmt: u64) -> Cost {
        self.statements = stmt;
        self
    }

    /// Override the memory traffic.
    pub fn with_mem_bytes(mut self, bytes: u64) -> Cost {
        self.mem_bytes = bytes;
        self
    }

    /// Override the instruction count.
    pub fn with_instructions(mut self, instructions: u64) -> Cost {
        self.instructions = instructions;
        self
    }

    /// True if every component is zero.
    pub fn is_zero(&self) -> bool {
        *self == Cost::ZERO
    }

    /// Scale every component by a non-negative factor, rounding.
    pub fn scale(&self, factor: f64) -> Cost {
        debug_assert!(factor >= 0.0);
        let s = |v: u64| (v as f64 * factor).round() as u64;
        Cost {
            instructions: s(self.instructions),
            basic_blocks: s(self.basic_blocks),
            statements: s(self.statements),
            flops: s(self.flops),
            mem_bytes: s(self.mem_bytes),
        }
    }

    /// Saturating element-wise sum — used when aggregating work between
    /// measurement events, where overflow would silently corrupt logical
    /// timestamps.
    pub fn saturating_add(&self, rhs: &Cost) -> Cost {
        Cost {
            instructions: self.instructions.saturating_add(rhs.instructions),
            basic_blocks: self.basic_blocks.saturating_add(rhs.basic_blocks),
            statements: self.statements.saturating_add(rhs.statements),
            flops: self.flops.saturating_add(rhs.flops),
            mem_bytes: self.mem_bytes.saturating_add(rhs.mem_bytes),
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            instructions: self.instructions + rhs.instructions,
            basic_blocks: self.basic_blocks + rhs.basic_blocks,
            statements: self.statements + rhs.statements,
            flops: self.flops + rhs.flops,
            mem_bytes: self.mem_bytes + rhs.mem_bytes,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Cost {
    type Output = Cost;
    fn mul(self, n: u64) -> Cost {
        Cost {
            instructions: self.instructions * n,
            basic_blocks: self.basic_blocks * n,
            statements: self.statements * n,
            flops: self.flops * n,
            mem_bytes: self.mem_bytes * n,
        }
    }
}

/// Per-iteration cost of a worksharing loop, possibly iteration-dependent.
///
/// Iteration dependence is what makes `lt_loop` mis-estimate effort: a loop
/// whose iterations are cheap still counts one increment per iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum IterCost {
    /// Every iteration costs the same.
    Uniform(Cost),
    /// Cost ramps linearly from `base` at iteration 0 to
    /// `base × last_factor` at the final iteration. `last_factor ≥ 0`.
    Ramp {
        /// Cost of the first iteration.
        base: Cost,
        /// Multiplier reached at the last iteration.
        last_factor: f64,
    },
}

impl IterCost {
    /// Total cost of the iteration range `[begin, end)` out of `total`
    /// iterations.
    pub fn range_cost(&self, begin: u64, end: u64, total: u64) -> Cost {
        debug_assert!(begin <= end && end <= total);
        let n = end - begin;
        if n == 0 {
            return Cost::ZERO;
        }
        match self {
            IterCost::Uniform(c) => *c * n,
            IterCost::Ramp { base, last_factor } => {
                // factor(i) = 1 + (last_factor - 1) * i / (total - 1)
                if total <= 1 {
                    return *base * n;
                }
                let slope = (last_factor - 1.0) / (total - 1) as f64;
                // Sum of factors over [begin, end): n + slope * sum(i)
                let sum_i = (begin + end - 1) as f64 * n as f64 / 2.0;
                let factor_sum = n as f64 + slope * sum_i;
                base.scale(factor_sum.max(0.0))
            }
        }
    }

    /// Cost of the whole loop of `total` iterations.
    pub fn total_cost(&self, total: u64) -> Cost {
        self.range_cost(0, total, total)
    }

    /// Mean per-iteration cost (for schedule balancing heuristics).
    pub fn mean_cost(&self, total: u64) -> Cost {
        if total == 0 {
            return Cost::ZERO;
        }
        self.total_cost(total).scale(1.0 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_derives_counts() {
        let c = Cost::scalar(800);
        assert_eq!(c.instructions, 800);
        assert_eq!(c.basic_blocks, 100);
        assert!(c.statements > 500 && c.statements < 700);
    }

    #[test]
    fn add_and_mul() {
        let a = Cost::scalar(100);
        let b = a + a;
        assert_eq!(b.instructions, 200);
        assert_eq!((a * 3).instructions, 300);
        let mut c = a;
        c += a;
        assert_eq!(c, b);
    }

    #[test]
    fn scale_rounds() {
        let c = Cost { instructions: 10, basic_blocks: 3, statements: 5, flops: 0, mem_bytes: 7 }
            .scale(0.5);
        assert_eq!(c.instructions, 5);
        assert_eq!(c.basic_blocks, 2); // 1.5 rounds to 2
        assert_eq!(c.mem_bytes, 4); // 3.5 rounds to 4
    }

    #[test]
    fn saturating_add_never_overflows() {
        let a = Cost { instructions: u64::MAX, ..Cost::ZERO };
        let b = Cost::scalar(10);
        assert_eq!(a.saturating_add(&b).instructions, u64::MAX);
    }

    #[test]
    fn uniform_range_cost() {
        let ic = IterCost::Uniform(Cost::scalar(10));
        assert_eq!(ic.range_cost(0, 5, 100).instructions, 50);
        assert_eq!(ic.range_cost(3, 3, 100), Cost::ZERO);
        assert_eq!(ic.total_cost(100).instructions, 1000);
    }

    #[test]
    fn ramp_total_matches_closed_form() {
        // Ramp 1 → 3 over 100 iterations: mean factor 2.
        let base = Cost::scalar(1000);
        let ic = IterCost::Ramp { base, last_factor: 3.0 };
        let total = ic.total_cost(100);
        let expected = base.instructions as f64 * 100.0 * 2.0;
        assert!((total.instructions as f64 - expected).abs() / expected < 0.01);
    }

    #[test]
    fn ramp_ranges_sum_to_total() {
        let base = Cost::scalar(997);
        let ic = IterCost::Ramp { base, last_factor: 4.0 };
        let total = ic.total_cost(1000).instructions;
        let split: u64 = [(0, 250), (250, 700), (700, 1000)]
            .iter()
            .map(|&(b, e)| ic.range_cost(b, e, 1000).instructions)
            .sum();
        // Rounding may differ by a few units per range.
        assert!((total as i64 - split as i64).abs() < 10);
    }

    #[test]
    fn ramp_end_heavier_than_start() {
        let ic = IterCost::Ramp { base: Cost::scalar(100), last_factor: 5.0 };
        let lo = ic.range_cost(0, 100, 1000).instructions;
        let hi = ic.range_cost(900, 1000, 1000).instructions;
        assert!(hi > lo * 3);
    }

    #[test]
    fn single_iteration_ramp_degenerates() {
        let ic = IterCost::Ramp { base: Cost::scalar(100), last_factor: 7.0 };
        assert_eq!(ic.total_cost(1).instructions, 100);
    }
}
