//! Source-code regions and their interning table.
//!
//! Regions play the role of Score-P's region definitions: every function,
//! OpenMP construct, and MPI call that can appear on a call path is a
//! region with a name and a paradigm classification. The classification
//! drives Scalasca's metric split (computation vs MPI vs OpenMP).

use std::collections::HashMap;
use std::fmt;

/// Interned region handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

/// Which paradigm a region belongs to — Scalasca groups time by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// User source code: counts as computation.
    User,
    /// An MPI API call (`MPI_Send`, `MPI_Allreduce`, …).
    Mpi,
    /// OpenMP parallel construct body (counts as computation container).
    OmpParallel,
    /// OpenMP worksharing loop body (iterations count as computation).
    OmpLoop,
    /// OpenMP implicit barrier (end of worksharing/parallel).
    OmpImplicitBarrier,
    /// OpenMP explicit barrier.
    OmpBarrier,
    /// OpenMP critical section.
    OmpCritical,
    /// OpenMP `single` construct.
    OmpSingle,
    /// OpenMP `master` construct.
    OmpMaster,
    /// Thread management: fork/join of parallel regions.
    OmpFork,
}

impl RegionKind {
    /// True for OpenMP runtime constructs (not user computation).
    pub fn is_omp_construct(self) -> bool {
        matches!(
            self,
            RegionKind::OmpImplicitBarrier | RegionKind::OmpBarrier | RegionKind::OmpFork
        )
    }

    /// True for MPI API calls.
    pub fn is_mpi(self) -> bool {
        matches!(self, RegionKind::Mpi)
    }
}

/// A region definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Display name, e.g. `cg_solve` or `!$omp for @waxpby`.
    pub name: String,
    /// Paradigm classification.
    pub kind: RegionKind,
}

/// Interning table for regions; shared by all ranks of a program.
#[derive(Debug, Clone, Default)]
pub struct RegionTable {
    regions: Vec<Region>,
    by_name: HashMap<String, RegionId>,
}

impl RegionTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `(name, kind)`, returning the existing id when the name is
    /// already known.
    ///
    /// Panics if the same name is re-interned with a different kind — that
    /// would silently corrupt the metric classification.
    pub fn intern(&mut self, name: &str, kind: RegionKind) -> RegionId {
        if let Some(&id) = self.by_name.get(name) {
            assert_eq!(
                self.regions[id.0 as usize].kind, kind,
                "region {name:?} re-interned with a different kind"
            );
            return id;
        }
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region { name: name.to_owned(), kind });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Look up an id by name.
    pub fn find(&self, name: &str) -> Option<RegionId> {
        self.by_name.get(name).copied()
    }

    /// The definition behind an id.
    pub fn get(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// Region name.
    pub fn name(&self, id: RegionId) -> &str {
        &self.get(id).name
    }

    /// Region kind.
    pub fn kind(&self, id: RegionId) -> RegionKind {
        self.get(id).kind
    }

    /// Number of interned regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when no regions are interned.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Iterate `(id, region)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &Region)> {
        self.regions.iter().enumerate().map(|(i, r)| (RegionId(i as u32), r))
    }
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegionKind::User => "user",
            RegionKind::Mpi => "mpi",
            RegionKind::OmpParallel => "omp parallel",
            RegionKind::OmpLoop => "omp loop",
            RegionKind::OmpImplicitBarrier => "omp implicit barrier",
            RegionKind::OmpBarrier => "omp barrier",
            RegionKind::OmpCritical => "omp critical",
            RegionKind::OmpSingle => "omp single",
            RegionKind::OmpMaster => "omp master",
            RegionKind::OmpFork => "omp fork/join",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = RegionTable::new();
        let a = t.intern("foo", RegionKind::User);
        let b = t.intern("foo", RegionKind::User);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a), "foo");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let mut t = RegionTable::new();
        t.intern("foo", RegionKind::User);
        t.intern("foo", RegionKind::Mpi);
    }

    #[test]
    fn find_and_iter() {
        let mut t = RegionTable::new();
        let a = t.intern("a", RegionKind::User);
        let b = t.intern("b", RegionKind::Mpi);
        assert_eq!(t.find("a"), Some(a));
        assert_eq!(t.find("c"), None);
        let ids: Vec<_> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn kind_predicates() {
        assert!(RegionKind::Mpi.is_mpi());
        assert!(!RegionKind::User.is_mpi());
        assert!(RegionKind::OmpFork.is_omp_construct());
        assert!(RegionKind::OmpBarrier.is_omp_construct());
        assert!(!RegionKind::OmpLoop.is_omp_construct());
    }
}
