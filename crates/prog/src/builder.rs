//! Fluent builders for assembling rank programs.
//!
//! Mini-app skeletons use these builders to express their structure the
//! way the original sources read: enter a function, run kernels and
//! parallel loops, exchange halos, leave. Region names are interned once
//! and shared across ranks.

use crate::action::{
    Action, CallBurst, Kernel, MpiOp, OmpAction, OmpFor, ParallelRegion, PhaseId, Schedule,
};
use crate::cost::{Cost, IterCost};
use crate::program::Program;
use crate::region::{RegionId, RegionKind, RegionTable};
use std::collections::HashMap;

/// Builder for a whole multi-rank [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    regions: RegionTable,
    phases: Vec<String>,
    phase_by_name: HashMap<String, PhaseId>,
    ranks: Vec<Vec<Action>>,
}

impl ProgramBuilder {
    /// Start a program with `n_ranks` empty rank lists.
    pub fn new(n_ranks: u32) -> Self {
        ProgramBuilder {
            regions: RegionTable::new(),
            phases: Vec::new(),
            phase_by_name: HashMap::new(),
            ranks: vec![Vec::new(); n_ranks as usize],
        }
    }

    /// Intern a user region up front (optional; builders intern lazily).
    pub fn user_region(&mut self, name: &str) -> RegionId {
        self.regions.intern(name, RegionKind::User)
    }

    /// Get the builder for one rank's action list.
    pub fn rank(&mut self, rank: u32) -> RankBuilder<'_> {
        assert!((rank as usize) < self.ranks.len(), "rank {rank} out of range");
        RankBuilder { pb: self, rank }
    }

    /// Finish and return the program. Call [`Program::validate`] before
    /// handing the result to the engine.
    pub fn finish(self) -> Program {
        Program { regions: self.regions, phases: self.phases, ranks: self.ranks }
    }
}

/// Builder for one rank's action list.
#[derive(Debug)]
pub struct RankBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    rank: u32,
}

impl<'a> RankBuilder<'a> {
    fn push(&mut self, action: Action) {
        self.pb.ranks[self.rank as usize].push(action);
    }

    /// This builder's rank.
    pub fn rank_id(&self) -> u32 {
        self.rank
    }

    /// Intern (or look up) a stopwatch phase by name.
    pub fn phase(&mut self, name: &str) -> PhaseId {
        if let Some(&id) = self.pb.phase_by_name.get(name) {
            return id;
        }
        let id = PhaseId(self.pb.phases.len() as u32);
        self.pb.phases.push(name.to_owned());
        self.pb.phase_by_name.insert(name.to_owned(), id);
        id
    }

    /// Start the named stopwatch.
    pub fn phase_start(&mut self, phase: PhaseId) {
        self.push(Action::PhaseStart(phase));
    }

    /// Stop the named stopwatch.
    pub fn phase_end(&mut self, phase: PhaseId) {
        self.push(Action::PhaseEnd(phase));
    }

    /// Enter a user function region.
    pub fn enter(&mut self, name: &str) -> RegionId {
        let id = self.pb.regions.intern(name, RegionKind::User);
        self.push(Action::Enter(id));
        id
    }

    /// Leave the innermost open region. The builder tracks the stack so
    /// the matching id is recorded for validation.
    pub fn leave(&mut self) {
        // Reconstruct the innermost open region from the recorded actions.
        let mut depth = 0;
        let actions = &self.pb.ranks[self.rank as usize];
        let mut open = None;
        for a in actions.iter().rev() {
            match a {
                Action::Leave(_) => depth += 1,
                Action::Enter(r) => {
                    if depth == 0 {
                        open = Some(*r);
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        let r = open.expect("leave() without an open region");
        self.push(Action::Leave(r));
    }

    /// Enter `name`, run `body`, leave.
    pub fn scoped(&mut self, name: &str, body: impl FnOnce(&mut RankBuilder<'_>)) {
        self.enter(name);
        body(self);
        self.leave();
    }

    /// Serial kernel on the master thread.
    pub fn kernel(&mut self, cost: Cost, working_set: u64) {
        self.push(Action::Kernel(Kernel::new(cost, working_set)));
    }

    /// Serial kernel whose work happens in `calls` calls to `callee`.
    pub fn kernel_burst(&mut self, callee: &str, calls: u64, cost: Cost, working_set: u64) {
        let callee = self.pb.regions.intern(callee, RegionKind::User);
        self.push(Action::Kernel(Kernel {
            cost,
            working_set,
            burst: Some(CallBurst { callee, calls }),
        }));
    }

    /// OpenMP parallel region; `body` populates its constructs.
    pub fn parallel(&mut self, name: &str, body: impl FnOnce(&mut OmpBuilder<'_>)) {
        let region =
            self.pb.regions.intern(&format!("!$omp parallel @{name}"), RegionKind::OmpParallel);
        let mut omp =
            OmpBuilder { regions: &mut self.pb.regions, name: name.to_owned(), body: Vec::new() };
        body(&mut omp);
        let body = omp.body;
        self.push(Action::Parallel(ParallelRegion { region, body }));
    }

    /// Blocking send.
    pub fn send(&mut self, dest: u32, tag: u32, bytes: u64) {
        self.push(Action::Mpi(MpiOp::Send { dest, tag, bytes }));
    }

    /// Blocking receive.
    pub fn recv(&mut self, src: u32, tag: u32, bytes: u64) {
        self.push(Action::Mpi(MpiOp::Recv { src, tag, bytes }));
    }

    /// Blocking wildcard receive (`MPI_ANY_SOURCE`).
    pub fn recv_any(&mut self, tag: u32, bytes: u64) {
        self.push(Action::Mpi(MpiOp::RecvAny { tag, bytes }));
    }

    /// Non-blocking send.
    pub fn isend(&mut self, dest: u32, tag: u32, bytes: u64) {
        self.push(Action::Mpi(MpiOp::Isend { dest, tag, bytes }));
    }

    /// Non-blocking receive.
    pub fn irecv(&mut self, src: u32, tag: u32, bytes: u64) {
        self.push(Action::Mpi(MpiOp::Irecv { src, tag, bytes }));
    }

    /// Non-blocking allreduce (completes in [`RankBuilder::waitall`]).
    pub fn iallreduce(&mut self, bytes: u64) {
        self.push(Action::Mpi(MpiOp::Iallreduce { bytes }));
    }

    /// Non-blocking barrier (completes in [`RankBuilder::waitall`]).
    pub fn ibarrier(&mut self) {
        self.push(Action::Mpi(MpiOp::Ibarrier));
    }

    /// Complete all pending non-blocking operations.
    pub fn waitall(&mut self) {
        self.push(Action::Mpi(MpiOp::Waitall));
    }

    /// World barrier.
    pub fn mpi_barrier(&mut self) {
        self.push(Action::Mpi(MpiOp::Barrier));
    }

    /// Allreduce of `bytes` per rank.
    pub fn allreduce(&mut self, bytes: u64) {
        self.push(Action::Mpi(MpiOp::Allreduce { bytes }));
    }

    /// All-to-all of `bytes` per peer.
    pub fn alltoall(&mut self, bytes: u64) {
        self.push(Action::Mpi(MpiOp::Alltoall { bytes }));
    }

    /// Allgather of `bytes` per rank.
    pub fn allgather(&mut self, bytes: u64) {
        self.push(Action::Mpi(MpiOp::Allgather { bytes }));
    }

    /// Broadcast from `root`.
    pub fn bcast(&mut self, root: u32, bytes: u64) {
        self.push(Action::Mpi(MpiOp::Bcast { root, bytes }));
    }

    /// Reduce to `root`.
    pub fn reduce(&mut self, root: u32, bytes: u64) {
        self.push(Action::Mpi(MpiOp::Reduce { root, bytes }));
    }
}

/// Builder for the body of one parallel region.
#[derive(Debug)]
pub struct OmpBuilder<'a> {
    regions: &'a mut RegionTable,
    name: String,
    body: Vec<OmpAction>,
}

impl<'a> OmpBuilder<'a> {
    /// Worksharing loop with implicit barrier.
    pub fn for_loop(
        &mut self,
        loop_name: &str,
        iters: u64,
        schedule: Schedule,
        iter_cost: IterCost,
        working_set: u64,
    ) {
        self.push_for(loop_name, iters, schedule, iter_cost, working_set, false);
    }

    /// Worksharing loop with `nowait`.
    pub fn for_loop_nowait(
        &mut self,
        loop_name: &str,
        iters: u64,
        schedule: Schedule,
        iter_cost: IterCost,
        working_set: u64,
    ) {
        self.push_for(loop_name, iters, schedule, iter_cost, working_set, true);
    }

    fn push_for(
        &mut self,
        loop_name: &str,
        iters: u64,
        schedule: Schedule,
        iter_cost: IterCost,
        working_set: u64,
        nowait: bool,
    ) {
        let region = self.regions.intern(&format!("!$omp for @{loop_name}"), RegionKind::OmpLoop);
        self.body.push(OmpAction::For(OmpFor {
            region,
            iters,
            schedule,
            iter_cost,
            working_set,
            nowait,
        }));
    }

    /// Explicit barrier.
    pub fn barrier(&mut self) {
        let region =
            self.regions.intern(&format!("!$omp barrier @{}", self.name), RegionKind::OmpBarrier);
        self.body.push(OmpAction::Barrier(region));
    }

    /// `single` construct with implicit barrier.
    pub fn single(&mut self, name: &str, cost: Cost, working_set: u64) {
        let region = self.regions.intern(&format!("!$omp single @{name}"), RegionKind::OmpSingle);
        self.body.push(OmpAction::Single {
            region,
            kernel: Kernel::new(cost, working_set),
            nowait: false,
        });
    }

    /// `master` construct (no barrier).
    pub fn master(&mut self, name: &str, cost: Cost, working_set: u64) {
        let region = self.regions.intern(&format!("!$omp master @{name}"), RegionKind::OmpMaster);
        self.body.push(OmpAction::Master { region, kernel: Kernel::new(cost, working_set) });
    }

    /// `critical` section entered once per thread.
    pub fn critical(&mut self, name: &str, cost: Cost) {
        let region =
            self.regions.intern(&format!("!$omp critical @{name}"), RegionKind::OmpCritical);
        self.body.push(OmpAction::Critical { region, cost });
    }

    /// SPMD block executed by every thread.
    pub fn replicated(&mut self, cost: Cost, working_set: u64) {
        self.body.push(OmpAction::Replicated(Kernel::new(cost, working_set)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_actions() {
        let mut pb = ProgramBuilder::new(1);
        {
            let mut rb = pb.rank(0);
            rb.scoped("main", |rb| {
                rb.kernel(Cost::scalar(100), 64);
                rb.parallel("work", |omp| {
                    omp.for_loop(
                        "loop",
                        1000,
                        Schedule::Static,
                        IterCost::Uniform(Cost::scalar(5)),
                        0,
                    );
                    omp.barrier();
                    omp.master("io", Cost::scalar(50), 0);
                });
                rb.allreduce(8);
            });
        }
        let p = pb.finish();
        assert!(p.validate().is_ok());
        let a = &p.ranks[0];
        assert!(matches!(a[0], Action::Enter(_)));
        assert!(matches!(a[1], Action::Kernel(_)));
        match &a[2] {
            Action::Parallel(pr) => {
                assert_eq!(pr.body.len(), 3);
                assert!(matches!(pr.body[0], OmpAction::For(_)));
                assert!(matches!(pr.body[1], OmpAction::Barrier(_)));
                assert!(matches!(pr.body[2], OmpAction::Master { .. }));
            }
            other => panic!("expected parallel, got {other:?}"),
        }
        assert!(matches!(a[3], Action::Mpi(MpiOp::Allreduce { bytes: 8 })));
        assert!(matches!(a[4], Action::Leave(_)));
    }

    #[test]
    fn nested_scoped_leaves_match() {
        let mut pb = ProgramBuilder::new(1);
        {
            let mut rb = pb.rank(0);
            rb.scoped("outer", |rb| {
                rb.scoped("inner", |rb| {
                    rb.kernel(Cost::scalar(1), 0);
                });
            });
        }
        let p = pb.finish();
        assert!(p.validate().is_ok());
        // Leave records carry the matching ids.
        let outer = p.regions.find("outer").unwrap();
        let inner = p.regions.find("inner").unwrap();
        let a = &p.ranks[0];
        assert_eq!(a[0], Action::Enter(outer));
        assert_eq!(a[1], Action::Enter(inner));
        assert!(matches!(a[3], Action::Leave(r) if r == inner));
        assert!(matches!(a[4], Action::Leave(r) if r == outer));
    }

    #[test]
    fn phases_are_interned_once() {
        let mut pb = ProgramBuilder::new(2);
        let p0 = pb.rank(0).phase("solve");
        let p1 = pb.rank(1).phase("solve");
        assert_eq!(p0, p1);
        let prog = pb.finish();
        assert_eq!(prog.phases, vec!["solve".to_owned()]);
    }

    #[test]
    fn omp_regions_get_opari_style_names() {
        let mut pb = ProgramBuilder::new(1);
        pb.rank(0).parallel("cg", |omp| {
            omp.for_loop("matvec", 10, Schedule::Static, IterCost::Uniform(Cost::scalar(1)), 0);
        });
        let p = pb.finish();
        assert!(p.regions.find("!$omp parallel @cg").is_some());
        assert!(p.regions.find("!$omp for @matvec").is_some());
    }

    #[test]
    #[should_panic(expected = "without an open region")]
    fn leave_without_enter_panics() {
        let mut pb = ProgramBuilder::new(1);
        pb.rank(0).leave();
    }
}
