//! A complete multi-rank program and its static validation.

use crate::action::{Action, MpiOp, PhaseId};
use crate::region::{RegionKind, RegionTable};

/// A whole SPMD program: a region table shared by all ranks, a phase
/// (stopwatch) table, and one action list per rank.
#[derive(Debug, Clone)]
pub struct Program {
    /// Interned regions.
    pub regions: RegionTable,
    /// Stopwatch names, indexed by [`PhaseId`].
    pub phases: Vec<String>,
    /// Per-rank action lists.
    pub ranks: Vec<Vec<Action>>,
}

/// A structural problem found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Enter/Leave were not properly nested on a rank.
    UnbalancedRegions {
        /// Offending rank.
        rank: u32,
        /// Human-readable detail.
        detail: String,
    },
    /// A `Waitall` without pending non-blocking operations.
    SpuriousWaitall {
        /// Offending rank.
        rank: u32,
    },
    /// Non-blocking operations left pending at program end.
    DanglingRequests {
        /// Offending rank.
        rank: u32,
        /// Number of requests never completed.
        pending: usize,
    },
    /// A message endpoint referenced a rank outside the job.
    BadPeer {
        /// Offending rank.
        rank: u32,
        /// The referenced peer.
        peer: u32,
    },
    /// Point-to-point traffic does not pair up: per (src → dst, tag), the
    /// send and receive counts differ, which would deadlock the replay.
    UnmatchedTraffic {
        /// Sender rank.
        src: u32,
        /// Receiver rank.
        dst: u32,
        /// Message tag.
        tag: u32,
        /// Sends recorded.
        sends: usize,
        /// Receives recorded.
        recvs: usize,
    },
    /// A phase stopwatch was started twice or stopped while not running.
    PhaseMisuse {
        /// Offending rank.
        rank: u32,
        /// Phase index.
        phase: PhaseId,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::UnbalancedRegions { rank, detail } => {
                write!(f, "rank {rank}: unbalanced regions: {detail}")
            }
            ValidationError::SpuriousWaitall { rank } => {
                write!(f, "rank {rank}: MPI_Waitall without pending requests")
            }
            ValidationError::DanglingRequests { rank, pending } => {
                write!(f, "rank {rank}: {pending} non-blocking requests never completed")
            }
            ValidationError::BadPeer { rank, peer } => {
                write!(f, "rank {rank}: message endpoint {peer} outside job")
            }
            ValidationError::UnmatchedTraffic { src, dst, tag, sends, recvs } => {
                write!(f, "traffic {src}->{dst} tag {tag}: {sends} sends vs {recvs} receives")
            }
            ValidationError::PhaseMisuse { rank, phase } => {
                write!(f, "rank {rank}: phase {} started twice or stopped while idle", phase.0)
            }
        }
    }
}

impl std::error::Error for ValidationError {}

impl Program {
    /// Number of ranks.
    pub fn n_ranks(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// Name of a stopwatch phase.
    pub fn phase_name(&self, phase: PhaseId) -> &str {
        &self.phases[phase.0 as usize]
    }

    /// Rough upper estimate of how many events one location's trace
    /// stream records when this program runs fully instrumented. Used to
    /// pre-size per-location event buffers (capacity only — over- or
    /// under-shooting is harmless).
    pub fn events_per_location_estimate(&self) -> usize {
        self.ranks.iter().map(|actions| Self::rank_event_estimate(actions)).max().unwrap_or(0)
    }

    fn rank_event_estimate(actions: &[Action]) -> usize {
        let mut n = 0usize;
        for a in actions {
            n += match a {
                // Serial events land on the master stream; team events
                // land on every team stream. Counting both into one
                // per-location bound over-reserves for workers and is
                // about right for masters — the streams that grow.
                Action::Enter(_) | Action::Leave(_) => 1,
                Action::Kernel(k) => usize::from(k.burst.is_some()),
                Action::PhaseStart(_) | Action::PhaseEnd(_) => 0,
                Action::Mpi(_) => 4,
                Action::Parallel(pr) => {
                    // Fork/join management + region enter/leave + end
                    // barrier, then per body construct.
                    let mut p = 8;
                    for b in &pr.body {
                        p += match b {
                            crate::action::OmpAction::For(_) => 4,
                            crate::action::OmpAction::Barrier(_) => 2,
                            crate::action::OmpAction::Single { .. } => 4,
                            crate::action::OmpAction::Master { .. } => 2,
                            crate::action::OmpAction::Critical { .. } => 2,
                            crate::action::OmpAction::Replicated(k) => {
                                usize::from(k.burst.is_some())
                            }
                        };
                    }
                    p
                }
            };
        }
        n
    }

    /// Total number of actions across all ranks (diagnostic).
    pub fn total_actions(&self) -> usize {
        self.ranks.iter().map(Vec::len).sum()
    }

    /// Check structural invariants that would otherwise surface as
    /// hangs or panics deep inside the replay engine.
    pub fn validate(&self) -> Result<(), Vec<ValidationError>> {
        let mut errors = Vec::new();
        let n = self.n_ranks();
        let mut traffic: std::collections::HashMap<(u32, u32, u32), (usize, usize)> =
            std::collections::HashMap::new();
        // Wildcard receives per (dst, tag).
        let mut wildcards: std::collections::HashMap<(u32, u32), usize> =
            std::collections::HashMap::new();

        for (rank, actions) in self.ranks.iter().enumerate() {
            let rank = rank as u32;
            let mut stack: Vec<crate::region::RegionId> = Vec::new();
            let mut pending = 0usize;
            let mut running_phases = std::collections::HashSet::new();
            for action in actions {
                match action {
                    Action::Enter(r) => {
                        if self.regions.kind(*r) != RegionKind::User {
                            errors.push(ValidationError::UnbalancedRegions {
                                rank,
                                detail: format!(
                                    "explicit Enter of non-user region {:?}",
                                    self.regions.name(*r)
                                ),
                            });
                        }
                        stack.push(*r);
                    }
                    Action::Leave(r) => match stack.pop() {
                        Some(top) if top == *r => {}
                        Some(top) => errors.push(ValidationError::UnbalancedRegions {
                            rank,
                            detail: format!(
                                "Leave({}) does not match open region {}",
                                self.regions.name(*r),
                                self.regions.name(top)
                            ),
                        }),
                        None => errors.push(ValidationError::UnbalancedRegions {
                            rank,
                            detail: format!("Leave({}) with empty stack", self.regions.name(*r)),
                        }),
                    },
                    Action::Mpi(op) => {
                        match op {
                            MpiOp::Send { dest, tag, .. } | MpiOp::Isend { dest, tag, .. } => {
                                if *dest >= n {
                                    errors.push(ValidationError::BadPeer { rank, peer: *dest });
                                } else {
                                    traffic.entry((rank, *dest, *tag)).or_default().0 += 1;
                                }
                            }
                            MpiOp::Recv { src, tag, .. } | MpiOp::Irecv { src, tag, .. } => {
                                if *src >= n {
                                    errors.push(ValidationError::BadPeer { rank, peer: *src });
                                } else {
                                    traffic.entry((*src, rank, *tag)).or_default().1 += 1;
                                }
                            }
                            MpiOp::RecvAny { tag, .. } => {
                                *wildcards.entry((rank, *tag)).or_default() += 1;
                            }
                            MpiOp::Bcast { root, .. } | MpiOp::Reduce { root, .. }
                                if *root >= n =>
                            {
                                errors.push(ValidationError::BadPeer { rank, peer: *root });
                            }
                            _ => {}
                        }
                        match op {
                            MpiOp::Isend { .. }
                            | MpiOp::Irecv { .. }
                            | MpiOp::Iallreduce { .. }
                            | MpiOp::Ibarrier => pending += 1,
                            MpiOp::Waitall => {
                                if pending == 0 {
                                    errors.push(ValidationError::SpuriousWaitall { rank });
                                }
                                pending = 0;
                            }
                            _ => {}
                        }
                    }
                    Action::PhaseStart(p) => {
                        if !running_phases.insert(*p) {
                            errors.push(ValidationError::PhaseMisuse { rank, phase: *p });
                        }
                    }
                    Action::PhaseEnd(p) => {
                        if !running_phases.remove(p) {
                            errors.push(ValidationError::PhaseMisuse { rank, phase: *p });
                        }
                    }
                    Action::Kernel(_) | Action::Parallel(_) => {}
                }
            }
            if !stack.is_empty() {
                errors.push(ValidationError::UnbalancedRegions {
                    rank,
                    detail: format!("{} regions left open at program end", stack.len()),
                });
            }
            if pending > 0 {
                errors.push(ValidationError::DanglingRequests { rank, pending });
            }
        }

        // Per (dst, tag): surplus sends beyond specific receives must be
        // covered exactly by wildcard receives.
        let mut surplus: std::collections::HashMap<(u32, u32), i64> =
            std::collections::HashMap::new();
        for ((src, dst, tag), (sends, recvs)) in traffic {
            if sends < recvs {
                errors.push(ValidationError::UnmatchedTraffic { src, dst, tag, sends, recvs });
            } else if sends != recvs {
                *surplus.entry((dst, tag)).or_default() += (sends - recvs) as i64;
            }
        }
        let keys: std::collections::HashSet<(u32, u32)> =
            surplus.keys().chain(wildcards.keys()).copied().collect();
        for key in keys {
            let extra = surplus.get(&key).copied().unwrap_or(0);
            let wild = wildcards.get(&key).copied().unwrap_or(0) as i64;
            if extra != wild {
                errors.push(ValidationError::UnmatchedTraffic {
                    src: u32::MAX,
                    dst: key.0,
                    tag: key.1,
                    sends: extra as usize,
                    recvs: wild as usize,
                });
            }
        }

        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::cost::Cost;

    #[test]
    fn valid_pingpong_passes() {
        let mut pb = ProgramBuilder::new(2);
        {
            let mut rb = pb.rank(0);
            rb.enter("main");
            rb.send(1, 0, 1024);
            rb.recv(1, 1, 1024);
            rb.leave();
        }
        {
            let mut rb = pb.rank(1);
            rb.enter("main");
            rb.recv(0, 0, 1024);
            rb.send(0, 1, 1024);
            rb.leave();
        }
        let p = pb.finish();
        assert!(p.validate().is_ok());
        assert_eq!(p.n_ranks(), 2);
        assert_eq!(p.total_actions(), 8);
    }

    #[test]
    fn unmatched_send_detected() {
        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).send(1, 0, 8);
        let p = pb.finish();
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, ValidationError::UnmatchedTraffic { .. })));
    }

    #[test]
    fn unbalanced_regions_detected() {
        let mut pb = ProgramBuilder::new(1);
        pb.rank(0).enter("main");
        let p = pb.finish();
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, ValidationError::UnbalancedRegions { .. })));
    }

    #[test]
    fn spurious_waitall_detected() {
        let mut pb = ProgramBuilder::new(1);
        pb.rank(0).waitall();
        let p = pb.finish();
        let errs = p.validate().unwrap_err();
        assert_eq!(errs, vec![ValidationError::SpuriousWaitall { rank: 0 }]);
    }

    #[test]
    fn dangling_requests_detected() {
        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).isend(1, 0, 8);
        pb.rank(1).irecv(0, 0, 8);
        let p = pb.finish();
        let errs = p.validate().unwrap_err();
        assert_eq!(
            errs.iter().filter(|e| matches!(e, ValidationError::DanglingRequests { .. })).count(),
            2
        );
    }

    #[test]
    fn bad_peer_detected() {
        let mut pb = ProgramBuilder::new(1);
        pb.rank(0).send(5, 0, 8);
        let p = pb.finish();
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, ValidationError::BadPeer { peer: 5, .. })));
    }

    #[test]
    fn phase_misuse_detected() {
        let mut pb = ProgramBuilder::new(1);
        {
            let mut rb = pb.rank(0);
            let p = rb.phase("init");
            rb.phase_start(p);
            rb.phase_start(p);
        }
        let p = pb.finish();
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, ValidationError::PhaseMisuse { .. })));
    }

    #[test]
    fn kernel_and_parallel_do_not_affect_validation() {
        let mut pb = ProgramBuilder::new(1);
        {
            let mut rb = pb.rank(0);
            rb.enter("main");
            rb.kernel(Cost::scalar(100), 0);
            rb.parallel("pr", |omp| {
                omp.replicated(Cost::scalar(10), 0);
            });
            rb.leave();
        }
        assert!(pb.finish().validate().is_ok());
    }
}
