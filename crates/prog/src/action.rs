//! The action IR: what one MPI rank does, in order.
//!
//! A mini-app skeleton compiles to one `Vec<Action>` per rank. Control
//! flow is already unrolled (iteration counts in the paper's benchmarks do
//! not depend on received data), so the replay engine only needs to walk
//! the list and resolve timing and synchronisation.

use crate::cost::{Cost, IterCost};
use crate::region::RegionId;

/// Interned phase handle for application-level stopwatches (the mini-apps'
/// own timing output, used to compute reference times and overheads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhaseId(pub u32);

/// A block of computation executed by one thread.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Static cost of the whole block.
    pub cost: Cost,
    /// Bytes of application data this kernel streams over (cache model).
    pub working_set: u64,
    /// If set, the work happens inside `calls` invocations of `callee`:
    /// compiler instrumentation would record an enter/leave pair per call.
    /// The measurement layer summarises these as a call burst instead of
    /// materialising millions of events — the logical-clock and overhead
    /// accounting still see every call.
    pub burst: Option<CallBurst>,
}

/// Fine-grained function-call structure inside a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallBurst {
    /// The function being called repeatedly.
    pub callee: RegionId,
    /// Number of calls.
    pub calls: u64,
}

impl Kernel {
    /// A plain kernel with no interior calls.
    pub fn new(cost: Cost, working_set: u64) -> Kernel {
        Kernel { cost, working_set, burst: None }
    }

    /// A kernel whose work is spread over `calls` calls to `callee`.
    pub fn with_burst(cost: Cost, working_set: u64, callee: RegionId, calls: u64) -> Kernel {
        Kernel { cost, working_set, burst: Some(CallBurst { callee, calls }) }
    }
}

/// OpenMP loop schedule (subset the mini-apps use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static)` — near-equal contiguous chunks.
    Static,
    /// `schedule(static, chunk)` — round-robin chunks of fixed size.
    StaticChunk(u64),
    /// `schedule(dynamic, chunk)` — threads grab chunks as they finish.
    Dynamic(u64),
    /// `schedule(guided)` — exponentially shrinking chunks.
    Guided,
}

/// A worksharing `for` loop inside a parallel region.
#[derive(Debug, Clone, PartialEq)]
pub struct OmpFor {
    /// The loop's Opari2-style region, e.g. `!$omp for @waxpby`.
    pub region: RegionId,
    /// Total iterations.
    pub iters: u64,
    /// Schedule clause.
    pub schedule: Schedule,
    /// Per-iteration cost.
    pub iter_cost: IterCost,
    /// Working set streamed by the whole loop.
    pub working_set: u64,
    /// `nowait` clause: skip the implicit barrier at loop end.
    pub nowait: bool,
}

/// One construct inside a parallel region, executed by the whole team.
#[derive(Debug, Clone, PartialEq)]
pub enum OmpAction {
    /// Worksharing loop (+ implicit barrier unless `nowait`).
    For(OmpFor),
    /// Explicit `#pragma omp barrier`.
    Barrier(RegionId),
    /// `single` construct: the first-arriving thread runs the kernel,
    /// everyone synchronises at its implicit barrier unless `nowait`.
    Single {
        /// Region of the construct.
        region: RegionId,
        /// Work done by the executing thread.
        kernel: Kernel,
        /// `nowait` clause.
        nowait: bool,
    },
    /// `master` construct: thread 0 runs the kernel, no barrier.
    Master {
        /// Region of the construct.
        region: RegionId,
        /// Work done by the master thread.
        kernel: Kernel,
    },
    /// `critical` section entered once by every thread, serialised.
    Critical {
        /// Region of the construct.
        region: RegionId,
        /// Work done inside the critical section, per thread.
        cost: Cost,
    },
    /// SPMD block: every thread executes the same kernel.
    Replicated(Kernel),
}

/// A `#pragma omp parallel` region.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelRegion {
    /// Region of the parallel construct itself.
    pub region: RegionId,
    /// Constructs executed by the team, in order.
    pub body: Vec<OmpAction>,
}

/// An MPI operation issued by the rank's master thread.
///
/// Non-blocking operations push a request onto the rank's pending list;
/// `Waitall` completes every pending request, mirroring the
/// post-all-then-waitall pattern the mini-apps use.
#[derive(Debug, Clone, PartialEq)]
pub enum MpiOp {
    /// Blocking standard-mode send.
    Send {
        /// Destination rank.
        dest: u32,
        /// Message tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// Blocking receive from a specific source (deterministic matching).
    Recv {
        /// Source rank.
        src: u32,
        /// Message tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// Blocking wildcard receive (`MPI_ANY_SOURCE`): matches whichever
    /// eligible message was sent first. Matching becomes
    /// *timing-dependent*, so logical traces lose their repetition
    /// invariance — the limitation Section II of the paper describes.
    RecvAny {
        /// Message tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// Non-blocking send.
    Isend {
        /// Destination rank.
        dest: u32,
        /// Message tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// Non-blocking receive.
    Irecv {
        /// Source rank.
        src: u32,
        /// Message tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// Non-blocking `MPI_Iallreduce`; completes in `Waitall`.
    Iallreduce {
        /// Bytes per rank.
        bytes: u64,
    },
    /// Non-blocking `MPI_Ibarrier`; completes in `Waitall`.
    Ibarrier,
    /// Complete all pending non-blocking operations.
    Waitall,
    /// `MPI_Barrier` on the world communicator.
    Barrier,
    /// `MPI_Allreduce`: `bytes` contributed per rank.
    Allreduce {
        /// Bytes per rank.
        bytes: u64,
    },
    /// `MPI_Alltoall`(v): `bytes` exchanged with each peer.
    Alltoall {
        /// Bytes per peer.
        bytes: u64,
    },
    /// `MPI_Allgather`: `bytes` contributed per rank.
    Allgather {
        /// Bytes per rank.
        bytes: u64,
    },
    /// `MPI_Bcast` from `root`.
    Bcast {
        /// Root rank.
        root: u32,
        /// Payload size.
        bytes: u64,
    },
    /// `MPI_Reduce` to `root`.
    Reduce {
        /// Root rank.
        root: u32,
        /// Bytes per rank.
        bytes: u64,
    },
}

impl MpiOp {
    /// Canonical API name, used as the region name in traces.
    pub fn api_name(&self) -> &'static str {
        match self {
            MpiOp::Send { .. } => "MPI_Send",
            MpiOp::Recv { .. } => "MPI_Recv",
            MpiOp::RecvAny { .. } => "MPI_Recv",
            MpiOp::Isend { .. } => "MPI_Isend",
            MpiOp::Irecv { .. } => "MPI_Irecv",
            MpiOp::Iallreduce { .. } => "MPI_Iallreduce",
            MpiOp::Ibarrier => "MPI_Ibarrier",
            MpiOp::Waitall => "MPI_Waitall",
            MpiOp::Barrier => "MPI_Barrier",
            MpiOp::Allreduce { .. } => "MPI_Allreduce",
            MpiOp::Alltoall { .. } => "MPI_Alltoall",
            MpiOp::Allgather { .. } => "MPI_Allgather",
            MpiOp::Bcast { .. } => "MPI_Bcast",
            MpiOp::Reduce { .. } => "MPI_Reduce",
        }
    }

    /// True for the N×N collectives whose wait time Scalasca classifies
    /// as `wait_nxn` (Wait at N×N pattern).
    pub fn is_nxn_collective(&self) -> bool {
        matches!(self, MpiOp::Allreduce { .. } | MpiOp::Alltoall { .. } | MpiOp::Allgather { .. })
    }

    /// True for any collective operation.
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            MpiOp::Barrier
                | MpiOp::Allreduce { .. }
                | MpiOp::Alltoall { .. }
                | MpiOp::Allgather { .. }
                | MpiOp::Bcast { .. }
                | MpiOp::Reduce { .. }
        )
    }
}

/// One step of a rank's program.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Enter a user region (function).
    Enter(RegionId),
    /// Leave the matching user region (carried for validation).
    Leave(RegionId),
    /// Serial computation on the master thread.
    Kernel(Kernel),
    /// OpenMP parallel region.
    Parallel(ParallelRegion),
    /// MPI call.
    Mpi(MpiOp),
    /// Start an application stopwatch.
    PhaseStart(PhaseId),
    /// Stop an application stopwatch.
    PhaseEnd(PhaseId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_names() {
        assert_eq!(MpiOp::Waitall.api_name(), "MPI_Waitall");
        assert_eq!(MpiOp::Allreduce { bytes: 8 }.api_name(), "MPI_Allreduce");
    }

    #[test]
    fn nxn_classification() {
        assert!(MpiOp::Allreduce { bytes: 8 }.is_nxn_collective());
        assert!(MpiOp::Alltoall { bytes: 8 }.is_nxn_collective());
        assert!(MpiOp::Allgather { bytes: 8 }.is_nxn_collective());
        assert!(!MpiOp::Barrier.is_nxn_collective());
        assert!(!MpiOp::Send { dest: 0, tag: 0, bytes: 1 }.is_nxn_collective());
        assert!(MpiOp::Barrier.is_collective());
        assert!(MpiOp::Bcast { root: 0, bytes: 1 }.is_collective());
        assert!(!MpiOp::Recv { src: 0, tag: 0, bytes: 1 }.is_collective());
    }

    #[test]
    fn kernel_constructors() {
        let k = Kernel::new(Cost::scalar(10), 64);
        assert!(k.burst.is_none());
        let k = Kernel::with_burst(Cost::scalar(10), 64, RegionId(3), 500);
        assert_eq!(k.burst.unwrap().calls, 500);
    }
}
