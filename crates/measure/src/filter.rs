//! Event filtering, modelled on Score-P filter files.
//!
//! Filtered regions still execute (and still carry compiled-in counting
//! code under `lt_bb`/`lt_stmt`), but their enter/leave events are
//! discarded at a small per-check cost. The paper's rule of thumb:
//! filters are chosen so the `tsc` measurement stays at roughly 5 %
//! overhead or below — "not always possible" (TeaLeaf).

use std::collections::HashSet;

/// A set of region-name filter rules.
///
/// Rules match either exactly or, when ending in `*`, by prefix — the
/// subset of Score-P filter syntax the experiments need.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterRules {
    exact: HashSet<String>,
    prefixes: Vec<String>,
}

impl FilterRules {
    /// No filtering.
    pub fn none() -> Self {
        Self::default()
    }

    /// Build from rule strings.
    pub fn from_rules<I, S>(rules: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut f = FilterRules::default();
        for rule in rules {
            f.add(rule.into());
        }
        f
    }

    /// Add one rule.
    pub fn add(&mut self, rule: String) {
        if let Some(prefix) = rule.strip_suffix('*') {
            self.prefixes.push(prefix.to_owned());
        } else {
            self.exact.insert(rule);
        }
    }

    /// True if events of `region_name` are discarded.
    pub fn is_filtered(&self, region_name: &str) -> bool {
        self.exact.contains(region_name)
            || self.prefixes.iter().any(|p| region_name.starts_with(p.as_str()))
    }

    /// True when no rules are present.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.prefixes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        let f = FilterRules::from_rules(["helper", "tiny_fn"]);
        assert!(f.is_filtered("helper"));
        assert!(!f.is_filtered("helpers"));
        assert!(!f.is_filtered("main"));
    }

    #[test]
    fn prefix_match() {
        let f = FilterRules::from_rules(["std::*", "Kokkos*"]);
        assert!(f.is_filtered("std::vector::push_back"));
        assert!(f.is_filtered("Kokkos"));
        assert!(!f.is_filtered("mystd::thing"));
    }

    #[test]
    fn empty_filters_nothing() {
        let f = FilterRules::none();
        assert!(f.is_empty());
        assert!(!f.is_filtered("anything"));
    }
}
