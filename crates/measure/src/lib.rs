//! # nrlt-measure — the Score-P analog
//!
//! The measurement system of the reproduction: the physical `tsc` timer
//! and the Lamport logical clock with the paper's five effort models
//! (`lt_1`, `lt_loop`, `lt_bb`, `lt_stmt`, `lt_hwctr`), piggyback
//! synchronisation across messages and collectives, Score-P-style filter
//! rules, and the perturbation model describing what measuring costs the
//! measured program (per-event recording, counting code, perf reads,
//! buffer cache pollution, thread desynchronisation).
//!
//! [`measure`] runs a program once under a given clock and returns the
//! trace plus the application timings; [`reference_run`] runs it
//! uninstrumented for overhead baselines.

#![warn(missing_docs)]

pub mod filter;
pub mod modes;
pub mod observer;
pub mod params;
pub mod profiling;

pub use filter::FilterRules;
pub use modes::ClockMode;
pub use observer::{
    chunk_events_for_budget, MeasureConfig, SharedDefs, SpillSummary, TracingObserver,
    BYTES_PER_EVENT,
};
pub use params::{EffortParams, HwCounterSource, OverheadParams};
pub use profiling::{profile_run, OnlineProfile, ProfilingObserver};

use nrlt_engineprof::RunProf;
use nrlt_exec::{
    execute_instrumented, execute_prepared_instrumented, ExecConfig, ExecResult, NullObserver,
};
use nrlt_observe::RunObserve;
use nrlt_prog::Program;
use nrlt_telemetry::Telemetry;
use nrlt_trace::{Trace, TraceData};

/// Run `program` instrumented under `measure_config`, returning the
/// recorded trace and the application-level timings of the *instrumented*
/// run (instrumentation perturbs them — that is the point).
pub fn measure(
    program: &Program,
    exec_config: &ExecConfig,
    measure_config: &MeasureConfig,
) -> (Trace, ExecResult) {
    measure_telemetry(program, exec_config, measure_config, None)
}

/// [`measure`] with optional self-telemetry: wraps the run in a
/// `measure.run` span and reports events recorded vs filtered, buffer
/// flushes, and the overhead charged back, alongside the engine's own
/// counters. `None` adds zero instrumentation work.
pub fn measure_telemetry(
    program: &Program,
    exec_config: &ExecConfig,
    measure_config: &MeasureConfig,
    tel: Option<&Telemetry>,
) -> (Trace, ExecResult) {
    let prep = prepare_measure(program, exec_config);
    measure_prepared_telemetry(program, &prep, exec_config, measure_config, tel)
}

/// Per-sweep measurement preparation: the engine's region table plus the
/// `Arc`-shared trace definition tables and stream sizing.
///
/// Building this once per benchmark configuration and reusing it across
/// every (mode, repetition) cell means a 30-run sweep interns regions and
/// allocates the definition tables once instead of thirty times.
#[derive(Debug)]
pub struct MeasurePrep {
    /// Prepared region table (program regions + runtime regions).
    pub regions: nrlt_prog::RegionTable,
    /// Shared trace definition tables and stream capacity estimate.
    pub shared: SharedDefs,
}

/// Build the per-sweep preparation for `program` under `exec_config`.
/// Only the machine/layout half of the config matters — repetitions that
/// differ in seed share one preparation.
pub fn prepare_measure(program: &Program, exec_config: &ExecConfig) -> MeasurePrep {
    let regions = nrlt_exec::prepare_regions(program);
    let shared = SharedDefs::new(program, &regions, exec_config);
    MeasurePrep { regions, shared }
}

/// [`measure_telemetry`] over a pre-built [`MeasurePrep`] — the repeated
/// half of a sweep, with all run-invariant setup hoisted out.
pub fn measure_prepared_telemetry(
    program: &Program,
    prep: &MeasurePrep,
    exec_config: &ExecConfig,
    measure_config: &MeasureConfig,
    tel: Option<&Telemetry>,
) -> (Trace, ExecResult) {
    measure_prepared_observed(program, prep, exec_config, measure_config, tel, None)
}

/// [`measure_prepared_telemetry`] with an optional resource observatory
/// (`nrlt-observe`) recording the simulated machine underneath the
/// measurement. `None` performs zero observability work; `Some` records
/// without perturbing the trace.
pub fn measure_prepared_observed(
    program: &Program,
    prep: &MeasurePrep,
    exec_config: &ExecConfig,
    measure_config: &MeasureConfig,
    tel: Option<&Telemetry>,
    obs: Option<&RunObserve>,
) -> (Trace, ExecResult) {
    measure_prepared_instrumented(program, prep, exec_config, measure_config, tel, obs, None)
}

/// [`measure_prepared_observed`] with an optional engine self-profiler
/// (`nrlt-engineprof`) accounting what the replay engine itself spends
/// producing this run. `None` performs zero profiling work.
pub fn measure_prepared_instrumented(
    program: &Program,
    prep: &MeasurePrep,
    exec_config: &ExecConfig,
    measure_config: &MeasureConfig,
    tel: Option<&Telemetry>,
    obs: Option<&RunObserve>,
    prof: Option<&RunProf>,
) -> (Trace, ExecResult) {
    let _span =
        tel.map(|t| t.span_cat(format!("measure.run:{}", measure_config.mode.name()), "measure"));
    let _frame = nrlt_telemetry::sample::frame(nrlt_telemetry::sample::frames::MEASURE_RUN);
    let mut observer = TracingObserver::with_shared(
        measure_config.clone(),
        &prep.regions,
        &prep.shared,
        exec_config,
        tel,
    );
    let result = execute_prepared_instrumented(
        program,
        &prep.regions,
        exec_config,
        &mut observer,
        tel,
        obs,
        prof,
    );
    (observer.into_trace(), result)
}

/// [`measure_prepared_instrumented`], but with resident event storage
/// capped at `trace_budget` bytes when `Some`: per-location streams
/// spill columnar chunks to a temp segment file and the returned
/// [`TraceData`] is `Spilled`. `None` is exactly the resident path.
/// Either way the recorded event sequence — and hence every analysis
/// result — is byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn measure_prepared_spilled(
    program: &Program,
    prep: &MeasurePrep,
    exec_config: &ExecConfig,
    measure_config: &MeasureConfig,
    trace_budget: Option<u64>,
    tel: Option<&Telemetry>,
    obs: Option<&RunObserve>,
    prof: Option<&RunProf>,
) -> (TraceData, ExecResult) {
    let Some(budget) = trace_budget else {
        let (trace, result) = measure_prepared_instrumented(
            program,
            prep,
            exec_config,
            measure_config,
            tel,
            obs,
            prof,
        );
        return (TraceData::Resident(trace), result);
    };
    let _span =
        tel.map(|t| t.span_cat(format!("measure.run:{}", measure_config.mode.name()), "measure"));
    let _frame = nrlt_telemetry::sample::frame(nrlt_telemetry::sample::frames::MEASURE_RUN);
    let mut observer = TracingObserver::with_shared(
        measure_config.clone(),
        &prep.regions,
        &prep.shared,
        exec_config,
        tel,
    );
    observer.enable_spill(budget);
    let result = execute_prepared_instrumented(
        program,
        &prep.regions,
        exec_config,
        &mut observer,
        tel,
        obs,
        prof,
    );
    let (trace, summary) = observer.into_trace_data();
    if let Some(p) = prof {
        p.gauge("spill.segments_written", "trace_spill", summary.chunks as i64);
        p.gauge("spill.stalls", "trace_spill", summary.stalls as i64);
        p.hwm("spill.bytes_written", summary.bytes);
        p.hwm("spill.chunk_events", summary.chunk_events as u64);
    }
    (trace, result)
}

/// Run `program` uninstrumented (the reference measurement the paper
/// repeats five times to establish baselines).
pub fn reference_run(program: &Program, exec_config: &ExecConfig) -> ExecResult {
    reference_run_observed(program, exec_config, None)
}

/// [`reference_run`] with an optional resource observatory — the
/// uninstrumented machine is exactly as observable as the measured one.
pub fn reference_run_observed(
    program: &Program,
    exec_config: &ExecConfig,
    obs: Option<&RunObserve>,
) -> ExecResult {
    reference_run_instrumented(program, exec_config, obs, None)
}

/// [`reference_run_observed`] with an optional engine self-profiler.
pub fn reference_run_instrumented(
    program: &Program,
    exec_config: &ExecConfig,
    obs: Option<&RunObserve>,
    prof: Option<&RunProf>,
) -> ExecResult {
    execute_instrumented(program, exec_config, &mut NullObserver, None, obs, prof)
}
