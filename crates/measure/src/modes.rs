//! Clock modes: the physical `tsc` baseline and the five logical
//! effort models of the paper (Section II-A).

use std::fmt;

/// Which timer drives the trace timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockMode {
    /// Physical clock: the x86-64 time-stamp counter, here the virtual
    /// wall clock of the simulation.
    Tsc,
    /// `lt_1`: the original Lamport clock, increment 1 per event.
    Lt1,
    /// `lt_loop`: increment 1 per event plus 1 per OpenMP loop iteration.
    LtLoop,
    /// `lt_bb`: increment 1 plus LLVM basic blocks executed since the
    /// last event; OpenMP runtime calls count X = 100 blocks.
    LtBb,
    /// `lt_stmt`: like `lt_bb`, counting LLVM statements; OpenMP runtime
    /// calls count Y = 4300 statements.
    LtStmt,
    /// `lt_hwctr`: increment by the difference of the (virtual)
    /// `PERF_COUNT_HW_INSTRUCTIONS` counter since the last event.
    LtHwctr,
}

impl ClockMode {
    /// All modes in the paper's presentation order.
    pub const ALL: [ClockMode; 6] = [
        ClockMode::Tsc,
        ClockMode::Lt1,
        ClockMode::LtLoop,
        ClockMode::LtBb,
        ClockMode::LtStmt,
        ClockMode::LtHwctr,
    ];

    /// The logical modes only.
    pub const LOGICAL: [ClockMode; 5] =
        [ClockMode::Lt1, ClockMode::LtLoop, ClockMode::LtBb, ClockMode::LtStmt, ClockMode::LtHwctr];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ClockMode::Tsc => "tsc",
            ClockMode::Lt1 => "lt_1",
            ClockMode::LtLoop => "lt_loop",
            ClockMode::LtBb => "lt_bb",
            ClockMode::LtStmt => "lt_stmt",
            ClockMode::LtHwctr => "lt_hwctr",
        }
    }

    /// Parse a mode name (as printed by [`ClockMode::name`]).
    pub fn parse(s: &str) -> Option<ClockMode> {
        Self::ALL.into_iter().find(|m| m.name() == s)
    }

    /// True for the logical (Lamport) modes.
    pub fn is_logical(self) -> bool {
        self != ClockMode::Tsc
    }

    /// True for modes whose timestamps are repetition-invariant: every
    /// logical mode except `lt_hwctr`, whose counter re-imports timing
    /// noise through spin-waiting and read jitter.
    pub fn is_noise_free(self) -> bool {
        self.is_logical() && self != ClockMode::LtHwctr
    }
}

impl fmt::Display for ClockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for m in ClockMode::ALL {
            assert_eq!(ClockMode::parse(m.name()), Some(m));
        }
        assert_eq!(ClockMode::parse("bogus"), None);
    }

    #[test]
    fn classification() {
        assert!(!ClockMode::Tsc.is_logical());
        assert!(ClockMode::Lt1.is_logical());
        assert!(ClockMode::Lt1.is_noise_free());
        assert!(ClockMode::LtStmt.is_noise_free());
        assert!(!ClockMode::LtHwctr.is_noise_free());
        assert!(!ClockMode::Tsc.is_noise_free());
    }

    #[test]
    fn logical_list_excludes_tsc() {
        assert!(!ClockMode::LOGICAL.contains(&ClockMode::Tsc));
        assert_eq!(ClockMode::LOGICAL.len(), 5);
    }
}
