//! Measurement cost and effort parameters.
//!
//! The overhead side models what instrumentation costs the *measured*
//! program: per-event recording, per-basic-block counting code injected
//! by the LLVM pass, per-iteration counting for `lt_loop`, hardware
//! counter read syscalls, trace-buffer cache pollution, piggyback
//! messages, and the desynchronisation instrumentation induces between
//! threads. The effort side holds the constants of the logical models
//! (the paper's X = 100 basic blocks / Y = 4300 statements per OpenMP
//! runtime call, fitted to LULESH) and the conversion rates of the
//! virtual instruction counter.

use crate::modes::ClockMode;

/// Physical costs charged by the measurement system.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadParams {
    /// Cost of recording one event (timer read + buffer write), seconds.
    pub record_event: f64,
    /// Cost of the runtime filter check for a discarded event, seconds.
    pub filter_check: f64,
    /// Counting instructions injected per executed basic block
    /// (lt_bb / lt_stmt: load-add-store on a thread-local counter). These
    /// feed the roofline CPU term: memory-bound kernels absorb them,
    /// CPU-bound branchy code pays in full.
    pub instr_per_basic_block: u64,
    /// Counting instructions injected per OpenMP loop iteration
    /// (lt_loop).
    pub instr_per_loop_iter: u64,
    /// Divisor applied to per-block counting inside worksharing loops:
    /// the instrumentation pass hoists and batches counter increments in
    /// regular loops, so hot numeric kernels pay a fraction of the
    /// per-block cost while branchy, call-dense code pays in full. This
    /// is what makes the paper's bb/stmt overhead ≈100 % in MiniFE's
    /// initialisation but ≈0.2 % in its solver.
    pub loop_hoist_divisor: u64,
    /// Extra cost per synchronisation-bearing event (SendPost,
    /// RecvComplete, CollectiveEnd) for the piggyback message the logical
    /// clocks exchange, seconds.
    pub piggyback_message: f64,
    /// Trace-buffer bytes per location, competing for L3.
    pub buffer_footprint: u64,
    /// Thread desynchronisation induced by instrumentation, `[0, 1]`.
    pub desync: f64,
}

impl OverheadParams {
    /// Calibrated defaults per clock mode.
    ///
    /// `tsc`/`lt_1`/`lt_loop` read a cheap timer or bump a counter;
    /// `lt_bb`/`lt_stmt` add compiled-in counting code on every basic
    /// block; `lt_hwctr` pays a perf-events read syscall per event.
    pub fn for_mode(mode: ClockMode) -> OverheadParams {
        let base = OverheadParams {
            record_event: 25e-9,
            filter_check: 1.5e-9,
            instr_per_basic_block: 0,
            instr_per_loop_iter: 0,
            loop_hoist_divisor: 8,
            piggyback_message: 0.0,
            buffer_footprint: 2 << 20,
            desync: 0.6,
        };
        match mode {
            ClockMode::Tsc => base,
            ClockMode::Lt1 => {
                OverheadParams { record_event: 28e-9, piggyback_message: 120e-9, ..base }
            }
            ClockMode::LtLoop => OverheadParams {
                record_event: 28e-9,
                instr_per_loop_iter: 1,
                piggyback_message: 120e-9,
                ..base
            },
            ClockMode::LtBb => OverheadParams {
                record_event: 32e-9,
                instr_per_basic_block: 4,
                piggyback_message: 120e-9,
                ..base
            },
            ClockMode::LtStmt => OverheadParams {
                record_event: 32e-9,
                instr_per_basic_block: 4, // stmt counts are kept per block
                piggyback_message: 120e-9,
                ..base
            },
            ClockMode::LtHwctr => OverheadParams {
                record_event: 1000e-9, // perf read syscall per event
                filter_check: 40e-9,   // perf infrastructure per call
                piggyback_message: 120e-9,
                buffer_footprint: 3 << 20,
                ..base
            },
        }
    }
}

/// Which virtual hardware counter drives `lt_hwctr`.
///
/// The paper uses `PERF_COUNT_HW_INSTRUCTIONS` and names "experiments
/// with different hardware counters and combinations" as future work;
/// these variants implement that exploration on the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HwCounterSource {
    /// Retired instructions (the paper's counter). Sees runtime and
    /// spin effort; noisy through spinning.
    Instructions,
    /// Bytes moved through the memory hierarchy (a cache/memory traffic
    /// counter). Blind to CPU-bound effort and to spinning, but a better
    /// effort proxy for bandwidth-bound code.
    MemoryTraffic,
    /// Linear combination: `instructions + weight × mem_bytes`. A crude
    /// stand-in for roofline-style counter combinations.
    Combined {
        /// Instructions-equivalent weight per byte moved.
        bytes_weight: f64,
    },
}

/// Constants of the logical effort models.
#[derive(Debug, Clone, PartialEq)]
pub struct EffortParams {
    /// Basic blocks charged per OpenMP runtime call (the paper's X).
    pub omp_call_basic_blocks: u64,
    /// Statements charged per OpenMP runtime call (the paper's Y).
    pub omp_call_statements: u64,
    /// Fraction of peak instruction rate retired while busy-waiting
    /// (spin loops are short and branchy).
    pub spin_ipc_fraction: f64,
    /// Fraction of peak instruction rate retired inside MPI/OpenMP
    /// runtime code.
    pub runtime_ipc_fraction: f64,
    /// Log-scale sigma of the hardware counter's read-to-read
    /// nondeterminism (Ritter et al. observe counters are noisy but less
    /// so than time).
    pub hwctr_sigma: f64,
    /// Counter behind `lt_hwctr`.
    pub hwctr_source: HwCounterSource,
    /// Log-scale sigma of a per-location, per-repetition spin-rate
    /// factor: how many instructions a busy-wait retires per second
    /// depends on contention and futex behaviour and varies between
    /// runs — the main reason the paper's `lt_hwctr` measurements are
    /// "much more susceptible to noise" in wait-heavy configurations
    /// (TeaLeaf-2, Section V-B).
    pub spin_rate_sigma: f64,
}

impl Default for EffortParams {
    fn default() -> Self {
        EffortParams {
            omp_call_basic_blocks: 100,
            omp_call_statements: 4300,
            spin_ipc_fraction: 0.6,
            runtime_ipc_fraction: 0.9,
            hwctr_sigma: 0.01,
            hwctr_source: HwCounterSource::Instructions,
            spin_rate_sigma: 0.6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_modes_have_per_block_cost() {
        assert_eq!(OverheadParams::for_mode(ClockMode::Tsc).instr_per_basic_block, 0);
        assert!(OverheadParams::for_mode(ClockMode::LtBb).instr_per_basic_block > 0);
        assert!(OverheadParams::for_mode(ClockMode::LtStmt).instr_per_basic_block > 0);
        assert_eq!(OverheadParams::for_mode(ClockMode::LtHwctr).instr_per_basic_block, 0);
        assert!(OverheadParams::for_mode(ClockMode::LtLoop).instr_per_loop_iter > 0);
    }

    #[test]
    fn hwctr_reads_are_expensive() {
        let hw = OverheadParams::for_mode(ClockMode::LtHwctr);
        let tsc = OverheadParams::for_mode(ClockMode::Tsc);
        assert!(hw.record_event > tsc.record_event * 5.0);
    }

    #[test]
    fn only_logical_modes_pay_piggyback() {
        assert_eq!(OverheadParams::for_mode(ClockMode::Tsc).piggyback_message, 0.0);
        for m in ClockMode::LOGICAL {
            assert!(OverheadParams::for_mode(m).piggyback_message > 0.0, "{m}");
        }
    }

    #[test]
    fn effort_defaults_match_paper_constants() {
        let e = EffortParams::default();
        assert_eq!(e.omp_call_basic_blocks, 100);
        assert_eq!(e.omp_call_statements, 4300);
    }
}
