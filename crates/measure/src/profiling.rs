//! Profile-mode measurement (Score-P's `SCOREP_ENABLE_PROFILING`).
//!
//! Besides tracing, Score-P can aggregate call-path metrics *during the
//! run*, with a fraction of the memory: no events are stored, only
//! per-(call path, location) accumulators. The paper's workflow uses
//! tracing + Scalasca, but its run-to-run comparisons reference plain
//! profiles (Ritter et al.); this observer provides them — and doubles
//! as an independent oracle: the computation times it accumulates online
//! must equal what the trace analyzer reconstructs offline.
//!
//! Only the chosen clock's notion of duration is accumulated; wait-state
//! decomposition needs the trace analysis.

use crate::filter::FilterRules;
use crate::modes::ClockMode;
use nrlt_exec::{EventInfo, ExecConfig, Observer, RuntimeKind, WorkItem};
use nrlt_prog::{Cost, RegionId, RegionTable};
use nrlt_sim::{Location, VirtualDuration, VirtualTime};
use std::collections::HashMap;

/// A call-path profile accumulated online: `(path string, location) →
/// (visits, exclusive ticks)`.
#[derive(Debug, Clone, Default)]
pub struct OnlineProfile {
    /// Exclusive ticks per (call path string, location index).
    pub exclusive: HashMap<(String, usize), u64>,
    /// Visit counts per (call path string, location index).
    pub visits: HashMap<(String, usize), u64>,
}

impl OnlineProfile {
    /// Exclusive ticks of a call path summed over locations.
    pub fn exclusive_of(&self, path: &str) -> u64 {
        self.exclusive.iter().filter(|((p, _), _)| p == path).map(|(_, v)| v).sum()
    }

    /// Total exclusive ticks.
    pub fn total(&self) -> u64 {
        self.exclusive.values().sum()
    }
}

/// Per-location online state.
#[derive(Debug, Clone, Default)]
struct LocState {
    /// Stack of (region name, child-exclusive ticks consumed so far).
    stack: Vec<String>,
    /// Timestamp of the previous event in this clock.
    last: u64,
    /// Logical counter.
    counter: u64,
    /// Pending work since the last event.
    pending_cost: Cost,
    pending_iters: u64,
}

/// Observer that builds an [`OnlineProfile`] with a per-event cost of a
/// profile-mode measurement (cheaper than tracing, tiny footprint).
pub struct ProfilingObserver<'a> {
    mode: ClockMode,
    regions: &'a RegionTable,
    filter: FilterRules,
    states: Vec<LocState>,
    profile: OnlineProfile,
    threads_per_rank: u32,
    /// Per-event accounting cost, seconds.
    pub event_cost: f64,
}

impl<'a> ProfilingObserver<'a> {
    /// Create a profiling observer for `regions` under `exec_config`.
    pub fn new(
        mode: ClockMode,
        regions: &'a RegionTable,
        exec_config: &ExecConfig,
        filter: FilterRules,
    ) -> Self {
        assert!(
            matches!(
                mode,
                ClockMode::Tsc
                    | ClockMode::Lt1
                    | ClockMode::LtLoop
                    | ClockMode::LtBb
                    | ClockMode::LtStmt
            ),
            "profile mode supports the deterministic clocks"
        );
        ProfilingObserver {
            mode,
            regions,
            filter,
            states: vec![LocState::default(); exec_config.layout.locations() as usize],
            profile: OnlineProfile::default(),
            threads_per_rank: exec_config.layout.threads_per_rank,
            event_cost: 15e-9,
        }
    }

    /// Finish and return the accumulated profile.
    pub fn into_profile(self) -> OnlineProfile {
        self.profile
    }

    fn idx(&self, loc: Location) -> usize {
        (loc.rank * self.threads_per_rank + loc.thread) as usize
    }

    fn tick(&mut self, idx: usize, now: VirtualTime) -> u64 {
        let st = &mut self.states[idx];
        match self.mode {
            ClockMode::Tsc => now.nanos(),
            ClockMode::Lt1 => {
                st.counter += 1;
                st.counter
            }
            ClockMode::LtLoop => {
                st.counter += 1 + st.pending_iters;
                st.pending_iters = 0;
                st.counter
            }
            ClockMode::LtBb => {
                st.counter += 1 + st.pending_cost.basic_blocks;
                st.pending_cost = Cost::ZERO;
                st.counter
            }
            ClockMode::LtStmt => {
                st.counter += 1 + st.pending_cost.statements;
                st.pending_cost = Cost::ZERO;
                st.counter
            }
            ClockMode::LtHwctr => unreachable!("rejected in new()"),
        }
    }

    /// Charge `ticks` exclusively to the current stack top.
    fn charge(&mut self, idx: usize, ticks: u64) {
        if ticks == 0 {
            return;
        }
        let path = self.states[idx].stack.join("/");
        if path.is_empty() {
            return;
        }
        *self.profile.exclusive.entry((path, idx)).or_default() += ticks;
    }

    fn region_name(&self, region: RegionId) -> &str {
        self.regions.name(region)
    }
}

impl<'a> Observer for ProfilingObserver<'a> {
    fn on_work(&mut self, loc: Location, work: &WorkItem) -> VirtualDuration {
        let idx = self.idx(loc);
        let st = &mut self.states[idx];
        st.pending_cost = st.pending_cost.saturating_add(&work.cost);
        st.pending_iters += work.loop_iters;
        VirtualDuration::ZERO
    }

    fn on_runtime(&mut self, _loc: Location, _kind: RuntimeKind, _d: VirtualDuration) {}

    fn on_spin(&mut self, _loc: Location, _d: VirtualDuration) {}

    fn on_event(&mut self, loc: Location, now: VirtualTime, info: &EventInfo) -> VirtualDuration {
        let idx = self.idx(loc);
        match *info {
            EventInfo::Enter { region } => {
                if self.filter.is_filtered(self.region_name(region)) {
                    return VirtualDuration::ZERO;
                }
                let t = self.tick(idx, now);
                let elapsed = t.saturating_sub(self.states[idx].last);
                self.charge(idx, elapsed);
                let name = self.region_name(region).to_owned();
                let st = &mut self.states[idx];
                st.last = t;
                st.stack.push(name.clone());
                let path = st.stack.join("/");
                *self.profile.visits.entry((path, idx)).or_default() += 1;
            }
            EventInfo::Leave { region } => {
                if self.filter.is_filtered(self.region_name(region)) {
                    return VirtualDuration::ZERO;
                }
                let t = self.tick(idx, now);
                let elapsed = t.saturating_sub(self.states[idx].last);
                self.charge(idx, elapsed);
                let st = &mut self.states[idx];
                st.last = t;
                st.stack.pop();
            }
            EventInfo::Burst { callee, calls, .. } => {
                if self.filter.is_filtered(self.region_name(callee)) {
                    return VirtualDuration::ZERO;
                }
                // Attribute the whole burst span to the callee.
                let before = self.states[idx].last;
                let t = self.tick(idx, now);
                let callee_name = self.region_name(callee).to_owned();
                let st = &mut self.states[idx];
                st.last = t;
                st.stack.push(callee_name);
                let span = t.saturating_sub(before);
                self.charge(idx, span);
                let st = &mut self.states[idx];
                let path = st.stack.join("/");
                st.stack.pop();
                *self.profile.visits.entry((path, idx)).or_default() += calls;
            }
            // Communication records advance the clock but carry no
            // region change; their time lands on the enclosing MPI call.
            _ => {
                let t = self.tick(idx, now);
                let elapsed = t.saturating_sub(self.states[idx].last);
                self.charge(idx, elapsed);
                self.states[idx].last = t;
            }
        }
        VirtualDuration::from_secs_f64(self.event_cost)
    }

    fn piggyback(&mut self, loc: Location) -> u64 {
        if self.mode == ClockMode::Tsc {
            0
        } else {
            self.states[self.idx(loc)].counter
        }
    }

    fn sync_logical(&mut self, loc: Location, incoming: u64) {
        if self.mode != ClockMode::Tsc {
            let idx = self.idx(loc);
            let st = &mut self.states[idx];
            st.counter = st.counter.max(incoming + 1);
        }
    }

    fn counting_instructions(&self, _cost: &Cost, _iters: u64) -> u64 {
        0 // profile mode measures; overhead studies use the tracer
    }

    fn cache_footprint_per_location(&self) -> u64 {
        64 * 1024 // accumulators only: negligible next to trace buffers
    }

    fn desync(&self) -> f64 {
        0.1
    }
}

/// Run `program` in profile mode under `mode`.
pub fn profile_run(
    program: &nrlt_prog::Program,
    exec_config: &ExecConfig,
    mode: ClockMode,
) -> OnlineProfile {
    let regions = nrlt_exec::prepare_regions(program);
    let mut obs = ProfilingObserver::new(mode, &regions, exec_config, FilterRules::none());
    nrlt_exec::execute_prepared(program, &regions, exec_config, &mut obs);
    obs.into_profile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_prog::ProgramBuilder;
    use nrlt_sim::{JobLayout, NoiseConfig};

    fn program() -> nrlt_prog::Program {
        let mut pb = ProgramBuilder::new(2);
        for r in 0..2 {
            let mut rb = pb.rank(r);
            rb.scoped("main", |rb| {
                rb.scoped("work", |rb| {
                    rb.kernel(Cost::scalar(4_000_000 * (r as u64 + 1)), 0);
                });
                rb.allreduce(8);
            });
        }
        pb.finish()
    }

    fn cfg() -> ExecConfig {
        ExecConfig::jureca(1, JobLayout::block(2, 1), 3).with_noise(NoiseConfig::silent())
    }

    #[test]
    fn online_profile_captures_computation() {
        let p = profile_run(&program(), &cfg(), ClockMode::Tsc);
        let work = p.exclusive_of("main/work");
        // ~0.9ms + ~1.8ms of kernel time inside `work`.
        assert!(work > 2_000_000, "work ticks: {work}");
        assert!(p.total() > work);
        assert_eq!(p.visits.iter().filter(|((s, _), _)| s == "main").count(), 2);
    }

    #[test]
    fn online_profile_matches_trace_analysis() {
        // The online comp time of `work` must equal what the trace
        // analyzer reconstructs (same clock, same run).
        use crate::observer::MeasureConfig;
        let prog = program();
        let config = cfg();
        for mode in [ClockMode::Tsc, ClockMode::LtStmt] {
            let online = profile_run(&prog, &config, mode);
            let mut mc = MeasureConfig::new(mode);
            // Align the perturbations so both runs execute identically.
            mc.overhead.record_event = 15e-9;
            mc.overhead.piggyback_message = 0.0;
            mc.overhead.instr_per_basic_block = 0;
            mc.overhead.instr_per_loop_iter = 0;
            mc.overhead.buffer_footprint = 64 * 1024;
            mc.overhead.desync = 0.1;
            let (trace, _) = crate::measure(&prog, &config, &mc);
            // Reconstruct exclusive "work" time offline.
            let mut offline = 0u64;
            let work_region = trace.defs.find_region("work").unwrap();
            for stream in &trace.streams {
                let mut depth = 0usize;
                let mut enter = 0u64;
                let mut inner = 0u64;
                for ev in stream {
                    match ev.kind {
                        nrlt_trace::EventKind::Enter { region } if region == work_region => {
                            depth = 1;
                            enter = ev.time;
                            inner = 0;
                        }
                        nrlt_trace::EventKind::Enter { .. } if depth > 0 => depth += 1,
                        nrlt_trace::EventKind::Leave { region } if region == work_region => {
                            offline += ev.time - enter - inner;
                            depth = 0;
                        }
                        _ => {}
                    }
                }
            }
            let online_work = online.exclusive_of("main/work");
            let diff = online_work.abs_diff(offline);
            assert!(
                diff <= 4, // ±1 tick per enter/leave pair and location
                "{mode}: online {online_work} vs offline {offline}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "profile mode supports")]
    fn hwctr_profile_mode_rejected() {
        profile_run(&program(), &cfg(), ClockMode::LtHwctr);
    }
}
