//! The tracing observer: Score-P woven into the replay engine.
//!
//! Maintains one clock per location — the physical virtual-time clock or
//! a Lamport counter driven by the selected effort model — translates
//! engine events into trace records, applies filter rules, and charges
//! the measurement's own costs back into the execution.

use crate::filter::FilterRules;
use crate::modes::ClockMode;
use crate::params::{EffortParams, HwCounterSource, OverheadParams};
use nrlt_exec::{EventInfo, ExecConfig, Observer, RuntimeKind, WorkItem};
use nrlt_prog::{Cost, Program, RegionKind, RegionTable};
use nrlt_sim::{
    jitter_factor, Location, Placement, RngFactory, StreamKind, VirtualDuration, VirtualTime,
};
use nrlt_telemetry::Telemetry;
use nrlt_trace::{
    ClockKind, Definitions, Event, EventKind, LocationDef, RegionDef, RegionRef, RegionRole,
    SegmentWriter, SpilledTrace, Trace, TraceData, NO_ROOT,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Events per stream between simulated buffer flushes (Score-P flushes
/// its per-thread trace buffer when it fills; we count, not charge).
const FLUSH_EVERY: usize = 4096;

/// Resident bytes per event across the six SoA columns — what the
/// `--trace-budget` accounting charges per buffered event.
pub const BYTES_PER_EVENT: u64 = 33;

/// Smallest per-location chunk the spill path will use. Below this the
/// per-chunk bookkeeping dominates and nothing is saved.
const MIN_CHUNK_EVENTS: usize = 64;
/// Largest per-location chunk (1M events ≈ 33 MiB resident).
const MAX_CHUNK_EVENTS: usize = 1 << 20;

/// Out-of-core trace spilling, attached to a [`TracingObserver`] when a
/// `--trace-budget` caps resident event storage.
struct SpillState {
    writer: SegmentWriter,
    path: PathBuf,
    /// Events per location at which a stream spills one chunk.
    chunk_events: usize,
    /// Synchronous mid-run spills (recording stalled on the write).
    stalls: u64,
}

/// What the spill path did during one run, for the engineprof gauges
/// and telemetry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillSummary {
    /// Chunks (segments) written.
    pub chunks: u64,
    /// Encoded bytes written.
    pub bytes: u64,
    /// Events spilled.
    pub events: u64,
    /// Synchronous mid-run spills (final flush excluded).
    pub stalls: u64,
    /// The per-location chunk capacity derived from the budget.
    pub chunk_events: usize,
}

/// Per-location chunk capacity for a resident-byte `budget` across
/// `n_locations` streams, clamped to sane bounds.
pub fn chunk_events_for_budget(budget: u64, n_locations: usize) -> usize {
    let per_loc = budget / BYTES_PER_EVENT / (n_locations.max(1) as u64);
    (per_loc as usize).clamp(MIN_CHUNK_EVENTS, MAX_CHUNK_EVENTS)
}

/// Full measurement configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureConfig {
    /// Timer mode.
    pub mode: ClockMode,
    /// Region filter rules.
    pub filter: FilterRules,
    /// Physical cost parameters (defaults from the mode).
    pub overhead: OverheadParams,
    /// Effort-model constants.
    pub effort: EffortParams,
}

impl MeasureConfig {
    /// Default configuration for a mode, without filters.
    pub fn new(mode: ClockMode) -> Self {
        MeasureConfig {
            mode,
            filter: FilterRules::none(),
            overhead: OverheadParams::for_mode(mode),
            effort: EffortParams::default(),
        }
    }

    /// Attach filter rules.
    pub fn with_filter(mut self, filter: FilterRules) -> Self {
        self.filter = filter;
        self
    }
}

/// Per-location measurement state.
#[derive(Debug, Clone, Default)]
struct LocState {
    /// Lamport counter (logical modes).
    counter: u64,
    /// Work cost accumulated since the last recorded event.
    pending_cost: Cost,
    /// OpenMP loop iterations accumulated since the last event.
    pending_iters: u64,
    /// Virtual instructions retired in runtime code / spinning since the
    /// last event (lt_hwctr).
    pending_rt_instr: u64,
    /// OpenMP runtime calls since the last event (lt_bb / lt_stmt X/Y
    /// constants).
    pending_omp_calls: u64,
    /// Hardware-counter read sequence (jitter stream key).
    read_seq: u64,
    /// Cached spin-loop rate factor (lt_hwctr). The jitter stream is
    /// keyed `(HwCounter, idx, u64::MAX)` — constant per location — so
    /// the first draw's value is reused for every later spin.
    spin_factor: Option<f64>,
    /// Pre-drawn hwctr jitter factors for the next read sequences.
    hw_batch: HwJitterBatch,
}

/// Four hardware-counter jitter factors drawn ahead of time.
///
/// Each factor still comes from its own keyed stream
/// `(HwCounter, location, read_seq)` — the batch only *warms* four
/// streams in one interleaved ChaCha pass, so the values are
/// bit-identical to four scalar draws and the stream positions never
/// depend on batching.
#[derive(Debug, Clone)]
struct HwJitterBatch {
    factors: [f64; 4],
    /// Next factor to hand out; 4 means "empty, refill".
    next: usize,
}

impl Default for HwJitterBatch {
    fn default() -> HwJitterBatch {
        HwJitterBatch { factors: [1.0; 4], next: 4 }
    }
}

/// Pre-converted overhead charges for the per-event combinations the
/// observer emits. Every [`TracingObserver::charge`] call site passes a
/// fixed combination of the (constant) [`OverheadParams`] fields, so the
/// `f64 → VirtualDuration` conversions and nanosecond attributions are
/// computed once per run instead of once per event. Burst charges scale
/// with the call count and stay on the dynamic path.
#[derive(Debug, Clone, Copy)]
struct ChargeTable {
    /// `sec(record_event)` and its attribution.
    record: VirtualDuration,
    record_ns: u64,
    /// `sec(filter_check)` and its attribution.
    filter: VirtualDuration,
    filter_ns: u64,
    /// `sec(record_event + piggyback_message)` (summed *before* the
    /// conversion, exactly like the dynamic path) and the piggyback
    /// attribution.
    record_piggy: VirtualDuration,
    piggy_ns: u64,
}

impl ChargeTable {
    fn new(o: &OverheadParams) -> ChargeTable {
        let sec = VirtualDuration::from_secs_f64;
        ChargeTable {
            record: sec(o.record_event),
            record_ns: sec(o.record_event).nanos(),
            filter: sec(o.filter_check),
            filter_ns: sec(o.filter_check).nanos(),
            record_piggy: sec(o.record_event + o.piggyback_message),
            piggy_ns: sec(o.piggyback_message).nanos(),
        }
    }
}

/// Trace definition tables and sizing shared across the runs of one
/// sweep.
///
/// The region and location tables depend only on the program and the
/// machine layout — not on the seed, clock mode, or repetition — so an
/// experiment builds one `SharedDefs` per configuration and every
/// repetition's observer clones the `Arc`s instead of rebuilding (and
/// reallocating) the tables. The event estimate pre-sizes each
/// per-location stream so recording does not grow buffers from empty.
#[derive(Debug, Clone)]
pub struct SharedDefs {
    regions: Arc<Vec<RegionDef>>,
    locations: Arc<Vec<LocationDef>>,
    threads_per_rank: u32,
    events_per_stream: usize,
}

impl SharedDefs {
    /// Build the tables for `regions` under `exec_config`, pre-sizing
    /// streams from `program`'s event estimate.
    pub fn new(program: &Program, regions: &RegionTable, exec_config: &ExecConfig) -> SharedDefs {
        let mut s = SharedDefs::from_table(regions, exec_config);
        s.events_per_stream = program.events_per_location_estimate();
        s
    }

    /// Build the tables without a program (no stream pre-sizing).
    pub fn from_table(regions: &RegionTable, exec_config: &ExecConfig) -> SharedDefs {
        let placement = Placement::new(exec_config.machine.clone(), exec_config.layout.clone());
        let layout = &exec_config.layout;
        let locations: Vec<LocationDef> = layout
            .iter_locations()
            .map(|loc| LocationDef {
                rank: loc.rank,
                thread: loc.thread,
                core: placement.core_of(loc).0,
            })
            .collect();
        let region_defs: Vec<RegionDef> = regions
            .iter()
            .map(|(_, r)| RegionDef { name: r.name.clone(), role: role_of(r.kind) })
            .collect();
        SharedDefs {
            regions: Arc::new(region_defs),
            locations: Arc::new(locations),
            threads_per_rank: layout.threads_per_rank,
            events_per_stream: 0,
        }
    }

    /// Number of locations.
    pub fn n_locations(&self) -> usize {
        self.locations.len()
    }
}

/// The Score-P analog: implements [`Observer`] and produces a [`Trace`].
pub struct TracingObserver<'a> {
    config: MeasureConfig,
    regions: &'a RegionTable,
    /// region id -> filtered?
    filtered: Vec<bool>,
    /// Pre-converted per-event overhead charges.
    charges: ChargeTable,
    states: Vec<LocState>,
    streams: Vec<nrlt_trace::EventStream>,
    defs: Definitions,
    rng: RngFactory,
    /// Instructions per second of one core (for hwctr conversions).
    instr_rate: f64,
    /// Self-telemetry sink; counters below accumulate locally and are
    /// flushed once in [`TracingObserver::into_trace`] so the per-event
    /// path stays free of locks — and free of any work when `None`.
    tel: Option<&'a Telemetry>,
    spill: Option<SpillState>,
    n_recorded: u64,
    n_filtered: u64,
    n_flushes: u64,
    n_hw_refills: u64,
    ovh_record_ns: u64,
    ovh_filter_ns: u64,
    ovh_piggyback_ns: u64,
}

impl<'a> TracingObserver<'a> {
    /// Build an observer for `regions` (from `nrlt_exec::prepare_regions`)
    /// under `exec_config`.
    pub fn new(config: MeasureConfig, regions: &'a RegionTable, exec_config: &ExecConfig) -> Self {
        Self::with_telemetry(config, regions, exec_config, None)
    }

    /// [`TracingObserver::new`] with an optional self-telemetry sink:
    /// counts recorded vs filtered events, simulated buffer flushes, and
    /// the overhead charged back into the run per category.
    pub fn with_telemetry(
        config: MeasureConfig,
        regions: &'a RegionTable,
        exec_config: &ExecConfig,
        tel: Option<&'a Telemetry>,
    ) -> Self {
        let shared = SharedDefs::from_table(regions, exec_config);
        Self::with_shared(config, regions, &shared, exec_config, tel)
    }

    /// [`TracingObserver::with_telemetry`] over pre-built [`SharedDefs`]:
    /// the definition tables are `Arc`-shared (no per-run rebuild) and
    /// the event streams start at the program's estimated capacity.
    pub fn with_shared(
        config: MeasureConfig,
        regions: &'a RegionTable,
        shared: &SharedDefs,
        exec_config: &ExecConfig,
        tel: Option<&'a Telemetry>,
    ) -> Self {
        let filtered = regions.iter().map(|(_, r)| config.filter.is_filtered(&r.name)).collect();
        let clock = match config.mode {
            ClockMode::Tsc => ClockKind::Physical,
            m => ClockKind::Logical { model: m.name().to_owned() },
        };
        let n = shared.n_locations();
        let spec = &exec_config.machine.spec;
        TracingObserver {
            instr_rate: spec.core_freq_hz * spec.ipc,
            charges: ChargeTable::new(&config.overhead),
            config,
            regions,
            filtered,
            states: vec![LocState::default(); n],
            streams: Trace::presized_streams(n, shared.events_per_stream),
            defs: Definitions {
                regions: shared.regions.clone(),
                locations: shared.locations.clone(),
                threads_per_rank: shared.threads_per_rank,
                clock,
            },
            rng: RngFactory::new(exec_config.seed),
            tel,
            spill: None,
            n_recorded: 0,
            n_filtered: 0,
            n_flushes: 0,
            n_hw_refills: 0,
            ovh_record_ns: 0,
            ovh_filter_ns: 0,
            ovh_piggyback_ns: 0,
        }
    }

    /// Cap resident event storage at roughly `budget` bytes: streams
    /// spill fixed-capacity columnar chunks to a temp segment file once
    /// they fill, and [`TracingObserver::into_trace_data`] returns a
    /// [`TraceData::Spilled`]. Must be called before any event is
    /// recorded (the pre-sized streams are replaced by chunk-sized
    /// ones).
    pub fn enable_spill(&mut self, budget: u64) {
        debug_assert!(self.streams.iter().all(nrlt_trace::EventStream::is_empty));
        let n = self.streams.len();
        let chunk_events = chunk_events_for_budget(budget, n);
        let path = nrlt_trace::temp_segment_path("spill");
        let writer = SegmentWriter::create(&path).expect("create trace spill segment");
        // The estimate-sized reservations would defeat the budget;
        // restart from one chunk per location.
        self.streams = Trace::presized_streams(n, chunk_events);
        self.spill = Some(SpillState { writer, path, chunk_events, stalls: 0 });
    }

    /// Consume the observer, yielding the recorded trace — resident or
    /// spilled depending on [`TracingObserver::enable_spill`] — plus a
    /// summary of what the spill path did (all zeros on the resident
    /// path).
    pub fn into_trace_data(mut self) -> (TraceData, SpillSummary) {
        let Some(mut spill) = self.spill.take() else {
            return (TraceData::Resident(self.into_trace()), SpillSummary::default());
        };
        // Final flush: everything still resident goes to the file so the
        // cursor order (chunks per location, in spill order) is the full
        // event order.
        {
            let _frame = nrlt_telemetry::sample::frame(nrlt_telemetry::sample::frames::TRACE_SPILL);
            for (idx, stream) in self.streams.iter_mut().enumerate() {
                spill.writer.spill(idx as u32, stream).expect("trace spill write");
            }
        }
        let stats = spill.writer.stats();
        let summary = SpillSummary {
            chunks: stats.chunks,
            bytes: stats.bytes,
            events: stats.events,
            stalls: spill.stalls,
            chunk_events: spill.chunk_events,
        };
        let n_locations = self.streams.len();
        let _frame = nrlt_telemetry::sample::frame(nrlt_telemetry::sample::frames::TRACE_BUILD);
        if let Some(t) = self.tel {
            self.flush_counters(t);
            t.add("measure.spill_chunks", summary.chunks);
            t.add("measure.spill_bytes", summary.bytes);
            t.add("measure.spill_stalls", summary.stalls);
        }
        let index = spill.writer.finish().expect("finish trace spill segment");
        let trace = SpilledTrace::from_parts(self.defs, spill.path, index, n_locations);
        (TraceData::Spilled(trace), summary)
    }

    /// Flush the locally accumulated counters to the telemetry sink.
    fn flush_counters(&self, t: &Telemetry) {
        t.add("measure.events_recorded", self.n_recorded);
        t.add("measure.events_filtered", self.n_filtered);
        t.add("measure.buffer_flushes", self.n_flushes);
        t.add("measure.hwctr_batch_refills", self.n_hw_refills);
        t.add("measure.overhead.record_ns", self.ovh_record_ns);
        t.add("measure.overhead.filter_ns", self.ovh_filter_ns);
        t.add("measure.overhead.piggyback_ns", self.ovh_piggyback_ns);
    }

    /// Consume the observer, yielding the recorded trace.
    pub fn into_trace(self) -> Trace {
        debug_assert!(self.spill.is_none(), "spilled runs use into_trace_data");
        let _frame = nrlt_telemetry::sample::frame(nrlt_telemetry::sample::frames::TRACE_BUILD);
        if let Some(t) = self.tel {
            self.flush_counters(t);
            for s in &self.streams {
                t.observe("measure.stream_events", s.len() as u64);
            }
        }
        Trace { defs: self.defs, streams: self.streams }
    }

    /// The measurement configuration in effect.
    pub fn config(&self) -> &MeasureConfig {
        &self.config
    }

    fn loc_index(&self, loc: Location) -> usize {
        (loc.rank * self.defs.threads_per_rank + loc.thread) as usize
    }

    /// Drain the pending effort into an increment (without the +1 per
    /// event), applying hwctr jitter.
    fn drain_pending(&mut self, idx: usize) -> u64 {
        let st = &mut self.states[idx];
        let raw = match self.config.mode {
            ClockMode::Tsc | ClockMode::Lt1 => 0,
            ClockMode::LtLoop => st.pending_iters,
            ClockMode::LtBb => {
                st.pending_cost.basic_blocks
                    + self.config.effort.omp_call_basic_blocks * st.pending_omp_calls
            }
            ClockMode::LtStmt => {
                st.pending_cost.statements
                    + self.config.effort.omp_call_statements * st.pending_omp_calls
            }
            ClockMode::LtHwctr => {
                let base = match self.config.effort.hwctr_source {
                    HwCounterSource::Instructions => {
                        st.pending_cost.instructions + st.pending_rt_instr
                    }
                    // A traffic counter does not tick while spinning or
                    // inside (compute-only) runtime code.
                    HwCounterSource::MemoryTraffic => st.pending_cost.mem_bytes,
                    HwCounterSource::Combined { bytes_weight } => {
                        st.pending_cost.instructions
                            + st.pending_rt_instr
                            + (st.pending_cost.mem_bytes as f64 * bytes_weight) as u64
                    }
                };
                if base > 0 && self.config.effort.hwctr_sigma > 0.0 {
                    let seq = st.read_seq;
                    st.read_seq += 1;
                    if st.hw_batch.next == 4 {
                        let kind = StreamKind::HwCounter;
                        let e = idx as u64;
                        let mut streams = self.rng.stream4([
                            (kind, e, seq),
                            (kind, e, seq + 1),
                            (kind, e, seq + 2),
                            (kind, e, seq + 3),
                        ]);
                        for (k, s) in streams.iter_mut().enumerate() {
                            st.hw_batch.factors[k] =
                                jitter_factor(s, self.config.effort.hwctr_sigma);
                        }
                        st.hw_batch.next = 0;
                        self.n_hw_refills += 1;
                    }
                    let f = st.hw_batch.factors[st.hw_batch.next];
                    st.hw_batch.next += 1;
                    (base as f64 * f).round().max(0.0) as u64
                } else {
                    base
                }
            }
        };
        st.pending_cost = Cost::ZERO;
        st.pending_iters = 0;
        st.pending_rt_instr = 0;
        st.pending_omp_calls = 0;
        raw
    }

    /// Timestamp for the next event on `loc` (advances logical clocks).
    fn timestamp(&mut self, idx: usize, now: VirtualTime) -> u64 {
        match self.config.mode {
            ClockMode::Tsc => {
                // Physical timestamps still flush pending state so a later
                // switch of interpretation stays consistent.
                self.drain_pending(idx);
                now.nanos()
            }
            _ => {
                let inc = self.drain_pending(idx) + 1;
                self.states[idx].counter += inc;
                self.states[idx].counter
            }
        }
    }

    fn push(&mut self, idx: usize, time: u64, kind: EventKind) {
        self.streams[idx].push(Event { time, kind });
        if self.streams[idx].len().is_multiple_of(FLUSH_EVERY) {
            self.n_flushes += 1;
        }
        if let Some(spill) = &mut self.spill {
            if self.streams[idx].len() >= spill.chunk_events {
                // Synchronous spill: recording stalls on the write, so
                // resident storage never exceeds one chunk per location.
                spill.writer.spill(idx as u32, &mut self.streams[idx]).expect("trace spill write");
                spill.stalls += 1;
            }
        }
    }

    fn sec(v: f64) -> VirtualDuration {
        VirtualDuration::from_secs_f64(v)
    }

    /// Charge overhead back into the run, attributing it per category
    /// (plain field adds — no telemetry work happens here). Only burst
    /// events, whose charge scales with the call count, still take this
    /// dynamic path; everything else uses the pre-converted table.
    fn charge(&mut self, record: f64, filter: f64, piggyback: f64) -> VirtualDuration {
        self.ovh_record_ns += Self::sec(record).nanos();
        self.ovh_filter_ns += Self::sec(filter).nanos();
        self.ovh_piggyback_ns += Self::sec(piggyback).nanos();
        Self::sec(record + filter + piggyback)
    }

    /// Charge one filtered-event check.
    fn charge_filter(&mut self) -> VirtualDuration {
        self.ovh_filter_ns += self.charges.filter_ns;
        self.charges.filter
    }

    /// Charge one recorded event.
    fn charge_record(&mut self) -> VirtualDuration {
        self.ovh_record_ns += self.charges.record_ns;
        self.charges.record
    }

    /// Charge one recorded event plus a piggyback message.
    fn charge_record_piggy(&mut self) -> VirtualDuration {
        self.ovh_record_ns += self.charges.record_ns;
        self.ovh_piggyback_ns += self.charges.piggy_ns;
        self.charges.record_piggy
    }
}

/// Map program region kinds to trace roles.
fn role_of(kind: RegionKind) -> RegionRole {
    match kind {
        RegionKind::User => RegionRole::Function,
        RegionKind::Mpi => RegionRole::MpiApi,
        RegionKind::OmpParallel => RegionRole::OmpParallel,
        RegionKind::OmpLoop => RegionRole::OmpLoop,
        RegionKind::OmpImplicitBarrier => RegionRole::OmpImplicitBarrier,
        RegionKind::OmpBarrier => RegionRole::OmpBarrier,
        RegionKind::OmpCritical => RegionRole::OmpCritical,
        RegionKind::OmpSingle => RegionRole::OmpSingle,
        RegionKind::OmpMaster => RegionRole::OmpMaster,
        RegionKind::OmpFork => RegionRole::OmpFork,
    }
}

impl<'a> Observer for TracingObserver<'a> {
    fn counting_instructions(&self, work_cost: &Cost, loop_iters: u64) -> u64 {
        let o = &self.config.overhead;
        let per_block = o.instr_per_basic_block * work_cost.basic_blocks;
        // Counter increments are hoisted/batched inside worksharing
        // loops — but only where control flow is regular enough (few
        // basic blocks per instruction). Branchy loop bodies keep the
        // full per-block cost.
        let regular = work_cost.basic_blocks * 6 <= work_cost.instructions;
        let per_block = if loop_iters > 0 && regular {
            per_block / o.loop_hoist_divisor.max(1)
        } else {
            per_block
        };
        per_block + o.instr_per_loop_iter * loop_iters
    }

    fn on_work(&mut self, loc: Location, work: &WorkItem) -> VirtualDuration {
        let idx = self.loc_index(loc);
        let st = &mut self.states[idx];
        st.pending_cost = st.pending_cost.saturating_add(&work.cost);
        st.pending_iters += work.loop_iters;
        // The hardware counter also retires the counting code's own
        // instructions; the application-level models do not count them.
        if self.config.mode == ClockMode::LtHwctr {
            st.pending_rt_instr += work.extra_instructions;
        }
        VirtualDuration::ZERO
    }

    fn on_runtime(&mut self, loc: Location, kind: RuntimeKind, duration: VirtualDuration) {
        let idx = self.loc_index(loc);
        let st = &mut self.states[idx];
        if kind == RuntimeKind::Omp {
            st.pending_omp_calls += 1;
        }
        if self.config.mode == ClockMode::LtHwctr {
            st.pending_rt_instr += (duration.as_secs_f64()
                * self.instr_rate
                * self.config.effort.runtime_ipc_fraction)
                .round() as u64;
        }
    }

    fn on_spin(&mut self, loc: Location, duration: VirtualDuration) {
        if self.config.mode == ClockMode::LtHwctr {
            let idx = self.loc_index(loc);
            // The spin-loop instruction rate is itself noisy: it varies
            // per location and per repetition. The stream key is constant
            // per location, so the factor is drawn once and cached.
            let rate_factor = if self.config.effort.spin_rate_sigma > 0.0 {
                match self.states[idx].spin_factor {
                    Some(f) => f,
                    None => {
                        let mut rng = self.rng.stream(StreamKind::HwCounter, idx as u64, u64::MAX);
                        let f = jitter_factor(&mut rng, self.config.effort.spin_rate_sigma);
                        self.states[idx].spin_factor = Some(f);
                        f
                    }
                }
            } else {
                1.0
            };
            self.states[idx].pending_rt_instr += (duration.as_secs_f64()
                * self.instr_rate
                * self.config.effort.spin_ipc_fraction
                * rate_factor)
                .round() as u64;
        }
    }

    fn on_event(&mut self, loc: Location, now: VirtualTime, info: &EventInfo) -> VirtualDuration {
        let idx = self.loc_index(loc);
        match *info {
            EventInfo::Enter { region } => {
                if self.filtered[region.0 as usize] {
                    self.n_filtered += 1;
                    return self.charge_filter();
                }
                let ts = self.timestamp(idx, now);
                self.push(idx, ts, EventKind::Enter { region: RegionRef(region.0) });
                self.n_recorded += 1;
                self.charge_record()
            }
            EventInfo::Leave { region } => {
                if self.filtered[region.0 as usize] {
                    self.n_filtered += 1;
                    return self.charge_filter();
                }
                let ts = self.timestamp(idx, now);
                self.push(idx, ts, EventKind::Leave { region: RegionRef(region.0) });
                self.n_recorded += 1;
                self.charge_record()
            }
            EventInfo::Burst { callee, calls, phys_start } => {
                let (record_event, filter_check) =
                    (self.config.overhead.record_event, self.config.overhead.filter_check);
                if self.filtered[callee.0 as usize] {
                    // Runtime filtering still checks every call.
                    self.n_filtered += 2 * calls;
                    return self.charge(0.0, filter_check * (2 * calls) as f64, 0.0);
                }
                let (start, end) = match self.config.mode {
                    ClockMode::Tsc => {
                        self.drain_pending(idx);
                        (phys_start.nanos(), now.nanos())
                    }
                    _ => {
                        // The kernel's accumulated work happened inside the
                        // calls; the calls themselves contribute two events
                        // each.
                        let inside = self.drain_pending(idx);
                        let total = inside + 2 * calls.max(1);
                        let st = &mut self.states[idx];
                        let start = st.counter + 1;
                        st.counter += total;
                        (start, st.counter)
                    }
                };
                self.push(
                    idx,
                    end,
                    EventKind::CallBurst { region: RegionRef(callee.0), count: calls, start },
                );
                self.n_recorded += 1;
                self.charge(record_event * (2 * calls) as f64, 0.0, 0.0)
            }
            EventInfo::SendPost { peer, tag, bytes } => {
                let ts = self.timestamp(idx, now);
                self.push(idx, ts, EventKind::SendPost { peer, tag, bytes });
                self.n_recorded += 1;
                self.charge_record_piggy()
            }
            EventInfo::RecvPost { peer, tag, bytes } => {
                let ts = self.timestamp(idx, now);
                self.push(idx, ts, EventKind::RecvPost { peer, tag, bytes });
                self.n_recorded += 1;
                self.charge_record()
            }
            EventInfo::RecvComplete { peer, tag, bytes } => {
                let ts = self.timestamp(idx, now);
                self.push(idx, ts, EventKind::RecvComplete { peer, tag, bytes });
                self.n_recorded += 1;
                self.charge_record_piggy()
            }
            EventInfo::CollectiveEnd { op, bytes, root } => {
                let ts = self.timestamp(idx, now);
                self.push(
                    idx,
                    ts,
                    EventKind::CollectiveEnd {
                        op,
                        bytes,
                        root: if root == NO_ROOT { NO_ROOT } else { root },
                    },
                );
                self.n_recorded += 1;
                self.charge_record_piggy()
            }
        }
    }

    fn piggyback(&mut self, loc: Location) -> u64 {
        if self.config.mode == ClockMode::Tsc {
            return 0;
        }
        let idx = self.loc_index(loc);
        // Apply the pending effort first so the attached value reflects
        // the clock at the send event (Lamport step 2a).
        let inc = self.drain_pending(idx);
        self.states[idx].counter += inc;
        self.states[idx].counter
    }

    fn sync_logical(&mut self, loc: Location, incoming: u64) {
        if self.config.mode == ClockMode::Tsc {
            return;
        }
        let idx = self.loc_index(loc);
        let st = &mut self.states[idx];
        st.counter = st.counter.max(incoming + 1);
    }

    fn cache_footprint_per_location(&self) -> u64 {
        self.config.overhead.buffer_footprint
    }

    fn desync(&self) -> f64 {
        self.config.overhead.desync
    }
}

// `regions` is only read; keeping the reference documents that the table
// must outlive the observer and stay in sync with the engine's ids.
impl std::fmt::Debug for TracingObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracingObserver")
            .field("mode", &self.config.mode)
            .field("locations", &self.states.len())
            .field("regions", &self.regions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_prog::RegionId;
    use nrlt_sim::JobLayout;

    fn setup(mode: ClockMode) -> (RegionTable, ExecConfig) {
        let mut t = RegionTable::new();
        t.intern("main", RegionKind::User);
        t.intern("tiny", RegionKind::User);
        let _ = mode;
        (t, ExecConfig::jureca(1, JobLayout::block(1, 1), 1))
    }

    #[test]
    fn lt1_increments_once_per_event() {
        let (t, cfg) = setup(ClockMode::Lt1);
        let mut obs = TracingObserver::new(MeasureConfig::new(ClockMode::Lt1), &t, &cfg);
        let loc = Location::master(0);
        let r = RegionId(0);
        obs.on_event(loc, VirtualTime(100), &EventInfo::Enter { region: r });
        obs.on_event(loc, VirtualTime(200), &EventInfo::Leave { region: r });
        let trace = obs.into_trace();
        assert_eq!(trace.streams[0].time(0), 1);
        assert_eq!(trace.streams[0].time(1), 2);
    }

    #[test]
    fn tsc_records_physical_time() {
        let (t, cfg) = setup(ClockMode::Tsc);
        let mut obs = TracingObserver::new(MeasureConfig::new(ClockMode::Tsc), &t, &cfg);
        let loc = Location::master(0);
        obs.on_event(loc, VirtualTime(12345), &EventInfo::Enter { region: RegionId(0) });
        let trace = obs.into_trace();
        assert_eq!(trace.streams[0].time(0), 12345);
        assert_eq!(trace.defs.clock, ClockKind::Physical);
    }

    #[test]
    fn lt_loop_counts_iterations() {
        let (t, cfg) = setup(ClockMode::LtLoop);
        let mut obs = TracingObserver::new(MeasureConfig::new(ClockMode::LtLoop), &t, &cfg);
        let loc = Location::master(0);
        obs.on_work(
            loc,
            &WorkItem {
                cost: Cost::scalar(1000),
                loop_iters: 50,
                duration: VirtualDuration(10),
                extra_instructions: 0,
            },
        );
        obs.on_event(loc, VirtualTime(1), &EventInfo::Enter { region: RegionId(0) });
        let trace = obs.into_trace();
        assert_eq!(trace.streams[0].time(0), 51); // 50 iters + 1
    }

    #[test]
    fn lt_bb_counts_blocks_and_omp_calls() {
        let (t, cfg) = setup(ClockMode::LtBb);
        let mut obs = TracingObserver::new(MeasureConfig::new(ClockMode::LtBb), &t, &cfg);
        let loc = Location::master(0);
        let cost = Cost::ZERO.with_basic_blocks(40);
        obs.on_work(
            loc,
            &WorkItem { cost, loop_iters: 0, duration: VirtualDuration(10), extra_instructions: 0 },
        );
        obs.on_runtime(loc, RuntimeKind::Omp, VirtualDuration(100));
        obs.on_event(loc, VirtualTime(1), &EventInfo::Enter { region: RegionId(0) });
        let trace = obs.into_trace();
        assert_eq!(trace.streams[0].time(0), 40 + 100 + 1); // bb + X + event
    }

    #[test]
    fn lt_stmt_uses_y_constant() {
        let (t, cfg) = setup(ClockMode::LtStmt);
        let mut obs = TracingObserver::new(MeasureConfig::new(ClockMode::LtStmt), &t, &cfg);
        let loc = Location::master(0);
        obs.on_runtime(loc, RuntimeKind::Omp, VirtualDuration(100));
        obs.on_event(loc, VirtualTime(1), &EventInfo::Enter { region: RegionId(0) });
        let trace = obs.into_trace();
        assert_eq!(trace.streams[0].time(0), 4300 + 1);
    }

    #[test]
    fn lt_hwctr_counts_spin_instructions() {
        let (t, cfg) = setup(ClockMode::LtHwctr);
        let mut mc = MeasureConfig::new(ClockMode::LtHwctr);
        mc.effort.hwctr_sigma = 0.0; // deterministic for the assertion
        mc.effort.spin_rate_sigma = 0.0;
        let mut obs = TracingObserver::new(mc, &t, &cfg);
        let loc = Location::master(0);
        obs.on_spin(loc, VirtualDuration::from_micros(10));
        obs.on_event(loc, VirtualTime(1), &EventInfo::Enter { region: RegionId(0) });
        let trace = obs.into_trace();
        // 10us at 2.25GHz × 2 IPC × 0.6 = 27000 instructions.
        assert_eq!(trace.streams[0].time(0), 27_000 + 1);
    }

    #[test]
    fn filtered_regions_produce_no_events_but_cost_a_check() {
        let (t, cfg) = setup(ClockMode::Tsc);
        let mc = MeasureConfig::new(ClockMode::Tsc).with_filter(FilterRules::from_rules(["tiny"]));
        let mut obs = TracingObserver::new(mc, &t, &cfg);
        let loc = Location::master(0);
        let ovh = obs.on_event(loc, VirtualTime(1), &EventInfo::Enter { region: RegionId(1) });
        assert!(ovh > VirtualDuration::ZERO);
        assert!(ovh < VirtualDuration(10));
        let trace = obs.into_trace();
        assert!(trace.streams[0].is_empty());
    }

    #[test]
    fn burst_spans_counter_range() {
        let (t, cfg) = setup(ClockMode::Lt1);
        let mut obs = TracingObserver::new(MeasureConfig::new(ClockMode::Lt1), &t, &cfg);
        let loc = Location::master(0);
        obs.on_event(loc, VirtualTime(0), &EventInfo::Enter { region: RegionId(0) });
        obs.on_event(
            loc,
            VirtualTime(100),
            &EventInfo::Burst { callee: RegionId(1), calls: 10, phys_start: VirtualTime(1) },
        );
        let trace = obs.into_trace();
        match trace.streams[0].kind(1) {
            EventKind::CallBurst { count, start, .. } => {
                assert_eq!(count, 10);
                assert_eq!(start, 2); // after the Enter at 1
                assert_eq!(trace.streams[0].time(1), 1 + 20); // 10 calls × 2 events
            }
            ref other => panic!("expected burst, got {other:?}"),
        }
    }

    #[test]
    fn piggyback_and_sync_respect_lamport() {
        let (t, cfg) = setup(ClockMode::Lt1);
        let cfg2 = ExecConfig::jureca(1, JobLayout::block(2, 1), 1);
        let mut obs = TracingObserver::new(MeasureConfig::new(ClockMode::Lt1), &t, &cfg2);
        let _ = cfg;
        let a = Location::master(0);
        let b = Location::master(1);
        // a does some events, then sends.
        obs.on_event(a, VirtualTime(0), &EventInfo::Enter { region: RegionId(0) });
        obs.on_event(a, VirtualTime(1), &EventInfo::Leave { region: RegionId(0) });
        let pig = obs.piggyback(a);
        let send_ts = {
            obs.on_event(a, VirtualTime(2), &EventInfo::SendPost { peer: 1, tag: 0, bytes: 1 });
            obs.into_trace().streams[0].last().unwrap().time
        };
        assert!(send_ts > pig);
        // Receiver merges then records: its completion must be after the send.
        let (t2, _) = setup(ClockMode::Lt1);
        let mut obs = TracingObserver::new(MeasureConfig::new(ClockMode::Lt1), &t2, &cfg2);
        obs.sync_logical(b, pig);
        obs.on_event(b, VirtualTime(9), &EventInfo::RecvComplete { peer: 0, tag: 0, bytes: 1 });
        let recv_ts = obs.into_trace().streams[1].last().unwrap().time;
        assert!(recv_ts > send_ts, "clock condition: {recv_ts} > {send_ts}");
    }

    #[test]
    fn spilled_run_yields_identical_events() {
        let run = |budget: Option<u64>| -> Vec<(u64, Event)> {
            let (t, cfg) = setup(ClockMode::Lt1);
            let mut obs = TracingObserver::new(MeasureConfig::new(ClockMode::Lt1), &t, &cfg);
            if let Some(b) = budget {
                obs.enable_spill(b);
            }
            let loc = Location::master(0);
            for i in 0..500u64 {
                let r = RegionId((i % 2) as u32);
                obs.on_event(loc, VirtualTime(2 * i), &EventInfo::Enter { region: r });
                obs.on_event(loc, VirtualTime(2 * i + 1), &EventInfo::Leave { region: r });
            }
            let (data, summary) = obs.into_trace_data();
            if budget.is_some() {
                assert!(summary.chunks > 1, "tiny budget must spill multiple chunks");
                assert!(summary.stalls > 0);
                assert_eq!(summary.events, 1000);
            } else {
                assert_eq!(summary, SpillSummary::default());
            }
            assert_eq!(data.total_events(), 1000);
            let view = data.view();
            view.events(0).map(|e| (e.time, e)).collect()
        };
        let resident = run(None);
        let spilled = run(Some(1)); // clamps to the minimum chunk size
        assert_eq!(resident, spilled);
    }

    #[test]
    fn tsc_piggyback_is_zero() {
        let (t, cfg) = setup(ClockMode::Tsc);
        let mut obs = TracingObserver::new(MeasureConfig::new(ClockMode::Tsc), &t, &cfg);
        assert_eq!(obs.piggyback(Location::master(0)), 0);
        obs.sync_logical(Location::master(0), 999); // no-op
        let trace = obs.into_trace();
        assert!(trace.streams[0].is_empty());
    }
}
