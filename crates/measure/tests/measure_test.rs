//! End-to-end measurement tests: full program → trace, under every
//! clock mode.

use nrlt_exec::ExecConfig;
use nrlt_measure::{measure, reference_run, ClockMode, FilterRules, MeasureConfig};
use nrlt_prog::{Cost, IterCost, Program, ProgramBuilder, Schedule};
use nrlt_sim::JobLayout;
use nrlt_trace::{ClockKind, EventKind, Trace};

/// A small hybrid program: parallel loop + halo exchange + allreduce.
fn hybrid(ranks: u32) -> Program {
    let mut pb = ProgramBuilder::new(ranks);
    for r in 0..ranks {
        let left = (r + ranks - 1) % ranks;
        let right = (r + 1) % ranks;
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            for _step in 0..3 {
                rb.scoped("compute", |rb| {
                    rb.parallel("step", |omp| {
                        omp.for_loop(
                            "stencil",
                            1024,
                            Schedule::Static,
                            IterCost::Uniform(Cost::scalar(5_000)),
                            1 << 16,
                        );
                    });
                    rb.kernel_burst("pack", 64, Cost::scalar(64_000), 0);
                });
                rb.scoped("exchange", |rb| {
                    rb.irecv(left, 0, 4096);
                    rb.irecv(right, 1, 4096);
                    rb.isend(right, 0, 4096);
                    rb.isend(left, 1, 4096);
                    rb.waitall();
                });
                rb.allreduce(8);
            }
        });
    }
    let p = pb.finish();
    p.validate().unwrap();
    p
}

fn run(mode: ClockMode, seed: u64) -> Trace {
    let p = hybrid(4);
    let cfg = ExecConfig::jureca(1, JobLayout::block(4, 4), seed);
    let (trace, _) = measure(&p, &cfg, &MeasureConfig::new(mode));
    trace
}

#[test]
fn traces_are_consistent_under_every_mode() {
    for mode in ClockMode::ALL {
        let trace = run(mode, 1);
        trace.check_consistency().unwrap_or_else(|e| panic!("{mode}: {e}"));
        assert!(trace.total_events() > 100, "{mode}: too few events");
        match (mode, &trace.defs.clock) {
            (ClockMode::Tsc, ClockKind::Physical) => {}
            (m, ClockKind::Logical { model }) if m.is_logical() => {
                assert_eq!(model, m.name());
            }
            (m, c) => panic!("{m}: wrong clock kind {c:?}"),
        }
    }
}

#[test]
fn worker_locations_have_events() {
    let trace = run(ClockMode::Tsc, 1);
    // 4 ranks × 4 threads: every worker participated in the loops.
    for (i, stream) in trace.streams.iter().enumerate() {
        assert!(!stream.is_empty(), "location {i} recorded nothing");
    }
}

#[test]
fn logical_modes_are_repetition_invariant() {
    for mode in [ClockMode::Lt1, ClockMode::LtLoop, ClockMode::LtBb, ClockMode::LtStmt] {
        let a = run(mode, 1);
        let b = run(mode, 2);
        assert_eq!(a.streams, b.streams, "{mode}: logical trace must not depend on the noise seed");
    }
}

#[test]
fn tsc_and_hwctr_vary_with_noise() {
    for mode in [ClockMode::Tsc, ClockMode::LtHwctr] {
        let a = run(mode, 1);
        let b = run(mode, 2);
        assert_ne!(a.streams, b.streams, "{mode}: must be noise-sensitive");
    }
}

#[test]
fn clock_condition_holds_on_matched_messages() {
    // For every matched (send, recv-complete) pair, the receive
    // timestamp must exceed the send timestamp under a logical clock.
    for mode in ClockMode::LOGICAL {
        let trace = run(mode, 1);
        let tpr = trace.defs.threads_per_rank;
        // Collect sends FIFO per (src, dst, tag) and completions likewise.
        use std::collections::HashMap;
        let mut sends: HashMap<(u32, u32, u32), Vec<u64>> = HashMap::new();
        for (i, stream) in trace.streams.iter().enumerate() {
            let rank = i as u32 / tpr;
            for ev in stream {
                if let EventKind::SendPost { peer, tag, .. } = ev.kind {
                    sends.entry((rank, peer, tag)).or_default().push(ev.time);
                }
            }
        }
        let mut cursors: HashMap<(u32, u32, u32), usize> = HashMap::new();
        for (i, stream) in trace.streams.iter().enumerate() {
            let rank = i as u32 / tpr;
            for ev in stream {
                if let EventKind::RecvComplete { peer, tag, .. } = ev.kind {
                    let key = (peer, rank, tag);
                    let k = cursors.entry(key).or_insert(0);
                    let send_ts = sends[&key][*k];
                    *k += 1;
                    assert!(
                        ev.time > send_ts,
                        "{mode}: recv at {} not after send at {}",
                        ev.time,
                        send_ts
                    );
                }
            }
        }
    }
}

#[test]
fn filtering_removes_burst_events() {
    let p = hybrid(4);
    let cfg = ExecConfig::jureca(1, JobLayout::block(4, 4), 1);
    let unfiltered = measure(&p, &cfg, &MeasureConfig::new(ClockMode::Tsc)).0;
    let filtered = measure(
        &p,
        &cfg,
        &MeasureConfig::new(ClockMode::Tsc).with_filter(FilterRules::from_rules(["pack"])),
    )
    .0;
    let bursts = |t: &Trace| {
        t.streams.iter().flatten().filter(|e| matches!(e.kind, EventKind::CallBurst { .. })).count()
    };
    assert!(bursts(&unfiltered) > 0);
    assert_eq!(bursts(&filtered), 0);
}

#[test]
fn instrumented_run_differs_from_reference() {
    let p = hybrid(4);
    let cfg = ExecConfig::jureca(1, JobLayout::block(4, 4), 1);
    let reference = reference_run(&p, &cfg);
    let (_, instrumented) = measure(&p, &cfg, &MeasureConfig::new(ClockMode::LtHwctr));
    assert_ne!(reference.total, instrumented.total);
}

#[test]
fn lt1_timestamps_are_dense_small_integers() {
    let trace = run(ClockMode::Lt1, 1);
    // Under lt_1 the largest timestamp is bounded by a small multiple of
    // the event count (every event increments by exactly 1, merges can
    // only jump forward to another location's counter).
    let max_ts = trace.end_time();
    let events = trace.total_events() as u64;
    assert!(
        max_ts < events * 4,
        "lt_1 counters must stay within event-count scale: {max_ts} vs {events} events"
    );
}
