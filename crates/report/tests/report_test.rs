//! Acceptance contracts of the report layer:
//!
//! 1. The severity report of a noise-free run is byte-identical across
//!    worker counts and across repeated pipeline invocations.
//! 2. The flamegraph's folded-stack totals equal the sum of root-span
//!    inclusive times of the telemetry it collapsed.
//! 3. The `nrlt-report bench-check` binary exits nonzero on a
//!    synthetically injected 2× slowdown and zero within threshold.

use nrlt_core::miniapps::{MiniFeConfig, MiniFeCosts};
use nrlt_core::prelude::*;
use nrlt_report::{bench, folded, folded_totals, severity_json, severity_text};

/// A deliberately tiny MiniFE so the whole protocol runs in seconds.
fn tiny_instance() -> BenchmarkInstance {
    MiniFeConfig {
        nx: 40,
        ranks: 2,
        threads_per_rank: 2,
        imbalance_pct: 50,
        cg_iters: 4,
        costs: MiniFeCosts::default(),
    }
    .build()
}

fn options(jobs: usize) -> ExperimentOptions {
    ExperimentOptions {
        repetitions: 2,
        base_seed: 4242,
        modes: vec![ClockMode::Tsc, ClockMode::Lt1],
        jobs,
        ..Default::default()
    }
}

#[test]
fn severity_report_is_byte_identical_across_jobs_and_repeats() {
    let instance = tiny_instance();
    let serial = nrlt_core::run_experiment(&instance, &options(1));
    let parallel = nrlt_core::run_experiment(&instance, &options(4));
    let repeat = nrlt_core::run_experiment(&instance, &options(1));

    let text = severity_text(&serial, 10);
    assert_eq!(text, severity_text(&parallel, 10), "severity text diverged across --jobs");
    assert_eq!(text, severity_text(&repeat, 10), "severity text diverged across repeats");

    let json = severity_json(&serial, 10);
    assert_eq!(json, severity_json(&parallel, 10), "severity JSON diverged across --jobs");
    assert_eq!(json, severity_json(&repeat, 10), "severity JSON diverged across repeats");

    // Sanity: the report actually carries content, not just headers.
    assert!(text.contains("tsc") && text.contains("lt_1"), "{text}");
    assert!(text.contains("hotspot"), "{text}");
    nrlt_core::telemetry::json::parse(&json).expect("severity JSON parses");
}

#[test]
fn flamegraph_totals_equal_root_span_inclusive_time() {
    let instance = tiny_instance();
    let tel = Telemetry::new();
    nrlt_core::run_experiment_telemetry(&instance, &options(2), Some(&tel));
    let spans = tel.spans();
    assert!(!spans.is_empty(), "pipeline emitted no spans");
    let doc = folded(&spans);
    let roots: u64 = spans.iter().filter(|s| s.depth == 0).map(|s| s.dur_ns).sum();
    assert_eq!(folded_totals(&doc), roots, "folded self-times do not conserve root time");
}

fn entry(run: &str, jobs: usize, wall: f64) -> bench::BenchEntry {
    bench::BenchEntry {
        bin: "fig3".into(),
        run: run.into(),
        jobs,
        host_parallelism: bench::host_parallelism(),
        wall_seconds: wall,
        events: 0,
        events_per_sec: 0.0,
        overhead_vs_plain_pct: None,
        peak_rss_bytes: 0,
        p50_ns: 0,
        p95_ns: 0,
        p99_ns: 0,
    }
}

#[test]
fn bench_check_binary_gates_a_2x_slowdown() {
    let dir = std::env::temp_dir().join("nrlt-report-gate-test");
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.json");
    let slow = dir.join("slow.json");
    let fine = dir.join("fine.json");
    for p in [&baseline, &slow, &fine] {
        let _ = std::fs::remove_file(p);
    }
    bench::merge_and_write(&baseline, &[entry("MiniFE-1", 1, 1.0)]).unwrap();
    bench::merge_and_write(&slow, &[entry("MiniFE-1", 1, 2.0)]).unwrap();
    bench::merge_and_write(&fine, &[entry("MiniFE-1", 1, 1.1)]).unwrap();

    let gate = |current: &std::path::Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_nrlt-report"))
            .args(["bench-check", "--baseline"])
            .arg(&baseline)
            .arg("--current")
            .arg(current)
            .args(["--max-regress", "1.5"])
            .output()
            .expect("nrlt-report runs")
    };

    let regressed = gate(&slow);
    assert_eq!(regressed.status.code(), Some(1), "2x slowdown must exit 1");
    let stdout = String::from_utf8_lossy(&regressed.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");

    let ok = gate(&fine);
    assert_eq!(ok.status.code(), Some(0), "within-threshold run must exit 0");

    let usage = std::process::Command::new(env!("CARGO_BIN_EXE_nrlt-report"))
        .arg("bench-check")
        .output()
        .expect("nrlt-report runs");
    assert_eq!(usage.status.code(), Some(2), "missing flags are a usage error");
}

#[test]
fn bench_check_binary_gates_against_the_history_ledger() {
    use nrlt_report::{append_record, HistoryRecord, HISTORY_SCHEMA_VERSION};
    let dir = std::env::temp_dir().join("nrlt-report-history-gate-test");
    std::fs::create_dir_all(&dir).unwrap();
    let ledger = dir.join("history.jsonl");
    let slow = dir.join("slow.json");
    let fine = dir.join("fine.json");
    for p in [&ledger, &slow, &fine] {
        let _ = std::fs::remove_file(p);
    }
    // Two healthy runs establish the EWMA baseline at 1.0s.
    for (t, rev) in [(1_000, "aaaaaaa"), (2_000, "bbbbbbb")] {
        append_record(
            &ledger,
            &HistoryRecord {
                schema: HISTORY_SCHEMA_VERSION,
                unix_time: t,
                git_rev: rev.into(),
                host_parallelism: bench::host_parallelism(),
                bin: "fig3".into(),
                entries: vec![entry("MiniFE-1", 1, 1.0)],
                top_stacks: vec![("harness;experiment.mode_cell".into(), 7)],
                engineprof_eps: vec![("MiniFE-1".into(), 1e6)],
            },
        )
        .unwrap();
    }
    bench::merge_and_write(&slow, &[entry("MiniFE-1", 1, 2.0)]).unwrap();
    bench::merge_and_write(&fine, &[entry("MiniFE-1", 1, 1.1)]).unwrap();

    let gate = |current: &std::path::Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_nrlt-report"))
            .args(["bench-check", "--history"])
            .arg(&ledger)
            .arg("--current")
            .arg(current)
            .args(["--max-regress", "1.5"])
            .output()
            .expect("nrlt-report runs")
    };

    let regressed = gate(&slow);
    assert_eq!(regressed.status.code(), Some(1), "2x slowdown vs EWMA must exit 1");
    assert!(String::from_utf8_lossy(&regressed.stdout).contains("REGRESSED"));
    let ok = gate(&fine);
    assert_eq!(ok.status.code(), Some(0), "within-threshold run must exit 0: {ok:?}");

    // `trend` renders the same ledger byte-identically, run after run.
    let trend = |ledger: &std::path::Path| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_nrlt-report"))
            .arg("trend")
            .arg(ledger)
            .output()
            .expect("nrlt-report runs");
        assert_eq!(out.status.code(), Some(0), "trend must succeed: {out:?}");
        out.stdout
    };
    let first = trend(&ledger);
    assert_eq!(first, trend(&ledger), "trend output is not deterministic");
    let text = String::from_utf8_lossy(&first);
    assert!(text.contains("MiniFE-1"), "{text}");

    // --history and --baseline are mutually exclusive usage errors.
    let both = std::process::Command::new(env!("CARGO_BIN_EXE_nrlt-report"))
        .args(["bench-check", "--history"])
        .arg(&ledger)
        .args(["--baseline"])
        .arg(&fine)
        .args(["--current"])
        .arg(&fine)
        .output()
        .expect("nrlt-report runs");
    assert_eq!(both.status.code(), Some(2), "--history with --baseline is a usage error");
}
