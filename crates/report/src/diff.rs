//! Diff of two telemetry bundles.
//!
//! Aggregates spans per name on each side, then reports per-name deltas
//! of count and total duration (sorted by absolute time delta, largest
//! first), followed by counter deltas. The typical use is `nrlt-report
//! diff results/telemetry/fig3 /tmp/fig3-after` after an optimisation —
//! the span table answers "where did the time go", the counter table
//! "did the work itself change".

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::bundle::Bundle;
use crate::inspect::span_stats;

/// One span-name comparison row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRow {
    /// Span name.
    pub name: String,
    /// Occurrences in bundle A / bundle B.
    pub count: (u64, u64),
    /// Total inclusive nanoseconds in bundle A / bundle B.
    pub total_ns: (u64, u64),
}

impl DiffRow {
    /// Signed time delta B − A in nanoseconds.
    pub fn delta_ns(&self) -> i128 {
        self.total_ns.1 as i128 - self.total_ns.0 as i128
    }
}

/// Per-span-name comparison of two bundles, sorted by |time delta|
/// descending (name as tie-break).
pub fn span_diff(a: &Bundle, b: &Bundle) -> Vec<DiffRow> {
    let sa = span_stats(&a.spans);
    let sb = span_stats(&b.spans);
    let names: BTreeSet<&str> =
        sa.iter().map(|s| s.name.as_str()).chain(sb.iter().map(|s| s.name.as_str())).collect();
    let find = |set: &[crate::inspect::SpanStats], name: &str| -> (u64, u64) {
        set.iter().find(|s| s.name == name).map(|s| (s.count, s.total_ns)).unwrap_or((0, 0))
    };
    let mut rows: Vec<DiffRow> = names
        .into_iter()
        .map(|name| {
            let (ca, ta) = find(&sa, name);
            let (cb, tb) = find(&sb, name);
            DiffRow { name: name.to_owned(), count: (ca, cb), total_ns: (ta, tb) }
        })
        .collect();
    rows.sort_by(|x, y| {
        y.delta_ns().abs().cmp(&x.delta_ns().abs()).then_with(|| x.name.cmp(&y.name))
    });
    rows
}

/// Names present on exactly one side: `(only_in_a, only_in_b)`. For
/// non-overlapping bundles (different bins, renamed spans) the zero
/// rows in the main table are easy to misread as "measured, took 0ns";
/// these lists state the absence explicitly.
pub fn missing_names(rows: &[DiffRow]) -> (Vec<String>, Vec<String>) {
    let only_a =
        rows.iter().filter(|r| r.count.1 == 0 && r.count.0 > 0).map(|r| r.name.clone()).collect();
    let only_b =
        rows.iter().filter(|r| r.count.0 == 0 && r.count.1 > 0).map(|r| r.name.clone()).collect();
    (only_a, only_b)
}

fn write_missing(out: &mut String, what: &str, only_a: &[String], only_b: &[String]) {
    if !only_a.is_empty() {
        let _ = writeln!(out, "  {what} only in A (missing in B): {}", only_a.join(", "));
    }
    if !only_b.is_empty() {
        let _ = writeln!(out, "  {what} only in B (missing in A): {}", only_b.join(", "));
    }
}

/// Render the diff of two bundles.
pub fn diff_text(a: &Bundle, b: &Bundle) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== bundle diff: {} (A) vs {} (B) ===", a.name, b.name);

    let rows = span_diff(a, b);
    if !rows.is_empty() {
        let _ = writeln!(
            out,
            "  {:<32} {:>8} {:>8} {:>13} {:>13} {:>14} {:>8}",
            "span", "count A", "count B", "total A", "total B", "delta", "ratio"
        );
        for r in &rows {
            let ratio = if r.total_ns.0 == 0 {
                "-".to_owned()
            } else {
                format!("{:.2}x", r.total_ns.1 as f64 / r.total_ns.0 as f64)
            };
            let _ = writeln!(
                out,
                "  {:<32} {:>8} {:>8} {:>12}µs {:>12}µs {:>+13}µs {:>8}",
                r.name,
                r.count.0,
                r.count.1,
                r.total_ns.0 / 1_000,
                r.total_ns.1 / 1_000,
                r.delta_ns() / 1_000,
                ratio
            );
        }
        let (only_a, only_b) = missing_names(&rows);
        write_missing(&mut out, "spans", &only_a, &only_b);
        let _ = writeln!(out);
    }

    let keys: BTreeSet<&String> = a.counters.keys().chain(b.counters.keys()).collect();
    if !keys.is_empty() {
        let _ = writeln!(out, "  {:<44} {:>14} {:>14} {:>14}", "counter", "A", "B", "delta");
        for k in keys {
            let va = a.counters.get(k).copied().unwrap_or(0);
            let vb = b.counters.get(k).copied().unwrap_or(0);
            let _ =
                writeln!(out, "  {:<44} {:>14} {:>14} {:>+14}", k, va, vb, vb as i128 - va as i128);
        }
        let only_a: Vec<String> =
            a.counters.keys().filter(|k| !b.counters.contains_key(*k)).cloned().collect();
        let only_b: Vec<String> =
            b.counters.keys().filter(|k| !a.counters.contains_key(*k)).cloned().collect();
        write_missing(&mut out, "counters", &only_a, &only_b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_telemetry::SpanRecord;

    fn bundle(name: &str, spans: &[(&str, u64)], counters: &[(&str, u64)]) -> Bundle {
        let mut b = Bundle { name: name.into(), ..Default::default() };
        for (i, &(n, dur)) in spans.iter().enumerate() {
            b.spans.push(SpanRecord {
                name: n.into(),
                cat: "pipeline".into(),
                track: 0,
                depth: 0,
                start_ns: i as u64 * 1_000_000,
                dur_ns: dur,
                closed: true,
            });
        }
        for &(k, v) in counters {
            b.counters.insert(k.into(), v);
        }
        b
    }

    #[test]
    fn diff_ranks_by_absolute_delta() {
        let a = bundle("a", &[("fast", 1_000), ("slow", 100_000)], &[("events", 10)]);
        let b = bundle("b", &[("fast", 2_000), ("slow", 400_000)], &[("events", 12)]);
        let rows = span_diff(&a, &b);
        assert_eq!(rows[0].name, "slow");
        assert_eq!(rows[0].delta_ns(), 300_000);
        assert_eq!(rows[1].name, "fast");
        let s = diff_text(&a, &b);
        assert!(s.contains("4.00x"), "{s}");
        assert!(s.contains("events"), "{s}");
        assert!(s.contains("+2"), "{s}");
    }

    #[test]
    fn one_sided_names_show_up_with_zeroes() {
        let a = bundle("a", &[("gone", 5_000)], &[]);
        let b = bundle("b", &[("new", 7_000)], &[]);
        let rows = span_diff(&a, &b);
        assert_eq!(rows.len(), 2);
        let gone = rows.iter().find(|r| r.name == "gone").unwrap();
        assert_eq!(gone.count, (1, 0));
        assert_eq!(gone.total_ns, (5_000, 0));
        let s = diff_text(&a, &b);
        assert!(s.contains("gone"), "{s}");
        assert!(s.contains('-'), "{s}");
    }

    #[test]
    fn non_overlapping_bundles_list_missing_keys_per_side() {
        let a = bundle("a", &[("gone", 5_000), ("shared", 1_000)], &[("only_a", 1)]);
        let b = bundle("b", &[("new", 7_000), ("shared", 1_100)], &[("only_b", 2)]);
        let (only_a, only_b) = missing_names(&span_diff(&a, &b));
        assert_eq!(only_a, vec!["gone"]);
        assert_eq!(only_b, vec!["new"]);
        let s = diff_text(&a, &b);
        assert!(s.contains("spans only in A (missing in B): gone"), "{s}");
        assert!(s.contains("spans only in B (missing in A): new"), "{s}");
        assert!(s.contains("counters only in A (missing in B): only_a"), "{s}");
        assert!(s.contains("counters only in B (missing in A): only_b"), "{s}");
        // Fully disjoint bundles still render a complete, labelled diff.
        let c = bundle("c", &[("x", 1)], &[]);
        let d = bundle("d", &[("y", 2)], &[]);
        let s = diff_text(&c, &d);
        assert!(s.contains("only in A"), "{s}");
        assert!(s.contains("only in B"), "{s}");
        // Identical bundles list nothing as missing.
        let s = diff_text(&a, &a);
        assert!(!s.contains("missing in"), "{s}");
    }

    #[test]
    fn identical_bundles_diff_to_zero_deltas() {
        let a = bundle("a", &[("x", 1_000)], &[("c", 3)]);
        let rows = span_diff(&a, &a);
        assert!(rows.iter().all(|r| r.delta_ns() == 0));
    }
}
