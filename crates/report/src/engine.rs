//! The `nrlt-report engine` view: KPI rollup over an `--engine-prof`
//! bundle, plus a diff between two bundles.
//!
//! The bundle splits along the determinism boundary (see
//! `nrlt_engineprof::export`): `engineprof.json` carries the
//! deterministic accounting (per-kind counts and virtual nanoseconds,
//! gauge aggregates, high-water marks, allocation counts) and
//! `engineprof.wall.json` the wall-clock readings (inclusive/exclusive
//! cost per kind, events/sec). This module parses both back with the
//! shared `nrlt_telemetry::json` parser — the profiler crate itself
//! stays dependency-free — and renders:
//!
//! * a bundle-level KPI table: total events, wall time, events/sec,
//!   per-event-kind cost ranked by exclusive wall cost (virtual cost as
//!   the tiebreak, so the ranking still works on the deterministic file
//!   alone),
//! * the top queue-pressure `(series, phase)` cells by mean depth,
//! * hot-loop allocation sites and high-water marks,
//! * a per-run throughput table,
//! * `diff`: per-kind count/virtual deltas between two bundles.

use nrlt_telemetry::json::{parse, Value};
use std::fmt::Write as _;
use std::path::Path;

/// One event-kind row of a run (or of the bundle rollup).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KindRow {
    /// Event kind name (e.g. `kernel_advance`).
    pub event: String,
    /// Times the engine dispatched this kind.
    pub count: u64,
    /// Virtual nanoseconds the kind accounted for.
    pub virtual_ns: u64,
    /// Wall nanoseconds inside the kind, children included (0 when the
    /// wall file is absent).
    pub inclusive_ns: u64,
    /// Wall nanoseconds inside the kind, children excluded.
    pub exclusive_ns: u64,
}

/// One `(series, phase)` gauge aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeRow {
    /// Gauge series (e.g. `matcher.queued_sends`).
    pub series: String,
    /// Program phase the samples were taken under.
    pub phase: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (mean = sum / count).
    pub sum: i64,
    /// Largest sample.
    pub max: i64,
}

impl GaugeRow {
    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One run of an engine-profile bundle, deterministic and wall parts
/// merged.
#[derive(Debug, Clone, Default)]
pub struct EngineRun {
    /// Run name (`{instance}:{mode}:rep{rep}`).
    pub name: String,
    /// Engine events the run dispatched.
    pub events: u64,
    /// Per-kind accounting, in bundle order.
    pub kinds: Vec<KindRow>,
    /// Gauge aggregates, in bundle order.
    pub gauges: Vec<GaugeRow>,
    /// High-water marks (name, value).
    pub hwm: Vec<(String, u64)>,
    /// Hot-loop allocation counts (site, count).
    pub allocs: Vec<(String, u64)>,
    /// Wall nanoseconds of the whole run (0 when the wall file is
    /// absent).
    pub total_wall_ns: u64,
    /// Events per wall second (0 when the wall file is absent).
    pub events_per_sec: f64,
}

/// A parsed `--engine-prof` bundle.
#[derive(Debug, Clone, Default)]
pub struct EngineBundle {
    /// Runs in bundle (name-sorted) order.
    pub runs: Vec<EngineRun>,
}

/// Load `engineprof.json` (required) and `engineprof.wall.json`
/// (optional) from `dir`.
pub fn load_engine_bundle(dir: &Path) -> Result<EngineBundle, String> {
    let det_path = dir.join("engineprof.json");
    let text = std::fs::read_to_string(&det_path)
        .map_err(|e| format!("cannot read {}: {e}", det_path.display()))?;
    let det = parse(&text).map_err(|e| format!("{}: {e}", det_path.display()))?;
    let mut runs = Vec::new();
    for run in arr(&det, "runs")? {
        runs.push(parse_run(run)?);
    }
    // The wall file is a sidecar: merge by run name when present.
    if let Ok(text) = std::fs::read_to_string(dir.join("engineprof.wall.json")) {
        if let Ok(wall) = parse(&text) {
            for wrun in arr(&wall, "runs").unwrap_or(&[]) {
                let name = str_field(wrun, "run").unwrap_or_default();
                if let Some(run) = runs.iter_mut().find(|r| r.name == name) {
                    run.total_wall_ns = u64_field(wrun, "total_wall_ns");
                    run.events_per_sec =
                        wrun.get("events_per_sec").and_then(Value::as_f64).unwrap_or(0.0);
                    for wkind in arr(wrun, "kinds").unwrap_or(&[]) {
                        let event = str_field(wkind, "event").unwrap_or_default();
                        if let Some(k) = run.kinds.iter_mut().find(|k| k.event == event) {
                            k.inclusive_ns = u64_field(wkind, "inclusive_ns");
                            k.exclusive_ns = u64_field(wkind, "exclusive_ns");
                        }
                    }
                }
            }
        }
    }
    Ok(EngineBundle { runs })
}

fn parse_run(run: &Value) -> Result<EngineRun, String> {
    let mut out = EngineRun {
        name: str_field(run, "run").ok_or("run entry without a name")?,
        events: u64_field(run, "events"),
        ..EngineRun::default()
    };
    for kind in arr(run, "kinds")? {
        out.kinds.push(KindRow {
            event: str_field(kind, "event").ok_or("kind without an event name")?,
            count: u64_field(kind, "count"),
            virtual_ns: u64_field(kind, "virtual_ns"),
            inclusive_ns: 0,
            exclusive_ns: 0,
        });
    }
    for gauge in arr(run, "gauges").unwrap_or(&[]) {
        out.gauges.push(GaugeRow {
            series: str_field(gauge, "series").unwrap_or_default(),
            phase: str_field(gauge, "phase").unwrap_or_default(),
            count: u64_field(gauge, "count"),
            sum: i64_field(gauge, "sum"),
            max: i64_field(gauge, "max"),
        });
    }
    for h in arr(run, "hwm").unwrap_or(&[]) {
        out.hwm.push((str_field(h, "name").unwrap_or_default(), u64_field(h, "value")));
    }
    for a in arr(run, "allocs").unwrap_or(&[]) {
        out.allocs.push((str_field(a, "site").unwrap_or_default(), u64_field(a, "count")));
    }
    Ok(out)
}

fn arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    v.get(key).and_then(Value::as_arr).ok_or_else(|| format!("missing array {key:?}"))
}

fn str_field(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_owned)
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_f64).map(|f| f.max(0.0) as u64).unwrap_or(0)
}

fn i64_field(v: &Value, key: &str) -> i64 {
    v.get(key).and_then(Value::as_f64).map(|f| f as i64).unwrap_or(0)
}

/// Sum per-kind rows across runs (kinds matched by event name, order of
/// first appearance preserved — the export writes a fixed kind order,
/// so this is the canonical order).
fn rollup_kinds(runs: &[&EngineRun]) -> Vec<KindRow> {
    let mut out: Vec<KindRow> = Vec::new();
    for run in runs {
        for k in &run.kinds {
            match out.iter_mut().find(|o| o.event == k.event) {
                Some(o) => {
                    o.count += k.count;
                    o.virtual_ns += k.virtual_ns;
                    o.inclusive_ns += k.inclusive_ns;
                    o.exclusive_ns += k.exclusive_ns;
                }
                None => out.push(k.clone()),
            }
        }
    }
    out
}

/// Rank kinds most-expensive first: by exclusive wall cost, virtual
/// cost as the deterministic tiebreak, then count. Kinds that never
/// fired sort last.
fn rank_kinds(kinds: &mut [KindRow]) {
    kinds.sort_by(|a, b| {
        (b.exclusive_ns, b.virtual_ns, b.count, &a.event).cmp(&(
            a.exclusive_ns,
            a.virtual_ns,
            a.count,
            &b.event,
        ))
    });
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

fn fmt_eps(eps: f64) -> String {
    if eps >= 1e6 {
        format!("{:.2}M", eps / 1e6)
    } else if eps >= 1e3 {
        format!("{:.1}k", eps / 1e3)
    } else {
        format!("{eps:.0}")
    }
}

/// Render the KPI report for `bundle`.
///
/// * `run_filter` restricts to one named run (`None` = roll up all
///   runs, plus a per-run throughput table).
/// * `top` bounds the queue-pressure and allocation tables.
///
/// Errors when the filter matches nothing or the bundle is empty.
pub fn engine_text(
    bundle: &EngineBundle,
    run_filter: Option<&str>,
    top: usize,
) -> Result<String, String> {
    let runs: Vec<&EngineRun> =
        bundle.runs.iter().filter(|r| run_filter.is_none_or(|f| f == r.name)).collect();
    if runs.is_empty() {
        return Err(match run_filter {
            Some(f) => format!("no run named {f:?} in the bundle"),
            None => "the bundle contains no runs".to_owned(),
        });
    }
    let mut out = String::new();
    let scope = match run_filter {
        Some(f) => format!("run {f}"),
        None => format!("{} runs", runs.len()),
    };
    let _ = writeln!(out, "=== engine profile ({scope}) ===");

    let events: u64 = runs.iter().map(|r| r.events).sum();
    let wall_ns: u64 = runs.iter().map(|r| r.total_wall_ns).sum();
    let eps = if wall_ns > 0 { events as f64 / (wall_ns as f64 / 1e9) } else { 0.0 };
    let _ = write!(out, "events: {events}");
    if wall_ns > 0 {
        let _ = write!(out, "   wall: {:.3}s   events/sec: {}", wall_ns as f64 / 1e9, fmt_eps(eps));
    } else {
        let _ = write!(out, "   (no wall file — deterministic view only)");
    }
    let _ = writeln!(out);

    let mut kinds = rollup_kinds(&runs);
    rank_kinds(&mut kinds);
    let excl_total: u64 = kinds.iter().map(|k| k.exclusive_ns).sum();
    let _ = writeln!(out, "\nper-event-kind cost (ranked by exclusive wall cost):");
    let _ = writeln!(
        out,
        "  {:<16} {:>12} {:>12} {:>10} {:>10} {:>6}",
        "kind", "count", "virtual(ms)", "incl(ms)", "excl(ms)", "excl%"
    );
    for k in &kinds {
        let pct = if excl_total > 0 {
            format!("{:.1}", 100.0 * k.exclusive_ns as f64 / excl_total as f64)
        } else {
            "-".to_owned()
        };
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>12} {:>10} {:>10} {:>6}",
            k.event,
            k.count,
            fmt_ms(k.virtual_ns),
            fmt_ms(k.inclusive_ns),
            fmt_ms(k.exclusive_ns),
            pct
        );
    }

    // Queue pressure: merge (series, phase) cells across runs, rank by
    // mean depth (max depth as the tiebreak).
    let mut cells: Vec<GaugeRow> = Vec::new();
    for run in &runs {
        for g in &run.gauges {
            match cells.iter_mut().find(|c| c.series == g.series && c.phase == g.phase) {
                Some(c) => {
                    c.count += g.count;
                    c.sum += g.sum;
                    c.max = c.max.max(g.max);
                }
                None => cells.push(g.clone()),
            }
        }
    }
    cells.sort_by(|a, b| {
        (b.mean(), b.max, &a.series, &a.phase)
            .partial_cmp(&(a.mean(), a.max, &b.series, &b.phase))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if !cells.is_empty() {
        let _ = writeln!(out, "\ntop queue pressure (by mean depth):");
        let _ = writeln!(
            out,
            "  {:<28} {:<14} {:>10} {:>8} {:>8}",
            "series", "phase", "samples", "mean", "max"
        );
        for c in cells.iter().take(top) {
            let _ = writeln!(
                out,
                "  {:<28} {:<14} {:>10} {:>8.2} {:>8}",
                c.series,
                c.phase,
                c.count,
                c.mean(),
                c.max
            );
        }
    }

    // Hot-loop allocations and high-water marks, summed across runs.
    let mut allocs: Vec<(String, u64)> = Vec::new();
    let mut hwm: Vec<(String, u64)> = Vec::new();
    for run in &runs {
        for (site, n) in &run.allocs {
            match allocs.iter_mut().find(|(s, _)| s == site) {
                Some((_, total)) => *total += n,
                None => allocs.push((site.clone(), *n)),
            }
        }
        for (name, v) in &run.hwm {
            match hwm.iter_mut().find(|(s, _)| s == name) {
                Some((_, m)) => *m = (*m).max(*v),
                None => hwm.push((name.clone(), *v)),
            }
        }
    }
    allocs.sort_by(|a, b| (b.1, &a.0).cmp(&(a.1, &b.0)));
    if !allocs.is_empty() {
        let _ = writeln!(out, "\nhot-loop allocations:");
        for (site, n) in allocs.iter().take(top) {
            let _ = writeln!(out, "  {site:<28} {n:>10}");
        }
    }
    if !hwm.is_empty() {
        let _ = writeln!(out, "\nhigh-water marks:");
        for (name, v) in &hwm {
            let _ = writeln!(out, "  {name:<28} {v:>10}");
        }
    }

    // Per-run throughput table only in the rollup view.
    if run_filter.is_none() && runs.len() > 1 {
        let _ = writeln!(out, "\nper-run throughput:");
        let _ = writeln!(out, "  {:<40} {:>12} {:>12}", "run", "events", "events/sec");
        for r in &runs {
            let eps = if r.events_per_sec > 0.0 { fmt_eps(r.events_per_sec) } else { "-".into() };
            let _ = writeln!(out, "  {:<40} {:>12} {:>12}", r.name, r.events, eps);
        }
    }
    Ok(out)
}

/// Render the deterministic diff between two bundles: per-kind count
/// and virtual-cost deltas of the rollups, plus events and run-set
/// changes. Wall readings are deliberately excluded — they differ
/// between any two real runs.
pub fn engine_diff(a: &EngineBundle, b: &EngineBundle) -> String {
    let ra: Vec<&EngineRun> = a.runs.iter().collect();
    let rb: Vec<&EngineRun> = b.runs.iter().collect();
    let ka = rollup_kinds(&ra);
    let kb = rollup_kinds(&rb);
    let ea: u64 = ra.iter().map(|r| r.events).sum();
    let eb: u64 = rb.iter().map(|r| r.events).sum();
    let mut out = String::new();
    let _ = writeln!(out, "=== engine profile diff (A → B) ===");
    let _ = writeln!(out, "events: {ea} → {eb} ({:+})", eb as i64 - ea as i64);
    let _ = writeln!(
        out,
        "  {:<16} {:>12} {:>12} {:>12} {:>14}",
        "kind", "count A", "count B", "Δcount", "Δvirtual(ms)"
    );
    let mut events: Vec<&str> = ka.iter().map(|k| k.event.as_str()).collect();
    for k in &kb {
        if !events.contains(&k.event.as_str()) {
            events.push(&k.event);
        }
    }
    for event in events {
        let za = KindRow::default();
        let a = ka.iter().find(|k| k.event == event).unwrap_or(&za);
        let b = kb.iter().find(|k| k.event == event).unwrap_or(&za);
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>12} {:>12} {:>14}",
            event,
            a.count,
            b.count,
            format!("{:+}", b.count as i64 - a.count as i64),
            format!("{:+.2}", (b.virtual_ns as f64 - a.virtual_ns as f64) / 1e6),
        );
    }
    let names_a: Vec<&str> = a.runs.iter().map(|r| r.name.as_str()).collect();
    let names_b: Vec<&str> = b.runs.iter().map(|r| r.name.as_str()).collect();
    let only_a: Vec<&str> = names_a.iter().copied().filter(|n| !names_b.contains(n)).collect();
    let only_b: Vec<&str> = names_b.iter().copied().filter(|n| !names_a.contains(n)).collect();
    let shared = names_a.len() - only_a.len();
    let _ = writeln!(
        out,
        "run coverage: {shared} shared, {} only in A, {} only in B",
        only_a.len(),
        only_b.len()
    );
    if !only_a.is_empty() {
        let _ = writeln!(out, "runs only in A (missing in B):");
        for name in &only_a {
            let _ = writeln!(out, "  {name}");
        }
    }
    if !only_b.is_empty() {
        let _ = writeln!(out, "runs only in B (missing in A):");
        for name in &only_b {
            let _ = writeln!(out, "  {name}");
        }
    }
    if shared == 0 && (!only_a.is_empty() || !only_b.is_empty()) {
        let _ = writeln!(
            out,
            "note: no run name appears in both bundles — the per-kind deltas above \
             compare disjoint run sets, not the same workload"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, events: u64, kernel: (u64, u64, u64, u64)) -> EngineRun {
        EngineRun {
            name: name.into(),
            events,
            kinds: vec![
                KindRow {
                    event: "kernel_advance".into(),
                    count: kernel.0,
                    virtual_ns: kernel.1,
                    inclusive_ns: kernel.2,
                    exclusive_ns: kernel.3,
                },
                KindRow {
                    event: "noise_draw".into(),
                    count: 2,
                    virtual_ns: 0,
                    inclusive_ns: 10,
                    exclusive_ns: 10,
                },
            ],
            gauges: vec![GaugeRow {
                series: "matcher.queued_sends".into(),
                phase: "solve".into(),
                count: 4,
                sum: 8,
                max: 5,
            }],
            hwm: vec![("matcher.channel_depth".into(), 3)],
            allocs: vec![("rank.pending".into(), 7)],
            total_wall_ns: 2_000_000,
            events_per_sec: events as f64 / 2e-3,
        }
    }

    #[test]
    fn text_ranks_kinds_by_exclusive_cost_and_reports_throughput() {
        let bundle = EngineBundle {
            runs: vec![
                run("x:tsc:rep0", 100, (5, 1000, 900, 800)),
                run("x:ref:rep0", 50, (3, 500, 450, 400)),
            ],
        };
        let text = engine_text(&bundle, None, 5).unwrap();
        assert!(text.contains("events: 150"), "{text}");
        assert!(text.contains("events/sec"), "{text}");
        // kernel_advance dominates exclusive cost and must rank first.
        let kernel = text.find("kernel_advance").unwrap();
        let noise = text.find("noise_draw").unwrap();
        assert!(kernel < noise, "{text}");
        assert!(text.contains("matcher.queued_sends"), "{text}");
        assert!(text.contains("rank.pending"), "{text}");
        assert!(text.contains("per-run throughput"), "{text}");
    }

    #[test]
    fn run_filter_selects_and_unknown_run_errors() {
        let bundle = EngineBundle { runs: vec![run("x:tsc:rep0", 100, (5, 1000, 900, 800))] };
        let text = engine_text(&bundle, Some("x:tsc:rep0"), 5).unwrap();
        assert!(text.contains("run x:tsc:rep0"), "{text}");
        assert!(engine_text(&bundle, Some("nope"), 5).is_err());
    }

    #[test]
    fn ranking_falls_back_to_virtual_cost_without_wall_data() {
        let mut kinds = vec![
            KindRow { event: "a".into(), count: 1, virtual_ns: 10, ..KindRow::default() },
            KindRow { event: "b".into(), count: 9, virtual_ns: 500, ..KindRow::default() },
        ];
        rank_kinds(&mut kinds);
        assert_eq!(kinds[0].event, "b");
    }

    #[test]
    fn diff_reports_count_deltas() {
        let a = EngineBundle { runs: vec![run("x:tsc:rep0", 100, (5, 1000, 0, 0))] };
        let b = EngineBundle {
            runs: vec![run("x:tsc:rep0", 120, (8, 1500, 0, 0)), run("y:tsc:rep0", 1, (1, 1, 0, 0))],
        };
        let text = engine_diff(&a, &b);
        assert!(text.contains("events: 100 → 121"), "{text}");
        assert!(text.contains("+4"), "{text}"); // kernel count 5 → 9 across rollup
        assert!(text.contains("run coverage: 1 shared, 0 only in A, 1 only in B"), "{text}");
        assert!(text.contains("runs only in B (missing in A):\n  y:tsc:rep0"), "{text}");
    }

    #[test]
    fn diff_of_non_overlapping_bundles_lists_missing_runs_per_side() {
        let a = EngineBundle { runs: vec![run("left:tsc:rep0", 10, (1, 1, 0, 0))] };
        let b = EngineBundle { runs: vec![run("right:tsc:rep0", 20, (2, 2, 0, 0))] };
        let text = engine_diff(&a, &b);
        assert!(text.contains("run coverage: 0 shared, 1 only in A, 1 only in B"), "{text}");
        assert!(text.contains("runs only in A (missing in B):\n  left:tsc:rep0"), "{text}");
        assert!(text.contains("runs only in B (missing in A):\n  right:tsc:rep0"), "{text}");
        assert!(text.contains("no run name appears in both bundles"), "{text}");
        // Identical run sets: coverage line only, no missing sections.
        let text = engine_diff(&a, &a);
        assert!(text.contains("run coverage: 1 shared, 0 only in A, 0 only in B"), "{text}");
        assert!(!text.contains("missing in"), "{text}");
    }

    #[test]
    fn bundle_roundtrips_through_the_exporter() {
        use nrlt_engineprof::{EngineProf, EventKind, ProfBundle, RunProf};
        let sink = EngineProf::new();
        let r = RunProf::new("it:tsc:rep0");
        r.enter(EventKind::KernelAdvance);
        r.leave(EventKind::KernelAdvance, 1234);
        r.gauge("matcher.queued_sends", "main", 3);
        r.hwm("matcher.channel_depth", 2);
        r.alloc("rank.pending", 1);
        r.set_events(9);
        let (n, d) = r.finish();
        sink.attach(n, d);
        let dir = std::env::temp_dir().join(format!("nrlt-engine-view-{}", std::process::id()));
        ProfBundle::from_prof(&sink).write(&dir).unwrap();
        let bundle = load_engine_bundle(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(bundle.runs.len(), 1);
        let run = &bundle.runs[0];
        assert_eq!(run.name, "it:tsc:rep0");
        assert_eq!(run.events, 9);
        let kernel = run.kinds.iter().find(|k| k.event == "kernel_advance").unwrap();
        assert_eq!((kernel.count, kernel.virtual_ns), (1, 1234));
        assert!(kernel.inclusive_ns > 0, "wall sidecar must merge in");
        assert!(run.total_wall_ns > 0);
        let text = engine_text(&bundle, None, 5).unwrap();
        assert!(text.contains("kernel_advance"));
    }
}
