//! The cross-run perf ledger (`results/history.jsonl`), its trend view,
//! and the EWMA-baseline regression gate.
//!
//! `BENCH_pipeline.json` is a *snapshot*: re-running an experiment
//! replaces its entry, so the baseline has no memory of whether a PR
//! moved the needle. The ledger is the *trajectory*: every bench or
//! regenerate invocation appends one schema-versioned record — git rev,
//! host parallelism, the invocation's bench entries, the sampling
//! profiler's top folded stacks, and an engineprof KPI digest — and
//! never rewrites old lines. `nrlt-report trend` renders per-key
//! trajectories (sparkline, first/last/best, EWMA), and
//! `bench-check --history` gates the current measurement against the
//! EWMA of the ledger instead of a single frozen snapshot, which is how
//! pipeit-style KPI gating keeps one lucky (or unlucky) run from
//! becoming the reference.
//!
//! Determinism contract: appending is wall-clock data by nature, but
//! *rendering* is pure — `trend_text` depends only on ledger bytes, so
//! the same ledger renders byte-identically (CI-diffable).

use crate::bench::{bench_check, BenchEntry, GateReport};
use nrlt_telemetry::json;
use std::fmt::Write as _;
use std::path::Path;

/// Version stamped into every ledger record. Readers skip records with
/// a *newer* schema (they were written by a future version) instead of
/// misparsing them; absent or older versions parse best-effort.
pub const HISTORY_SCHEMA_VERSION: u64 = 1;

/// EWMA smoothing factor for the trend baseline: weight of the newest
/// observation (pipeit uses the same neighbourhood — responsive to real
/// shifts, robust to one noisy run).
pub const EWMA_ALPHA: f64 = 0.3;

/// One appended ledger record: everything one bench/regenerate
/// invocation learned about performance.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Schema version the record was written with.
    pub schema: u64,
    /// Seconds since the Unix epoch at append time.
    pub unix_time: u64,
    /// Short git revision of the tree that ran (may carry `-dirty`).
    pub git_rev: String,
    /// `available_parallelism` of the measuring host.
    pub host_parallelism: usize,
    /// Binary that ran (e.g. `fig3`).
    pub bin: String,
    /// The invocation's timed experiments.
    pub entries: Vec<BenchEntry>,
    /// Sampling profiler's top folded stacks (`a;b;c`, sample count),
    /// count-descending. Empty when sampling was off.
    pub top_stacks: Vec<(String, u64)>,
    /// Engineprof KPI digest: (run name, engine events/sec). Empty when
    /// the engine profiler was off.
    pub engineprof_eps: Vec<(String, f64)>,
}

/// Serialize one record as a single JSON line (no trailing newline).
pub fn record_line(r: &HistoryRecord) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\": {}, \"unix_time\": {}, \"git_rev\": {}, \"host_parallelism\": {}, \"bin\": {}, \"entries\": [",
        r.schema,
        r.unix_time,
        json::string(&r.git_rev),
        r.host_parallelism,
        json::string(&r.bin),
    );
    for (i, e) in r.entries.iter().enumerate() {
        let comma = if i + 1 < r.entries.len() { ", " } else { "" };
        let overhead = match e.overhead_vs_plain_pct {
            Some(pct) => json::number(pct),
            None => "null".to_owned(),
        };
        let _ = write!(
            out,
            "{{\"bin\": {}, \"run\": {}, \"jobs\": {}, \"host_parallelism\": {}, \"wall_seconds\": {}, \"events\": {}, \"events_per_sec\": {}, \"overhead_vs_plain_pct\": {overhead}, \"peak_rss_bytes\": {}{}}}{comma}",
            json::string(&e.bin),
            json::string(&e.run),
            e.jobs,
            e.host_parallelism,
            json::number(e.wall_seconds),
            e.events,
            json::number(e.events_per_sec),
            e.peak_rss_bytes,
            crate::bench::latency_fields(e),
        );
    }
    let _ = write!(out, "], \"top_stacks\": [");
    for (i, (stack, n)) in r.top_stacks.iter().enumerate() {
        let comma = if i + 1 < r.top_stacks.len() { ", " } else { "" };
        let _ = write!(out, "[{}, {n}]{comma}", json::string(stack));
    }
    let _ = write!(out, "], \"engineprof_eps\": [");
    for (i, (run, eps)) in r.engineprof_eps.iter().enumerate() {
        let comma = if i + 1 < r.engineprof_eps.len() { ", " } else { "" };
        let _ = write!(out, "[{}, {}]{comma}", json::string(run), json::number(*eps));
    }
    let _ = write!(out, "]}}");
    out
}

/// Append one record to the ledger at `path`, creating parents and the
/// file as needed. Existing lines are never touched.
pub fn append_record(path: &Path, r: &HistoryRecord) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(file, "{}", record_line(r))
}

/// Parse one ledger line. `None` for malformed lines and for records
/// written by a newer schema.
pub fn parse_record(line: &str) -> Option<HistoryRecord> {
    let v = json::parse(line.trim()).ok()?;
    let schema = v.get("schema").and_then(|s| s.as_f64()).unwrap_or(0.0) as u64;
    if schema > HISTORY_SCHEMA_VERSION {
        return None;
    }
    let entries = v
        .get("entries")
        .and_then(|e| e.as_arr())
        .map(|arr| arr.iter().filter_map(parse_entry).collect())
        .unwrap_or_default();
    let top_stacks = v
        .get("top_stacks")
        .and_then(|e| e.as_arr())
        .map(|arr| {
            arr.iter()
                .filter_map(|pair| {
                    let p = pair.as_arr()?;
                    Some((p.first()?.as_str()?.to_owned(), p.get(1)?.as_f64()? as u64))
                })
                .collect()
        })
        .unwrap_or_default();
    let engineprof_eps = v
        .get("engineprof_eps")
        .and_then(|e| e.as_arr())
        .map(|arr| {
            arr.iter()
                .filter_map(|pair| {
                    let p = pair.as_arr()?;
                    Some((p.first()?.as_str()?.to_owned(), p.get(1)?.as_f64()?))
                })
                .collect()
        })
        .unwrap_or_default();
    Some(HistoryRecord {
        schema,
        unix_time: v.get("unix_time").and_then(|t| t.as_f64()).unwrap_or(0.0) as u64,
        git_rev: v.get("git_rev").and_then(|g| g.as_str()).unwrap_or("").to_owned(),
        host_parallelism: v.get("host_parallelism").and_then(|h| h.as_f64()).unwrap_or(0.0)
            as usize,
        bin: v.get("bin").and_then(|b| b.as_str()).unwrap_or("").to_owned(),
        entries,
        top_stacks,
        engineprof_eps,
    })
}

fn parse_entry(v: &json::Value) -> Option<BenchEntry> {
    Some(BenchEntry {
        bin: v.get("bin")?.as_str()?.to_owned(),
        run: v.get("run")?.as_str()?.to_owned(),
        jobs: v.get("jobs")?.as_f64()? as usize,
        host_parallelism: v.get("host_parallelism").and_then(|h| h.as_f64()).unwrap_or(0.0)
            as usize,
        wall_seconds: v.get("wall_seconds")?.as_f64()?,
        events: v.get("events").and_then(|e| e.as_f64()).unwrap_or(0.0) as u64,
        events_per_sec: v.get("events_per_sec").and_then(|e| e.as_f64()).unwrap_or(0.0),
        overhead_vs_plain_pct: v.get("overhead_vs_plain_pct").and_then(|e| e.as_f64()),
        peak_rss_bytes: v.get("peak_rss_bytes").and_then(|e| e.as_f64()).unwrap_or(0.0) as u64,
        p50_ns: v.get("p50_ns").and_then(|e| e.as_f64()).unwrap_or(0.0) as u64,
        p95_ns: v.get("p95_ns").and_then(|e| e.as_f64()).unwrap_or(0.0) as u64,
        p99_ns: v.get("p99_ns").and_then(|e| e.as_f64()).unwrap_or(0.0) as u64,
    })
}

/// Load every parseable record from a ledger file, in file order.
pub fn read_history(path: &Path) -> std::io::Result<Vec<HistoryRecord>> {
    Ok(std::fs::read_to_string(path)?.lines().filter_map(parse_record).collect())
}

/// Exponentially weighted moving average with [`EWMA_ALPHA`]: seeded on
/// the first value, each later value folded in at weight α. 0 for an
/// empty series.
pub fn ewma(values: &[f64]) -> f64 {
    let mut it = values.iter();
    let Some(&first) = it.next() else { return 0.0 };
    it.fold(first, |acc, &v| acc + EWMA_ALPHA * (v - acc))
}

/// Eight-level Unicode sparkline over `values`, min–max normalised. A
/// flat series renders as all-middle bars.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (min, max) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    values
        .iter()
        .map(|&v| {
            if max <= min {
                BARS[3]
            } else {
                let t = (v - min) / (max - min);
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// [`sparkline`] over an optionally-gapped series: present values
/// min–max normalise as usual, absent slots (records that did not
/// measure the key) render as `·` so the bar positions stay aligned
/// with the ledger's record indices.
pub fn sparkline_gaps(values: &[Option<f64>]) -> String {
    let present: Vec<f64> = values.iter().copied().flatten().collect();
    let bars = sparkline(&present);
    let mut it = bars.chars();
    values.iter().map(|v| if v.is_some() { it.next().unwrap_or('·') } else { '·' }).collect()
}

/// One key's trajectory across the ledger: one slot per ledger record,
/// in record order. `None` marks a record that did not measure the key
/// — the trend view renders those as `·` gaps instead of silently
/// dropping the column (which used to misalign a series against the
/// record index list whenever a run was skipped for one invocation).
struct Series {
    key: String,
    walls: Vec<Option<f64>>,
    eps: Vec<Option<f64>>,
    rss: Vec<Option<f64>>,
    p99: Vec<Option<f64>>,
    oversubscribed: bool,
}

impl Series {
    fn present_walls(&self) -> Vec<f64> {
        self.walls.iter().copied().flatten().collect()
    }
}

/// Group bench entries by `(bin, run, jobs)` key across records. Keys
/// appear in first-seen order; every series is padded to one slot per
/// record so trajectories stay aligned with the record index; an entry
/// that was ever measured oversubscribed marks the whole series
/// (skipped by the gate, flagged by the trend view).
fn series(records: &[HistoryRecord], key_filter: Option<&str>) -> Vec<Series> {
    let mut out: Vec<Series> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        for e in &r.entries {
            let key = e.key();
            if let Some(f) = key_filter {
                if !key.contains(f) {
                    continue;
                }
            }
            let s = match out.iter_mut().find(|s| s.key == key) {
                Some(s) => s,
                None => {
                    out.push(Series {
                        key,
                        walls: vec![None; i],
                        eps: vec![None; i],
                        rss: vec![None; i],
                        p99: vec![None; i],
                        oversubscribed: false,
                    });
                    out.last_mut().expect("just pushed")
                }
            };
            if s.walls.len() > i {
                continue; // duplicate key within one record: keep the first
            }
            s.walls.push(Some(e.wall_seconds));
            s.eps.push((e.throughput() > 0.0).then(|| e.throughput()));
            s.rss.push((e.peak_rss_bytes > 0).then_some(e.peak_rss_bytes as f64));
            s.p99.push((e.p99_ns > 0).then_some(e.p99_ns as f64));
            s.oversubscribed |= e.oversubscribed();
        }
        for s in out.iter_mut() {
            if s.walls.len() == i {
                s.walls.push(None);
                s.eps.push(None);
                s.rss.push(None);
                s.p99.push(None);
            }
        }
    }
    out
}

/// Render the ledger's per-key trajectories: a record index, then one
/// row per `(bin, run, jobs)` key with sparkline, first/last/best wall
/// seconds, the last-vs-first delta, the EWMA baseline the gate would
/// use, the latest engine throughput (queries/sec for service entries),
/// the latest p99 latency (`-` for series that never recorded one), and
/// the peak-RSS trajectory (sparkline + latest value; `-` for series
/// that never recorded one). Records that skipped a key render as `·`
/// gaps, keeping every sparkline aligned with the record index list.
/// Output depends only on the ledger bytes (and the filter), so the
/// same ledger renders byte-identically.
pub fn trend_text(records: &[HistoryRecord], key_filter: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== perf trend ({} ledger records) ===", records.len());
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "  [{i:>2}] {} {} host_parallelism={} entries={}",
            r.git_rev,
            r.bin,
            r.host_parallelism,
            r.entries.len()
        );
    }
    let all = series(records, key_filter);
    if all.is_empty() {
        let _ = writeln!(out, "no bench entries match");
        return out;
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<42} {:<12} {:>9} {:>9} {:>9} {:>8} {:>9} {:>11} {:>9} {:<12} {:>9}",
        "key",
        "wall trend",
        "first",
        "last",
        "best",
        "Δ%",
        "ewma",
        "events/s",
        "p99",
        "rss trend",
        "rss"
    );
    for s in &all {
        let walls = s.present_walls();
        let first = *walls.first().expect("a series has at least one measurement");
        let last = *walls.last().expect("a series has at least one measurement");
        let best = walls.iter().copied().fold(f64::INFINITY, f64::min);
        let delta = if first > 0.0 { (last / first - 1.0) * 100.0 } else { 0.0 };
        let last_eps = s.eps.iter().copied().flatten().last();
        let eps = match last_eps {
            Some(v) => format!("{v:>11.0}"),
            None => format!("{:>11}", "-"),
        };
        // Tail latency: service-style entries only (`-` elsewhere).
        let p99 = match s.p99.iter().copied().flatten().last() {
            Some(ns) => format!("{:>7.2}ms", ns / 1e6),
            None => format!("{:>9}", "-"),
        };
        // RSS: only records that measured one (0 = unknown host/legacy).
        let (rss_trend, rss_last) = match s.rss.iter().copied().flatten().last() {
            Some(latest) => {
                (sparkline_gaps(&s.rss), format!("{:>8.1}M", latest / (1 << 20) as f64))
            }
            None => (String::new(), format!("{:>9}", "-")),
        };
        let flag = if s.oversubscribed { " (oversubscribed)" } else { "" };
        let _ = writeln!(
            out,
            "  {:<42} {:<12} {:>8.3}s {:>8.3}s {:>8.3}s {:>+7.1}% {:>8.3}s {eps} {p99} {rss_trend:<12} {rss_last}{flag}",
            s.key,
            sparkline_gaps(&s.walls),
            first,
            last,
            best,
            delta,
            ewma(&walls),
        );
    }
    // Latest sampled hot stacks, when the newest record carries any —
    // the wall-clock "where does the time go" answer next to the trend.
    if let Some(r) = records.iter().rev().find(|r| !r.top_stacks.is_empty()) {
        let _ = writeln!(out);
        let _ = writeln!(out, "  latest sampled hot stacks ({} {}):", r.git_rev, r.bin);
        for (stack, n) in r.top_stacks.iter().take(10) {
            let _ = writeln!(out, "    {n:>8}  {stack}");
        }
    }
    out
}

/// Synthetic baseline from the ledger: per key, wall time and
/// throughput are the EWMA over the non-oversubscribed history.
/// Feeding this to [`bench_check`] gives `bench-check --history` —
/// same gate semantics (unmatched keys never fail, oversubscribed
/// current entries skipped), trend-calibrated thresholds.
pub fn ewma_baseline(records: &[HistoryRecord]) -> Vec<BenchEntry> {
    series(records, None)
        .into_iter()
        .filter(|s| !s.oversubscribed)
        .map(|s| {
            // key() is "{bin} {run} jobs={jobs}"; rebuild fields from the
            // first record that carries the key instead of re-parsing.
            let probe = records
                .iter()
                .flat_map(|r| r.entries.iter())
                .find(|e| e.key() == s.key)
                .expect("series key came from these records");
            let eps: Vec<f64> = s.eps.iter().copied().flatten().collect();
            let rss: Vec<f64> = s.rss.iter().copied().flatten().collect();
            BenchEntry {
                bin: probe.bin.clone(),
                run: probe.run.clone(),
                jobs: probe.jobs,
                host_parallelism: probe.host_parallelism,
                wall_seconds: ewma(&s.present_walls()),
                events: 0,
                events_per_sec: ewma(&eps),
                overhead_vs_plain_pct: None,
                peak_rss_bytes: ewma(&rss) as u64,
                p50_ns: 0,
                p95_ns: 0,
                p99_ns: 0,
            }
        })
        .collect()
}

/// Gate `current` against the ledger's EWMA baseline.
pub fn history_gate(
    records: &[HistoryRecord],
    current: &[BenchEntry],
    max_regress: f64,
) -> GateReport {
    bench_check(&ewma_baseline(records), current, max_regress)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(run: &str, jobs: usize, wall: f64, eps: f64) -> BenchEntry {
        BenchEntry {
            bin: "fig3".into(),
            run: run.into(),
            jobs,
            host_parallelism: 4,
            wall_seconds: wall,
            events: 0,
            events_per_sec: eps,
            overhead_vs_plain_pct: None,
            peak_rss_bytes: 0,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
        }
    }

    fn record(rev: &str, entries: Vec<BenchEntry>) -> HistoryRecord {
        HistoryRecord {
            schema: HISTORY_SCHEMA_VERSION,
            unix_time: 1_700_000_000,
            git_rev: rev.into(),
            host_parallelism: 4,
            bin: "fig3".into(),
            entries,
            top_stacks: vec![("experiment.mode_cell;measure.run;engine.run".into(), 412)],
            engineprof_eps: vec![("LULESH-1:tsc:rep0".into(), 4_500_000.0)],
        }
    }

    #[test]
    fn record_lines_round_trip() {
        let mut e = entry("LULESH-1", 1, 10.5, 4_700_000.0);
        e.overhead_vs_plain_pct = Some(12.5);
        e.peak_rss_bytes = 768 << 20;
        let r = record("abc1234-dirty", vec![e, entry("LULESH-1:observe", 1, 14.0, 0.0)]);
        let line = record_line(&r);
        assert!(!line.contains('\n'), "one record = one line");
        assert!(line.contains("\"overhead_vs_plain_pct\": null"), "{line}");
        assert_eq!(parse_record(&line), Some(r));
    }

    #[test]
    fn newer_schema_and_garbage_lines_are_skipped() {
        assert_eq!(parse_record("not json"), None);
        assert_eq!(parse_record(""), None);
        let mut r = record("abc", vec![]);
        r.schema = HISTORY_SCHEMA_VERSION + 1;
        assert_eq!(parse_record(&record_line(&r)), None, "future schema must be skipped");
    }

    #[test]
    fn append_accumulates_and_reads_back_in_order() {
        let dir = std::env::temp_dir().join("nrlt-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        let _ = std::fs::remove_file(&path);
        let r1 = record("rev1", vec![entry("LULESH-1", 1, 10.0, 0.0)]);
        let r2 = record("rev2", vec![entry("LULESH-1", 1, 9.0, 0.0)]);
        append_record(&path, &r1).unwrap();
        append_record(&path, &r2).unwrap();
        let back = read_history(&path).unwrap();
        assert_eq!(back, vec![r1, r2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ewma_tracks_but_smooths() {
        assert_eq!(ewma(&[]), 0.0);
        assert_eq!(ewma(&[5.0]), 5.0);
        let drifting = ewma(&[10.0, 10.0, 20.0]);
        assert!(drifting > 10.0 && drifting < 20.0, "{drifting}");
        // One outlier moves the baseline less than the outlier itself.
        assert!(ewma(&[10.0, 10.0, 10.0, 40.0]) < 20.0);
    }

    #[test]
    fn sparkline_is_monotone_and_total() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▄▄");
        let s = sparkline(&[1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
    }

    #[test]
    fn trend_text_is_deterministic_and_flags_oversubscription() {
        let mut over = entry("LULESH-1", 8, 20.0, 0.0);
        over.host_parallelism = 1;
        let records = vec![
            record("rev1", vec![entry("LULESH-1", 1, 10.0, 0.0), over.clone()]),
            record("rev2", vec![entry("LULESH-1", 1, 9.0, 0.0), over]),
        ];
        let a = trend_text(&records, None);
        let b = trend_text(&records, None);
        assert_eq!(a, b, "same ledger must render byte-identically");
        assert!(a.contains("fig3 LULESH-1 jobs=1"), "{a}");
        assert!(a.contains("(oversubscribed)"), "{a}");
        assert!(a.contains("latest sampled hot stacks"), "{a}");
        assert!(a.contains("-10.0%"), "wall went 10.0 -> 9.0: {a}");
        let filtered = trend_text(&records, Some("jobs=1"));
        assert!(!filtered.contains("jobs=8"), "{filtered}");
    }

    #[test]
    fn trend_renders_peak_rss_trajectories() {
        let mut lean = entry("MiniFE-weak-10000", 1, 5.0, 2_000_000.0);
        lean.peak_rss_bytes = 256 << 20;
        let mut fat = lean.clone();
        fat.peak_rss_bytes = 512 << 20;
        let records = vec![record("rev1", vec![lean]), record("rev2", vec![fat])];
        let text = trend_text(&records, None);
        assert!(text.contains("rss trend"), "{text}");
        assert!(text.contains("512.0M"), "latest peak RSS rendered in MiB: {text}");
        assert!(text.contains("2000000"), "latest events/s rendered: {text}");
        // A series that never measured RSS renders `-`, not 0.0M.
        let bare = vec![record("rev1", vec![entry("LULESH-1", 1, 10.0, 0.0)])];
        let text = trend_text(&bare, None);
        assert!(text.contains('-'), "{text}");
        assert!(!text.contains("0.0M"), "{text}");
    }

    #[test]
    fn missing_keys_render_as_gaps_not_dropped_columns() {
        // LULESH-1 is measured in records 0 and 2 but skipped in record
        // 1 (e.g. `--only MiniFE-1` for one invocation): its sparkline
        // must show a `·` gap at index 1, and MiniFE-1 (first seen in
        // record 1) must lead with a gap — both stay 3 columns wide.
        let records = vec![
            record("rev1", vec![entry("LULESH-1", 1, 10.0, 0.0)]),
            record("rev2", vec![entry("MiniFE-1", 1, 3.0, 0.0)]),
            record("rev3", vec![entry("LULESH-1", 1, 20.0, 0.0), entry("MiniFE-1", 1, 4.0, 0.0)]),
        ];
        let text = trend_text(&records, None);
        assert!(text.contains("▁·█"), "gap in the middle of LULESH-1: {text}");
        assert!(text.contains("·▁█"), "leading gap for MiniFE-1: {text}");
        assert_eq!(sparkline_gaps(&[None, Some(1.0), None]), "·▄·");
        assert_eq!(sparkline_gaps(&[]), "");
    }

    #[test]
    fn service_entries_render_qps_and_p99_columns() {
        let mut svc = entry("mix", 4, 10.0, 5_000.0);
        svc.bin = "serve".into();
        svc.events = 50_000;
        svc.p50_ns = 900_000;
        svc.p95_ns = 2_000_000;
        svc.p99_ns = 6_500_000;
        let line = record_line(&record("rev1", vec![svc.clone()]));
        assert!(line.contains("\"p99_ns\": 6500000"), "{line}");
        let back = parse_record(&line).unwrap();
        assert_eq!(back.entries[0].p99_ns, 6_500_000);

        let records = vec![record("rev1", vec![svc])];
        let text = trend_text(&records, None);
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("6.50ms"), "latest p99 in ms: {text}");
        assert!(text.contains("5000"), "qps via the events/s column: {text}");
        // Non-service series render `-` in the p99 column.
        let plain = trend_text(&[record("rev1", vec![entry("LULESH-1", 1, 10.0, 0.0)])], None);
        assert!(plain.contains('-'), "{plain}");
    }

    #[test]
    fn history_gate_fails_on_synthetic_regression() {
        let records = vec![
            record("rev1", vec![entry("LULESH-1", 1, 10.0, 1_000_000.0)]),
            record("rev2", vec![entry("LULESH-1", 1, 10.2, 1_000_000.0)]),
            record("rev3", vec![entry("LULESH-1", 1, 9.8, 1_000_000.0)]),
        ];
        // Injected regression: 4x the EWMA baseline.
        let slow = [entry("LULESH-1", 1, 40.0, 250_000.0)];
        let report = history_gate(&records, &slow, 3.0);
        assert!(report.failed(), "4x the EWMA must trip the gate");
        // The same run at historical speed passes.
        let fine = [entry("LULESH-1", 1, 10.1, 1_000_000.0)];
        assert!(!history_gate(&records, &fine, 3.0).failed());
        // Keys with no history never fail.
        let new = [entry("Brand-New", 2, 100.0, 0.0)];
        let report = history_gate(&records, &new, 3.0);
        assert!(!report.failed());
        assert_eq!(report.unmatched.len(), 1);
    }

    #[test]
    fn oversubscribed_history_is_excluded_from_the_baseline() {
        let mut over = entry("LULESH-1", 8, 2.0, 0.0);
        over.host_parallelism = 1;
        let records = vec![record("rev1", vec![entry("LULESH-1", 1, 10.0, 0.0), over])];
        let baseline = ewma_baseline(&records);
        assert_eq!(baseline.len(), 1);
        assert_eq!(baseline[0].jobs, 1);
    }
}
