//! `nrlt-report` — post-hoc explorer over run artifacts.
//!
//! Subcommands over a telemetry bundle directory (as written by any
//! bench bin's `--telemetry <dir>` / `--report <dir>` flags):
//!
//! ```text
//! nrlt-report inspect <bundle-dir>            span/counter/histogram stats
//! nrlt-report flamegraph <bundle-dir>         collapsed stacks on stdout
//! nrlt-report critical-path <bundle-dir>      dominant span chain per track
//! nrlt-report diff <bundle-a> <bundle-b>      what changed between two runs
//! ```
//!
//! The resource-observatory explorer over `--observe` bundles:
//!
//! ```text
//! nrlt-report observe <bundle-dir> [--run NAME] [--top K] [--wait metric#i]
//! ```
//!
//! The engine-introspection view over `--engine-prof` bundles:
//!
//! ```text
//! nrlt-report engine <bundle-dir> [--run NAME] [--top K] [--diff <bundle-dir>]
//! ```
//!
//! And the perf regression gate over `BENCH_pipeline.json`-format files
//! (or, with `--history`, against the EWMA of the run ledger) plus the
//! trend view over `results/history.jsonl`:
//!
//! ```text
//! nrlt-report bench-check --baseline BENCH_pipeline.json \
//!     --current new.json [--max-regress 1.5]
//! nrlt-report bench-check --history results/history.jsonl \
//!     --current new.json [--max-regress 1.5]
//! nrlt-report trend [results/history.jsonl] [--key <substring>]
//! ```
//!
//! Exit status: 0 ok / gate passed, 1 gate regressed, 2 usage or I/O
//! error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use nrlt_report::bench;
use nrlt_report::{bench_check, diff_text, folded, hot_paths_text, inspect_text, Bundle};

const USAGE: &str = "\
usage: nrlt-report <command> [args]

commands:
  inspect <bundle-dir>         span statistics, counters, histograms
  flamegraph <bundle-dir>      collapsed-stack flamegraph to stdout
  critical-path <bundle-dir>   dominant span chain per track
  diff <bundle-a> <bundle-b>   compare two bundles
  observe <bundle-dir> [--run <name>] [--top <k>] [--wait <metric#i>]
                               resource observatory: contended resources per
                               phase, noise share per wait cell, provenance of
                               a named (default: the dominant) wait state
  engine <bundle-dir> [--run <name>] [--top <k>] [--diff <bundle-dir>]
                               engine introspection: per-event-kind cost KPIs,
                               events/sec, queue pressure, hot-loop allocations;
                               --diff compares the deterministic accounting of
                               two bundles
  bench-check (--baseline <file> | --history <ledger>) --current <file>
              [--max-regress <factor>]
                               gate current wall times and engine throughput
                               against a frozen baseline file or against the
                               EWMA of the run ledger
  trend [<ledger>] [--key <substring>]
                               per-key perf trajectories over the run ledger
                               (default ledger: results/history.jsonl):
                               sparkline, first/last/best, EWMA baseline,
                               latest sampled hot stacks

a bundle-dir is a directory containing metrics.jsonl, as written by the
bench bins' --telemetry/--report flags; for `observe` it is a directory
containing observe.jsonl, as written by the bins' --observe flag; for
`engine` it is a directory containing engineprof.json, as written by the
bins' --engine-prof flag.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("nrlt-report: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().map(String::as_str).ok_or("missing command")?;
    match cmd {
        "inspect" => {
            let b = load_bundle(args.get(1))?;
            print!("{}", inspect_text(&b));
            Ok(ExitCode::SUCCESS)
        }
        "flamegraph" => {
            let b = load_bundle(args.get(1))?;
            print!("{}", folded(&b.spans));
            Ok(ExitCode::SUCCESS)
        }
        "critical-path" => {
            let b = load_bundle(args.get(1))?;
            print!("{}", hot_paths_text(&b.spans));
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let a = load_bundle(args.get(1))?;
            let b = load_bundle(args.get(2))?;
            print!("{}", diff_text(&a, &b));
            Ok(ExitCode::SUCCESS)
        }
        "observe" => run_observe(&args[1..]),
        "engine" => run_engine(&args[1..]),
        "bench-check" => run_bench_check(&args[1..]),
        "trend" => run_trend(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_bundle(arg: Option<&String>) -> Result<Bundle, String> {
    let dir = arg.ok_or("missing bundle directory argument")?;
    Bundle::load(Path::new(dir))
}

fn run_observe(args: &[String]) -> Result<ExitCode, String> {
    let mut dir: Option<PathBuf> = None;
    let mut run: Option<String> = None;
    let mut top = 5usize;
    let mut wait: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |inline: Option<&str>| -> Result<String, String> {
            match inline {
                Some(v) => Ok(v.to_owned()),
                None => it.next().cloned().ok_or_else(|| format!("{arg} requires a value")),
            }
        };
        if arg == "--run" || arg.starts_with("--run=") {
            run = Some(take(arg.strip_prefix("--run="))?);
        } else if arg == "--top" || arg.starts_with("--top=") {
            let raw = take(arg.strip_prefix("--top="))?;
            top = raw
                .parse::<usize>()
                .ok()
                .filter(|v| *v >= 1)
                .ok_or_else(|| format!("--top must be a positive integer, got {raw:?}"))?;
        } else if arg == "--wait" || arg.starts_with("--wait=") {
            wait = Some(take(arg.strip_prefix("--wait="))?);
        } else if arg.starts_with('-') {
            return Err(format!("unknown observe argument {arg:?}"));
        } else if dir.is_none() {
            dir = Some(PathBuf::from(arg));
        } else {
            return Err(format!("unexpected observe argument {arg:?}"));
        }
    }
    let dir = dir.ok_or("observe requires a bundle directory argument")?;
    let text = nrlt_report::observe_query(&dir, run.as_deref(), top, wait.as_deref())
        .map_err(|e| e.message().to_owned())?;
    print!("{text}");
    Ok(ExitCode::SUCCESS)
}

fn run_engine(args: &[String]) -> Result<ExitCode, String> {
    let mut dir: Option<PathBuf> = None;
    let mut run: Option<String> = None;
    let mut top = 5usize;
    let mut diff: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |inline: Option<&str>| -> Result<String, String> {
            match inline {
                Some(v) => Ok(v.to_owned()),
                None => it.next().cloned().ok_or_else(|| format!("{arg} requires a value")),
            }
        };
        if arg == "--run" || arg.starts_with("--run=") {
            run = Some(take(arg.strip_prefix("--run="))?);
        } else if arg == "--top" || arg.starts_with("--top=") {
            let raw = take(arg.strip_prefix("--top="))?;
            top = raw
                .parse::<usize>()
                .ok()
                .filter(|v| *v >= 1)
                .ok_or_else(|| format!("--top must be a positive integer, got {raw:?}"))?;
        } else if arg == "--diff" || arg.starts_with("--diff=") {
            diff = Some(PathBuf::from(take(arg.strip_prefix("--diff="))?));
        } else if arg.starts_with('-') {
            return Err(format!("unknown engine argument {arg:?}"));
        } else if dir.is_none() {
            dir = Some(PathBuf::from(arg));
        } else {
            return Err(format!("unexpected engine argument {arg:?}"));
        }
    }
    let dir = dir.ok_or("engine requires a bundle directory argument")?;
    match diff {
        Some(other) => {
            let bundle = nrlt_report::load_engine_bundle(&dir)?;
            let b = nrlt_report::load_engine_bundle(&other)?;
            print!("{}", nrlt_report::engine_diff(&bundle, &b));
        }
        None => {
            let text = nrlt_report::engine_query(&dir, run.as_deref(), top)
                .map_err(|e| e.message().to_owned())?;
            print!("{text}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn run_bench_check(args: &[String]) -> Result<ExitCode, String> {
    let mut baseline: Option<PathBuf> = None;
    let mut history: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut max_regress = 1.5f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |inline: Option<&str>| -> Result<String, String> {
            match inline {
                Some(v) => Ok(v.to_owned()),
                None => it.next().cloned().ok_or_else(|| format!("{arg} requires a value")),
            }
        };
        if arg == "--baseline" || arg.starts_with("--baseline=") {
            baseline = Some(PathBuf::from(take(arg.strip_prefix("--baseline="))?));
        } else if arg == "--history" || arg.starts_with("--history=") {
            history = Some(PathBuf::from(take(arg.strip_prefix("--history="))?));
        } else if arg == "--current" || arg.starts_with("--current=") {
            current = Some(PathBuf::from(take(arg.strip_prefix("--current="))?));
        } else if arg == "--max-regress" || arg.starts_with("--max-regress=") {
            let raw = take(arg.strip_prefix("--max-regress="))?;
            max_regress = raw
                .parse::<f64>()
                .ok()
                .filter(|v| *v >= 1.0)
                .ok_or_else(|| format!("--max-regress must be a factor >= 1.0, got {raw:?}"))?;
        } else {
            return Err(format!("unknown bench-check argument {arg:?}"));
        }
    }
    let current = current.ok_or("bench-check requires --current <file>")?;
    let cur_entries = bench::read_entries(&current)
        .map_err(|e| format!("cannot read current {}: {e}", current.display()))?;
    let report = match (baseline, history) {
        (Some(_), Some(_)) => {
            return Err("--baseline and --history are mutually exclusive".into());
        }
        (Some(baseline), None) => {
            let base_entries = bench::read_entries(&baseline)
                .map_err(|e| format!("cannot read baseline {}: {e}", baseline.display()))?;
            bench_check(&base_entries, &cur_entries, max_regress)
        }
        (None, Some(history)) => {
            let records = nrlt_report::read_history(&history)
                .map_err(|e| format!("cannot read ledger {}: {e}", history.display()))?;
            nrlt_report::history_gate(&records, &cur_entries, max_regress)
        }
        (None, None) => {
            return Err("bench-check requires --baseline <file> or --history <ledger>".into());
        }
    };
    print!("{}", report.render());
    Ok(if report.failed() { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

fn run_trend(args: &[String]) -> Result<ExitCode, String> {
    let mut ledger: Option<PathBuf> = None;
    let mut key: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |inline: Option<&str>| -> Result<String, String> {
            match inline {
                Some(v) => Ok(v.to_owned()),
                None => it.next().cloned().ok_or_else(|| format!("{arg} requires a value")),
            }
        };
        if arg == "--key" || arg.starts_with("--key=") {
            key = Some(take(arg.strip_prefix("--key="))?);
        } else if arg.starts_with('-') {
            return Err(format!("unknown trend argument {arg:?}"));
        } else if ledger.is_none() {
            ledger = Some(PathBuf::from(arg));
        } else {
            return Err(format!("unexpected trend argument {arg:?}"));
        }
    }
    let ledger = ledger.unwrap_or_else(|| PathBuf::from("results/history.jsonl"));
    let text =
        nrlt_report::trend_query(&ledger, key.as_deref()).map_err(|e| e.message().to_owned())?;
    print!("{text}");
    Ok(ExitCode::SUCCESS)
}
