//! Loading a telemetry bundle back into memory.
//!
//! A `--telemetry <dir>` bundle stores its machine-readable state in
//! `metrics.jsonl` — one self-contained JSON object per line, tagged
//! with a `"kind"` field. This module parses that file (with the
//! in-repo JSON parser; the workspace stays dependency-free) back into
//! counters, [`Histogram`]s, and [`SpanRecord`]s, which is everything
//! the inspector, flamegraph, hot-path, and diff views need.

use nrlt_telemetry::json::{self, Value};
use nrlt_telemetry::{Histogram, SpanRecord};
use std::collections::BTreeMap;
use std::path::Path;

/// An in-memory telemetry bundle.
#[derive(Debug, Clone, Default)]
pub struct Bundle {
    /// Label for rendering (the directory name when loaded from disk).
    pub name: String,
    /// Counter and gauge values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Histogram>,
    /// Span records in file order.
    pub spans: Vec<SpanRecord>,
}

impl Bundle {
    /// Load `dir/metrics.jsonl`. The directory name becomes the bundle
    /// label.
    pub fn load(dir: &Path) -> Result<Bundle, String> {
        let path = dir.join("metrics.jsonl");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let mut b = Bundle::from_jsonl(&text)?;
        b.name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| dir.display().to_string());
        Ok(b)
    }

    /// Parse the contents of a `metrics.jsonl` export. Unknown kinds are
    /// ignored (forward compatibility); malformed lines are errors.
    pub fn from_jsonl(text: &str) -> Result<Bundle, String> {
        let mut bundle = Bundle::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let kind = v.get("kind").and_then(Value::as_str).unwrap_or("");
            match kind {
                "counter" => {
                    bundle.counters.insert(str_field(&v, "name")?, u64_field(&v, "value")?);
                }
                "histogram" => {
                    bundle.hists.insert(str_field(&v, "name")?, parse_hist(&v)?);
                }
                "span" => {
                    bundle.spans.push(SpanRecord {
                        name: str_field(&v, "name")?,
                        cat: str_field(&v, "cat")?,
                        track: u64_field(&v, "track")? as u32,
                        depth: u64_field(&v, "depth")? as u32,
                        start_ns: u64_field(&v, "start_ns")?,
                        dur_ns: u64_field(&v, "dur_ns")?,
                        closed: matches!(v.get("closed"), Some(Value::Bool(true))),
                    });
                }
                _ => {}
            }
        }
        Ok(bundle)
    }

    /// Total duration over all root (depth-0) spans — the wall time the
    /// bundle's tracks spent inside instrumented phases.
    pub fn root_span_total_ns(&self) -> u64 {
        self.spans.iter().filter(|s| s.depth == 0).map(|s| s.dur_ns).sum()
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// A `u64` field. The parser stores numbers as `f64`, so values above
/// 2^53 lose precision — fine for durations and counts read back for
/// reporting.
fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|f| f.max(0.0) as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

/// Rebuild a [`Histogram`] from its exported digest: bucket counts slot
/// back in by each bucket's lower bound.
fn parse_hist(v: &Value) -> Result<Histogram, String> {
    let mut h = Histogram::new();
    h.count = u64_field(v, "count")?;
    h.sum = u64_field(v, "sum")?;
    h.max = u64_field(v, "max")?;
    h.min = if h.count == 0 { u64::MAX } else { u64_field(v, "min")? };
    if let Some(buckets) = v.get("buckets").and_then(Value::as_arr) {
        for b in buckets {
            let lo = u64_field(b, "lo")?;
            let count = u64_field(b, "count")?;
            h.buckets[Histogram::bucket_index(lo)] = count;
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_telemetry::{export, Telemetry};

    #[test]
    fn roundtrips_an_export() {
        let t = Telemetry::new();
        t.add("engine.events", 42);
        t.set("jobs", 4);
        t.observe("depth", 3);
        t.observe("depth", 900);
        {
            let _outer = t.span("measure");
            let _inner = t.span_cat("analyze", "analysis");
        }
        let b = Bundle::from_jsonl(&export::metrics_jsonl(&t)).unwrap();
        assert_eq!(b.counters.get("engine.events"), Some(&42));
        assert_eq!(b.counters.get("jobs"), Some(&4));
        let h = &b.hists["depth"];
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, 900);
        assert_eq!(h.sum, 903);
        assert_eq!(b.spans.len(), 2);
        assert_eq!(b.spans[0].name, "measure");
        assert_eq!(b.spans[1].cat, "analysis");
        assert_eq!(b.spans[1].depth, 1);
        assert!(b.spans.iter().all(|s| s.closed));
    }

    #[test]
    fn empty_and_blank_lines_are_fine() {
        let b = Bundle::from_jsonl("\n\n").unwrap();
        assert!(b.counters.is_empty() && b.spans.is_empty());
        assert_eq!(b.root_span_total_ns(), 0);
    }

    #[test]
    fn malformed_lines_are_reported_with_their_number() {
        let err = Bundle::from_jsonl("{\"kind\":\"counter\",\"name\":\"a\",\"value\":1}\nnot json")
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn unknown_kinds_are_skipped() {
        let b = Bundle::from_jsonl("{\"kind\":\"future-thing\",\"name\":\"x\"}").unwrap();
        assert!(b.counters.is_empty() && b.hists.is_empty() && b.spans.is_empty());
    }
}
