//! Textual explorer over an `--observe` bundle: the three query
//! families of the resource observatory, rendered per run.
//!
//! 1. Top-k contended resources per phase, from the exact
//!    per-(series, phase) aggregates.
//! 2. Noise share per wait-metric cell, plus the per-channel noise
//!    totals the shares decompose into.
//! 3. Provenance of a named wait state (`metric#i`), or of the
//!    dominant one when no name is given.
//!
//! Everything renders from exact aggregates and the deterministic
//! bundle order, so output is byte-identical across repeats and worker
//! counts.

use nrlt_observe::export::ObserveBundle;
use nrlt_observe::query::{
    dominant_wait, named_wait, noise_shares, top_contended, waits_by_severity,
};
use nrlt_observe::{RunData, WaitProvenance};
use std::fmt::Write as _;

/// Render the full observatory report for `bundle`.
///
/// * `run_filter` restricts to one named run (`None` = all runs).
/// * `top_k` bounds the per-phase contention table.
/// * `wait` names a specific wait state (`metric#i`) whose provenance
///   to print instead of each run's dominant one.
///
/// Errors when the filter or the wait name matches nothing.
pub fn observe_text(
    bundle: &ObserveBundle,
    run_filter: Option<&str>,
    top_k: usize,
    wait: Option<&str>,
) -> Result<String, String> {
    let runs: Vec<(&String, &RunData)> = bundle
        .runs
        .iter()
        .filter(|(name, _)| run_filter.is_none_or(|f| f == name.as_str()))
        .collect();
    if runs.is_empty() {
        return Err(match run_filter {
            Some(f) => format!("no run named {f:?} in the bundle"),
            None => "the bundle contains no runs".to_owned(),
        });
    }
    let mut out = String::new();
    let mut wait_found = false;
    for (name, data) in &runs {
        let _ = writeln!(out, "== run {name} ==");
        render_contention(&mut out, data, top_k);
        render_noise(&mut out, data);
        match wait {
            Some(w) => {
                if let Some(p) = named_wait(data, w) {
                    wait_found = true;
                    let _ = writeln!(out, "\nwait state {w}:");
                    render_provenance(&mut out, p);
                } else {
                    let _ = writeln!(out, "\nwait state {w}: not recorded in this run");
                }
            }
            None => {
                if let Some((dom, p)) = dominant_wait(data) {
                    let _ = writeln!(out, "\ndominant wait state {dom}:");
                    render_provenance(&mut out, p);
                }
            }
        }
        let _ = writeln!(out);
    }
    if let Some(w) = wait {
        if !wait_found {
            return Err(format!("wait state {w:?} not found in any selected run"));
        }
    }
    Ok(out)
}

fn render_contention(out: &mut String, data: &RunData, k: usize) {
    // Per-location progress watermarks are nanosecond-valued and would
    // drown every occupancy/depth counter in a by-mean ranking, so they
    // get their own spread table instead of contention rows.
    let top = top_contended(data, usize::MAX);
    if top.is_empty() {
        let _ = writeln!(out, "\nno counter samples recorded");
        return;
    }
    let _ = writeln!(out, "\ntop contended resources per phase (by mean sample):");
    for (phase, rows) in &top {
        let picked: Vec<_> = rows.iter().filter(|c| !is_watermark(&c.series)).take(k).collect();
        if picked.is_empty() {
            continue;
        }
        let label = if phase.is_empty() { "(outside phases)" } else { phase };
        let _ = writeln!(out, "  phase {label}:");
        for c in picked {
            let _ = writeln!(
                out,
                "    {:<28} mean {:>12.1}  max {:>10}  samples {:>8}",
                c.series, c.mean, c.max, c.count
            );
        }
    }
    let mut spreads = Vec::new();
    for (phase, rows) in &top {
        let marks: Vec<i64> =
            rows.iter().filter(|c| is_watermark(&c.series)).map(|c| c.max).collect();
        if marks.len() > 1 {
            let (lo, hi) = (marks.iter().min().unwrap(), marks.iter().max().unwrap());
            spreads.push((phase, marks.len(), hi - lo));
        }
    }
    if !spreads.is_empty() {
        let _ = writeln!(out, "\nprogress watermark spread per phase (slowest - fastest):");
        for (phase, n, spread) in spreads {
            let label = if phase.is_empty() { "(outside phases)" } else { phase };
            let _ = writeln!(out, "    {label:<16} {spread:>14} ns across {n} locations");
        }
    }
}

fn is_watermark(series: &str) -> bool {
    series.ends_with(".progress_ns")
}

fn render_noise(out: &mut String, data: &RunData) {
    // Per-channel totals from the exact aggregates, summed over
    // (rank, phase) — BTreeMap order keeps the rows stable.
    let mut channels: std::collections::BTreeMap<&str, (u64, i64, u64)> = Default::default();
    for ((kind, _, _), a) in &data.noise_aggs {
        let e = channels.entry(kind.name()).or_default();
        e.0 += a.count;
        e.1 += a.total_ns;
        e.2 += a.delay_ns;
    }
    if !channels.is_empty() {
        let _ = writeln!(out, "\nnoise injected per channel:");
        for (name, (count, total, delay)) in channels {
            let _ = writeln!(
                out,
                "    {name:<12} draws {count:>8}  net {total:>14} ns  delay {delay:>14} ns"
            );
        }
    }
    let shares = noise_shares(data);
    if shares.is_empty() {
        return;
    }
    let _ = writeln!(out, "\nnoise share per wait-metric cell (by severity):");
    for s in shares {
        let _ = writeln!(
            out,
            "    {:<24} {:<44} n {:>5}  severity {:>12}  noise {:>12} ns  share {:>5.1}%",
            s.metric, s.path, s.count, s.severity, s.noise_ns, s.share_pct
        );
    }
}

fn render_provenance(out: &mut String, w: &WaitProvenance) {
    let _ = writeln!(
        out,
        "  waiter  loc {:<4} {}  enter {}  severity {}",
        w.waiter_loc, w.waiter_path, w.waiter_enter, w.severity
    );
    let _ = writeln!(
        out,
        "  delayer loc {:<4} {}  enter {}",
        w.delayer_loc, w.delayer_path, w.delayer_enter
    );
    let _ = writeln!(out, "  injected noise in causal window: {} ns", w.noise_ns);
    if w.chain.is_empty() {
        return;
    }
    let _ = writeln!(out, "  causal chain (oldest first):");
    for link in &w.chain {
        let _ = writeln!(
            out,
            "    {:<8} loc {:<4} [{:>12} .. {:>12}]  {}",
            link.what, link.loc, link.start, link.end, link.path
        );
    }
}

/// List the retained wait-state names of a run (for `--wait`
/// discovery): `metric#i` with per-metric severity-descending indices.
pub fn wait_names(data: &RunData) -> Vec<String> {
    let metrics: std::collections::BTreeSet<&str> =
        data.waits.iter().map(|w| w.metric.as_str()).collect();
    let mut names = Vec::new();
    for metric in metrics {
        for i in 0..waits_by_severity(data, metric).len() {
            names.push(format!("{metric}#{i}"));
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_observe::{ChainLink, NoiseKind, Observe, RunObserve};

    fn bundle() -> ObserveBundle {
        let obs = Observe::new();
        let run = RunObserve::new("App:tsc:rep0");
        for i in 0..8 {
            run.sample("numa0.bw_threads", "cg", 10 * i, i, 12 + i as i64);
            run.sample("mpi.match_queue_sends", "halo", 10 * i, i, 3);
        }
        run.noise(NoiseKind::OsDetour, 0, 5, 1, "cg", 40, 900);
        run.noise(NoiseKind::NetJitter, 1, 0, 2, "halo", 55, -120);
        run.wait(WaitProvenance {
            metric: "delay_mpi_latesender".into(),
            waiter_loc: 2,
            waiter_path: "main/halo/MPI_Recv".into(),
            waiter_enter: 70,
            severity: 500,
            delayer_loc: 0,
            delayer_path: "main/halo/MPI_Send".into(),
            delayer_enter: 40,
            noise_ns: 250,
            chain: vec![ChainLink {
                what: "comp".into(),
                path: "main/cg".into(),
                loc: 0,
                start: 10,
                end: 40,
            }],
        });
        obs.attach(run);
        ObserveBundle::from_observe(&obs)
    }

    #[test]
    fn renders_all_three_query_families() {
        let b = bundle();
        let text = observe_text(&b, None, 5, None).unwrap();
        assert!(text.contains("== run App:tsc:rep0 =="));
        assert!(text.contains("phase cg:"));
        assert!(text.contains("numa0.bw_threads"));
        assert!(text.contains("os_detour"));
        assert!(text.contains("net_jitter"));
        assert!(text.contains("dominant wait state delay_mpi_latesender#0:"));
        assert!(text.contains("main/halo/MPI_Recv"));
        assert!(text.contains("causal chain"));
    }

    #[test]
    fn named_wait_and_filters() {
        let b = bundle();
        let text =
            observe_text(&b, Some("App:tsc:rep0"), 1, Some("delay_mpi_latesender#0")).unwrap();
        assert!(text.contains("wait state delay_mpi_latesender#0:"));
        assert!(observe_text(&b, Some("nope"), 1, None).is_err());
        assert!(observe_text(&b, None, 1, Some("delay_mpi_latesender#9")).is_err());
        let names = wait_names(&b.runs["App:tsc:rep0"]);
        assert_eq!(names, vec!["delay_mpi_latesender#0"]);
    }
}
