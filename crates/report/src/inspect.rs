//! Span statistics over a telemetry bundle.
//!
//! Reconstructs the span nesting (per track, from each record's depth),
//! splits every span's duration into self time and child time, and
//! aggregates per span name: count, total, self total, and a self-time
//! distribution digested through the log-scale [`Histogram`] — which is
//! where the p50/p90/p99 columns of the inspector table come from.

use nrlt_telemetry::{Histogram, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::bundle::Bundle;

/// Aggregated statistics of one span name.
#[derive(Debug, Clone)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of inclusive durations.
    pub total_ns: u64,
    /// Sum of self times (inclusive minus nested children).
    pub self_ns: u64,
    /// Distribution of per-span self times.
    pub self_hist: Histogram,
}

/// Self time of every span: its duration minus the durations of its
/// direct children, clamped at zero. Children are found per track via
/// the recorded depths: a span at depth `d` is a child of the most
/// recent unfinished span at depth `d - 1` on the same track.
pub fn self_times(spans: &[SpanRecord]) -> Vec<u64> {
    let mut child_ns = vec![0u64; spans.len()];
    let mut by_track: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        by_track.entry(s.track).or_default().push(i);
    }
    for idx in by_track.into_values() {
        let mut idx = idx;
        // Open order within a track is start order; records from a
        // bundle keep file order, but sort defensively so hand-built
        // span sets behave too.
        idx.sort_by_key(|&i| (spans[i].start_ns, spans[i].depth, i));
        let mut stack: Vec<usize> = Vec::new();
        for i in idx {
            stack.truncate(spans[i].depth as usize);
            if let Some(&parent) = stack.last() {
                child_ns[parent] = child_ns[parent].saturating_add(spans[i].dur_ns);
            }
            stack.push(i);
        }
    }
    spans.iter().zip(&child_ns).map(|(s, &c)| s.dur_ns.saturating_sub(c)).collect()
}

/// Per-name aggregation of a span list, sorted by descending self time
/// (name as the tie-break).
pub fn span_stats(spans: &[SpanRecord]) -> Vec<SpanStats> {
    let selfs = self_times(spans);
    let mut by_name: BTreeMap<&str, SpanStats> = BTreeMap::new();
    for (s, &self_ns) in spans.iter().zip(&selfs) {
        let e = by_name.entry(&s.name).or_insert_with(|| SpanStats {
            name: s.name.clone(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            self_hist: Histogram::new(),
        });
        e.count += 1;
        e.total_ns = e.total_ns.saturating_add(s.dur_ns);
        e.self_ns = e.self_ns.saturating_add(self_ns);
        e.self_hist.observe(self_ns);
    }
    let mut out: Vec<SpanStats> = by_name.into_values().collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    out
}

/// Render the inspector view of a bundle: the span-statistics table
/// (count, total, self, self-time percentiles), then counters, then
/// histogram digests.
pub fn inspect_text(bundle: &Bundle) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== telemetry inspector: {} ===", bundle.name);

    let stats = span_stats(&bundle.spans);
    if !stats.is_empty() {
        let total_self: u64 = stats.iter().map(|s| s.self_ns).sum();
        let _ = writeln!(out, "spans ({} records, {} names)", bundle.spans.len(), stats.len());
        let _ = writeln!(
            out,
            "  {:<32} {:>7} {:>11} {:>11} {:>6}  {:>9} {:>9} {:>9}",
            "span", "count", "total", "self", "self%", "p50", "p90", "p99"
        );
        for s in &stats {
            let pct =
                if total_self == 0 { 0.0 } else { 100.0 * s.self_ns as f64 / total_self as f64 };
            let _ = writeln!(
                out,
                "  {:<32} {:>7} {:>11} {:>11} {:>6.1}  {:>9} {:>9} {:>9}",
                s.name,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.self_ns),
                pct,
                fmt_ns(s.self_hist.percentile(0.50)),
                fmt_ns(s.self_hist.percentile(0.90)),
                fmt_ns(s.self_hist.percentile(0.99)),
            );
        }
        let _ = writeln!(out);
    }

    if !bundle.counters.is_empty() {
        let _ = writeln!(out, "counters");
        for (name, value) in &bundle.counters {
            let _ = writeln!(out, "  {name:<44} {value:>16}");
        }
        let _ = writeln!(out);
    }

    if !bundle.hists.is_empty() {
        let _ = writeln!(out, "histograms");
        for (name, h) in &bundle.hists {
            let _ = writeln!(
                out,
                "  {:<44} n={} min={} mean={:.1} p50={} p99={} max={}",
                name,
                h.count,
                if h.is_empty() { 0 } else { h.min },
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.99),
                h.max
            );
        }
    }

    out
}

/// Approximate duration formatting (log-scale buckets make sub-ns detail
/// meaningless anyway).
fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000_000 {
        format!("{:.1} s", ns as f64 / 1e9)
    } else if ns >= 10_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn span(name: &str, track: u32, depth: u32, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat: "pipeline".into(),
            track,
            depth,
            start_ns: start,
            dur_ns: dur,
            closed: true,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        // root [0, 100) → a [10, 40) → b [15, 25); root's self excludes
        // only a (b is a grandchild, already inside a's duration).
        let spans = [span("root", 0, 0, 0, 100), span("a", 0, 1, 10, 30), span("b", 0, 2, 15, 10)];
        let selfs = self_times(&spans);
        assert_eq!(selfs, vec![70, 20, 10]);
    }

    #[test]
    fn sibling_tracks_do_not_interfere() {
        let spans = [span("w", 1, 0, 0, 50), span("w", 2, 0, 0, 80), span("inner", 2, 1, 10, 30)];
        let selfs = self_times(&spans);
        assert_eq!(selfs, vec![50, 50, 30]);
    }

    #[test]
    fn stats_aggregate_by_name() {
        let spans =
            [span("mode", 1, 0, 0, 100), span("mode", 2, 0, 0, 300), span("analyze", 1, 1, 10, 40)];
        let stats = span_stats(&spans);
        assert_eq!(stats[0].name, "mode");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].total_ns, 400);
        assert_eq!(stats[0].self_ns, 360); // 60 + 300
        assert_eq!(stats[1].name, "analyze");
        assert_eq!(stats[1].self_hist.count, 1);
        // Percentile of a single 40 ns self time reports exactly 40.
        assert_eq!(stats[1].self_hist.percentile(0.5), 40);
    }

    #[test]
    fn inspector_renders_all_sections() {
        let mut b = Bundle { name: "t".into(), ..Default::default() };
        b.spans = vec![span("measure", 0, 0, 0, 2_000_000)];
        b.counters.insert("engine.events".into(), 7);
        let mut h = Histogram::new();
        h.observe(12);
        b.hists.insert("depth".into(), h);
        let s = inspect_text(&b);
        assert!(s.contains("measure"), "{s}");
        assert!(s.contains("engine.events"), "{s}");
        assert!(s.contains("depth"), "{s}");
        assert!(s.contains("p99"), "{s}");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(25_000), "25.0 µs");
        assert_eq!(fmt_ns(25_000_000), "25.0 ms");
        assert_eq!(fmt_ns(25_000_000_000), "25.0 s");
    }
}
