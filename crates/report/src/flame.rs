//! Flamegraph export and per-track hot-path extraction.
//!
//! [`folded`] renders pipeline spans in the collapsed-stack format of
//! Brendan Gregg's `flamegraph.pl` / [inferno]: one line per distinct
//! stack, `root;child;grandchild <self-nanoseconds>`, aggregated over
//! all tracks. Because each line carries *self* time, the totals are
//! conservative: the sum over every line equals the sum over root spans
//! of self + descendant time — i.e. exactly the root spans' inclusive
//! durations when spans nest properly (the acceptance invariant, covered
//! by a test).
//!
//! [`hot_paths_text`] is the span-tree analog of the trace-level
//! critical path in `nrlt-analysis`: per track, starting from the
//! longest root span, repeatedly descend into the child with the
//! largest inclusive duration. The resulting chain is the dominant
//! cost path a human would walk in a flamegraph viewer.
//!
//! [inferno]: https://github.com/jonhoo/inferno

use nrlt_telemetry::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::inspect::self_times;

/// Escape one frame name for the folded format. `;` separates frames
/// and the *last* space separates the stack from its value, so both
/// must be escaped — reversibly ([`unescape_frame`]), because sampled
/// stacks round-trip through this format (written by the harness, read
/// back by `parse_folded`).
pub fn escape_frame(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ';' => out.push_str("\\;"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape_frame`].
pub fn unescape_frame(frame: &str) -> String {
    let mut out = String::with_capacity(frame.len());
    let mut chars = frame.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some(';') => out.push(';'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => {
                // Unknown escape: keep it verbatim rather than lose bytes.
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Split a stack string on *unescaped* `;` and unescape each frame.
fn split_stack(stack: &str) -> Vec<String> {
    let mut frames = Vec::new();
    let mut cur = String::new();
    let mut escaped = false;
    for c in stack.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
        } else if c == '\\' {
            cur.push(c);
            escaped = true;
        } else if c == ';' {
            frames.push(unescape_frame(&cur));
            cur.clear();
        } else {
            cur.push(c);
        }
    }
    frames.push(unescape_frame(&cur));
    frames
}

/// Parse a folded document back into `(frames, value)` rows, inverting
/// [`folded`] / [`folded_from_counts`]. Lines without a parseable
/// trailing value are skipped.
pub fn parse_folded(doc: &str) -> Vec<(Vec<String>, u64)> {
    doc.lines()
        .filter_map(|l| {
            let (stack, v) = l.rsplit_once(' ')?;
            Some((split_stack(stack), v.parse::<u64>().ok()?))
        })
        .collect()
}

/// Render sampled stack counts in the collapsed-stack format: one line
/// per distinct stack, `a;b;c <samples>`, frames escaped, sorted by
/// stack. Unlike [`folded`], the values are *sample counts*, not
/// nanoseconds, and conserve nothing — a cooperative sampler only sees
/// threads that currently publish a stack, so totals carry no
/// inclusive-time invariant.
pub fn folded_from_counts(counts: &BTreeMap<Vec<&str>, u64>) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for (stack, &n) in counts {
        let chain = stack.iter().map(|f| escape_frame(f)).collect::<Vec<String>>().join(";");
        *agg.entry(chain).or_insert(0) += n;
    }
    let mut out = String::new();
    for (chain, n) in agg {
        let _ = writeln!(out, "{chain} {n}");
    }
    out
}

/// Stack-chain names per span: each span's ancestry joined with `;`,
/// names escaped via [`escape_frame`] so the chain is unambiguous.
fn stacks(spans: &[SpanRecord]) -> Vec<String> {
    let mut by_track: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        by_track.entry(s.track).or_default().push(i);
    }
    let mut out = vec![String::new(); spans.len()];
    for idx in by_track.into_values() {
        let mut idx = idx;
        idx.sort_by_key(|&i| (spans[i].start_ns, spans[i].depth, i));
        let mut chain: Vec<String> = Vec::new();
        for i in idx {
            chain.truncate(spans[i].depth as usize);
            chain.push(escape_frame(&spans[i].name));
            out[i] = chain.join(";");
        }
    }
    out
}

/// Collapsed-stack flamegraph document over all tracks: unique stacks
/// with their aggregate self time in nanoseconds, one per line, sorted
/// by stack for deterministic output.
pub fn folded(spans: &[SpanRecord]) -> String {
    let selfs = self_times(spans);
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for (chain, &self_ns) in stacks(spans).into_iter().zip(&selfs) {
        *agg.entry(chain).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (chain, ns) in agg {
        let _ = writeln!(out, "{chain} {ns}");
    }
    out
}

/// Sum of the values of a folded document (the left-hand side of the
/// conservation invariant).
pub fn folded_totals(folded: &str) -> u64 {
    folded
        .lines()
        .filter_map(|l| l.rsplit_once(' '))
        .filter_map(|(_, v)| v.parse::<u64>().ok())
        .sum()
}

/// One step of a hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotPathStep {
    /// Span name.
    pub name: String,
    /// Inclusive duration of the chosen span.
    pub dur_ns: u64,
    /// Depth in the span tree.
    pub depth: u32,
}

/// The dominant cost chain of one track: from the longest root span,
/// descend into the largest child until a leaf. Empty when the track has
/// no spans.
pub fn hot_path(spans: &[SpanRecord], track: u32) -> Vec<HotPathStep> {
    let idx: Vec<usize> = {
        let mut v: Vec<usize> = (0..spans.len()).filter(|&i| spans[i].track == track).collect();
        v.sort_by_key(|&i| (spans[i].start_ns, spans[i].depth, i));
        v
    };
    // children[i] = direct children of span i, via the depth stack.
    let mut children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut roots: Vec<usize> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for &i in &idx {
        stack.truncate(spans[i].depth as usize);
        match stack.last() {
            Some(&parent) => children.entry(parent).or_default().push(i),
            None => roots.push(i),
        }
        stack.push(i);
    }
    // Longest root, then repeatedly the longest child. Ties break on
    // earliest start then name for determinism.
    let pick = |candidates: &[usize]| -> Option<usize> {
        candidates.iter().copied().max_by(|&a, &b| {
            spans[a]
                .dur_ns
                .cmp(&spans[b].dur_ns)
                .then_with(|| spans[b].start_ns.cmp(&spans[a].start_ns))
                .then_with(|| spans[b].name.cmp(&spans[a].name))
        })
    };
    let mut path = Vec::new();
    let mut cur = pick(&roots);
    while let Some(i) = cur {
        path.push(HotPathStep {
            name: spans[i].name.clone(),
            dur_ns: spans[i].dur_ns,
            depth: spans[i].depth,
        });
        cur = children.get(&i).and_then(|c| pick(c));
    }
    path
}

/// Render the hot path of every track that has spans.
pub fn hot_paths_text(spans: &[SpanRecord]) -> String {
    let mut tracks: Vec<u32> = spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut out = String::new();
    let _ = writeln!(out, "=== hot paths (dominant span chain per track) ===");
    for track in tracks {
        let path = hot_path(spans, track);
        let Some(root) = path.first() else { continue };
        let label =
            if track == 0 { "pipeline".to_owned() } else { format!("worker {}", track - 1) };
        let _ = writeln!(out, "track {track} ({label})");
        for step in &path {
            let pct = if root.dur_ns == 0 {
                0.0
            } else {
                100.0 * step.dur_ns as f64 / root.dur_ns as f64
            };
            let _ = writeln!(
                out,
                "  {:indent$}{:<32} {:>14} ns  {:>5.1}%",
                "",
                step.name,
                step.dur_ns,
                pct,
                indent = step.depth as usize * 2
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, track: u32, depth: u32, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat: "pipeline".into(),
            track,
            depth,
            start_ns: start,
            dur_ns: dur,
            closed: true,
        }
    }

    #[test]
    fn folded_builds_semicolon_stacks() {
        let spans = [
            span("root", 0, 0, 0, 100),
            span("mode;weird", 0, 1, 10, 30),
            span("analyze", 0, 2, 15, 10),
        ];
        let f = folded(&spans);
        assert!(f.contains("root 70\n"), "{f}");
        assert!(f.contains("root;mode\\;weird 20\n"), "{f}");
        assert!(f.contains("root;mode\\;weird;analyze 10\n"), "{f}");
        // The escaped separator round-trips through the parser.
        let rows = parse_folded(&f);
        assert!(rows.iter().any(|(stack, v)| stack == &vec!["root", "mode;weird"] && *v == 20));
    }

    #[test]
    fn frame_escaping_round_trips() {
        for name in
            ["plain", "a;b", "with space", "tab\tchar", "line\nbreak", "back\\slash", "\\s;\\n \t"]
        {
            let escaped = escape_frame(name);
            assert!(!escaped.contains(' '), "escaped form must be space-free: {escaped:?}");
            assert!(!escaped.contains('\n'), "{escaped:?}");
            assert_eq!(unescape_frame(&escaped), name, "round-trip of {name:?}");
        }
    }

    #[test]
    fn sampled_counts_export_and_parse_without_conservation() {
        // Sampled stacks are non-conserving by nature: a parent can have
        // fewer samples than its children (the sampler only sees what is
        // published at tick time). The export must carry them verbatim —
        // conservation is asserted only for span-derived folded docs
        // (`folded_totals_equal_root_inclusive_time` above).
        let mut counts: BTreeMap<Vec<&str>, u64> = BTreeMap::new();
        counts.insert(vec!["experiment.mode_cell", "measure.run", "engine.run"], 90);
        counts.insert(vec!["experiment.mode_cell"], 3);
        counts.insert(vec!["odd name;x"], 7);
        let doc = folded_from_counts(&counts);
        assert!(doc.contains("experiment.mode_cell;measure.run;engine.run 90\n"), "{doc}");
        assert!(doc.contains("odd\\sname\\;x 7\n"), "{doc}");
        assert_eq!(folded_totals(&doc), 100);
        let rows = parse_folded(&doc);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().any(|(s, v)| s == &vec!["odd name;x"] && *v == 7));
        assert!(rows
            .iter()
            .any(|(s, v)| s == &vec!["experiment.mode_cell", "measure.run", "engine.run"]
                && *v == 90));
    }

    #[test]
    fn folded_totals_equal_root_inclusive_time() {
        // Two tracks, properly nested spans.
        let spans = [
            span("root", 0, 0, 0, 100),
            span("a", 0, 1, 10, 30),
            span("b", 0, 1, 50, 40),
            span("c", 0, 2, 55, 5),
            span("w", 1, 0, 0, 250),
            span("wa", 1, 1, 10, 240),
        ];
        let total = folded_totals(&folded(&spans));
        let roots: u64 = spans.iter().filter(|s| s.depth == 0).map(|s| s.dur_ns).sum();
        assert_eq!(total, roots);
        assert_eq!(total, 350);
    }

    #[test]
    fn identical_stacks_aggregate() {
        let spans =
            [span("root", 0, 0, 0, 100), span("rep", 0, 1, 10, 20), span("rep", 0, 1, 40, 30)];
        let f = folded(&spans);
        assert!(f.contains("root;rep 50\n"), "{f}");
        assert_eq!(folded_totals(&f), 100);
    }

    #[test]
    fn hot_path_follows_the_largest_child() {
        let spans = [
            span("root", 0, 0, 0, 100),
            span("small", 0, 1, 5, 20),
            span("big", 0, 1, 30, 60),
            span("leaf", 0, 2, 35, 40),
        ];
        let path = hot_path(&spans, 0);
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["root", "big", "leaf"]);
    }

    #[test]
    fn hot_paths_text_covers_each_track() {
        let spans = [span("root", 0, 0, 0, 100), span("w", 3, 0, 0, 50)];
        let s = hot_paths_text(&spans);
        assert!(s.contains("track 0 (pipeline)"), "{s}");
        assert!(s.contains("track 3 (worker 2)"), "{s}");
        assert_eq!(hot_path(&spans, 9), Vec::new());
    }
}
