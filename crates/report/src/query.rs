//! One query layer shared by the `nrlt-report` CLI and `nrlt-serve`.
//!
//! Each query surface used to live only inside the CLI's `main` —
//! load-an-artifact, render-a-view, print. Serving the same views over
//! HTTP needs the load/render steps as library calls with errors that
//! distinguish *whose fault it is*:
//!
//! * [`QueryError::NotFound`] — the artifact is fine but the request
//!   names a run / wait state / key that isn't in it (HTTP 404, CLI
//!   exit 2),
//! * [`QueryError::BadRequest`] — the request itself is malformed
//!   (HTTP 400, CLI exit 2),
//! * [`QueryError::Artifact`] — the artifact on disk is corrupt,
//!   truncated, or unreadable (HTTP 500, CLI exit 2). Messages carry
//!   path/line context from the loaders.
//!
//! The one-shot helpers here load-then-render; `nrlt-serve` instead
//! caches the loaded artifacts behind `Arc`s and calls the same render
//! functions ([`observe_text`](crate::observe_text),
//! [`engine_text`](crate::engine_text), [`severity_subset`],
//! [`trend_text`](crate::trend_text), [`folded`](crate::folded))
//! against the shared copies.

use std::fmt;
use std::path::Path;

use crate::archive::{load_report_doc, severity_subset};
use crate::{engine_text, load_engine_bundle, observe_text, read_history, trend_text};
use nrlt_observe::export::ObserveBundle;
use nrlt_telemetry::json;

/// Why a query failed, classified by fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The request names something the artifact doesn't contain.
    NotFound(String),
    /// The request itself is malformed.
    BadRequest(String),
    /// The artifact on disk is corrupt, truncated, or unreadable.
    Artifact(String),
}

impl QueryError {
    /// The human-readable message, independent of classification.
    pub fn message(&self) -> &str {
        match self {
            QueryError::NotFound(m) | QueryError::BadRequest(m) | QueryError::Artifact(m) => m,
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

fn artifact(path: &Path) -> impl FnOnce(String) -> QueryError + '_ {
    move |e| {
        if e.contains(&path.display().to_string()) {
            QueryError::Artifact(e)
        } else {
            QueryError::Artifact(format!("{}: {e}", path.display()))
        }
    }
}

/// The resource-observatory view over an `--observe` bundle directory.
pub fn observe_query(
    dir: &Path,
    run: Option<&str>,
    top: usize,
    wait: Option<&str>,
) -> Result<String, QueryError> {
    let bundle = ObserveBundle::load(dir).map_err(|e| artifact(dir)(e.to_string()))?;
    observe_text(&bundle, run, top, wait).map_err(QueryError::NotFound)
}

/// The engine-introspection view over an `--engine-prof` bundle
/// directory.
pub fn engine_query(dir: &Path, run: Option<&str>, top: usize) -> Result<String, QueryError> {
    let bundle = load_engine_bundle(dir).map_err(artifact(dir))?;
    engine_text(&bundle, run, top).map_err(QueryError::NotFound)
}

/// The severity view over an archived `report.json`, subset by run and
/// hotspot count, rendered back to compact deterministic JSON.
pub fn severity_query(
    report_json: &Path,
    run: Option<&str>,
    top: Option<usize>,
) -> Result<String, QueryError> {
    let doc = load_report_doc(report_json).map_err(QueryError::Artifact)?;
    let subset = severity_subset(&doc, run, top).map_err(QueryError::NotFound)?;
    Ok(json::render(&subset))
}

/// The per-key trend view over a history ledger.
pub fn trend_query(ledger: &Path, key: Option<&str>) -> Result<String, QueryError> {
    let records = read_history(ledger).map_err(|e| artifact(ledger)(e.to_string()))?;
    Ok(trend_text(&records, key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn corrupt_observe_bundle_is_an_artifact_error_not_a_panic() {
        let dir = tmpdir("nrlt_query_corrupt_observe");
        std::fs::write(dir.join("observe.jsonl"), "{\"kind\": \"sample\", truncated").unwrap();
        let err = observe_query(&dir, None, 5, None).unwrap_err();
        assert!(matches!(err, QueryError::Artifact(_)), "{err}");
        assert!(err.message().contains("nrlt_query_corrupt_observe"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_engine_bundle_is_an_artifact_error() {
        let dir = tmpdir("nrlt_query_corrupt_engine");
        std::fs::write(dir.join("engineprof.json"), "{\"runs\": [").unwrap();
        let err = engine_query(&dir, None, 5).unwrap_err();
        assert!(matches!(err, QueryError::Artifact(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_run_is_not_found_once_the_artifact_loads() {
        let dir = tmpdir("nrlt_query_notfound");
        let doc = "{\"bin\": \"x\", \"runs\": [{\"name\": \"A-1\", \"hotspots\": []}]}";
        let path = dir.join("report.json");
        std::fs::write(&path, doc).unwrap();
        assert!(severity_query(&path, Some("A-1"), None).is_ok());
        let err = severity_query(&path, Some("missing"), None).unwrap_err();
        assert!(matches!(err, QueryError::NotFound(_)), "{err}");

        std::fs::write(&path, "not json at all").unwrap();
        let err = severity_query(&path, None, None).unwrap_err();
        assert!(matches!(err, QueryError::Artifact(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trend_query_reads_the_ledger() {
        let dir = tmpdir("nrlt_query_trend");
        let ledger = dir.join("history.jsonl");
        let err = trend_query(&ledger, None).unwrap_err();
        assert!(matches!(err, QueryError::Artifact(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
