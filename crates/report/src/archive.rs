//! Loader and subsetting for archived `report.json` severity documents.
//!
//! The harness's `--report <dir>` flag writes `report.json` — the
//! machine-readable twin of the severity explorer (metric tree ×
//! clock-mode columns, diagnostics, top-N hotspot cells per run). This
//! module reads such a document back and carves run-/top-N-subsets out
//! of it, which is what `nrlt-serve` answers `/severity` queries from:
//! the archive is parsed once into a [`Value`], cached, and every query
//! re-renders a filtered view of the shared tree.
//!
//! Rendering goes through [`nrlt_telemetry::json::render`], so a given
//! subset is byte-deterministic — the concurrency test in `nrlt-serve`
//! relies on that.

use std::collections::BTreeMap;
use std::path::Path;

use nrlt_telemetry::json::{self, Value};

/// Load and structurally validate an archived `report.json`.
///
/// Errors carry the path and the parse/shape problem; a corrupt or
/// truncated archive must surface as `Err`, never a panic.
pub fn load_report_doc(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    let runs = doc
        .get("runs")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{}: missing \"runs\" array", path.display()))?;
    for (i, run) in runs.iter().enumerate() {
        if run.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("{}: runs[{i}] has no \"name\" string", path.display()));
        }
    }
    Ok(doc)
}

/// The run names of an archived severity document, in document order.
pub fn run_names(doc: &Value) -> Vec<String> {
    doc.get("runs")
        .and_then(Value::as_arr)
        .map(|runs| {
            runs.iter()
                .filter_map(|r| r.get("name").and_then(Value::as_str))
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default()
}

/// Subset an archived severity document: keep only `run` (all runs when
/// `None`) and truncate each run's hotspot list to `top` entries
/// (`None` keeps everything). Returns a new document sharing nothing
/// mutable with the input, ready for [`json::render`].
///
/// Errors with a not-found message when `run` names no run.
pub fn severity_subset(
    doc: &Value,
    run: Option<&str>,
    top: Option<usize>,
) -> Result<Value, String> {
    let runs = doc.get("runs").and_then(Value::as_arr).unwrap_or(&[]);
    let mut kept = Vec::new();
    for r in runs {
        let name = r.get("name").and_then(Value::as_str).unwrap_or("");
        if run.is_none_or(|want| want == name) {
            kept.push(truncate_hotspots(r, top));
        }
    }
    if kept.is_empty() {
        return Err(match run {
            Some(want) => format!("no run named {want:?} in the archive"),
            None => "the archive contains no runs".to_owned(),
        });
    }
    let mut out = BTreeMap::new();
    if let Some(bin) = doc.get("bin") {
        out.insert("bin".to_owned(), bin.clone());
    }
    out.insert("runs".to_owned(), Value::Arr(kept));
    Ok(Value::Obj(out))
}

fn truncate_hotspots(run: &Value, top: Option<usize>) -> Value {
    let (Value::Obj(members), Some(n)) = (run, top) else {
        return run.clone();
    };
    let mut out = members.clone();
    if let Some(Value::Arr(hotspots)) = out.get_mut("hotspots") {
        hotspots.truncate(n);
    }
    Value::Obj(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
        "bin": "fig3",
        "runs": [
            {"name": "A-1", "modes": ["tsc"], "hotspots": [{"p": 1}, {"p": 2}, {"p": 3}]},
            {"name": "B-1", "modes": ["tsc"], "hotspots": [{"p": 9}]}
        ]
    }"#;

    #[test]
    fn subsets_by_run_and_top() {
        let doc = json::parse(DOC).unwrap();
        assert_eq!(run_names(&doc), vec!["A-1", "B-1"]);

        let all = severity_subset(&doc, None, None).unwrap();
        assert_eq!(run_names(&all), vec!["A-1", "B-1"]);

        let only_a = severity_subset(&doc, Some("A-1"), Some(2)).unwrap();
        let runs = only_a.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("hotspots").unwrap().as_arr().unwrap().len(), 2);
        // Original untouched.
        let orig = doc.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(orig[0].get("hotspots").unwrap().as_arr().unwrap().len(), 3);

        assert!(severity_subset(&doc, Some("C-1"), None).unwrap_err().contains("no run named"));
    }

    #[test]
    fn subset_rendering_is_deterministic() {
        let doc = json::parse(DOC).unwrap();
        let a = json::render(&severity_subset(&doc, Some("A-1"), Some(1)).unwrap());
        let b = json::render(&severity_subset(&doc, Some("A-1"), Some(1)).unwrap());
        assert_eq!(a, b);
        assert!(a.starts_with("{\"bin\":\"fig3\",\"runs\":["));
    }

    #[test]
    fn corrupt_archives_are_errors_with_path_context() {
        let dir = std::env::temp_dir().join("nrlt_archive_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");

        std::fs::write(&path, "{\"bin\": \"x\", \"runs\": [{\"name\": ").unwrap();
        let err = load_report_doc(&path).unwrap_err();
        assert!(err.contains("report.json") && err.contains("invalid JSON"), "{err}");

        std::fs::write(&path, "{\"bin\": \"x\"}").unwrap();
        assert!(load_report_doc(&path).unwrap_err().contains("missing \"runs\""));

        std::fs::write(&path, "{\"runs\": [{\"modes\": []}]}").unwrap();
        assert!(load_report_doc(&path).unwrap_err().contains("runs[0] has no \"name\""));

        let missing = dir.join("nope.json");
        assert!(load_report_doc(&missing).unwrap_err().contains("cannot read"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
