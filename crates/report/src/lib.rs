//! # nrlt-report — the read side of the observability stack
//!
//! The pipeline *writes* two kinds of artifacts: analysis results
//! (wait-state severities, delay costs, critical-path imbalance from
//! `nrlt-analysis` / `nrlt-profile`) and self-telemetry bundles
//! (`--telemetry <dir>` from `nrlt-telemetry`). This crate *reads* them —
//! the `cube_stat` / `scalasca -examine` analog the write side was
//! missing:
//!
//! * [`severity`] — a CUBE-style severity explorer over
//!   [`ExperimentResult`](nrlt_core::ExperimentResult): metric tree ×
//!   call path × location, with per-mode (`tsc` vs `lt_*`) side-by-side
//!   columns, top-N hotspot ranking, and a machine-readable JSON twin.
//! * [`bundle`] — loads a telemetry bundle's `metrics.jsonl` back into
//!   counters, histograms, and span records.
//! * [`inspect`] — per-span-name statistics (count, total, self time,
//!   self-time percentiles via [`nrlt_telemetry::Histogram`]).
//! * [`flame`] — collapsed-stack flamegraph export and per-track hot-path
//!   (critical-chain) extraction over pipeline spans.
//! * [`diff`] — span and counter deltas between two bundles.
//! * [`bench`] — the `BENCH_pipeline.json` perf-baseline format (moved
//!   here from `nrlt-bench` so both the writer and the gate share one
//!   parser) and the `bench-check` regression gate.
//! * [`observe`] — the resource-observatory explorer over `--observe`
//!   bundles (`nrlt-observe`): top contended resources per phase,
//!   noise share per wait-metric cell, wait-state provenance chains.
//! * [`engine`] — the engine-introspection view over `--engine-prof`
//!   bundles (`nrlt-engineprof`): per-event-kind cost KPIs, queue
//!   pressure, hot-loop allocations, and a bundle diff.
//! * [`archive`] — loads archived `report.json` severity documents and
//!   carves run-/top-N subsets out of them (what `nrlt-serve` answers
//!   `/severity` from).
//! * [`query`] — the load-then-render query layer shared by this
//!   crate's CLI and `nrlt-serve`, with fault-classified
//!   [`QueryError`]s (not-found vs bad-request vs corrupt-artifact).
//!
//! The `nrlt-report` binary exposes all of it on the command line; the
//! bench harness's `--report <dir>` flag writes `report.txt`,
//! `report.json`, and `flamegraph.folded` through the same code.
//!
//! Everything is deterministic by construction: reports over noise-free
//! runs are byte-identical across worker counts and repeats, which is
//! what lets CI diff them.

#![warn(missing_docs)]

pub mod archive;
pub mod bench;
pub mod bundle;
pub mod diff;
pub mod engine;
pub mod flame;
pub mod history;
pub mod inspect;
pub mod observe;
pub mod query;
pub mod severity;

pub use archive::{load_report_doc, run_names, severity_subset};
pub use bench::{bench_check, BenchEntry, GateReport, GateRow};
pub use bundle::Bundle;
pub use diff::diff_text;
pub use engine::{engine_diff, engine_text, load_engine_bundle, EngineBundle, EngineRun};
pub use flame::{
    escape_frame, folded, folded_from_counts, folded_totals, hot_paths_text, parse_folded,
    unescape_frame,
};
pub use history::{
    append_record, ewma_baseline, history_gate, read_history, trend_text, HistoryRecord,
    HISTORY_SCHEMA_VERSION,
};
pub use inspect::{inspect_text, span_stats, SpanStats};
pub use observe::{observe_text, wait_names};
pub use query::{engine_query, observe_query, severity_query, trend_query, QueryError};
pub use severity::{mode_text, severity_json, severity_text};
