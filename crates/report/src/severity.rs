//! The CUBE-style severity explorer.
//!
//! Renders an [`ExperimentResult`] — the per-mode mean profiles the
//! analysis produced — as a metric × call-tree × location severity
//! report: the metric tree with inclusive `%_T` per mode side by side,
//! a top-N ranking of exclusive hotspot cells, per-location imbalance
//! of those hotspots, and the paper's mode diagnostics (overhead,
//! Jaccard vs `tsc`, run-to-run stability). A machine-readable JSON
//! twin carries the same data for scripted comparison.
//!
//! Every number comes from the deterministic analysis profiles, and
//! every iteration walks a `BTreeMap` or a fixed tree order, so the
//! rendered report of a noise-free run is byte-identical across worker
//! counts and repeats.

use nrlt_core::{ExperimentResult, ModeResult};
use nrlt_profile::{Metric, Profile};
use nrlt_telemetry::json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One ranked hotspot cell: an exclusive (metric, call path) severity
/// with its per-mode `%_T` values and per-location spread under the
/// ranking mode.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// The metric of the cell.
    pub metric: Metric,
    /// Rendered call path (`main/solve/MPI_Allreduce`).
    pub path: String,
    /// `%_T` of the cell per measured mode (aligned with the result's
    /// mode order); 0.0 where a mode has no such cell.
    pub pct_by_mode: Vec<f64>,
    /// Smallest per-location severity under the ranking mode.
    pub loc_min: f64,
    /// Mean per-location severity under the ranking mode.
    pub loc_mean: f64,
    /// Largest per-location severity under the ranking mode.
    pub loc_max: f64,
}

impl Hotspot {
    /// Imbalance factor max/mean (1.0 = perfectly balanced; 0.0 when the
    /// mean is zero).
    pub fn imbalance(&self) -> f64 {
        if self.loc_mean == 0.0 {
            0.0
        } else {
            self.loc_max / self.loc_mean
        }
    }
}

/// `%_T` cells of one mode keyed by (metric, rendered call path) — the
/// rendered path is the join key across modes, whose call trees are
/// interned independently.
fn mode_cells(profile: &Profile) -> BTreeMap<(Metric, String), f64> {
    profile.map_mc().into_iter().map(|((m, c), v)| ((m, profile.path_string(c)), v)).collect()
}

/// The top-`n` exclusive (metric, call path) cells ranked by `%_T` under
/// the first measured mode, with all modes' values attached.
pub fn hotspots(result: &ExperimentResult, n: usize) -> Vec<Hotspot> {
    let Some(ranking) = result.modes.first() else {
        return Vec::new();
    };
    let per_mode: Vec<BTreeMap<(Metric, String), f64>> =
        result.modes.iter().map(|m| mode_cells(&m.mean)).collect();

    let mut ranked: Vec<(f64, Metric, String)> =
        per_mode[0].iter().map(|((m, p), &v)| (v, *m, p.clone())).collect();
    // Descending by severity; name/path tie-break keeps equal cells in
    // one deterministic order.
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| (a.1, &a.2).cmp(&(b.1, &b.2))));
    ranked.truncate(n);

    ranked
        .into_iter()
        .map(|(_, metric, path)| {
            let pct_by_mode = per_mode
                .iter()
                .map(|cells| cells.get(&(metric, path.clone())).copied().unwrap_or(0.0))
                .collect();
            let (loc_min, loc_mean, loc_max) = location_spread(&ranking.mean, metric, &path);
            Hotspot { metric, path, pct_by_mode, loc_min, loc_mean, loc_max }
        })
        .collect()
}

/// Per-location `%_T` spread of one exclusive cell.
fn location_spread(profile: &Profile, metric: Metric, path: &str) -> (f64, f64, f64) {
    let total = profile.total_time();
    let Some(id) = profile.find_path(path) else {
        return (0.0, 0.0, 0.0);
    };
    if total == 0.0 || profile.n_locations() == 0 {
        return (0.0, 0.0, 0.0);
    }
    let values: Vec<f64> =
        (0..profile.n_locations()).map(|l| 100.0 * profile.get(metric, id, l) / total).collect();
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(0.0, f64::max);
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (min, mean, max)
}

/// The metric tree in display order as `(metric, depth)` rows.
fn metric_rows() -> Vec<(Metric, usize)> {
    let mut rows = Vec::new();
    fn rec(m: Metric, depth: usize, out: &mut Vec<(Metric, usize)>) {
        out.push((m, depth));
        for &c in m.children() {
            rec(c, depth + 1, out);
        }
    }
    rec(Metric::Time, 0, &mut rows);
    rows
}

/// True when `tsc` was measured (the Jaccard-vs-tsc column exists).
fn has_tsc(result: &ExperimentResult) -> bool {
    result.modes.iter().any(|m| m.mode == nrlt_measure::ClockMode::Tsc)
}

/// Render the full severity report of one experiment as text.
pub fn severity_text(result: &ExperimentResult, top_n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== severity: {} ===", result.name);
    if result.modes.is_empty() {
        let _ = writeln!(out, "no modes measured");
        return out;
    }
    let _ = writeln!(
        out,
        "reference time {:.6} s (virtual), ranked on {}",
        result.reference_time().as_secs_f64(),
        result.modes[0].mode.name()
    );
    let _ = writeln!(out);

    // Metric tree × mode, inclusive %_T.
    let _ = writeln!(out, "metric tree, inclusive %_T per mode");
    let _ = write!(out, "  {:<26}", "metric");
    for m in &result.modes {
        let _ = write!(out, " {:>8}", m.mode.name());
    }
    let _ = writeln!(out);
    for (metric, depth) in metric_rows() {
        let _ = write!(
            out,
            "  {:indent$}{:<width$}",
            "",
            metric.name(),
            indent = depth * 2,
            width = 26usize.saturating_sub(depth * 2)
        );
        for m in &result.modes {
            let _ = write!(out, " {:>8.2}", m.mean.pct_t(metric));
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);

    // Mode diagnostics: overhead, similarity, stability.
    let _ = writeln!(out, "mode diagnostics");
    let _ = write!(out, "  {:<26}", "overhead_pct");
    for m in &result.modes {
        let _ = write!(out, " {:>8.2}", result.overhead_total(m.mode));
    }
    let _ = writeln!(out);
    if has_tsc(result) {
        let _ = write!(out, "  {:<26}", "j_mc_vs_tsc");
        for m in &result.modes {
            let _ = write!(out, " {:>8.2}", result.jaccard_vs_tsc(m.mode));
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "  {:<26}", "min_run_to_run_j");
    for m in &result.modes {
        let _ = write!(out, " {:>8.2}", m.min_run_to_run_jaccard());
    }
    let _ = writeln!(out);
    let _ = writeln!(out);

    // Top-N hotspot cells, per-mode side by side.
    let hs = hotspots(result, top_n);
    let _ = writeln!(
        out,
        "top {} hotspot cells, exclusive %_T (ranked on {})",
        hs.len(),
        result.modes[0].mode.name()
    );
    let _ = write!(out, "   # {:<26}", "metric");
    for m in &result.modes {
        let _ = write!(out, " {:>8}", m.mode.name());
    }
    let _ = writeln!(out, "  call path");
    for (i, h) in hs.iter().enumerate() {
        let _ = write!(out, "  {:>2} {:<26}", i + 1, h.metric.name());
        for v in &h.pct_by_mode {
            let _ = write!(out, " {v:>8.2}");
        }
        let _ = writeln!(out, "  {}", h.path);
    }
    let _ = writeln!(out);

    // Location dimension: imbalance of the hotspot cells.
    let _ = writeln!(
        out,
        "location spread of the hotspots ({}), %_T min/mean/max, imb = max/mean",
        result.modes[0].mode.name()
    );
    for (i, h) in hs.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:>2} {:<26} {:>6.2} /{:>6.2} /{:>6.2}  imb {:>5.2}  {}",
            i + 1,
            h.metric.name(),
            h.loc_min,
            h.loc_mean,
            h.loc_max,
            h.imbalance(),
            h.path
        );
    }
    out
}

/// Render the severity report of one experiment as a JSON document with
/// the same content as [`severity_text`]. Arrays are aligned with the
/// `modes` array.
pub fn severity_json(result: &ExperimentResult, top_n: usize) -> String {
    let modes: Vec<String> = result.modes.iter().map(|m| json::string(m.mode.name())).collect();
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"name\": {},", json::string(&result.name));
    let _ = writeln!(out, "  \"modes\": [{}],", modes.join(", "));
    let _ = writeln!(
        out,
        "  \"reference_seconds\": {},",
        json::number(result.reference_time().as_secs_f64())
    );

    let nums = |values: Vec<f64>| -> String {
        values.into_iter().map(json::number).collect::<Vec<_>>().join(", ")
    };

    let metric_lines: Vec<String> = metric_rows()
        .into_iter()
        .map(|(metric, depth)| {
            format!(
                "    {{\"metric\": {}, \"depth\": {}, \"pct_t\": [{}]}}",
                json::string(metric.name()),
                depth,
                nums(result.modes.iter().map(|m| m.mean.pct_t(metric)).collect())
            )
        })
        .collect();
    let _ = writeln!(out, "  \"metrics\": [\n{}\n  ],", metric_lines.join(",\n"));

    let _ = writeln!(out, "  \"diagnostics\": {{");
    let _ = writeln!(
        out,
        "    \"overhead_pct\": [{}],",
        nums(result.modes.iter().map(|m| result.overhead_total(m.mode)).collect())
    );
    if has_tsc(result) {
        let _ = writeln!(
            out,
            "    \"jaccard_vs_tsc\": [{}],",
            nums(result.modes.iter().map(|m| result.jaccard_vs_tsc(m.mode)).collect())
        );
    } else {
        let _ = writeln!(out, "    \"jaccard_vs_tsc\": null,");
    }
    let _ = writeln!(
        out,
        "    \"min_run_to_run_jaccard\": [{}]",
        nums(result.modes.iter().map(ModeResult::min_run_to_run_jaccard).collect())
    );
    let _ = writeln!(out, "  }},");

    let hotspot_lines: Vec<String> = hotspots(result, top_n)
        .iter()
        .map(|h| {
            format!(
                "    {{\"metric\": {}, \"path\": {}, \"pct_t\": [{}], \"locations\": {{\"min\": {}, \"mean\": {}, \"max\": {}, \"imbalance\": {}}}}}",
                json::string(h.metric.name()),
                json::string(&h.path),
                nums(h.pct_by_mode.clone()),
                json::number(h.loc_min),
                json::number(h.loc_mean),
                json::number(h.loc_max),
                json::number(h.imbalance())
            )
        })
        .collect();
    if hotspot_lines.is_empty() {
        let _ = writeln!(out, "  \"hotspots\": []");
    } else {
        let _ = writeln!(out, "  \"hotspots\": [\n{}\n  ]", hotspot_lines.join(",\n"));
    }
    let _ = writeln!(out, "}}");
    out
}

/// Single-mode severity section for binaries that drive
/// [`run_mode`](nrlt_core::run_mode) directly (no experiment-level
/// reference runs or cross-mode columns available).
pub fn mode_text(result: &ModeResult, top_n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== severity (single mode): {} ===", result.mode.name());
    let _ = writeln!(
        out,
        "mean run time {:.6} s (virtual), min run-to-run J_(M,C) {:.2}",
        result.mean_run_time().as_secs_f64(),
        result.min_run_to_run_jaccard()
    );
    out.push_str(&nrlt_profile::metric_table(&result.mean, 0.01));
    let cells = mode_cells(&result.mean);
    let mut ranked: Vec<(f64, Metric, String)> =
        cells.iter().map(|((m, p), &v)| (v, *m, p.clone())).collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| (a.1, &a.2).cmp(&(b.1, &b.2))));
    ranked.truncate(top_n);
    let _ = writeln!(out, "top {} hotspot cells, exclusive %_T", ranked.len());
    for (i, (v, m, p)) in ranked.iter().enumerate() {
        let _ = writeln!(out, "  {:>2} {:<26} {:>8.2}  {}", i + 1, m.name(), v, p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_profile::CallTree;
    use nrlt_telemetry::json::parse;

    // Unit coverage of the pieces that don't need a full experiment; the
    // end-to-end determinism contract lives in tests/report_test.rs.

    #[test]
    fn metric_rows_cover_the_time_tree_in_order() {
        let rows = metric_rows();
        assert_eq!(rows.len(), 14);
        assert_eq!(rows[0], (Metric::Time, 0));
        // Children always directly follow an ancestor one level up.
        for w in rows.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1);
        }
    }

    fn tiny_profile(clock: &str, heavy: f64) -> Profile {
        use nrlt_trace::{LocationDef, RegionDef, RegionRef, RegionRole};
        let regions = vec![
            RegionDef { name: "main".into(), role: RegionRole::Function },
            RegionDef { name: "solve".into(), role: RegionRole::Function },
        ];
        let mut ct = CallTree::new();
        let root = ct.intern(None, RegionRef(0));
        let solve = ct.intern(Some(root), RegionRef(1));
        let locations = vec![
            LocationDef { rank: 0, thread: 0, core: 0 },
            LocationDef { rank: 1, thread: 0, core: 1 },
        ];
        let mut p = Profile::new(clock.into(), regions, ct, locations);
        p.add(Metric::Comp, solve, 0, heavy);
        p.add(Metric::Comp, solve, 1, 10.0);
        p.add(Metric::WaitNxN, root, 1, 5.0);
        p
    }

    #[test]
    fn mode_cells_key_on_rendered_paths() {
        let p = tiny_profile("tsc", 85.0);
        let cells = mode_cells(&p);
        assert!(cells.contains_key(&(Metric::Comp, "main/solve".into())));
        assert!(cells.contains_key(&(Metric::WaitNxN, "main".into())));
        let total: f64 = cells.values().sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn location_spread_reports_min_mean_max() {
        let p = tiny_profile("tsc", 85.0);
        let (min, mean, max) = location_spread(&p, Metric::Comp, "main/solve");
        assert!((min - 10.0).abs() < 1e-9);
        assert!((max - 85.0).abs() < 1e-9);
        assert!((mean - 47.5).abs() < 1e-9);
        assert_eq!(location_spread(&p, Metric::Comp, "nope"), (0.0, 0.0, 0.0));
    }

    #[test]
    fn single_mode_text_ranks_hotspots() {
        use nrlt_measure::ClockMode;
        let p = tiny_profile("lt_1", 85.0);
        let mr = ModeResult {
            mode: ClockMode::Lt1,
            profiles: vec![p.clone()],
            mean: p,
            run_times: vec![nrlt_core::sim::VirtualDuration::from_millis(5)],
            phase_times: vec![Default::default()],
            events: 0,
        };
        let s = mode_text(&mr, 5);
        assert!(s.contains("severity (single mode): lt_1"), "{s}");
        let comp = s.find("comp").unwrap();
        assert!(s.contains("main/solve"), "{s}");
        // The dominant cell is ranked first.
        let first_row = s.lines().find(|l| l.trim_start().starts_with("1 ")).unwrap();
        assert!(first_row.contains("comp") && first_row.contains("main/solve"), "{first_row}");
        let _ = comp;
    }

    #[test]
    fn json_parses_even_when_empty() {
        // A result with no modes renders a valid, if boring, document.
        let r = ExperimentResult {
            name: "empty".into(),
            reference: vec![],
            phase_names: vec![],
            modes: vec![],
            events: 0,
        };
        let doc = severity_json(&r, 5);
        let v = parse(&doc).expect("valid JSON");
        assert_eq!(v.get("name").unwrap().as_str(), Some("empty"));
        assert_eq!(v.get("hotspots").unwrap().as_arr().unwrap().len(), 0);
        assert!(severity_text(&r, 5).contains("no modes"));
    }
}
