//! The `BENCH_pipeline.json` perf-baseline format and the `bench-check`
//! regression gate.
//!
//! The baseline records wall time per experiment at each worker count,
//! merged across invocations. The file is written and read only by this
//! module (the bench harness writes through it, the gate reads through
//! it), which keeps the format deliberately line-oriented — one entry
//! object per line — so it can be merged without a general JSON parser.
//! Entries are keyed by `(bin, run, jobs)`; re-running an experiment
//! replaces its entry, a new combination appends.
//!
//! Every entry also records the **host parallelism** it was measured
//! under. The original baseline had `fig3 LULESH-1` at `--jobs 4`
//! recording 20.07 s against 13.10 s at `--jobs 1` — slower *with more
//! workers* — because the host had a single core and the four workers
//! were pure oversubscription. Carrying `host_parallelism` per entry
//! makes that visible in the data, and [`merge_and_write`] warns
//! whenever an entry's `jobs` exceeds the parallelism of the host that
//! measured it, so oversubscribed numbers can't silently become the
//! baseline again.

use std::fmt::Write as _;
use std::path::Path;

/// One timed experiment of the perf baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Binary that ran the experiment (e.g. `fig3`).
    pub bin: String,
    /// Run name from the manifest (e.g. `MiniFE-2`).
    pub run: String,
    /// Effective worker count the cells fanned out over.
    pub jobs: usize,
    /// `available_parallelism` of the host that measured the entry
    /// (0 = unknown, for entries written before the field existed).
    pub host_parallelism: usize,
    /// Wall-clock seconds of the experiment call.
    pub wall_seconds: f64,
    /// Engine events the experiment dispatched (0 = unknown, for
    /// entries written before the field existed).
    pub events: u64,
    /// Engine throughput: `events / wall_seconds` (0 = unknown).
    pub events_per_sec: f64,
    /// Wall-time overhead in percent against the entry's comparison
    /// twin. For instrumented runs (run names carrying a `:observe`,
    /// `:engineprof`, or `:sampleprof` suffix) the twin is the plain
    /// entry with the same bin, base run, and jobs — the explicit
    /// cost-of-observability KPI. For plain runs at `jobs > 1` the twin
    /// is the `jobs = 1` sibling, so the value reads as the (usually
    /// negative) parallel speedup rather than a misleading `0.0`.
    /// `None` (serialized as `null`) means no twin exists in the
    /// baseline; plain `jobs = 1` entries are their own twin at
    /// `Some(0.0)`. Recomputed on every [`merge_and_write`], never
    /// gated; instrumented overheads above [`OVERHEAD_WARN_PCT`] warn
    /// on stderr.
    pub overhead_vs_plain_pct: Option<f64>,
    /// Peak resident-set size of the measuring process, in bytes
    /// (`VmHWM` from `/proc/self/status`; 0 = unknown, e.g. non-Linux
    /// hosts or entries written before the field existed). The HWM is
    /// process-wide and monotone across an invocation, so entries
    /// recorded later in one invocation inherit the peaks of earlier
    /// runs — comparable across invocations of one binary, honest
    /// rather than per-run.
    pub peak_rss_bytes: u64,
    /// Median per-operation latency in nanoseconds (0 = not a
    /// latency-style entry). Service benchmarks (`nrlt-bench serve`)
    /// record request latency percentiles from `nrlt-telemetry`
    /// histograms here; throughput-style entries leave all three
    /// percentile fields at 0 and the writer omits them.
    pub p50_ns: u64,
    /// 95th-percentile per-operation latency in nanoseconds (0 = not
    /// recorded).
    pub p95_ns: u64,
    /// 99th-percentile per-operation latency in nanoseconds (0 = not
    /// recorded). The trend view renders this as the service's tail
    /// latency trajectory.
    pub p99_ns: u64,
}

/// Instrumented-run overhead (percent vs the plain twin) above which
/// [`merge_and_write`] warns. Warn-only by design: instrumentation cost
/// is tracked, not gated — full tracing legitimately costs tens of
/// percent.
pub const OVERHEAD_WARN_PCT: f64 = 40.0;

impl BenchEntry {
    /// The `(bin, run, jobs)` merge/gate key, rendered.
    pub fn key(&self) -> String {
        format!("{} {} jobs={}", self.bin, self.run, self.jobs)
    }

    /// True when the entry was measured with more workers than the host
    /// had cores — its wall time includes oversubscription, not speedup.
    pub fn oversubscribed(&self) -> bool {
        self.host_parallelism > 0 && self.jobs > self.host_parallelism
    }

    /// Throughput recomputed from the entry's own fields, or the stored
    /// value when the event count is unknown.
    pub fn throughput(&self) -> f64 {
        if self.events > 0 && self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            self.events_per_sec
        }
    }
}

/// `available_parallelism` of this host.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Peak resident-set size of this process in bytes: `VmHWM` from
/// `/proc/self/status` (kilobytes, scaled). Returns 0 where the file or
/// the field is unavailable (non-Linux hosts) — callers treat 0 as
/// "unknown", never as "zero memory".
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Best-effort reset of the kernel's peak-RSS high-water mark for this
/// process: writes `5` to `/proc/self/clear_refs` (Linux ≥ 4.0). After
/// a successful reset [`peak_rss_bytes`] reports the peak *since the
/// reset*, which lets a long-lived sweep attribute a peak to each
/// individual run instead of every later entry inheriting the largest
/// earlier one. Returns whether the reset took; on `false` (non-Linux,
/// restricted procfs) the HWM keeps its process-monotone semantics.
pub fn reset_peak_rss() -> bool {
    // The kernel floors the reset HWM at *current* RSS, and glibc
    // retains freed heap pages on its free lists — without a trim, a
    // run that follows a large one would still inherit hundreds of MiB
    // of retained-but-free pages in its "peak". `malloc_trim` is part
    // of the already-linked libc, not a new dependency.
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        extern "C" {
            fn malloc_trim(pad: usize) -> std::os::raw::c_int;
        }
        unsafe {
            malloc_trim(0);
        }
    }
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Merge `new_entries` into the baseline at `path` (replacing same-key
/// entries, appending the rest) and rewrite the file. Warns on stderr
/// for every oversubscribed entry being recorded.
pub fn merge_and_write(path: &Path, new_entries: &[BenchEntry]) -> std::io::Result<()> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => parse_entries(&text),
        Err(_) => Vec::new(),
    };
    for new in new_entries {
        if new.oversubscribed() {
            eprintln!(
                "warning: {} ran {} workers on a host with parallelism {} — \
                 its wall time measures oversubscription, not speedup",
                new.key(),
                new.jobs,
                new.host_parallelism
            );
        }
        match entries
            .iter_mut()
            .find(|e| e.bin == new.bin && e.run == new.run && e.jobs == new.jobs)
        {
            Some(existing) => *existing = new.clone(),
            None => entries.push(new.clone()),
        }
    }
    entries.sort_by(|a, b| (&a.bin, &a.run, a.jobs).cmp(&(&b.bin, &b.run, b.jobs)));
    annotate_overheads(&mut entries);

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"host_parallelism\": {},", host_parallelism());
    let _ = writeln!(out, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let overhead = match e.overhead_vs_plain_pct {
            Some(pct) => format!("{pct:.1}"),
            None => "null".to_owned(),
        };
        let _ = writeln!(
            out,
            "    {{\"bin\": {}, \"run\": {}, \"jobs\": {}, \"host_parallelism\": {}, \"wall_seconds\": {:.3}, \"events\": {}, \"events_per_sec\": {:.1}, \"overhead_vs_plain_pct\": {overhead}, \"peak_rss_bytes\": {}{}}}{comma}",
            json_string(&e.bin),
            json_string(&e.run),
            e.jobs,
            e.host_parallelism,
            e.wall_seconds,
            e.events,
            e.events_per_sec,
            e.peak_rss_bytes,
            latency_fields(e),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

/// Fill `overhead_vs_plain_pct` for every entry from its comparison
/// twin, and reset it to `None` where no twin exists — the field is
/// derived, so a stale value never survives a re-merge. Instrumented
/// entries (run name `base:suffix`) compare against the plain
/// `(bin, base, jobs)` twin and warn on stderr above
/// [`OVERHEAD_WARN_PCT`]; plain entries at `jobs > 1` compare against
/// their `jobs = 1` sibling (so the column reads as parallel speedup,
/// never a misleading `0.0`); plain `jobs = 1` entries are their own
/// twin at `Some(0.0)`.
fn annotate_overheads(entries: &mut [BenchEntry]) {
    let plain: Vec<(String, String, usize, f64)> = entries
        .iter()
        .filter(|e| !e.run.contains(':'))
        .map(|e| (e.bin.clone(), e.run.clone(), e.jobs, e.wall_seconds))
        .collect();
    let twin_wall = |bin: &str, run: &str, jobs: usize| {
        plain
            .iter()
            .find(|(b, r, j, wall)| b == bin && r == run && *j == jobs && *wall > 0.0)
            .map(|(_, _, _, wall)| *wall)
    };
    for e in entries.iter_mut() {
        e.overhead_vs_plain_pct = match e.run.split_once(':') {
            // Instrumented: against the same-jobs plain twin.
            Some((base_run, _suffix)) => twin_wall(&e.bin, base_run, e.jobs).map(|plain_wall| {
                let pct = (e.wall_seconds / plain_wall - 1.0) * 100.0;
                if pct > OVERHEAD_WARN_PCT {
                    eprintln!(
                        "warning: {} costs {pct:.1}% over its uninstrumented twin \
                         (warn threshold {OVERHEAD_WARN_PCT:.0}%) — instrumentation \
                         overhead is tracked, not gated",
                        e.key(),
                    );
                }
                pct
            }),
            // Plain at jobs=1: its own twin by definition.
            None if e.jobs == 1 => Some(0.0),
            // Plain at jobs>1: against the serial sibling.
            None => twin_wall(&e.bin, &e.run, 1)
                .map(|serial_wall| (e.wall_seconds / serial_wall - 1.0) * 100.0),
        };
    }
}

/// The latency-percentile suffix of an entry line: empty for
/// throughput-style entries (all percentiles 0), so existing baselines
/// keep their exact shape and only service entries grow the fields.
pub(crate) fn latency_fields(e: &BenchEntry) -> String {
    if e.p50_ns == 0 && e.p95_ns == 0 && e.p99_ns == 0 {
        String::new()
    } else {
        format!(", \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}", e.p50_ns, e.p95_ns, e.p99_ns)
    }
}

/// Read and parse a baseline file.
pub fn read_entries(path: &Path) -> std::io::Result<Vec<BenchEntry>> {
    Ok(parse_entries(&std::fs::read_to_string(path)?))
}

/// Parse the entry lines of a baseline previously written by
/// [`merge_and_write`]. Lines that do not carry the required fields are
/// ignored, so a corrupted file degrades to "start fresh" rather than an
/// error. `host_parallelism` is optional (0 when absent) for baselines
/// written before the field existed.
pub fn parse_entries(text: &str) -> Vec<BenchEntry> {
    text.lines().filter_map(parse_entry_line).collect()
}

fn parse_entry_line(line: &str) -> Option<BenchEntry> {
    Some(BenchEntry {
        bin: field_string(line, "bin")?,
        run: field_string(line, "run")?,
        jobs: field_raw(line, "jobs")?.parse().ok()?,
        host_parallelism: field_raw(line, "host_parallelism")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        wall_seconds: field_raw(line, "wall_seconds")?.parse().ok()?,
        events: field_raw(line, "events").and_then(|v| v.parse().ok()).unwrap_or(0),
        events_per_sec: field_raw(line, "events_per_sec")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0),
        overhead_vs_plain_pct: field_raw(line, "overhead_vs_plain_pct")
            .filter(|v| v != "null")
            .and_then(|v| v.parse().ok()),
        peak_rss_bytes: field_raw(line, "peak_rss_bytes").and_then(|v| v.parse().ok()).unwrap_or(0),
        p50_ns: field_raw(line, "p50_ns").and_then(|v| v.parse().ok()).unwrap_or(0),
        p95_ns: field_raw(line, "p95_ns").and_then(|v| v.parse().ok()).unwrap_or(0),
        p99_ns: field_raw(line, "p99_ns").and_then(|v| v.parse().ok()).unwrap_or(0),
    })
}

/// The raw token after `"key": `, up to the next `,` or `}`.
fn field_raw(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = line[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().to_owned())
}

/// A JSON string field value, unescaped.
fn field_string(line: &str, key: &str) -> Option<String> {
    let raw = field_raw(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- the regression gate -----------------------------------------------

/// One gate comparison: a `(bin, run, jobs)` key present in both the
/// baseline and the current measurement.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Rendered `(bin, run, jobs)` key.
    pub key: String,
    /// Baseline wall seconds.
    pub baseline: f64,
    /// Current wall seconds.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// True when the ratio exceeds the allowed factor.
    pub regressed: bool,
    /// Baseline events/sec (0 = not recorded; throughput not gated).
    pub baseline_eps: f64,
    /// Current events/sec (0 = not recorded).
    pub current_eps: f64,
    /// Throughput slowdown `baseline_eps / current_eps` (0 when either
    /// side is unknown).
    pub eps_ratio: f64,
    /// True when throughput dropped beyond the allowed factor.
    pub eps_regressed: bool,
    /// Baseline peak RSS in bytes (0 = not recorded; RSS not gated).
    pub baseline_rss: u64,
    /// Current peak RSS in bytes (0 = not recorded).
    pub current_rss: u64,
    /// Peak-RSS growth `current_rss / baseline_rss` (0 when either side
    /// is unknown).
    pub rss_ratio: f64,
    /// True when peak RSS grew beyond the allowed factor.
    pub rss_regressed: bool,
}

/// The result of a [`bench_check`] run.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-key comparisons.
    pub rows: Vec<GateRow>,
    /// Current keys with no usable baseline (missing, or baseline ≤ 0).
    pub unmatched: Vec<String>,
    /// Current keys measured with more workers than the host has cores:
    /// warned about, never gated — oversubscribed wall time measures
    /// scheduler contention, not the engine.
    pub skipped_oversubscribed: Vec<String>,
    /// The allowed slowdown factor.
    pub max_regress: f64,
}

impl GateReport {
    /// True when any key regressed beyond the allowed factor — in wall
    /// time, in engine throughput, or in peak RSS.
    pub fn failed(&self) -> bool {
        self.rows.iter().any(|r| r.regressed || r.eps_regressed || r.rss_regressed)
    }

    /// Render the gate outcome as a table plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ =
            writeln!(out, "=== bench-check (max allowed slowdown {:.2}x) ===", self.max_regress);
        let _ = writeln!(
            out,
            "  {:<40} {:>10} {:>10} {:>7} {:>12} {:>7} {:>10} {:>7}  verdict",
            "key", "baseline", "current", "ratio", "events/s", "eps-x", "rss", "rss-x"
        );
        for r in &self.rows {
            let eps = if r.current_eps > 0.0 {
                format!("{:>12.0} {:>6.2}x", r.current_eps, r.eps_ratio)
            } else {
                format!("{:>12} {:>7}", "-", "-")
            };
            let rss = if r.rss_ratio > 0.0 {
                format!("{:>9}M {:>6.2}x", r.current_rss >> 20, r.rss_ratio)
            } else {
                format!("{:>10} {:>7}", "-", "-")
            };
            let verdict = if r.regressed {
                "REGRESSED"
            } else if r.eps_regressed {
                "REGRESSED (throughput)"
            } else if r.rss_regressed {
                "REGRESSED (peak RSS)"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  {:<40} {:>9.3}s {:>9.3}s {:>6.2}x {eps} {rss}  {verdict}",
                r.key, r.baseline, r.current, r.ratio,
            );
        }
        for key in &self.skipped_oversubscribed {
            let _ = writeln!(out, "  {key:<40} (oversubscribed on this host — not gated)");
        }
        for key in &self.unmatched {
            let _ = writeln!(out, "  {key:<40} (no baseline entry — not gated)");
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.failed() {
                "FAIL — wall-time, throughput, or peak-RSS regression"
            } else {
                "pass"
            }
        );
        out
    }
}

/// Compare `current` against `baseline`: every current entry whose
/// `(bin, run, jobs)` key has a positive baseline wall time is gated at
/// `current / baseline ≤ max_regress` — and, when both sides recorded a
/// positive engine throughput, at
/// `baseline_eps / current_eps ≤ max_regress` too. Current entries
/// without a usable baseline are listed but never fail the gate (a new
/// experiment must be able to land before its baseline exists), and
/// entries measured with more workers than the measuring host has cores
/// are skipped with a warning — their wall time measures scheduler
/// contention, not the engine.
pub fn bench_check(
    baseline: &[BenchEntry],
    current: &[BenchEntry],
    max_regress: f64,
) -> GateReport {
    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    let mut skipped_oversubscribed = Vec::new();
    let mut current: Vec<&BenchEntry> = current.iter().collect();
    current.sort_by(|a, b| (&a.bin, &a.run, a.jobs).cmp(&(&b.bin, &b.run, b.jobs)));
    for cur in current {
        if cur.oversubscribed() {
            skipped_oversubscribed.push(cur.key());
            continue;
        }
        let base = baseline
            .iter()
            .find(|e| e.bin == cur.bin && e.run == cur.run && e.jobs == cur.jobs)
            .filter(|e| e.wall_seconds > 0.0);
        match base {
            Some(base) => {
                let ratio = cur.wall_seconds / base.wall_seconds;
                let (baseline_eps, current_eps) = (base.throughput(), cur.throughput());
                let eps_ratio = if baseline_eps > 0.0 && current_eps > 0.0 {
                    baseline_eps / current_eps
                } else {
                    0.0
                };
                let rss_ratio = if base.peak_rss_bytes > 0 && cur.peak_rss_bytes > 0 {
                    cur.peak_rss_bytes as f64 / base.peak_rss_bytes as f64
                } else {
                    0.0
                };
                rows.push(GateRow {
                    key: cur.key(),
                    baseline: base.wall_seconds,
                    current: cur.wall_seconds,
                    ratio,
                    regressed: ratio > max_regress,
                    baseline_eps,
                    current_eps,
                    eps_ratio,
                    eps_regressed: eps_ratio > max_regress,
                    baseline_rss: base.peak_rss_bytes,
                    current_rss: cur.peak_rss_bytes,
                    rss_ratio,
                    rss_regressed: rss_ratio > max_regress,
                });
            }
            None => unmatched.push(cur.key()),
        }
    }
    GateReport { rows, unmatched, skipped_oversubscribed, max_regress }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn entry(bin: &str, run: &str, jobs: usize, wall: f64) -> BenchEntry {
        BenchEntry {
            bin: bin.into(),
            run: run.into(),
            jobs,
            host_parallelism: 4,
            wall_seconds: wall,
            events: 0,
            events_per_sec: 0.0,
            overhead_vs_plain_pct: None,
            peak_rss_bytes: 0,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
        }
    }

    #[test]
    fn roundtrips_and_merges() {
        let dir = std::env::temp_dir().join("nrlt-report-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_pipeline.json");
        let _ = std::fs::remove_file(&path);

        merge_and_write(&path, &[entry("fig3", "MiniFE-2", 1, 27.5)]).unwrap();
        merge_and_write(&path, &[entry("fig3", "MiniFE-2", 4, 8.25)]).unwrap();
        // Same key again: replaces, does not duplicate.
        merge_and_write(&path, &[entry("fig3", "MiniFE-2", 1, 27.125)]).unwrap();

        let entries = read_entries(&path).unwrap();
        // The overhead column is derived on merge: the serial entry is
        // its own twin, the jobs=4 sibling reads as speedup vs serial.
        let mut serial = entry("fig3", "MiniFE-2", 1, 27.125);
        serial.overhead_vs_plain_pct = Some(0.0);
        let mut fanned = entry("fig3", "MiniFE-2", 4, 8.25);
        fanned.overhead_vs_plain_pct = Some(-69.6);
        assert_eq!(entries, vec![serial, fanned]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn escaped_names_survive() {
        let e = entry("tab2", "odd \"name\"\twith\nescapes", 2, 1.0);
        let dir = std::env::temp_dir().join("nrlt-report-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("escapes.json");
        merge_and_write(&path, std::slice::from_ref(&e)).unwrap();
        let entries = read_entries(&path).unwrap();
        assert_eq!(entries, vec![e]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_lines_are_ignored() {
        assert!(parse_entries("not json\n{\"bin\": \"x\"}\n").is_empty());
    }

    #[test]
    fn legacy_entries_without_host_parallelism_still_parse() {
        let legacy = r#"    {"bin": "fig3", "run": "LULESH-1", "jobs": 4, "wall_seconds": 20.071}"#;
        let entries = parse_entries(legacy);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].host_parallelism, 0);
        assert!(!entries[0].oversubscribed(), "unknown host parallelism is not flagged");
    }

    #[test]
    fn oversubscription_is_flagged() {
        let mut e = entry("fig3", "LULESH-1", 4, 20.0);
        e.host_parallelism = 1;
        assert!(e.oversubscribed());
        e.host_parallelism = 4;
        assert!(!e.oversubscribed());
        e.jobs = 1;
        e.host_parallelism = 1;
        assert!(!e.oversubscribed());
    }

    #[test]
    fn gate_fails_on_a_2x_slowdown() {
        let baseline = [entry("fig3", "MiniFE-1", 2, 1.0), entry("fig3", "MiniFE-2", 2, 4.0)];
        let slowed = [entry("fig3", "MiniFE-1", 2, 2.0), entry("fig3", "MiniFE-2", 2, 4.1)];
        let report = bench_check(&baseline, &slowed, 1.5);
        assert!(report.failed());
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows[0].regressed, "the 2x run trips the gate");
        assert!(!report.rows[1].regressed, "the unchanged run passes");
        let text = report.render();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn gate_passes_within_threshold_and_on_improvements() {
        let baseline = [entry("fig3", "MiniFE-1", 2, 1.0)];
        let current = [entry("fig3", "MiniFE-1", 2, 0.4)];
        let report = bench_check(&baseline, &current, 1.5);
        assert!(!report.failed());
        assert!(report.render().contains("pass"));
    }

    #[test]
    fn unmatched_keys_never_fail_the_gate() {
        let baseline = [entry("fig3", "MiniFE-1", 2, 1.0)];
        let current = [entry("fig9", "new-run", 2, 100.0)];
        let report = bench_check(&baseline, &current, 1.5);
        assert!(!report.failed());
        assert_eq!(report.unmatched, vec!["fig9 new-run jobs=2"]);
        assert!(report.render().contains("not gated"), "{}", report.render());
    }

    #[test]
    fn events_per_sec_roundtrips_and_legacy_defaults_to_zero() {
        let mut e = entry("fig3", "MiniFE-1", 1, 2.0);
        e.events = 1_000_000;
        e.events_per_sec = 500_000.0;
        let dir = std::env::temp_dir().join("nrlt-report-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("eps.json");
        let _ = std::fs::remove_file(&path);
        merge_and_write(&path, std::slice::from_ref(&e)).unwrap();
        let entries = read_entries(&path).unwrap();
        e.overhead_vs_plain_pct = Some(0.0); // derived: serial plain is its own twin
        assert_eq!(entries, vec![e]);
        std::fs::remove_file(&path).unwrap();

        let legacy = r#"    {"bin": "fig3", "run": "X", "jobs": 1, "wall_seconds": 1.0}"#;
        let parsed = parse_entries(legacy);
        assert_eq!(parsed[0].events, 0);
        assert_eq!(parsed[0].events_per_sec, 0.0);
        assert_eq!(parsed[0].throughput(), 0.0);
        assert_eq!(parsed[0].overhead_vs_plain_pct, None);
        assert_eq!(parsed[0].peak_rss_bytes, 0);
    }

    #[test]
    fn throughput_regression_trips_the_gate() {
        let mut base = entry("fig3", "MiniFE-1", 1, 1.0);
        base.events = 1_000_000;
        let mut cur = base.clone();
        // Same wall time, but the engine dispatched far fewer events per
        // second (e.g. a new per-event cost): throughput gate catches it.
        cur.events = 100_000;
        let report = bench_check(&[base.clone()], &[cur], 3.0);
        assert!(report.failed(), "10x throughput drop must fail");
        assert!(report.rows[0].eps_regressed);
        assert!(!report.rows[0].regressed, "wall time itself is unchanged");
        assert!(report.render().contains("REGRESSED (throughput)"));

        // Legacy baselines without event counts never eps-gate.
        let mut legacy = entry("fig3", "MiniFE-1", 1, 1.0);
        legacy.events = 0;
        let mut cur2 = entry("fig3", "MiniFE-1", 1, 1.0);
        cur2.events = 100_000;
        let report = bench_check(&[legacy], &[cur2], 3.0);
        assert!(!report.failed());
        assert_eq!(report.rows[0].eps_ratio, 0.0);
    }

    #[test]
    fn oversubscribed_entries_are_skipped_not_gated() {
        let base = entry("fig3", "MiniFE-1", 4, 1.0);
        let mut cur = entry("fig3", "MiniFE-1", 4, 50.0);
        cur.host_parallelism = 1; // 4 workers on a 1-core host
        let report = bench_check(&[base], &[cur], 1.5);
        assert!(!report.failed(), "oversubscribed wall time must never gate");
        assert!(report.rows.is_empty());
        assert_eq!(report.skipped_oversubscribed, vec!["fig3 MiniFE-1 jobs=4"]);
        assert!(report.render().contains("oversubscribed"), "{}", report.render());
    }

    #[test]
    fn instrumented_entries_record_overhead_vs_plain() {
        let dir = std::env::temp_dir().join("nrlt-report-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("overhead.json");
        let _ = std::fs::remove_file(&path);

        // Plain twin and its 50%-slower engineprof run, plus an
        // instrumented run with no twin (null, never warns).
        merge_and_write(
            &path,
            &[
                entry("fig3", "LULESH-1", 1, 10.0),
                entry("fig3", "LULESH-1:engineprof", 1, 15.0),
                entry("fig3", "Orphan-1:observe", 1, 5.0),
            ],
        )
        .unwrap();
        let entries = read_entries(&path).unwrap();
        let by_run = |run: &str| entries.iter().find(|e| e.run == run).unwrap();
        assert_eq!(by_run("LULESH-1").overhead_vs_plain_pct, Some(0.0));
        let prof = by_run("LULESH-1:engineprof").overhead_vs_plain_pct.unwrap();
        assert!((prof - 50.0).abs() < 1e-6);
        assert_eq!(by_run("Orphan-1:observe").overhead_vs_plain_pct, None);

        // The field is derived: a faster re-run of the instrumented
        // entry re-computes rather than keeping the stale 50%.
        merge_and_write(&path, &[entry("fig3", "LULESH-1:engineprof", 1, 11.0)]).unwrap();
        let entries = read_entries(&path).unwrap();
        let e = entries.iter().find(|e| e.run == "LULESH-1:engineprof").unwrap();
        let pct = e.overhead_vs_plain_pct.unwrap();
        assert!((pct - 10.0).abs() < 1e-6, "{pct}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn plain_entries_at_many_jobs_compare_against_serial_or_null() {
        let dir = std::env::temp_dir().join("nrlt-report-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain-jobs.json");
        let _ = std::fs::remove_file(&path);

        // A jobs=2 plain entry with no serial sibling must emit null,
        // not a misleading 0.0.
        merge_and_write(&path, &[entry("fig3", "MiniFE-1", 2, 5.0)]).unwrap();
        let entries = read_entries(&path).unwrap();
        assert_eq!(entries[0].overhead_vs_plain_pct, None);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"overhead_vs_plain_pct\": null"), "{text}");

        // Once the serial sibling lands, the jobs=2 entry reads as the
        // speedup against it.
        merge_and_write(&path, &[entry("fig3", "MiniFE-1", 1, 10.0)]).unwrap();
        let entries = read_entries(&path).unwrap();
        let fanned = entries.iter().find(|e| e.jobs == 2).unwrap();
        let pct = fanned.overhead_vs_plain_pct.unwrap();
        assert!((pct - -50.0).abs() < 1e-6, "{pct}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn peak_rss_roundtrips_and_gates() {
        let dir = std::env::temp_dir().join("nrlt-report-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rss.json");
        let _ = std::fs::remove_file(&path);
        let mut e = entry("scale", "MiniFE-weak-10000", 1, 2.0);
        e.peak_rss_bytes = 512 << 20;
        merge_and_write(&path, std::slice::from_ref(&e)).unwrap();
        let entries = read_entries(&path).unwrap();
        assert_eq!(entries[0].peak_rss_bytes, 512 << 20);

        // 3x RSS growth at unchanged wall time trips the gate.
        let mut cur = e.clone();
        cur.peak_rss_bytes = 1536 << 20;
        let report = bench_check(&entries, &[cur], 1.5);
        assert!(report.failed(), "3x peak-RSS growth must fail");
        assert!(report.rows[0].rss_regressed);
        assert!(!report.rows[0].regressed);
        assert!(report.render().contains("REGRESSED (peak RSS)"));

        // Unknown RSS on either side never gates.
        let mut legacy = e.clone();
        legacy.peak_rss_bytes = 0;
        let report = bench_check(&entries, &[legacy], 1.5);
        assert!(!report.failed());
        assert_eq!(report.rows[0].rss_ratio, 0.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn this_process_reports_a_peak_rss() {
        // Linux CI and dev hosts have /proc; the helper must return a
        // plausible nonzero HWM there (and 0, never garbage, elsewhere).
        let rss = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 1 << 20, "VmHWM under 1 MiB is implausible: {rss}");
        }
    }

    #[test]
    fn latency_percentiles_roundtrip_and_stay_off_plain_entries() {
        let dir = std::env::temp_dir().join("nrlt-report-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("latency.json");
        let _ = std::fs::remove_file(&path);

        // A service entry: events = queries, events_per_sec = qps, plus
        // the latency percentiles from the telemetry histogram.
        let mut svc = entry("serve", "mix", 4, 10.0);
        svc.events = 50_000;
        svc.events_per_sec = 5_000.0;
        svc.p50_ns = 800_000;
        svc.p95_ns = 2_500_000;
        svc.p99_ns = 6_000_000;
        merge_and_write(&path, &[svc.clone(), entry("fig3", "MiniFE-1", 1, 2.0)]).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        // Only the service line carries the fields — plain entries keep
        // their exact pre-existing shape.
        assert_eq!(text.matches("p99_ns").count(), 1, "{text}");

        let entries = read_entries(&path).unwrap();
        let back = entries.iter().find(|e| e.bin == "serve").unwrap();
        assert_eq!((back.p50_ns, back.p95_ns, back.p99_ns), (800_000, 2_500_000, 6_000_000));
        let plain = entries.iter().find(|e| e.bin == "fig3").unwrap();
        assert_eq!((plain.p50_ns, plain.p95_ns, plain.p99_ns), (0, 0, 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_baseline_is_unmatched_not_infinite() {
        let baseline = [entry("fig3", "MiniFE-1", 2, 0.0)];
        let current = [entry("fig3", "MiniFE-1", 2, 1.0)];
        let report = bench_check(&baseline, &current, 1.5);
        assert!(!report.failed());
        assert_eq!(report.unmatched.len(), 1);
    }
}
