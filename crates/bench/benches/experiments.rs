//! End-to-end experiment benchmarks: one group per table/figure, each
//! timing the full pipeline (reference runs + measurement + analysis)
//! that regenerates the corresponding result, at reduced repetition
//! count. `cargo bench --bench experiments` therefore exercises every
//! experiment of the paper; the printing front-ends live in `src/bin/`.
//!
//! Uses the same dependency-free harness as `components.rs` (criterion
//! is unavailable offline): warm-up, fixed iterations, min / mean.

use nrlt_core::prelude::*;
use nrlt_miniapps::{
    LuleshConfig, LuleshCosts, MiniFeConfig, MiniFeCosts, TeaLeafConfig, TeaLeafCosts,
};
use std::time::Instant;

fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{name:<32} min {:>9.3} ms   mean {:>9.3} ms   ({iters} iters)",
        min * 1e3,
        mean * 1e3
    );
}

fn quick() -> ExperimentOptions {
    ExperimentOptions { repetitions: 2, ..Default::default() }
}

/// Scaled-down MiniFE (fewer CG iterations, smaller grid).
fn minife_small(threads: u32) -> BenchmarkInstance {
    MiniFeConfig {
        nx: 160,
        ranks: 8,
        threads_per_rank: threads,
        imbalance_pct: 50,
        cg_iters: 30,
        costs: MiniFeCosts::default(),
    }
    .build()
}

fn lulesh_small() -> BenchmarkInstance {
    LuleshConfig {
        ranks: 8,
        threads_per_rank: 4,
        edge: 30,
        steps: 10,
        imbalance: 0.8,
        spread_placement: false,
        nodes: 1,
        costs: LuleshCosts::default(),
    }
    .build()
}

fn tealeaf_small(ranks: u32, threads: u32) -> BenchmarkInstance {
    TeaLeafConfig {
        n: 2000,
        ranks,
        threads_per_rank: threads,
        steps: 2,
        cg_per_step: 15,
        costs: TeaLeafCosts::default(),
    }
    .build()
}

fn main() {
    println!("== exp_table1 ==");
    let mf = minife_small(16);
    bench("minife2_overheads", 3, || run_experiment(&mf, &quick()));
    let lu = lulesh_small();
    bench("lulesh1_overheads", 3, || run_experiment(&lu, &quick()));

    println!("== exp_table2 ==");
    for (ranks, threads) in [(2u32, 64u32), (128, 1)] {
        let tl = tealeaf_small(ranks, threads);
        let opts = ExperimentOptions { modes: vec![ClockMode::Tsc], ..quick() };
        bench(&format!("tealeaf_{ranks}x{threads}_tsc"), 3, || run_experiment(&tl, &opts));
    }

    println!("== exp_fig2 ==");
    let opts = ExperimentOptions { modes: vec![ClockMode::Tsc, ClockMode::LtBb], ..quick() };
    bench("structure_gen_repetitions", 3, || run_experiment(&mf, &opts));

    println!("== exp_fig3_fig4 ==");
    let mf1 = minife_small(1);
    bench("jaccard_minife1", 3, || {
        let res = run_experiment(&mf1, &quick());
        ClockMode::LOGICAL.map(|m| res.jaccard_vs_tsc(m))
    });
    let tl = tealeaf_small(8, 16);
    bench("jaccard_tealeaf3", 3, || {
        let res = run_experiment(&tl, &quick());
        ClockMode::LOGICAL.map(|m| res.jaccard_vs_tsc(m))
    });

    println!("== exp_fig5_fig6_fig7 ==");
    bench("minife2_callpath_views", 3, || {
        let res = run_experiment(&mf, &quick());
        let p = &res.mode(ClockMode::Tsc).mean;
        (p.map_c(Metric::Comp), p.map_c(Metric::WaitNxN), p.pct_t(Metric::IdleThreads))
    });

    println!("== exp_fig8_fig9 ==");
    bench("lulesh1_paradigms_and_delay", 3, || {
        let res = run_experiment(&lu, &quick());
        let p = &res.mode(ClockMode::Tsc).mean;
        (p.pct_t(Metric::Omp), p.map_c(Metric::DelayN2n))
    });
}
