//! End-to-end experiment benchmarks: one group per table/figure, each
//! timing the full pipeline (reference runs + measurement + analysis)
//! that regenerates the corresponding result, at reduced repetition
//! count. `cargo bench` therefore exercises every experiment of the
//! paper; the printing front-ends live in `src/bin/`.

use criterion::{criterion_group, criterion_main, Criterion};
use nrlt_core::prelude::*;
use nrlt_miniapps::{LuleshConfig, LuleshCosts, MiniFeConfig, MiniFeCosts, TeaLeafConfig, TeaLeafCosts};

fn quick() -> ExperimentOptions {
    ExperimentOptions { repetitions: 2, ..Default::default() }
}

/// Scaled-down MiniFE (fewer CG iterations, smaller grid).
fn minife_small(threads: u32) -> BenchmarkInstance {
    MiniFeConfig {
        nx: 160,
        ranks: 8,
        threads_per_rank: threads,
        imbalance_pct: 50,
        cg_iters: 30,
        costs: MiniFeCosts::default(),
    }
    .build()
}

fn lulesh_small() -> BenchmarkInstance {
    LuleshConfig {
        ranks: 8,
        threads_per_rank: 4,
        edge: 30,
        steps: 10,
        imbalance: 0.8,
        spread_placement: false,
        nodes: 1,
        costs: LuleshCosts::default(),
    }
    .build()
}

fn tealeaf_small(ranks: u32, threads: u32) -> BenchmarkInstance {
    TeaLeafConfig {
        n: 2000,
        ranks,
        threads_per_rank: threads,
        steps: 2,
        cg_per_step: 15,
        costs: TeaLeafCosts::default(),
    }
    .build()
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_table1");
    g.sample_size(10);
    let mf = minife_small(16);
    g.bench_function("minife2_overheads", |b| b.iter(|| run_experiment(&mf, &quick())));
    let lu = lulesh_small();
    g.bench_function("lulesh1_overheads", |b| b.iter(|| run_experiment(&lu, &quick())));
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_table2");
    g.sample_size(10);
    for (ranks, threads) in [(2u32, 64u32), (128, 1)] {
        let tl = tealeaf_small(ranks, threads);
        let opts = ExperimentOptions { modes: vec![ClockMode::Tsc], ..quick() };
        g.bench_function(format!("tealeaf_{ranks}x{threads}_tsc"), |b| {
            b.iter(|| run_experiment(&tl, &opts))
        });
    }
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_fig2");
    g.sample_size(10);
    let mf = minife_small(16);
    let opts = ExperimentOptions { modes: vec![ClockMode::Tsc, ClockMode::LtBb], ..quick() };
    g.bench_function("structure_gen_repetitions", |b| b.iter(|| run_experiment(&mf, &opts)));
    g.finish();
}

fn bench_fig3_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_fig3_fig4");
    g.sample_size(10);
    let mf = minife_small(1);
    g.bench_function("jaccard_minife1", |b| {
        b.iter(|| {
            let res = run_experiment(&mf, &quick());
            ClockMode::LOGICAL.map(|m| res.jaccard_vs_tsc(m))
        })
    });
    let tl = tealeaf_small(8, 16);
    g.bench_function("jaccard_tealeaf3", |b| {
        b.iter(|| {
            let res = run_experiment(&tl, &quick());
            ClockMode::LOGICAL.map(|m| res.jaccard_vs_tsc(m))
        })
    });
    g.finish();
}

fn bench_fig5_to_7(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_fig5_fig6_fig7");
    g.sample_size(10);
    let mf = minife_small(16);
    g.bench_function("minife2_callpath_views", |b| {
        b.iter(|| {
            let res = run_experiment(&mf, &quick());
            let p = &res.mode(ClockMode::Tsc).mean;
            (
                p.map_c(Metric::Comp),
                p.map_c(Metric::WaitNxN),
                p.pct_t(Metric::IdleThreads),
            )
        })
    });
    g.finish();
}

fn bench_fig8_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_fig8_fig9");
    g.sample_size(10);
    let lu = lulesh_small();
    g.bench_function("lulesh1_paradigms_and_delay", |b| {
        b.iter(|| {
            let res = run_experiment(&lu, &quick());
            let p = &res.mode(ClockMode::Tsc).mean;
            (p.pct_t(Metric::Omp), p.map_c(Metric::DelayN2n))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_fig2,
    bench_fig3_fig4,
    bench_fig5_to_7,
    bench_fig8_fig9
);
criterion_main!(benches);
