//! Micro-benchmarks of the hot components: trace encode/decode, message
//! matching, trace analysis, the replay engine, and the Jaccard score.
//!
//! A dependency-free harness (criterion is unavailable offline): each
//! benchmark runs a warm-up pass, then a fixed number of timed
//! iterations, reporting min / mean wall time per iteration. Run with
//! `cargo bench --bench components`.

use nrlt_core::analysis::analyze;
use nrlt_core::measure_sys::{measure, MeasureConfig};
use nrlt_core::mpisim::{Channel, Matcher};
use nrlt_core::prelude::*;
use nrlt_core::trace::{decode, encode};
use std::time::Instant;

/// Time `f` over `iters` iterations after one warm-up call.
fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{name:<28} min {:>9.3} ms   mean {:>9.3} ms   ({iters} iters)",
        min * 1e3,
        mean * 1e3
    );
}

/// A mid-size hybrid program for engine/analysis benches.
fn workload() -> (Program, ExecConfig) {
    let ranks = 8;
    let mut pb = ProgramBuilder::new(ranks);
    for r in 0..ranks {
        let left = (r + ranks - 1) % ranks;
        let right = (r + 1) % ranks;
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            for _ in 0..50 {
                rb.parallel("step", |omp| {
                    omp.for_loop(
                        "sweep",
                        4096,
                        Schedule::Static,
                        IterCost::Uniform(Cost::scalar(500)),
                        1 << 20,
                    );
                });
                rb.irecv(left, 0, 8192);
                rb.isend(right, 0, 8192);
                rb.waitall();
                rb.allreduce(8);
            }
        });
    }
    (pb.finish(), ExecConfig::jureca(1, JobLayout::block(ranks, 4), 7))
}

fn main() {
    let (program, cfg) = workload();
    println!("== engine ==");
    bench("execute_reference", 10, || nrlt_core::exec::execute(&program, &cfg, &mut NullObserver));
    bench("execute_traced_tsc", 10, || {
        measure(&program, &cfg, &MeasureConfig::new(ClockMode::Tsc))
    });
    bench("execute_traced_lt_stmt", 10, || {
        measure(&program, &cfg, &MeasureConfig::new(ClockMode::LtStmt))
    });

    println!("== trace_io ==");
    let (trace, _) = measure(&program, &cfg, &MeasureConfig::new(ClockMode::Tsc));
    println!("({} events)", trace.total_events());
    bench("encode", 20, || encode(&trace));
    let bytes = encode(&trace);
    bench("decode", 20, || decode(&bytes).unwrap());

    println!("== analysis ==");
    bench("analyze_full", 10, || analyze(&trace));
    bench("analyze_no_delay", 10, || {
        nrlt_core::analysis::analyze_with(
            &trace,
            &nrlt_core::analysis::AnalysisConfig { delay_costs: false, workers: 0 },
        )
    });

    println!("== matching ==");
    bench("post_10k_pairs", 20, || {
        let mut m = Matcher::<u64, u64>::new();
        for i in 0..10_000u64 {
            let ch = Channel { src: (i % 16) as u32, dst: ((i + 1) % 16) as u32, tag: 0 };
            m.post_send(ch, 1024, i);
            m.post_recv(ch, 1024, i);
        }
        m
    });

    println!("== profile ==");
    use std::collections::BTreeMap;
    let a: BTreeMap<u64, f64> = (0..10_000).map(|i| (i, (i % 97) as f64)).collect();
    let b: BTreeMap<u64, f64> = (0..10_000).map(|i| (i + 500, (i % 89) as f64)).collect();
    bench("jaccard_10k_cells", 50, || jaccard(&a, &b));
}
