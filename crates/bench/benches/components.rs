//! Criterion benchmarks of the hot components: trace encode/decode,
//! message matching, trace analysis, the replay engine, and the Jaccard
//! score.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nrlt_core::analysis::analyze;
use nrlt_core::measure_sys::{measure, MeasureConfig};
use nrlt_core::mpisim::{Channel, Matcher};
use nrlt_core::prelude::*;
use nrlt_core::trace::{decode, encode};

/// A mid-size hybrid program for engine/analysis benches.
fn workload() -> (Program, ExecConfig) {
    let ranks = 8;
    let mut pb = ProgramBuilder::new(ranks);
    for r in 0..ranks {
        let left = (r + ranks - 1) % ranks;
        let right = (r + 1) % ranks;
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            for _ in 0..50 {
                rb.parallel("step", |omp| {
                    omp.for_loop(
                        "sweep",
                        4096,
                        Schedule::Static,
                        IterCost::Uniform(Cost::scalar(500)),
                        1 << 20,
                    );
                });
                rb.irecv(left, 0, 8192);
                rb.isend(right, 0, 8192);
                rb.waitall();
                rb.allreduce(8);
            }
        });
    }
    (pb.finish(), ExecConfig::jureca(1, JobLayout::block(ranks, 4), 7))
}

fn bench_engine(c: &mut Criterion) {
    let (program, cfg) = workload();
    let mut group = c.benchmark_group("engine");
    group.bench_function("execute_reference", |b| {
        b.iter(|| nrlt_core::exec::execute(&program, &cfg, &mut NullObserver))
    });
    group.bench_function("execute_traced_tsc", |b| {
        b.iter(|| measure(&program, &cfg, &MeasureConfig::new(ClockMode::Tsc)))
    });
    group.bench_function("execute_traced_lt_stmt", |b| {
        b.iter(|| measure(&program, &cfg, &MeasureConfig::new(ClockMode::LtStmt)))
    });
    group.finish();
}

fn bench_trace_io(c: &mut Criterion) {
    let (program, cfg) = workload();
    let (trace, _) = measure(&program, &cfg, &MeasureConfig::new(ClockMode::Tsc));
    let bytes = encode(&trace);
    let mut group = c.benchmark_group("trace_io");
    group.throughput(Throughput::Elements(trace.total_events() as u64));
    group.bench_function("encode", |b| b.iter(|| encode(&trace)));
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("decode", |b| b.iter(|| decode(&bytes).unwrap()));
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let (program, cfg) = workload();
    let (trace, _) = measure(&program, &cfg, &MeasureConfig::new(ClockMode::Tsc));
    let mut group = c.benchmark_group("analysis");
    group.throughput(Throughput::Elements(trace.total_events() as u64));
    group.bench_function("analyze_full", |b| b.iter(|| analyze(&trace)));
    group.bench_function("analyze_no_delay", |b| {
        b.iter(|| {
            nrlt_core::analysis::analyze_with(
                &trace,
                &nrlt_core::analysis::AnalysisConfig { delay_costs: false, workers: 0 },
            )
        })
    });
    group.finish();
}

fn bench_matcher(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("post_10k_pairs", |b| {
        b.iter_batched(
            Matcher::<u64, u64>::new,
            |mut m| {
                for i in 0..10_000u64 {
                    let ch = Channel { src: (i % 16) as u32, dst: ((i + 1) % 16) as u32, tag: 0 };
                    m.post_send(ch, 1024, i);
                    m.post_recv(ch, 1024, i);
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_jaccard(c: &mut Criterion) {
    use std::collections::HashMap;
    let a: HashMap<u64, f64> = (0..10_000).map(|i| (i, (i % 97) as f64)).collect();
    let b: HashMap<u64, f64> = (0..10_000).map(|i| (i + 500, (i % 89) as f64)).collect();
    let mut group = c.benchmark_group("profile");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("jaccard_10k_cells", |bch| bch.iter(|| jaccard(&a, &b)));
    group.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_trace_io,
    bench_analysis,
    bench_matcher,
    bench_jaccard
);
criterion_main!(benches);
