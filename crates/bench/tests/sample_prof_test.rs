//! Acceptance contracts of the sampling profiler as wired through the
//! pipeline:
//!
//! 1. Opt-in: without [`SampleProf::install`], a full pipeline run
//!    publishes **zero** frames — no slot is ever registered, no push
//!    ever happens. The profiler off is provably free.
//! 2. Structure: every frame name the sampler ever observes during a
//!    real pipeline run is drawn from the static frame registry
//!    ([`frames::NAMES`]), and the folded export round-trips through
//!    the collapsed-stack parser. Sample *counts* are wall-clock data
//!    and deliberately unasserted.

use nrlt_core::miniapps::{MiniFeConfig, MiniFeCosts};
use nrlt_core::prelude::*;
use nrlt_telemetry::sample::{frames, SampleProf};

/// A deliberately tiny MiniFE so the whole protocol runs in seconds.
fn tiny_instance() -> BenchmarkInstance {
    MiniFeConfig {
        nx: 40,
        ranks: 2,
        threads_per_rank: 2,
        imbalance_pct: 50,
        cg_iters: 4,
        costs: MiniFeCosts::default(),
    }
    .build()
}

fn options() -> ExperimentOptions {
    ExperimentOptions {
        repetitions: 2,
        base_seed: 4242,
        modes: vec![ClockMode::Tsc, ClockMode::Lt1],
        jobs: 2,
        ..Default::default()
    }
}

#[test]
fn disabled_profiler_sees_no_publications_from_a_pipeline_run() {
    let prof = SampleProf::new();
    // No install: pipeline threads must not find (or create) any slot.
    let result = nrlt_core::run_experiment(&tiny_instance(), &options());
    assert!(result.events > 0, "pipeline did run");
    assert_eq!(prof.publishes(), 0, "uninstalled profiler saw frame publications");
    assert_eq!(prof.active_slots(), 0, "uninstalled profiler has registered slots");
    assert_eq!(prof.samples(), 0);
    assert!(prof.stack_counts().is_empty());
}

#[test]
fn sampled_frames_come_from_the_registry_and_folded_roundtrips() {
    let prof = SampleProf::with_rate(1000);
    let _guard = prof.install();
    // Re-run until the sampler has caught at least one stack (sampling
    // is wall-clock; one tiny run may complete between ticks).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while prof.samples() == 0 && std::time::Instant::now() < deadline {
        nrlt_core::run_experiment(&tiny_instance(), &options());
    }
    assert!(prof.publishes() > 0, "installed profiler saw no frame publications");
    assert!(prof.samples() > 0, "sampler caught no stacks within the deadline");

    // Structure: every sampled frame name is a registry name, and
    // stacks are non-empty and within the depth bound.
    let counts = prof.stack_counts();
    assert!(!counts.is_empty());
    for stack in counts.keys() {
        assert!(!stack.is_empty());
        for name in stack {
            assert!(frames::NAMES.contains(name), "sampled frame `{name}` not in the registry");
        }
    }

    // The folded export parses back to exactly the same stacks.
    let folded = nrlt_report::folded_from_counts(&counts);
    let parsed = nrlt_report::parse_folded(&folded);
    let expected: Vec<(Vec<String>, u64)> = counts
        .iter()
        .map(|(stack, &n)| (stack.iter().map(|s| s.to_string()).collect(), n))
        .collect();
    assert_eq!(parsed, expected, "folded export did not round-trip");
}
