//! The `BENCH_pipeline.json` perf baseline: wall time per experiment at
//! each worker count, merged across invocations.
//!
//! The file is written and read only by this module, which keeps the
//! format deliberately line-oriented — one entry object per line — so it
//! can be merged without a general JSON parser (the workspace is
//! dependency-free on purpose). Entries are keyed by
//! `(bin, run, jobs)`; re-running an experiment replaces its entry, a
//! new (binary, run, jobs) combination appends, so
//! `fig3 --jobs 1 --bench-json B.json` followed by
//! `fig3 --jobs 4 --bench-json B.json` leaves both timing points side
//! by side.

use crate::BenchEntry;
use std::io::Write;
use std::path::Path;

/// Merge `new_entries` into the baseline at `path` (replacing same-key
/// entries, appending the rest) and rewrite the file.
pub fn merge_and_write(path: &Path, new_entries: &[BenchEntry]) -> std::io::Result<()> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => parse_entries(&text),
        Err(_) => Vec::new(),
    };
    for new in new_entries {
        match entries
            .iter_mut()
            .find(|e| e.bin == new.bin && e.run == new.run && e.jobs == new.jobs)
        {
            Some(existing) => *existing = new.clone(),
            None => entries.push(new.clone()),
        }
    }
    entries.sort_by(|a, b| (&a.bin, &a.run, a.jobs).cmp(&(&b.bin, &b.run, b.jobs)));

    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = Vec::new();
    writeln!(out, "{{")?;
    writeln!(out, "  \"host_parallelism\": {host},")?;
    writeln!(out, "  \"entries\": [")?;
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"bin\": {}, \"run\": {}, \"jobs\": {}, \"wall_seconds\": {:.3}}}{comma}",
            json_string(&e.bin),
            json_string(&e.run),
            e.jobs,
            e.wall_seconds,
        )?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

/// Parse the entry lines of a baseline previously written by
/// [`merge_and_write`]. Lines that do not carry all four fields are
/// ignored, so a corrupted file degrades to "start fresh" rather than
/// an error.
pub fn parse_entries(text: &str) -> Vec<BenchEntry> {
    text.lines().filter_map(parse_entry_line).collect()
}

fn parse_entry_line(line: &str) -> Option<BenchEntry> {
    Some(BenchEntry {
        bin: field_string(line, "bin")?,
        run: field_string(line, "run")?,
        jobs: field_raw(line, "jobs")?.parse().ok()?,
        wall_seconds: field_raw(line, "wall_seconds")?.parse().ok()?,
    })
}

/// The raw token after `"key": `, up to the next `,` or `}`.
fn field_raw(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = line[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().to_owned())
}

/// A JSON string field value, unescaped.
fn field_string(line: &str, key: &str) -> Option<String> {
    let raw = field_raw(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bin: &str, run: &str, jobs: usize, wall: f64) -> BenchEntry {
        BenchEntry { bin: bin.into(), run: run.into(), jobs, wall_seconds: wall }
    }

    #[test]
    fn roundtrips_and_merges() {
        let dir = std::env::temp_dir().join("nrlt-bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_pipeline.json");
        let _ = std::fs::remove_file(&path);

        merge_and_write(&path, &[entry("fig3", "MiniFE-2", 1, 27.5)]).unwrap();
        merge_and_write(&path, &[entry("fig3", "MiniFE-2", 4, 8.25)]).unwrap();
        // Same key again: replaces, does not duplicate.
        merge_and_write(&path, &[entry("fig3", "MiniFE-2", 1, 27.125)]).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let entries = parse_entries(&text);
        assert_eq!(
            entries,
            vec![entry("fig3", "MiniFE-2", 1, 27.125), entry("fig3", "MiniFE-2", 4, 8.25)]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn escaped_names_survive() {
        let e = entry("tab2", "odd \"name\"\twith\nescapes", 2, 1.0);
        let dir = std::env::temp_dir().join("nrlt-bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("escapes.json");
        merge_and_write(&path, std::slice::from_ref(&e)).unwrap();
        let entries = parse_entries(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(entries, vec![e]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_lines_are_ignored() {
        assert!(parse_entries("not json\n{\"bin\": \"x\"}\n").is_empty());
    }
}
