//! Calibration dashboard: key numbers for every configuration, compared
//! against the paper's headline values (development tool).

use nrlt_bench::{header, modes, Harness};
use nrlt_core::prelude::*;
use nrlt_core::profile::callpath_table;
use std::time::Instant;

fn main() {
    let mut h = Harness::from_env("calib");
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let detail = args.iter().any(|a| a == "--detail");
    let configs: Vec<BenchmarkInstance> = all_configurations()
        .into_iter()
        .filter(|c| which == "all" || c.name.to_lowercase().contains(&which.to_lowercase()))
        .collect();
    for instance in configs {
        let t0 = Instant::now();
        let res = h.run_named(&instance);
        header(&format!("{} (wall {:?})", res.name, t0.elapsed()));
        println!("reference total: {}", res.reference_time());
        for mode in modes() {
            let m = res.mode(mode);
            let p = &m.mean;
            println!(
                "{:<9} ovh {:>7.1}%  J(M,C) {:>5.3}  r2r {:>5.3} | comp {:>5.1} mpi {:>5.1} omp {:>5.1} idle {:>5.1} | nxn {:>5.1} ls {:>5.1} lr {:>5.1} bwait {:>4.1} bovh {:>4.1} mgmt {:>4.1}",
                mode.name(),
                res.overhead_total(mode),
                res.jaccard_vs_tsc(mode),
                m.min_run_to_run_jaccard(),
                p.pct_t(Metric::Comp),
                p.pct_t(Metric::Mpi),
                p.pct_t(Metric::Omp),
                p.pct_t(Metric::IdleThreads),
                p.pct_t(Metric::WaitNxN),
                p.pct_t(Metric::LateSender),
                p.pct_t(Metric::LateReceiver),
                p.pct_t(Metric::OmpBarrierWait),
                p.pct_t(Metric::OmpBarrierOverhead),
                p.pct_t(Metric::OmpManagement),
            );
            if detail {
                println!("{}", callpath_table(p, Metric::Comp, 2.0));
                println!("{}", callpath_table(p, Metric::WaitNxN, 2.0));
                println!("{}", callpath_table(p, Metric::IdleThreads, 2.0));
                println!("{}", callpath_table(p, Metric::DelayN2n, 2.0));
            }
        }
    }
    h.finish();
}
