//! Figure 9: LULESH-1 — contributions of selected call paths to user
//! computation (9a) and to the delay costs of MPI all-to-all wait
//! states (9b), per clock mode.

use nrlt_bench::{callpath_bars, header, Harness};
use nrlt_core::prelude::*;

fn main() {
    let mut h = Harness::from_env("fig9");
    let res = h.run_named(&lulesh_1());
    header("Fig 9a: LULESH-1 call-path contributions to comp");
    callpath_bars(&res, Metric::Comp, 3.0);
    header("Fig 9b: LULESH-1 call-path contributions to delay_mpi_collective_n2n");
    callpath_bars(&res, Metric::DelayN2n, 3.0);
    h.finish();
}
