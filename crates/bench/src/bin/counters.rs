//! Future-work study: alternative hardware counters for `lt_hwctr`
//! (Section VI-B: "Experiments with different hardware counters and
//! combinations of hardware counters might lead to a better model").
//!
//! Compares three virtual counters on MiniFE-1 and LULESH-2:
//! instructions (the paper's), memory traffic, and a combined model.

use nrlt_bench::{header, Harness};
use nrlt_core::measure_config_for;
use nrlt_core::measure_sys::HwCounterSource;
use nrlt_core::prelude::*;

fn options() -> ExperimentOptions {
    ExperimentOptions { repetitions: 3, ..Default::default() }
}

fn main() {
    let mut h = Harness::from_env("counters");
    let sources = [
        ("instructions", HwCounterSource::Instructions),
        ("mem_traffic", HwCounterSource::MemoryTraffic),
        ("combined", HwCounterSource::Combined { bytes_weight: 0.4 }),
    ];

    for instance in [minife_1(), lulesh_2()] {
        header(&format!("hwctr counter study on {}", instance.name));
        let tsc = h.run_mode(&instance, ClockMode::Tsc, &options());
        let tsc_map = tsc.mean.map_mc();
        println!(
            "{:<14} {:>9} {:>9} | {:>7} {:>7} {:>7}",
            "counter", "J vs tsc", "r2r J", "comp", "nxn", "ls"
        );
        println!(
            "{:<14} {:>9} {:>9} | {:>7.1} {:>7.1} {:>7.1}",
            "(tsc itself)",
            "1.00",
            format!("{:.3}", tsc.min_run_to_run_jaccard()),
            tsc.mean.pct_t(Metric::Comp),
            tsc.mean.pct_t(Metric::WaitNxN),
            tsc.mean.pct_t(Metric::LateSender),
        );
        for (name, source) in sources {
            let mut mcfg = measure_config_for(&instance, ClockMode::LtHwctr);
            mcfg.effort.hwctr_source = source;
            let res = h.run_mode_with(&instance, mcfg, &options());
            println!(
                "{:<14} {:>9.3} {:>9.3} | {:>7.1} {:>7.1} {:>7.1}",
                name,
                jaccard(&tsc_map, &res.mean.map_mc()),
                res.min_run_to_run_jaccard(),
                res.mean.pct_t(Metric::Comp),
                res.mean.pct_t(Metric::WaitNxN),
                res.mean.pct_t(Metric::LateSender),
            );
        }
        println!();
    }
    println!("The traffic counter is exactly repeatable (no spin ticks) but loses");
    println!("the extrinsic waits that made instructions interesting; the combined");
    println!("counter trades between the two — the design space the paper sketches.");
    h.finish();
}
