//! Figure 5: MiniFE-1 and MiniFE-2 — contributions of selected call
//! paths to user computation (metric `comp`, in %_M), per clock mode.

use nrlt_bench::{callpath_bars, header, Harness};
use nrlt_core::prelude::*;

fn main() {
    let mut h = Harness::from_env("fig5");
    for instance in [minife_1(), minife_2()] {
        let res = h.run_named(&instance);
        header(&format!("Fig 5: {} call-path contributions to comp", res.name));
        callpath_bars(&res, Metric::Comp, 3.0);
    }
    h.finish();
}
