//! The headline percentages of Section V-C, printed next to the paper's
//! values so EXPERIMENTS.md can record paper-vs-measured per claim.

use nrlt_bench::{header, Harness};
use nrlt_core::prelude::*;
use nrlt_core::ExperimentResult;

fn claim(what: &str, paper: f64, measured: f64) {
    println!("{what:<66} paper {paper:>6.1}  measured {measured:>6.1}");
}

fn share(res: &ExperimentResult, mode: ClockMode, metric: Metric, region: &str) -> f64 {
    let p = &res.mode(mode).mean;
    let map = p.map_c(metric);
    map.iter().filter(|(c, _)| p.path_string(**c).contains(region)).map(|(_, v)| v).sum()
}

fn main() {
    let mut h = Harness::from_env("narrative");
    header("Section V-C narrative claims (all values %_T unless noted %_M)");

    let mf1 = h.run_named(&minife_1());
    let tsc = &mf1.mode(ClockMode::Tsc).mean;
    println!("\n-- MiniFE-1 --");
    claim("tsc: time in computation", 60.0, tsc.pct_t(Metric::Comp));
    claim("tsc: waiting in MPI all-to-all exchanges", 38.0, tsc.pct_t(Metric::WaitNxN));
    claim(
        "tsc: matrix-vector products, %_M of comp",
        37.0,
        share(&mf1, ClockMode::Tsc, Metric::Comp, "matvec"),
    );
    claim(
        "tsc: make_local_matrix, %_M of wait_nxn",
        44.0,
        share(&mf1, ClockMode::Tsc, Metric::WaitNxN, "make_local_matrix"),
    );
    claim(
        "tsc: cg_solve/dot, %_M of wait_nxn",
        31.0,
        share(&mf1, ClockMode::Tsc, Metric::WaitNxN, "dot"),
    );
    claim(
        "tsc: generate_matrix_structure, %_M of wait_nxn",
        20.0,
        share(&mf1, ClockMode::Tsc, Metric::WaitNxN, "generate_matrix_structure"),
    );
    claim(
        "lt_loop: late-sender time (misleading minor problem)",
        6.0,
        mf1.mode(ClockMode::LtLoop).mean.pct_t(Metric::LateSender),
    );
    for m in ClockMode::LOGICAL {
        let p = &mf1.mode(m).mean;
        claim(&format!("{m}: computation (paper range 62-68)"), 65.0, p.pct_t(Metric::Comp));
    }

    let mf2 = h.run_named(&minife_2());
    let tsc = &mf2.mode(ClockMode::Tsc).mean;
    println!("\n-- MiniFE-2 --");
    claim("tsc: idle threads", 58.0, tsc.pct_t(Metric::IdleThreads));
    claim("tsc: useful computation", 39.0, tsc.pct_t(Metric::Comp));
    claim("tsc: waiting in all-to-all", 2.0, tsc.pct_t(Metric::WaitNxN));
    claim(
        "tsc: generate_matrix_structure, %_M of idle_threads",
        35.0,
        share(&mf2, ClockMode::Tsc, Metric::IdleThreads, "generate_matrix_structure"),
    );
    claim(
        "tsc: make_local_matrix, %_M of idle_threads",
        6.0,
        share(&mf2, ClockMode::Tsc, Metric::IdleThreads, "make_local_matrix"),
    );
    claim(
        "tsc: matvec, %_M of comp (memory contention)",
        70.0,
        share(&mf2, ClockMode::Tsc, Metric::Comp, "matvec"),
    );
    claim("tsc: OpenMP time (mostly barrier waits)", 0.6, tsc.pct_t(Metric::Omp));
    claim(
        "lt_1: idle threads (no calls inside loops)",
        93.0,
        mf2.mode(ClockMode::Lt1).mean.pct_t(Metric::IdleThreads),
    );
    claim(
        "lt_loop: MPI time explaining idle",
        2.1,
        mf2.mode(ClockMode::LtLoop).mean.pct_t(Metric::Mpi),
    );
    claim(
        "lt_loop: total idle time",
        33.0,
        mf2.mode(ClockMode::LtLoop).mean.pct_t(Metric::IdleThreads),
    );

    let lu1 = h.run_named(&lulesh_1());
    let tsc = &lu1.mode(ClockMode::Tsc).mean;
    println!("\n-- LULESH-1 --");
    claim("tsc: computation", 78.0, tsc.pct_t(Metric::Comp));
    claim("tsc: MPI", 2.0, tsc.pct_t(Metric::Mpi));
    claim("tsc: OpenMP", 7.0, tsc.pct_t(Metric::Omp));
    claim("tsc: waiting at all-to-all", 1.0, tsc.pct_t(Metric::WaitNxN));
    claim("tsc: late senders", 0.5, tsc.pct_t(Metric::LateSender));
    claim("tsc: waiting at OpenMP barriers", 5.0, tsc.pct_t(Metric::OmpBarrierWait));
    claim(
        "tsc: CalcForceForNodes, %_M of comp (most computation)",
        55.0,
        share(&lu1, ClockMode::Tsc, Metric::Comp, "CalcForceForNodes"),
    );
    claim(
        "lt_hwctr: MPI library effort visible",
        2.0,
        lu1.mode(ClockMode::LtHwctr).mean.pct_t(Metric::Mpi),
    );
    claim(
        "lt_hwctr: delay cost inside MPI_Waitall, %_M of delay_n2n",
        30.0,
        share(&lu1, ClockMode::LtHwctr, Metric::DelayN2n, "MPI_Waitall"),
    );
    claim(
        "lt_loop/bb/stmt: delay costs at material update, %_M (bb shown)",
        60.0,
        share(&lu1, ClockMode::LtBb, Metric::DelayN2n, "ApplyMaterial"),
    );

    let lu2 = h.run_named(&lulesh_2());
    println!("\n-- LULESH-2 --");
    claim(
        "tsc: late-sender wait (uneven NUMA occupancy)",
        3.3,
        lu2.mode(ClockMode::Tsc).mean.pct_t(Metric::LateSender),
    );
    claim(
        "tsc: CalcForceForNodes causes it, %_M of latesender delay",
        60.0,
        share(&lu2, ClockMode::Tsc, Metric::DelayP2p, "CalcForce"),
    );
    for m in [ClockMode::Lt1, ClockMode::LtLoop, ClockMode::LtBb, ClockMode::LtStmt] {
        claim(
            &format!("{m}: late sender (invisible by design)"),
            0.0,
            lu2.mode(m).mean.pct_t(Metric::LateSender),
        );
    }
    claim(
        "lt_hwctr: late sender (only logical mode to see it)",
        2.0,
        lu2.mode(ClockMode::LtHwctr).mean.pct_t(Metric::LateSender),
    );

    let tl2 = h.run_named(&tealeaf_2());
    let tl4 = h.run_named(&tealeaf_4());
    println!("\n-- TeaLeaf --");
    claim(
        "TeaLeaf-2 tsc: OpenMP time (skewed by measurement)",
        39.0,
        tl2.mode(ClockMode::Tsc).mean.pct_t(Metric::Omp),
    );
    for m in [ClockMode::LtBb, ClockMode::LtStmt, ClockMode::LtHwctr] {
        claim(
            &format!("TeaLeaf-2 {m}: OpenMP overhead below 2"),
            2.0,
            tl2.mode(m).mean.pct_t(Metric::OmpBarrierOverhead)
                + tl2.mode(m).mean.pct_t(Metric::OmpManagement),
        );
    }
    claim(
        "TeaLeaf-4 tsc: wait at all-to-all dominates",
        12.0,
        tl4.mode(ClockMode::Tsc).mean.pct_t(Metric::WaitNxN),
    );
    claim(
        "TeaLeaf-4 lt_hwctr: shows the same problem",
        44.0,
        tl4.mode(ClockMode::LtHwctr).mean.pct_t(Metric::WaitNxN),
    );
    for m in [ClockMode::LtBb, ClockMode::LtStmt] {
        claim(
            &format!("TeaLeaf-4 {m}: little to no MPI time"),
            0.5,
            tl4.mode(m).mean.pct_t(Metric::Mpi),
        );
    }
    h.finish();
}
