//! Weak-scaling sweep through the sharded columnar trace store: each
//! mini-app grows to ~10,000 simulated ranks with per-rank work held
//! constant, measured under a resident trace budget (default 64 MiB)
//! small enough that the big sizes must spill columnar segments to disk
//! and stream them back through the out-of-core analysis path.
//!
//! Two claims are demonstrated per series:
//!
//! 1. **Byte identity** — at the smallest size, the fully resident and
//!    the force-spilled runs render byte-identical analysis output
//!    (asserted, not eyeballed).
//! 2. **Bounded memory** — the 10k-rank runs complete under a budget
//!    far below their resident event volume; `--rss-limit` turns the
//!    bound into a CI assertion and every bench entry records
//!    `peak_rss_bytes`.
//!
//! Accepts the standard harness flags; `--trace-budget` overrides the
//! default budget, `--only <app>` restricts to one mini-app family
//! (`MiniFE`, `LULESH`, `TeaLeaf`).

use nrlt_bench::{header, parse_bytes, Harness};
use nrlt_core::analysis::analyze_view;
use nrlt_core::engineprof::RunProf;
use nrlt_core::measure_sys::{measure_prepared_spilled, prepare_measure, BYTES_PER_EVENT};
use nrlt_core::prelude::*;
use nrlt_core::telemetry::sample::{self, frames};
use nrlt_core::trace::{MergedEvents, TraceView};
use nrlt_core::{exec_config_for, measure_config_for};
use nrlt_miniapps::{
    LuleshConfig, LuleshCosts, MiniFeConfig, MiniFeCosts, TeaLeafConfig, TeaLeafCosts,
};
use std::time::Instant;

/// Default resident trace budget when `--trace-budget` is absent. Small
/// enough that the 10k-rank sizes spill, large enough that chunks stay
/// well above the 64-event floor.
const DEFAULT_BUDGET: &str = "64m";

/// Cores per simulated JURECA-DC node (2 sockets × 4 NUMA × 16 cores).
const CORES_PER_NODE: u32 = 128;

fn nodes_for(ranks: u32, threads_per_rank: u32) -> u32 {
    (ranks * threads_per_rank).div_ceil(CORES_PER_NODE)
}

/// MiniFE at `ranks` with the per-rank grid share held constant
/// (~1728 elements/rank) and a short CG solve.
fn minife_weak(ranks: u32) -> BenchmarkInstance {
    let nx = ((1728 * ranks as u64) as f64).cbrt().round() as u64;
    let mut b = MiniFeConfig {
        nx,
        ranks,
        threads_per_rank: 1,
        imbalance_pct: 0,
        cg_iters: 5,
        costs: MiniFeCosts::default(),
    }
    .build();
    b.name = format!("MiniFE-weak-{ranks}");
    b.nodes = nodes_for(ranks, 1);
    b
}

/// LULESH at a cube rank count with a fixed per-rank subdomain.
fn lulesh_weak(ranks: u32) -> BenchmarkInstance {
    let mut b = LuleshConfig {
        ranks,
        threads_per_rank: 1,
        edge: 6,
        steps: 4,
        imbalance: 0.25,
        spread_placement: false,
        nodes: nodes_for(ranks, 1),
        costs: LuleshCosts::default(),
    }
    .build();
    b.name = format!("LULESH-weak-{ranks}");
    b
}

/// TeaLeaf at `ranks` strips with ~4096 cells per rank.
fn tealeaf_weak(ranks: u32) -> BenchmarkInstance {
    let n = ((4096 * ranks as u64) as f64).sqrt().round() as u64;
    let mut b = TeaLeafConfig {
        n,
        ranks,
        threads_per_rank: 1,
        steps: 2,
        cg_per_step: 4,
        costs: TeaLeafCosts::default(),
    }
    .build();
    b.name = format!("TeaLeaf-weak-{ranks}");
    b.nodes = nodes_for(ranks, 1);
    b
}

/// Measure + analyze one instance under `budget`, returning the
/// rendered analysis output (for the byte-identity check) and the
/// trace's recorded event count.
fn measure_and_render(
    instance: &BenchmarkInstance,
    budget: Option<u64>,
    h: &Harness,
    prof_run: Option<&RunProf>,
) -> (String, u64, u64) {
    let cfg = exec_config_for(instance, &NoiseConfig::realistic(), 1000);
    let mcfg = measure_config_for(instance, ClockMode::Tsc);
    let prep = prepare_measure(&instance.program, &cfg);
    let (trace, result) = measure_prepared_spilled(
        &instance.program,
        &prep,
        &cfg,
        &mcfg,
        budget,
        h.telemetry(),
        None,
        prof_run,
    );
    let view = trace.view();
    let profile = analyze_view(&view, &AnalysisConfig::default(), h.telemetry(), None);
    let merged = merged_event_count(&view, prof_run);
    assert_eq!(merged, view.total_events() as u64, "k-way merge must visit every recorded event");
    let rendered = nrlt_core::profile::metric_table(&profile, 0.0);
    (rendered, view.total_events() as u64, result.events)
}

/// Stream every location through the k-way merge — the cross-location
/// access pattern out-of-core passes use — and report heap KPIs.
fn merged_event_count(view: &TraceView<'_>, prof_run: Option<&RunProf>) -> u64 {
    let _frame = sample::frame(frames::ANALYZE_MERGE);
    let mut merged = MergedEvents::new(view.all_events());
    let mut n = 0u64;
    let mut prev = 0u64;
    for (_loc, ev) in merged.by_ref() {
        debug_assert!(ev.time >= prev, "merge must be time-ordered");
        prev = ev.time;
        n += 1;
    }
    if let Some(p) = prof_run {
        p.gauge("merge.heap_occupancy", "analyze_merge", merged.max_heap_occupancy() as i64);
        p.hwm("merge.events", n);
    }
    n
}

fn main() {
    let mut h = Harness::from_env("scale");
    let budget = h.trace_budget().or_else(|| parse_bytes(DEFAULT_BUDGET));
    header("scale: weak scaling through the sharded trace store");
    println!("trace budget {}M, clock tsc, 1 repetition per size", budget.unwrap_or(0) >> 20);

    type Make = fn(u32) -> BenchmarkInstance;
    let apps: [(&str, Make, [u32; 3]); 3] = [
        ("MiniFE", minife_weak, [64, 1000, 10_000]),
        ("LULESH", lulesh_weak, [64, 1728, 9_261]),
        ("TeaLeaf", tealeaf_weak, [64, 1000, 10_000]),
    ];

    println!(
        "\n{:<20} {:>7} {:>12} {:>11} {:>9} {:>12} {:>9}",
        "run", "ranks", "trace evts", "resident", "wall s", "events/s", "rss MiB"
    );
    for (app, make, sizes) in apps {
        if !h.wants(app) {
            continue;
        }
        // Byte-identity at the smallest size: fully resident vs forced
        // spill (1-byte budget → minimum chunk size, maximum spilling).
        let small = make(sizes[0]);
        let (resident, _, _) = measure_and_render(&small, None, &h, None);
        let (spilled, _, _) = measure_and_render(&small, Some(1), &h, None);
        assert_eq!(
            resident, spilled,
            "{app}: spilled analysis output must be byte-identical to resident"
        );
        println!("{app}: resident and force-spilled analysis output byte-identical");

        for ranks in sizes {
            let instance = make(ranks);
            let prof_run = h.engineprof().map(|_| RunProf::new(instance.name.clone()));
            // Reset the kernel HWM so each entry's `peak_rss_bytes` is
            // the peak of *this* run, not an inheritance from a larger
            // earlier one (the harness still tracks the sweep-wide max
            // for `--rss-limit`). Best-effort: where the reset is
            // unavailable the HWM falls back to process-monotone.
            nrlt_bench::bench_json::reset_peak_rss();
            let start = Instant::now();
            let (_, trace_events, engine_events) =
                measure_and_render(&instance, budget, &h, prof_run.as_ref());
            let wall = start.elapsed().as_secs_f64();
            if let (Some(p), Some(run)) = (h.engineprof(), prof_run) {
                let (name, data) = run.finish();
                p.attach(name, data);
            }
            h.record_external(&instance.name, 1, wall, engine_events);
            let resident_bytes = trace_events * BYTES_PER_EVENT;
            let spills = match budget {
                Some(b) if resident_bytes > b => "spilled",
                _ => "resident",
            };
            println!(
                "{:<20} {:>7} {:>12} {:>10}M {:>9.3} {:>12.0} {:>9} ({spills})",
                instance.name,
                ranks,
                trace_events,
                resident_bytes >> 20,
                wall,
                if wall > 0.0 { engine_events as f64 / wall } else { 0.0 },
                nrlt_bench::bench_json::peak_rss_bytes() >> 20,
            );
        }
    }
    h.finish();
}
