//! Load benchmark for the `nrlt-serve` query service.
//!
//! Starts an in-process server over the committed exemplar bundles
//! under `results/` and drives it with a deterministic closed-loop
//! load: N client threads, each holding one keep-alive connection and
//! issuing a seeded query mix (severity by run, observe, engine,
//! trend, catalog, flamegraph) back-to-back. Queries per second come
//! from the client-side count over wall time; p50/p95/p99 latency
//! comes from the server's own `serve.request_ns` telemetry histogram
//! — the same numbers `/stats` reports in production.
//!
//! With `--bench-json <path>` the results merge into the perf
//! baseline under the `serve` bin key (one entry per client-thread
//! count), so `bench-check` gates service throughput alongside the
//! figure pipelines; `--history <path>` appends the run to the trend
//! ledger. The run also cross-checks the server's self-accounting:
//! the `serve.requests` counter must cover at least 99% of the
//! requests the clients actually sent.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Instant;

use nrlt_bench::bench_json::{self, BenchEntry};
use nrlt_serve::{Config, Server};

/// Deterministic 64-bit LCG (MMIX constants) for the query mix.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }
}

/// The query mix, weighted toward the cheap severity/trend lookups a
/// dashboard would poll, with the heavier text renders mixed in. All
/// targets name the committed exemplar bundles.
const MIX: &[&str] = &[
    "/severity?bundle=report/fig3",
    "/severity?bundle=report/fig3&run=MiniFE-1&top=5",
    "/severity?bundle=report/fig3&run=MiniFE-2&top=5",
    "/severity?bundle=report/fig3&run=LULESH-1&top=5",
    "/severity?bundle=report/fig3&run=LULESH-2&top=5",
    "/trend",
    "/trend?key=fig3",
    "/bundles",
    "/engine?bundle=engineprof/fig3&top=3",
    "/flamegraph?bundle=telemetry/fig3",
    "/stats",
];

/// Issue one GET over an open keep-alive connection and read the full
/// response (headers + `Content-Length` body). Returns the status.
fn roundtrip(stream: &mut BufReader<TcpStream>, target: &str) -> std::io::Result<u16> {
    let req = format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n");
    stream.get_mut().write_all(req.as_bytes())?;
    let mut line = String::new();
    stream.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line {line:?}")))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        stream.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(status)
}

/// One closed-loop client: `requests` seeded queries over a single
/// keep-alive connection. Returns (ok, failed) counts.
fn client(addr: std::net::SocketAddr, seed: u64, requests: usize) -> (u64, u64) {
    let stream = TcpStream::connect(addr).expect("connect to in-process server");
    let mut stream = BufReader::new(stream);
    let mut lcg = Lcg(seed);
    let (mut ok, mut failed) = (0u64, 0u64);
    for _ in 0..requests {
        let target = MIX[(lcg.next() % MIX.len() as u64) as usize];
        match roundtrip(&mut stream, target) {
            Ok(200) => ok += 1,
            Ok(_) | Err(_) => failed += 1,
        }
    }
    (ok, failed)
}

/// Run one load configuration against a fresh server and return the
/// recorded entry. Panics on failed requests or broken self-telemetry
/// accounting — a load benchmark over errors measures nothing.
fn run_load(root: &Path, clients: usize, requests_per_client: usize, seed: u64) -> BenchEntry {
    let mut cfg = Config::new(root.to_path_buf());
    cfg.workers = 4;
    let server = Server::start(cfg).expect("start in-process server");
    let addr = server.addr();

    let start = Instant::now();
    let totals: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|i| s.spawn(move || client(addr, seed ^ (i as u64 + 1), requests_per_client)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let ok: u64 = totals.iter().map(|(o, _)| o).sum();
    let failed: u64 = totals.iter().map(|(_, f)| f).sum();
    assert_eq!(failed, 0, "{failed} of {} requests failed", ok + failed);

    let shared = server.join().expect("drain server");
    let tel = shared.telemetry();
    let counted = tel.counter("serve.requests").unwrap_or(0);
    assert!(
        counted as f64 >= 0.99 * ok as f64,
        "self-telemetry accounts for {counted} of {ok} requests (< 99%)"
    );
    let hist = tel
        .histograms()
        .into_iter()
        .find(|(n, _)| n == "serve.request_ns")
        .map(|(_, h)| h)
        .expect("request latency histogram");

    let qps = ok as f64 / wall;
    let (p50, p95, p99) = (hist.percentile(0.50), hist.percentile(0.95), hist.percentile(0.99));
    println!(
        "clients={clients:<2} {ok:>6} queries  {wall:>6.2} s  {qps:>8.0} q/s  \
         p50 {:>7.3} ms  p95 {:>7.3} ms  p99 {:>7.3} ms",
        p50 as f64 / 1e6,
        p95 as f64 / 1e6,
        p99 as f64 / 1e6,
    );
    BenchEntry {
        bin: "serve".to_owned(),
        run: "mixed".to_owned(),
        jobs: clients,
        host_parallelism: bench_json::host_parallelism(),
        wall_seconds: wall,
        events: ok,
        events_per_sec: qps,
        overhead_vs_plain_pct: None,
        peak_rss_bytes: bench_json::peak_rss_bytes(),
        p50_ns: p50,
        p95_ns: p95,
        p99_ns: p99,
    }
}

fn main() {
    let mut bench_json_path: Option<PathBuf> = None;
    let mut history_path: Option<PathBuf> = None;
    let mut root = PathBuf::from("results");
    let mut requests_per_client = 1500usize;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--bench-json" => bench_json_path = Some(PathBuf::from(value("--bench-json"))),
            "--history" => history_path = Some(PathBuf::from(value("--history"))),
            "--root" => root = PathBuf::from(value("--root")),
            "--requests" => {
                requests_per_client = value("--requests").parse().expect("integer --requests");
            }
            "--seed" => seed = value("--seed").parse().expect("integer --seed"),
            other => panic!(
                "unknown flag {other}\nusage: serve [--root DIR] [--requests N] [--seed S] \
                 [--bench-json PATH] [--history PATH]"
            ),
        }
    }
    assert!(root.is_dir(), "root {} is not a directory (run from the repo root)", root.display());

    println!("\n=== serve load benchmark (root {}) ===", root.display());
    let entries = vec![
        run_load(&root, 1, requests_per_client, seed),
        run_load(&root, 4, requests_per_client, seed),
    ];

    if let Some(path) = bench_json_path {
        match bench_json::merge_and_write(&path, &entries) {
            Ok(()) => eprintln!("perf baseline written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write perf baseline: {e}"),
        }
    }
    if let Some(path) = history_path {
        let record = nrlt_report::HistoryRecord {
            schema: nrlt_report::HISTORY_SCHEMA_VERSION,
            unix_time: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            git_rev: nrlt_telemetry::git_rev(),
            host_parallelism: bench_json::host_parallelism(),
            bin: "serve".to_owned(),
            entries,
            top_stacks: Vec::new(),
            engineprof_eps: Vec::new(),
        };
        match nrlt_report::append_record(&path, &record) {
            Ok(()) => eprintln!("history record appended to {}", path.display()),
            Err(e) => eprintln!("warning: could not append history: {e}"),
        }
    }
}
