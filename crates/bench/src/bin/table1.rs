//! Table I: measurement overheads for MiniFE-2 (init/solve/total),
//! LULESH-1 and TeaLeaf-2 under each clock mode.

use nrlt_bench::{header, modes, pct, Harness};
use nrlt_core::prelude::*;

fn main() {
    let mut h = Harness::from_env("table1");
    header("Table I: measurement overheads / %");
    let minife2 = h.run_named(&minife_2());
    let lulesh1 = h.run_named(&lulesh_1());
    let tealeaf2 = h.run_named(&tealeaf_2());
    println!(
        "{:<9} {:>8} {:>8} {:>8} | {:>9} | {:>9}",
        "Mode", "MF2-init", "MF2-slv", "MF2-tot", "LULESH-1", "TeaLeaf-2"
    );
    for mode in modes() {
        println!(
            "{:<9} {} {} {} | {} | {}",
            mode.name(),
            pct(minife2.overhead_phase(mode, "init")),
            pct(minife2.overhead_phase(mode, "solve")),
            pct(minife2.overhead_total(mode)),
            pct(lulesh1.overhead_total(mode)),
            pct(tealeaf2.overhead_total(mode)),
        );
    }
    h.finish();
}
