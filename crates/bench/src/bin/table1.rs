//! Table I: measurement overheads for MiniFE-2 (init/solve/total),
//! LULESH-1 and TeaLeaf-2 under each clock mode.

use nrlt_bench::{header, modes, pct, run_named};
use nrlt_core::prelude::*;

fn main() {
    header("Table I: measurement overheads / %");
    let minife2 = run_named(&minife_2());
    let lulesh1 = run_named(&lulesh_1());
    let tealeaf2 = run_named(&tealeaf_2());
    println!(
        "{:<9} {:>8} {:>8} {:>8} | {:>9} | {:>9}",
        "Mode", "MF2-init", "MF2-slv", "MF2-tot", "LULESH-1", "TeaLeaf-2"
    );
    for mode in modes() {
        println!(
            "{:<9} {} {} {} | {} | {}",
            mode.name(),
            pct(minife2.overhead_phase(mode, "init")),
            pct(minife2.overhead_phase(mode, "solve")),
            pct(minife2.overhead_total(mode)),
            pct(lulesh1.overhead_total(mode)),
            pct(tealeaf2.overhead_total(mode)),
        );
    }
}
