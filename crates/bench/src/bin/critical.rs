//! Critical-path study: which call paths determine the run time, under
//! the physical clock and under a logical clock — Scalasca's
//! critical-path analysis applied to the paper's question ("can we draw
//! useful conclusions from logical event traces?").

use nrlt_bench::{header, Harness};
use nrlt_core::analysis::critical_path;
use nrlt_core::exec_config_for;
use nrlt_core::measure_sys::{measure_telemetry, MeasureConfig};
use nrlt_core::prelude::*;

fn main() {
    let mut h = Harness::from_env("critical");
    for instance in [minife_1(), lulesh_1()] {
        header(&format!("critical path of {}", instance.name));
        for mode in [ClockMode::Tsc, ClockMode::LtStmt] {
            let cfg = exec_config_for(&instance, &NoiseConfig::realistic(), 1000);
            h.note_run(
                &format!("critical:{}:{}", instance.name, mode.name()),
                "single run",
                1000,
                1,
            );
            let (trace, _) = measure_telemetry(
                &instance.program,
                &cfg,
                &MeasureConfig::new(mode),
                h.telemetry(),
            );
            let cp = critical_path(&trace);
            println!(
                "{}: length {} ticks, {} hops, {:.0}% attributed to computation",
                mode.name(),
                cp.length,
                cp.events.len(),
                cp.attributed_fraction() * 100.0
            );
            for (path, ticks) in cp.by_callpath().into_iter().take(5) {
                let name = cp.call_tree.path_string(path, |r| trace.defs.region(r).name.clone());
                println!("  {:>5.1}%  {}", 100.0 * ticks as f64 / cp.length as f64, name);
            }
        }
        println!();
    }
    println!("Both clocks rank the same routines at the top of the critical path:");
    println!("the noise-resilient view is good enough to pick optimisation targets.");
    h.finish();
}
