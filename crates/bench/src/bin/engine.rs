//! Engine microbenchmarks: the hot-loop data structures in isolation.
//!
//! Times three kernels of the event engine — the ladder calendar
//! (push/pop with out-of-order arrivals), the wildcard matching book
//! (post/match churn over a small key set), and the batched noise-draw
//! path (`stream4` warm-up plus jitter draws) — and reports operations
//! per second for each. With `--bench-json <path>` the numbers merge
//! into the perf baseline under the `engine-micro` bin key, one entry
//! per kernel, so `bench-check` gates the structures independently of
//! the whole-pipeline figures.
//!
//! The workloads are seeded by a fixed LCG: every invocation times the
//! exact same operation sequence.

use nrlt_bench::bench_json::{self, BenchEntry};
use nrlt_core::exec::{LadderQueue, WildcardBook};
use nrlt_core::sim::{jitter_factor, RngFactory, StreamKind};
use std::path::PathBuf;
use std::time::Instant;

/// Deterministic 64-bit LCG (MMIX constants) for workload shapes.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }
}

/// Ladder calendar: interleaved pushes (time-local, like completion
/// times landing a little ahead of now) and pops. Returns (ops, sink).
fn bench_ladder(n: usize) -> (u64, u64) {
    let mut q: LadderQueue<u32> = LadderQueue::new(1_000_000);
    let mut lcg = Lcg(7);
    let mut now = 0u64;
    let mut sink = 0u64;
    for i in 0..n {
        // Completion times land 0..16 ms ahead of the current horizon.
        now += lcg.next() % 500_000;
        q.push(now + lcg.next() % 16_000_000, i as u32);
        if i % 4 == 3 {
            for _ in 0..3 {
                sink = sink.wrapping_add(q.pop().expect("queue has entries") as u64);
            }
        }
    }
    while let Some(v) = q.pop() {
        sink = sink.wrapping_add(v as u64);
    }
    ((n as u64) * 2, sink) // n pushes + n pops in total
}

/// Wildcard book: post/match churn across a handful of (rank, tag)
/// keys, the shape an `MPI_ANY_SOURCE` workload would produce.
fn bench_wildcard(n: usize) -> (u64, u64) {
    let mut book: WildcardBook<u64> = WildcardBook::default();
    let mut lcg = Lcg(11);
    let mut sink = 0u64;
    for i in 0..n {
        let key = ((lcg.next() % 8) as u32, (lcg.next() % 4) as u32);
        if book.depth() > 64 || (i % 3 == 2 && book.depth() > 0) {
            if let Some(v) = book.pop(key) {
                sink = sink.wrapping_add(v);
            }
        } else {
            book.push(key, i as u64);
        }
    }
    sink = sink.wrapping_add(book.depth() as u64);
    (n as u64, sink)
}

/// Batched noise draws: warm four streams per `stream4` call and take
/// one jitter factor from each — the observer's hardware-counter path.
fn bench_noise_batch(n_batches: usize) -> (u64, u64) {
    let f = RngFactory::new(42);
    let mut acc = 0.0f64;
    for i in 0..n_batches as u64 {
        let k = StreamKind::HwCounter;
        let mut streams =
            f.stream4([(k, i, 4 * i), (k, i, 4 * i + 1), (k, i, 4 * i + 2), (k, i, 4 * i + 3)]);
        for s in streams.iter_mut() {
            acc += jitter_factor(s, 0.02);
        }
    }
    ((n_batches as u64) * 4, acc.to_bits())
}

fn main() {
    let mut bench_json_path: Option<PathBuf> = None;
    let mut history_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--bench-json" {
            bench_json_path = args.next().map(PathBuf::from);
        } else if let Some(v) = a.strip_prefix("--bench-json=") {
            bench_json_path = Some(PathBuf::from(v));
        } else if a == "--history" {
            history_path = args.next().map(PathBuf::from);
        } else if let Some(v) = a.strip_prefix("--history=") {
            history_path = Some(PathBuf::from(v));
        }
    }

    println!("\n=== engine microbenchmarks ===");
    /// One microbench kernel: run `n` units, return (ops, sink).
    type Kernel = fn(usize) -> (u64, u64);
    let kernels: [(&str, Kernel, usize); 3] = [
        ("ladder-calendar", bench_ladder, 4_000_000),
        ("wildcard-match", bench_wildcard, 4_000_000),
        ("noise-batch", bench_noise_batch, 1_000_000),
    ];
    let mut entries = Vec::new();
    for (name, kernel, n) in kernels {
        // One warm-up pass, then the timed pass.
        let _ = kernel(n / 10);
        let start = Instant::now();
        let (ops, sink) = kernel(n);
        let wall = start.elapsed().as_secs_f64();
        let mops = ops as f64 / wall / 1e6;
        println!("{name:<16} {ops:>9} ops  {wall:>7.3} s  {mops:>8.1} Mops/s  (sink {sink:x})");
        entries.push(BenchEntry {
            bin: "engine-micro".to_owned(),
            run: name.to_owned(),
            jobs: 1,
            host_parallelism: bench_json::host_parallelism(),
            wall_seconds: wall,
            events: ops,
            events_per_sec: ops as f64 / wall,
            overhead_vs_plain_pct: None,
            peak_rss_bytes: bench_json::peak_rss_bytes(),
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
        });
    }
    if let Some(path) = bench_json_path {
        match bench_json::merge_and_write(&path, &entries) {
            Ok(()) => eprintln!("perf baseline written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write perf baseline: {e}"),
        }
    }
    if let Some(path) = history_path {
        let record = nrlt_report::HistoryRecord {
            schema: nrlt_report::HISTORY_SCHEMA_VERSION,
            unix_time: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            git_rev: nrlt_telemetry::git_rev(),
            host_parallelism: bench_json::host_parallelism(),
            bin: "engine-micro".to_owned(),
            entries,
            top_stacks: Vec::new(),
            engineprof_eps: Vec::new(),
        };
        match nrlt_report::append_record(&path, &record) {
            Ok(()) => eprintln!("history record appended to {}", path.display()),
            Err(e) => eprintln!("warning: could not append history: {e}"),
        }
    }
}
