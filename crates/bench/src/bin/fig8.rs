//! Figure 8: LULESH-1 — time in user computation, OpenMP, MPI and idle
//! threads relative to total run time (%_T), per clock mode.

use nrlt_bench::{header, Harness};
use nrlt_core::prelude::*;

fn main() {
    let mut h = Harness::from_env("fig8");
    let res = h.run_named(&lulesh_1());
    header("Fig 8: LULESH-1 paradigm split (%_T)");
    println!("{:<10} {:>7} {:>7} {:>7} {:>7}", "Mode", "comp", "omp", "mpi", "idle");
    for m in &res.modes {
        println!(
            "{:<10} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
            m.mode.name(),
            m.mean.pct_t(Metric::Comp),
            m.mean.pct_t(Metric::Omp),
            m.mean.pct_t(Metric::Mpi),
            m.mean.pct_t(Metric::IdleThreads),
        );
    }
    h.finish();
}
