//! Figure 3: similarity of the logical measurements to tsc, by the
//! generalized Jaccard score over (metric, call path) contributions —
//! MiniFE-1/2 and LULESH-1/2, plus the minimal run-to-run scores of the
//! noise-sensitive modes.

use nrlt_bench::{header, score, Harness};
use nrlt_core::prelude::*;

fn main() {
    let mut h = Harness::from_env("fig3");
    header("Fig 3: J_(M,C) similarity to tsc (MiniFE, LULESH)");
    let experiments: Vec<_> = [minife_1(), minife_2(), lulesh_1(), lulesh_2()]
        .into_iter()
        .filter(|i| h.wants(&i.name))
        .collect();
    let results: Vec<_> = experiments.iter().map(|i| h.run_named(i)).collect();
    print!("{:<10}", "Mode");
    for r in &results {
        print!(" {:>9}", r.name);
    }
    println!();
    for mode in ClockMode::LOGICAL {
        print!("{:<10}", mode.name());
        for r in &results {
            print!(" {:>9}", score(r.jaccard_vs_tsc(mode)));
        }
        println!();
    }
    println!("\nminimal run-to-run J_(M,C) across repetitions:");
    for mode in [ClockMode::Tsc, ClockMode::LtHwctr] {
        print!("{:<10}", mode.name());
        for r in &results {
            print!(" {:>9}", score(r.mode(mode).min_run_to_run_jaccard()));
        }
        println!();
    }
    println!("(all other logical modes repeat exactly: run-to-run score = 1.00)");
    h.finish();
}
