//! Figure 2: MiniFE-2 matrix-structure-generation run time — the five
//! repetitions and their mean, per measurement method.

use nrlt_bench::{header, modes, paper_options, Harness};
use nrlt_core::prelude::*;

fn main() {
    let mut h = Harness::from_env("fig2");
    header("Fig 2: MiniFE-2 run-time for matrix structure generation");
    let instance = minife_2();
    let options = paper_options();
    // Reference repetitions.
    let res = h.run_experiment(&instance, &ExperimentOptions { modes: vec![], ..options.clone() });
    let ref_times: Vec<f64> = res
        .reference
        .iter()
        .map(|r| {
            let id = res.phase_names.iter().position(|p| p == "structure_gen").unwrap();
            r.phase_max(nrlt_core::prog::PhaseId(id as u32)).as_secs_f64()
        })
        .collect();
    print_row("reference", &ref_times);
    for mode in modes() {
        let m = h.run_mode(&instance, mode, &options);
        let times: Vec<f64> =
            m.phase_times.iter().map(|p| p["structure_gen"].as_secs_f64()).collect();
        print_row(mode.name(), &times);
    }
    println!("\n(each column one repetition; mean in the last column — logical modes");
    println!(" without hardware-counter reads run once, as in the paper's protocol)");
    h.finish();
}

fn print_row(label: &str, times: &[f64]) {
    let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
    print!("{label:<10}");
    for t in times {
        print!(" {t:>7.3}s");
    }
    println!("  | mean {mean:>7.3}s");
}
