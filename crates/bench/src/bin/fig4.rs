//! Figure 4: similarity of the logical measurements to tsc for the four
//! TeaLeaf configurations (J_(M,C)), with run-to-run minima.

use nrlt_bench::{header, score, Harness};
use nrlt_core::prelude::*;

fn main() {
    let mut h = Harness::from_env("fig4");
    header("Fig 4: J_(M,C) similarity to tsc (TeaLeaf)");
    let experiments = [tealeaf_1(), tealeaf_2(), tealeaf_3(), tealeaf_4()];
    let results: Vec<_> = experiments.iter().map(|i| h.run_named(i)).collect();
    print!("{:<10}", "Mode");
    for r in &results {
        print!(" {:>10}", r.name);
    }
    println!();
    for mode in ClockMode::LOGICAL {
        print!("{:<10}", mode.name());
        for r in &results {
            print!(" {:>10}", score(r.jaccard_vs_tsc(mode)));
        }
        println!();
    }
    println!("\nminimal run-to-run J_(M,C) across repetitions:");
    for mode in [ClockMode::Tsc, ClockMode::LtHwctr] {
        print!("{:<10}", mode.name());
        for r in &results {
            print!(" {:>10}", score(r.mode(mode).min_run_to_run_jaccard()));
        }
        println!();
    }
    h.finish();
}
