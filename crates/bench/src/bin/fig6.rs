//! Figure 6: MiniFE-1 and MiniFE-2 — contributions of selected call
//! paths to all-to-all wait time (metric `wait_nxn`, in %_M).

use nrlt_bench::{callpath_bars, header, Harness};
use nrlt_core::prelude::*;

fn main() {
    let mut h = Harness::from_env("fig6");
    for instance in [minife_1(), minife_2()] {
        let res = h.run_named(&instance);
        header(&format!("Fig 6: {} call-path contributions to wait_nxn", res.name));
        callpath_bars(&res, Metric::WaitNxN, 2.0);
    }
    h.finish();
}
