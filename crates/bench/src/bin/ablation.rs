//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. the fitted OpenMP-runtime effort constants (the paper's X = 100
//!    basic blocks / Y = 4300 statements) vs. no runtime model at all,
//! 2. spin-wait instruction accounting in the virtual hardware counter
//!    (the mechanism that lets `lt_hwctr` see extrinsic waits — and
//!    re-imports noise),
//! 3. measurement-induced thread desynchronisation (the negative
//!    overheads),
//! 4. the trace-buffer cache footprint (TeaLeaf's 40 % tsc overhead),
//! 5. piggyback synchronisation messages (the paper's implementation
//!    choice over MPI datatype piggybacking).

use nrlt_bench::{header, Harness};
use nrlt_core::measure_sys::MeasureConfig;
use nrlt_core::prelude::*;
use nrlt_core::{exec_config_for, measure_config_for};

fn options() -> ExperimentOptions {
    ExperimentOptions { repetitions: 3, ..Default::default() }
}

fn reference_time(instance: &BenchmarkInstance) -> f64 {
    let opts = options();
    (0..3)
        .map(|rep| {
            let cfg = exec_config_for(instance, &opts.noise, opts.base_seed + 100 + rep);
            nrlt_core::measure_sys::reference_run(&instance.program, &cfg).total.as_secs_f64()
        })
        .sum::<f64>()
        / 3.0
}

fn main() {
    let mut h = Harness::from_env("ablation");
    // ---- 1. X/Y constants ------------------------------------------------
    header("Ablation 1: OpenMP-runtime effort constants (LULESH-1, lt_stmt)");
    let lulesh = lulesh_1();
    let fitted =
        h.run_mode_with(&lulesh, measure_config_for(&lulesh, ClockMode::LtStmt), &options());
    let mut no_model = measure_config_for(&lulesh, ClockMode::LtStmt);
    no_model.effort.omp_call_basic_blocks = 0;
    no_model.effort.omp_call_statements = 0;
    let ablated = h.run_mode_with(&lulesh, no_model, &options());
    println!(
        "with Y=4300 (fitted):  omp {:>5.2}%_T (management {:.2}, overhead {:.2})",
        fitted.mean.pct_t(Metric::Omp),
        fitted.mean.pct_t(Metric::OmpManagement),
        fitted.mean.pct_t(Metric::OmpBarrierOverhead),
    );
    println!(
        "with Y=0 (no model):   omp {:>5.2}%_T (management {:.2}, overhead {:.2})",
        ablated.mean.pct_t(Metric::Omp),
        ablated.mean.pct_t(Metric::OmpManagement),
        ablated.mean.pct_t(Metric::OmpBarrierOverhead),
    );
    println!("→ without the fitted constants the statement clock cannot see the");
    println!("  OpenMP runtime at all (the paper's motivation for X and Y).");

    // ---- 2. spin accounting ----------------------------------------------
    header("Ablation 2: spin-wait instructions in lt_hwctr (LULESH-2)");
    let lulesh2 = lulesh_2();
    let with_spin =
        h.run_mode_with(&lulesh2, measure_config_for(&lulesh2, ClockMode::LtHwctr), &options());
    let mut no_spin = measure_config_for(&lulesh2, ClockMode::LtHwctr);
    no_spin.effort.spin_ipc_fraction = 0.0;
    no_spin.effort.spin_rate_sigma = 0.0;
    let without_spin = h.run_mode_with(&lulesh2, no_spin, &options());
    println!(
        "with spin accounting:    latesender {:>5.2}%_T, run-to-run J {:.3}",
        with_spin.mean.pct_t(Metric::LateSender),
        with_spin.min_run_to_run_jaccard(),
    );
    println!(
        "without spin accounting: latesender {:>5.2}%_T, run-to-run J {:.3}",
        without_spin.mean.pct_t(Metric::LateSender),
        without_spin.min_run_to_run_jaccard(),
    );
    println!("→ spinning is both why lt_hwctr sees the extrinsic NUMA waits and");
    println!("  why it loses exact repeatability.");

    // ---- 3. desynchronisation --------------------------------------------
    header("Ablation 3: measurement-induced desynchronisation (MiniFE-2, tsc)");
    let minife = minife_2();
    let reference = reference_time(&minife);
    let with_desync =
        h.run_mode_with(&minife, measure_config_for(&minife, ClockMode::Tsc), &options());
    let mut no_desync = measure_config_for(&minife, ClockMode::Tsc);
    no_desync.overhead.desync = 0.0;
    let without_desync = h.run_mode_with(&minife, no_desync, &options());
    let ovh = |m: &nrlt_core::ModeResult| {
        100.0 * (m.mean_run_time().as_secs_f64() - reference) / reference
    };
    println!("with desynchronisation:    total overhead {:>5.2}%", ovh(&with_desync));
    println!("without desynchronisation: total overhead {:>5.2}%", ovh(&without_desync));
    println!("→ the Afzal-style desync relief is what pulls the low-effort");
    println!("  overheads negative.");

    // ---- 4. cache footprint ------------------------------------------------
    header("Ablation 4: trace-buffer cache footprint (TeaLeaf-2, tsc)");
    let tealeaf = tealeaf_2();
    let reference = reference_time(&tealeaf);
    let with_buffers =
        h.run_mode_with(&tealeaf, measure_config_for(&tealeaf, ClockMode::Tsc), &options());
    let mut no_buffers = measure_config_for(&tealeaf, ClockMode::Tsc);
    no_buffers.overhead.buffer_footprint = 0;
    let without_buffers = h.run_mode_with(&tealeaf, no_buffers, &options());
    println!("with 2 MiB/location buffers: overhead {:>5.1}%", {
        100.0 * (with_buffers.mean_run_time().as_secs_f64() - reference) / reference
    });
    println!("with zero-footprint buffers: overhead {:>5.1}%", {
        100.0 * (without_buffers.mean_run_time().as_secs_f64() - reference) / reference
    });
    println!("→ TeaLeaf's 40 % tsc penalty is pure cache pollution, not events.");

    // ---- 5. piggyback messages ---------------------------------------------
    header("Ablation 5: piggyback synchronisation messages (MiniFE-2, lt_1)");
    let with_piggy =
        h.run_mode_with(&minife, measure_config_for(&minife, ClockMode::Lt1), &options());
    let mut free_piggy: MeasureConfig = measure_config_for(&minife, ClockMode::Lt1);
    free_piggy.overhead.piggyback_message = 0.0;
    let without_piggy = h.run_mode_with(&minife, free_piggy, &options());
    let reference = reference_time(&minife);
    println!("extra sync messages costed: overhead {:>6.2}%", {
        100.0 * (with_piggy.mean_run_time().as_secs_f64() - reference) / reference
    });
    println!("free (datatype piggyback):  overhead {:>6.2}%", {
        100.0 * (without_piggy.mean_run_time().as_secs_f64() - reference) / reference
    });
    println!("→ the extra-message implementation the paper chose for simplicity");
    println!("  costs almost nothing at these message rates.");
    h.finish();
}
