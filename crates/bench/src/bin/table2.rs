//! Table II: TeaLeaf run times and tsc measurement overheads for the
//! four rank/thread splits of one node.

use nrlt_bench::{header, Harness};
use nrlt_core::prelude::*;

fn main() {
    let mut h = Harness::from_env("table2");
    header("Table II: TeaLeaf run times and tsc overheads");
    println!(
        "{:<11} {:>5} | {:>10} {:>10} | {:>10}",
        "Name", "Ranks", "Ref/s", "tsc/s", "overhead/%"
    );
    for instance in [tealeaf_1(), tealeaf_2(), tealeaf_3(), tealeaf_4()] {
        let res = h.run_named(&instance);
        let reference = res.reference_time();
        let tsc = res.mode(ClockMode::Tsc).mean_run_time();
        println!(
            "{:<11} {:>5} | {:>10.3} {:>10.3} | {:>10.1}",
            res.name,
            instance.layout.ranks,
            reference.as_secs_f64(),
            tsc.as_secs_f64(),
            res.overhead_total(ClockMode::Tsc),
        );
    }
    println!("\n(Virtual seconds; the simulated problem runs fewer CG iterations than");
    println!(" tea_bm_5, so absolute times are smaller than the paper's by design.)");
    h.finish();
}
