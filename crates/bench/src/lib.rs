//! # nrlt-bench — experiment harness
//!
//! One binary per table/figure of the paper, each printing the rows or
//! series the paper reports (see DESIGN.md's experiment index), plus
//! criterion benchmarks over the hot components.
//!
//! Absolute numbers come from a simulated machine; per the reproduction
//! protocol the *shapes* (who wins, rough factors, crossovers) are the
//! comparison targets, recorded in EXPERIMENTS.md.

use nrlt_core::prelude::*;
use nrlt_core::ExperimentResult;
use nrlt_engineprof::{EngineProf, ProfBundle};
use nrlt_observe::export::ObserveBundle;
use nrlt_observe::Observe;
use nrlt_telemetry::sample::{self, frames, SampleProf};
use nrlt_telemetry::{write_exports, Manifest, RunInfo, Telemetry};
use std::path::PathBuf;
use std::time::Instant;

/// The standard options used for all paper experiments.
pub fn paper_options() -> ExperimentOptions {
    ExperimentOptions::default()
}

/// Run one named configuration under the standard protocol.
pub fn run_named(instance: &BenchmarkInstance) -> ExperimentResult {
    run_experiment(instance, &paper_options())
}

/// The perf-baseline format and regression gate live in the report
/// crate ([`nrlt_report::bench`]); the old `nrlt_bench::bench_json` path
/// stays valid through this re-export.
pub use nrlt_report::bench as bench_json;
pub use nrlt_report::bench::BenchEntry;

/// Hotspot-table depth of the `--report` severity sections.
const REPORT_TOP_N: usize = 10;

/// Per-binary telemetry + perf-baseline harness.
///
/// Every figure/table binary accepts `--telemetry <dir>` (also
/// `--telemetry=<dir>`). Without the flag the harness is inert: no
/// [`Telemetry`] handle exists, the pipeline runs on its `None` paths,
/// and output is byte-identical to before the flag existed. With the
/// flag, [`Harness::finish`] writes `manifest.json`, `metrics.jsonl`,
/// `pipeline.trace.json`, and `summary.txt` into the directory.
///
/// Further flags:
///
/// * `--jobs N` (also `--jobs=N`) overrides
///   [`ExperimentOptions::jobs`] for every experiment the harness
///   drives; `0` (the default) means available parallelism. Output is
///   byte-identical for every value — the flag only changes wall time.
/// * `--bench-json <path>` records wall time per experiment into a JSON
///   perf baseline at `path`. Entries are keyed by (binary, run, jobs),
///   so running the same binary at `--jobs 1` and `--jobs 4` against
///   one file accumulates both points for comparison. Every entry also
///   records the host parallelism it was measured under (see
///   [`nrlt_report::bench`]).
/// * `--report <dir>` writes the severity report of every experiment
///   the harness drove (`report.txt` + `report.json`, deterministic —
///   derived from the analysis profiles only) and a collapsed-stack
///   `flamegraph.folded` over the run's telemetry spans. Implies a
///   telemetry handle even without `--telemetry`.
/// * `--only <name>` restricts harness-driven experiments to the named
///   configuration; binaries consult [`Harness::wants`].
/// * `--observe <dir>` (also `--observe=<dir>`) records the resource
///   observatory of every harness-driven experiment — counter
///   timelines, noise attribution, wait-state provenance — and writes
///   `observe.jsonl` + `observe.trace.json` into the directory on
///   [`Harness::finish`]. Without the flag the pipeline runs on its
///   `None` paths and does zero observability work; printed output is
///   byte-identical either way. Bench entries recorded while observing
///   carry an `:observe` key suffix so they gate separately from the
///   plain pipeline.
/// * `--engine-prof <dir>` (also `--engine-prof=<dir>`) turns on the
///   engine self-profiler for every harness-driven experiment —
///   per-event-kind cost accounting, queue-occupancy timelines,
///   hot-loop allocation counts — and writes `engineprof.json`
///   (deterministic) + `engineprof.wall.json` (wall-clock) into the
///   directory on [`Harness::finish`]. Without the flag the engine runs
///   on its `None` paths and performs zero profiling work; printed
///   output is byte-identical either way. Bench entries recorded while
///   profiling carry an `:engineprof` key suffix so they gate
///   separately from the plain pipeline.
/// * `--sample-prof <dir>` (also `--sample-prof=<dir>`) installs the
///   cooperative wall-clock sampling profiler for the whole invocation:
///   pipeline threads publish their current logical frame into
///   per-thread slots and a background thread samples them at
///   `--sample-rate <hz>` (default 97). On [`Harness::finish`] the
///   folded stacks land in `<dir>/samples.folded` plus a
///   `sampleprof.wall.json` sidecar (rate, ticks, samples, publishes,
///   torn reads, top stacks — wall-clock data, inherently run-to-run).
///   Without the flag no profiler exists and no thread ever publishes a
///   slot. Bench entries recorded while sampling carry a `:sampleprof`
///   key suffix so they gate separately from the plain pipeline.
/// * `--trace-budget <bytes>` (also `--trace-budget=<bytes>`, with
///   optional `k`/`m`/`g` suffixes, e.g. `--trace-budget 64m`) caps
///   resident event storage for every harness-driven experiment:
///   per-location streams spill columnar chunks to temp segment files
///   beyond the budget and analysis streams them back. Output is
///   byte-identical with and without the flag — spilling changes peak
///   RSS and wall time, never results. Without the flag traces stay
///   fully resident (the historical path).
/// * `--rss-limit <bytes>` (same suffixes) is an assertion, not a
///   tuning knob: [`Harness::finish`] fails the process when the
///   invocation's peak RSS (`VmHWM`) exceeded the limit. CI uses it to
///   prove the out-of-core path keeps memory bounded.
/// * `--history <path>` (also `--history=<path>`) appends one
///   schema-versioned JSON line to the cross-run perf ledger at `path`
///   on [`Harness::finish`]: git revision, host parallelism, every
///   bench entry of the invocation, the sampler's top stacks, and the
///   engine profiler's per-run events/sec digest (see
///   [`nrlt_report::history`]). `nrlt-report trend` renders the ledger;
///   `bench-check --history` gates against its EWMA baseline.
pub struct Harness {
    bin: String,
    tel: Option<Telemetry>,
    manifest: Manifest,
    dir: Option<PathBuf>,
    report_dir: Option<PathBuf>,
    observe_dir: Option<PathBuf>,
    obs: Option<Observe>,
    engineprof_dir: Option<PathBuf>,
    prof: Option<EngineProf>,
    sample_dir: Option<PathBuf>,
    sprof: Option<SampleProf>,
    sprof_guard: Option<sample::InstallGuard>,
    harness_frame: Option<sample::FrameGuard>,
    history: Option<PathBuf>,
    only: Option<String>,
    jobs: Option<usize>,
    trace_budget: Option<u64>,
    rss_limit: Option<u64>,
    // Running max of every `VmHWM` sample taken while recording bench
    // entries. The kernel counter is resettable (`reset_peak_rss`), so
    // the `--rss-limit` assertion checks this harness-side max — a
    // sweep that resets between runs cannot hide an earlier overshoot.
    rss_hwm: u64,
    bench_json: Option<PathBuf>,
    bench_entries: Vec<BenchEntry>,
    report_text: String,
    report_json: Vec<String>,
    started: Instant,
}

impl Harness {
    /// Build a harness for binary `bin`, reading `--telemetry <dir>`,
    /// `--jobs N`, `--bench-json <path>`, `--report <dir>`, and
    /// `--only <name>` from the command line.
    pub fn from_env(bin: &str) -> Harness {
        let mut dir = None;
        let mut report_dir = None;
        let mut observe_dir = None;
        let mut engineprof_dir = None;
        let mut sample_dir = None;
        let mut sample_rate = None;
        let mut history = None;
        let mut only = None;
        let mut jobs = None;
        let mut trace_budget = None;
        let mut rss_limit = None;
        let mut bench_json = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--telemetry" {
                dir = args.next().map(PathBuf::from);
            } else if let Some(d) = a.strip_prefix("--telemetry=") {
                dir = Some(PathBuf::from(d));
            } else if a == "--report" {
                report_dir = args.next().map(PathBuf::from);
            } else if let Some(d) = a.strip_prefix("--report=") {
                report_dir = Some(PathBuf::from(d));
            } else if a == "--observe" {
                observe_dir = args.next().map(PathBuf::from);
            } else if let Some(d) = a.strip_prefix("--observe=") {
                observe_dir = Some(PathBuf::from(d));
            } else if a == "--engine-prof" {
                engineprof_dir = args.next().map(PathBuf::from);
            } else if let Some(d) = a.strip_prefix("--engine-prof=") {
                engineprof_dir = Some(PathBuf::from(d));
            } else if a == "--sample-prof" {
                sample_dir = args.next().map(PathBuf::from);
            } else if let Some(d) = a.strip_prefix("--sample-prof=") {
                sample_dir = Some(PathBuf::from(d));
            } else if a == "--sample-rate" {
                sample_rate = args.next().and_then(|v| v.parse().ok());
            } else if let Some(v) = a.strip_prefix("--sample-rate=") {
                sample_rate = v.parse().ok();
            } else if a == "--history" {
                history = args.next().map(PathBuf::from);
            } else if let Some(d) = a.strip_prefix("--history=") {
                history = Some(PathBuf::from(d));
            } else if a == "--only" {
                only = args.next();
            } else if let Some(v) = a.strip_prefix("--only=") {
                only = Some(v.to_owned());
            } else if a == "--jobs" {
                jobs = args.next().and_then(|v| v.parse().ok());
            } else if let Some(v) = a.strip_prefix("--jobs=") {
                jobs = v.parse().ok();
            } else if a == "--trace-budget" {
                trace_budget = args.next().as_deref().and_then(parse_bytes);
            } else if let Some(v) = a.strip_prefix("--trace-budget=") {
                trace_budget = parse_bytes(v);
            } else if a == "--rss-limit" {
                rss_limit = args.next().as_deref().and_then(parse_bytes);
            } else if let Some(v) = a.strip_prefix("--rss-limit=") {
                rss_limit = parse_bytes(v);
            } else if a == "--bench-json" {
                bench_json = args.next().map(PathBuf::from);
            } else if let Some(v) = a.strip_prefix("--bench-json=") {
                bench_json = Some(PathBuf::from(v));
            }
        }
        // The sampler is strictly opt-in: without `--sample-prof` no
        // profiler exists, nothing is installed, and `sample::frame`
        // calls throughout the pipeline stay no-op branches.
        let sprof = sample_dir
            .is_some()
            .then(|| SampleProf::with_rate(sample_rate.unwrap_or(sample::DEFAULT_RATE_HZ)));
        let sprof_guard = sprof.as_ref().map(SampleProf::install);
        let harness_frame = sprof_guard.is_some().then(|| sample::frame(frames::HARNESS));
        Harness {
            bin: bin.to_owned(),
            tel: (dir.is_some() || report_dir.is_some()).then(Telemetry::new),
            manifest: Manifest::new(bin),
            dir,
            report_dir,
            obs: observe_dir.is_some().then(Observe::new),
            observe_dir,
            prof: engineprof_dir.is_some().then(EngineProf::new),
            engineprof_dir,
            sample_dir,
            sprof,
            sprof_guard,
            harness_frame,
            history,
            only,
            jobs,
            trace_budget,
            rss_limit,
            rss_hwm: 0,
            bench_json,
            bench_entries: Vec::new(),
            report_text: String::new(),
            report_json: Vec::new(),
            started: Instant::now(),
        }
    }

    /// True when `--only` is absent or names this configuration.
    pub fn wants(&self, name: &str) -> bool {
        self.only.as_deref().is_none_or(|o| o == name)
    }

    /// The experiment options with the `--jobs` and `--trace-budget`
    /// overrides applied.
    pub fn apply_jobs(&self, options: &ExperimentOptions) -> ExperimentOptions {
        let mut options = options.clone();
        if let Some(jobs) = self.jobs {
            options.jobs = jobs;
        }
        if self.trace_budget.is_some() {
            options.trace_budget = self.trace_budget;
        }
        options
    }

    /// The `--trace-budget` value, for binaries that drive measurement
    /// directly instead of through [`Harness::run_experiment`].
    pub fn trace_budget(&self) -> Option<u64> {
        self.trace_budget
    }

    fn record_bench(&mut self, run: String, jobs: usize, wall_seconds: f64, events: u64) {
        // Entries feed both the perf baseline (`--bench-json`) and the
        // history ledger (`--history`).
        if self.bench_json.is_some() || self.history.is_some() {
            // Observing or profiling changes what a run costs, so each
            // gates under its own key rather than polluting the
            // plain-pipeline baseline.
            let run = if self.obs.is_some() {
                format!("{run}:observe")
            } else if self.prof.is_some() {
                format!("{run}:engineprof")
            } else if self.sprof.is_some() {
                format!("{run}:sampleprof")
            } else {
                run
            };
            let events_per_sec =
                if wall_seconds > 0.0 { events as f64 / wall_seconds } else { 0.0 };
            let peak_rss_bytes = bench_json::peak_rss_bytes();
            self.rss_hwm = self.rss_hwm.max(peak_rss_bytes);
            self.bench_entries.push(BenchEntry {
                bin: self.bin.clone(),
                run,
                jobs: nrlt_core::effective_jobs(jobs),
                host_parallelism: bench_json::host_parallelism(),
                wall_seconds,
                events,
                events_per_sec,
                // Derived against the comparison twin at merge time.
                overhead_vs_plain_pct: None,
                peak_rss_bytes,
                p50_ns: 0,
                p95_ns: 0,
                p99_ns: 0,
            });
        }
    }

    /// Record a bench entry for an experiment the binary drove itself
    /// (e.g. the `scale` weak-scaling sweep, which calls measurement
    /// and analysis directly rather than through
    /// [`Harness::run_experiment`]). Applies the same key-suffix and
    /// peak-RSS conventions as harness-driven entries.
    pub fn record_external(&mut self, run: &str, jobs: usize, wall_seconds: f64, events: u64) {
        self.record_bench(run.to_owned(), jobs, wall_seconds, events);
    }

    /// The telemetry sink to thread into the pipeline (`None` without
    /// `--telemetry`).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.tel.as_ref()
    }

    /// The engine self-profiler (`None` without `--engine-prof`), for
    /// binaries that drive measurement directly and attach their own
    /// [`nrlt_engineprof::RunProf`] runs.
    pub fn engineprof(&self) -> Option<&EngineProf> {
        self.prof.as_ref()
    }

    fn push_run(
        &mut self,
        name: String,
        instance: &BenchmarkInstance,
        options: &ExperimentOptions,
    ) {
        self.manifest.runs.push(RunInfo {
            name,
            config: format!(
                "{} nodes × {} ranks × {} threads",
                instance.nodes, instance.layout.ranks, instance.layout.threads_per_rank
            ),
            seed: options.base_seed,
            repetitions: options.repetitions,
        });
    }

    /// [`run_named`] through the harness.
    pub fn run_named(&mut self, instance: &BenchmarkInstance) -> ExperimentResult {
        self.run_experiment(instance, &paper_options())
    }

    /// [`nrlt_core::run_experiment`] through the harness.
    pub fn run_experiment(
        &mut self,
        instance: &BenchmarkInstance,
        options: &ExperimentOptions,
    ) -> ExperimentResult {
        let options = self.apply_jobs(options);
        self.push_run(instance.name.clone(), instance, &options);
        let start = Instant::now();
        let result = nrlt_core::run_experiment_instrumented(
            instance,
            &options,
            self.tel.as_ref(),
            self.obs.as_ref(),
            self.prof.as_ref(),
        );
        self.record_bench(
            instance.name.clone(),
            options.jobs,
            start.elapsed().as_secs_f64(),
            result.events,
        );
        if self.report_dir.is_some() {
            self.report_text.push_str(&nrlt_report::severity_text(&result, REPORT_TOP_N));
            self.report_text.push('\n');
            self.report_json.push(nrlt_report::severity_json(&result, REPORT_TOP_N));
        }
        result
    }

    /// [`nrlt_core::run_mode`] through the harness.
    pub fn run_mode(
        &mut self,
        instance: &BenchmarkInstance,
        mode: ClockMode,
        options: &ExperimentOptions,
    ) -> ModeResult {
        let options = self.apply_jobs(options);
        let name = format!("{}:{}", instance.name, mode.name());
        self.push_run(name.clone(), instance, &options);
        let start = Instant::now();
        let result = nrlt_core::run_mode_with_instrumented(
            instance,
            nrlt_core::measure_config_for(instance, mode),
            &options,
            self.tel.as_ref(),
            self.obs.as_ref(),
            self.prof.as_ref(),
        );
        self.record_bench(name, options.jobs, start.elapsed().as_secs_f64(), result.events);
        self.record_mode_report(&result);
        result
    }

    /// [`nrlt_core::run_mode_with`] through the harness.
    pub fn run_mode_with(
        &mut self,
        instance: &BenchmarkInstance,
        mcfg: MeasureConfig,
        options: &ExperimentOptions,
    ) -> ModeResult {
        let options = self.apply_jobs(options);
        let name = format!("{}:{}", instance.name, mcfg.mode.name());
        self.push_run(name.clone(), instance, &options);
        let start = Instant::now();
        let result = nrlt_core::run_mode_with_instrumented(
            instance,
            mcfg,
            &options,
            self.tel.as_ref(),
            self.obs.as_ref(),
            self.prof.as_ref(),
        );
        self.record_bench(name, options.jobs, start.elapsed().as_secs_f64(), result.events);
        self.record_mode_report(&result);
        result
    }

    fn record_mode_report(&mut self, result: &ModeResult) {
        if self.report_dir.is_some() {
            self.report_text.push_str(&nrlt_report::mode_text(result, REPORT_TOP_N));
            self.report_text.push('\n');
        }
    }

    /// Record a manifest row for a run the harness did not drive itself
    /// (binaries that call `measure`/`execute` directly).
    pub fn note_run(&mut self, name: &str, config: &str, seed: u64, repetitions: u32) {
        self.manifest.runs.push(RunInfo {
            name: name.to_owned(),
            config: config.to_owned(),
            seed,
            repetitions,
        });
    }

    /// Write the perf baseline, the report artifacts, the observe
    /// bundle, the sampling profile, the history-ledger record, and the
    /// telemetry bundle, as requested by `--bench-json`, `--report`,
    /// `--observe`, `--sample-prof`, `--history`, and `--telemetry`.
    /// Returns the telemetry directory written to, if any.
    pub fn finish(mut self) -> Option<PathBuf> {
        // `--rss-limit` is a CI assertion: the out-of-core path must
        // keep peak memory bounded, and a silent overshoot would defeat
        // the point of spilling. Checked first against the larger of
        // the live HWM and the harness-side running max, so a bin that
        // calls `reset_peak_rss` between runs (the scale sweep does,
        // for per-entry attribution) cannot hide an earlier overshoot.
        if let Some(limit) = self.rss_limit {
            let peak = self.rss_hwm.max(bench_json::peak_rss_bytes());
            if peak > limit {
                eprintln!(
                    "error: peak RSS {} bytes ({}M) exceeded --rss-limit {} bytes ({}M)",
                    peak,
                    peak >> 20,
                    limit,
                    limit >> 20
                );
                std::process::exit(1);
            }
            eprintln!("peak RSS {}M within --rss-limit {}M", peak >> 20, limit >> 20);
        }
        // Capture the engineprof KPI digest for the history record
        // before the profiler is consumed by the bundle write below.
        let engineprof_eps: Vec<(String, f64)> = self
            .prof
            .as_ref()
            .map(|p| p.runs().into_iter().map(|(run, d)| (run, d.events_per_sec())).collect())
            .unwrap_or_default();
        if let (Some(pdir), Some(prof)) = (self.engineprof_dir.take(), self.prof.take()) {
            match ProfBundle::from_prof(&prof).write(&pdir) {
                Ok(()) => eprintln!("engine profile written to {}", pdir.display()),
                Err(e) => {
                    eprintln!("warning: could not write engine profile to {}: {e}", pdir.display())
                }
            }
        }
        if let (Some(odir), Some(obs)) = (self.observe_dir.take(), self.obs.take()) {
            match ObserveBundle::from_observe(&obs).write(&odir) {
                Ok(()) => eprintln!("observe bundle written to {}", odir.display()),
                Err(e) => {
                    eprintln!("warning: could not write observe bundle to {}: {e}", odir.display())
                }
            }
        }
        // Stop sampling before the (unprofiled) artifact writes so the
        // histogram covers exactly the harness-driven work, then write
        // the folded stacks + wall-clock sidecar.
        let mut top_stacks: Vec<(String, u64)> = Vec::new();
        if let (Some(sdir), Some(sprof)) = (self.sample_dir.take(), self.sprof.take()) {
            drop(self.harness_frame.take());
            drop(self.sprof_guard.take());
            top_stacks = sprof.top_stacks(10);
            match write_sample_bundle(&sdir, &sprof) {
                Ok(()) => eprintln!("sampling profile written to {}", sdir.display()),
                Err(e) => {
                    eprintln!(
                        "warning: could not write sampling profile to {}: {e}",
                        sdir.display()
                    )
                }
            }
        }
        if let Some(path) = self.bench_json.take() {
            match bench_json::merge_and_write(&path, &self.bench_entries) {
                Ok(()) => eprintln!("perf baseline written to {}", path.display()),
                Err(e) => {
                    eprintln!("warning: could not write perf baseline to {}: {e}", path.display())
                }
            }
        }
        if let Some(hpath) = self.history.take() {
            let record = nrlt_report::HistoryRecord {
                schema: nrlt_report::HISTORY_SCHEMA_VERSION,
                unix_time: std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0),
                git_rev: nrlt_telemetry::git_rev(),
                host_parallelism: bench_json::host_parallelism(),
                bin: self.bin.clone(),
                entries: self.bench_entries.clone(),
                top_stacks,
                engineprof_eps,
            };
            match nrlt_report::append_record(&hpath, &record) {
                Ok(()) => eprintln!("history record appended to {}", hpath.display()),
                Err(e) => {
                    eprintln!("warning: could not append history to {}: {e}", hpath.display())
                }
            }
        }
        if let Some(rdir) = self.report_dir.take() {
            match self.write_report(&rdir) {
                Ok(()) => eprintln!("report artifacts written to {}", rdir.display()),
                Err(e) => {
                    eprintln!("warning: could not write report to {}: {e}", rdir.display())
                }
            }
        }
        let dir = self.dir.take()?;
        let tel = self.tel.take()?;
        self.manifest.wall_seconds = self.started.elapsed().as_secs_f64();
        if let Err(e) = write_exports(&dir, &tel, &self.manifest) {
            eprintln!("warning: could not write telemetry to {}: {e}", dir.display());
            return None;
        }
        eprintln!("telemetry bundle written to {}", dir.display());
        Some(dir)
    }

    /// `report.txt` and `report.json` carry the severity sections (pure
    /// analysis output — byte-identical across worker counts and
    /// repeats); `flamegraph.folded` collapses the run's own telemetry
    /// spans (wall-clock, varies run to run).
    fn write_report(&self, dir: &PathBuf) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("report.txt"), &self.report_text)?;
        let runs: Vec<&str> = self.report_json.iter().map(|s| s.trim_end()).collect();
        let json = format!(
            "{{\n\"bin\": {},\n\"runs\": [\n{}\n]\n}}\n",
            nrlt_telemetry::json::string(&self.bin),
            runs.join(",\n")
        );
        std::fs::write(dir.join("report.json"), json)?;
        let folded = match &self.tel {
            Some(tel) => nrlt_report::folded(&tel.spans()),
            None => String::new(),
        };
        std::fs::write(dir.join("flamegraph.folded"), folded)
    }
}

/// Write the sampling profiler's artifacts: `samples.folded` (the
/// collapsed-stack histogram, one `a;b;c count` line per distinct
/// sampled stack, flamegraph-tool ready) and `sampleprof.wall.json`
/// (sampler bookkeeping + top stacks). Both are wall-clock data — they
/// live beside, never inside, the deterministic artifacts.
fn write_sample_bundle(dir: &PathBuf, prof: &SampleProf) -> std::io::Result<()> {
    use std::fmt::Write as _;
    std::fs::create_dir_all(dir)?;
    let folded = nrlt_report::folded_from_counts(&prof.stack_counts());
    std::fs::write(dir.join("samples.folded"), folded)?;
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n\"rate_hz\": {},\n\"ticks\": {},\n\"samples\": {},\n\"publishes\": {},\n\"torn\": {},\n\"top_stacks\": [",
        prof.rate_hz(),
        prof.ticks(),
        prof.samples(),
        prof.publishes(),
        prof.torn(),
    );
    let top = prof.top_stacks(10);
    for (i, (stack, n)) in top.iter().enumerate() {
        let comma = if i + 1 < top.len() { "," } else { "" };
        let _ = write!(json, "\n[{}, {n}]{comma}", nrlt_telemetry::json::string(stack));
    }
    json.push_str("\n]\n}\n");
    std::fs::write(dir.join("sampleprof.wall.json"), json)
}

/// Parse a byte count with an optional `k`/`m`/`g` suffix (case
/// insensitive): `"65536"`, `"64k"`, `"64m"`, `"2g"`. `None` for
/// anything else.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    digits.parse::<u64>().ok()?.checked_shl(shift)
}

/// Scaled-down experiment options for smoke tests and criterion
/// benches: fewer repetitions.
pub fn quick_options() -> ExperimentOptions {
    ExperimentOptions { repetitions: 2, ..ExperimentOptions::default() }
}

/// Format a percentage with one decimal and sign.
pub fn pct(v: f64) -> String {
    format!("{v:>7.1}")
}

/// Format a Jaccard score.
pub fn score(v: f64) -> String {
    format!("{v:>5.2}")
}

/// Print a standard figure header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// The modes in the paper's table order.
pub fn modes() -> [ClockMode; 6] {
    ClockMode::ALL
}

/// Print a "stacked bar" table: for each clock mode, the contribution of
/// selected call paths to `metric` in %_M — the textual form of the
/// paper's Figs. 5, 6 and 9.
pub fn callpath_bars(result: &ExperimentResult, metric: Metric, min_pct: f64) {
    use std::collections::BTreeMap;
    // Collect the union of significant call paths across modes, keyed by
    // rendered path string (call-path ids are comparable, strings are
    // stable for display).
    let mut rows: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let n_modes = result.modes.len();
    for (i, m) in result.modes.iter().enumerate() {
        for (path, v) in m.mean.map_c(metric) {
            if v >= min_pct {
                rows.entry(m.mean.path_string(path)).or_insert_with(|| vec![0.0; n_modes])[i] = v;
            } else {
                rows.entry("(other)".into()).or_insert_with(|| vec![0.0; n_modes])[i] += v;
            }
        }
    }
    print!("{:<72}", format!("call paths for `{}` in %_M", metric.name()));
    for m in &result.modes {
        print!(" {:>8}", m.mode.name());
    }
    println!();
    let mut entries: Vec<_> = rows.into_iter().collect();
    entries.sort_by(|a, b| b.1[0].partial_cmp(&a.1[0]).unwrap());
    for (path, values) in entries {
        let label = if path.len() > 70 { format!("…{}", &path[path.len() - 69..]) } else { path };
        print!("{label:<72}");
        for v in values {
            print!(" {v:>8.1}");
        }
        println!();
    }
}
