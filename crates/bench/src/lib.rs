//! # nrlt-bench — experiment harness
//!
//! One binary per table/figure of the paper, each printing the rows or
//! series the paper reports (see DESIGN.md's experiment index), plus
//! criterion benchmarks over the hot components.
//!
//! Absolute numbers come from a simulated machine; per the reproduction
//! protocol the *shapes* (who wins, rough factors, crossovers) are the
//! comparison targets, recorded in EXPERIMENTS.md.

use nrlt_core::prelude::*;
use nrlt_core::ExperimentResult;
use nrlt_telemetry::{write_exports, Manifest, RunInfo, Telemetry};
use std::path::PathBuf;
use std::time::Instant;

/// The standard options used for all paper experiments.
pub fn paper_options() -> ExperimentOptions {
    ExperimentOptions::default()
}

/// Run one named configuration under the standard protocol.
pub fn run_named(instance: &BenchmarkInstance) -> ExperimentResult {
    run_experiment(instance, &paper_options())
}

/// Per-binary telemetry harness.
///
/// Every figure/table binary accepts `--telemetry <dir>` (also
/// `--telemetry=<dir>`). Without the flag the harness is inert: no
/// [`Telemetry`] handle exists, the pipeline runs on its `None` paths,
/// and output is byte-identical to before the flag existed. With the
/// flag, [`Harness::finish`] writes `manifest.json`, `metrics.jsonl`,
/// `pipeline.trace.json`, and `summary.txt` into the directory.
pub struct Harness {
    tel: Option<Telemetry>,
    manifest: Manifest,
    dir: Option<PathBuf>,
    started: Instant,
}

impl Harness {
    /// Build a harness for binary `bin`, reading `--telemetry <dir>`
    /// from the command line.
    pub fn from_env(bin: &str) -> Harness {
        let mut dir = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--telemetry" {
                dir = args.next().map(PathBuf::from);
            } else if let Some(d) = a.strip_prefix("--telemetry=") {
                dir = Some(PathBuf::from(d));
            }
        }
        Harness {
            tel: dir.as_ref().map(|_| Telemetry::new()),
            manifest: Manifest::new(bin),
            dir,
            started: Instant::now(),
        }
    }

    /// The telemetry sink to thread into the pipeline (`None` without
    /// `--telemetry`).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.tel.as_ref()
    }

    fn push_run(
        &mut self,
        name: String,
        instance: &BenchmarkInstance,
        options: &ExperimentOptions,
    ) {
        self.manifest.runs.push(RunInfo {
            name,
            config: format!(
                "{} nodes × {} ranks × {} threads",
                instance.nodes, instance.layout.ranks, instance.layout.threads_per_rank
            ),
            seed: options.base_seed,
            repetitions: options.repetitions,
        });
    }

    /// [`run_named`] through the harness.
    pub fn run_named(&mut self, instance: &BenchmarkInstance) -> ExperimentResult {
        self.run_experiment(instance, &paper_options())
    }

    /// [`nrlt_core::run_experiment`] through the harness.
    pub fn run_experiment(
        &mut self,
        instance: &BenchmarkInstance,
        options: &ExperimentOptions,
    ) -> ExperimentResult {
        self.push_run(instance.name.clone(), instance, options);
        nrlt_core::run_experiment_telemetry(instance, options, self.tel.as_ref())
    }

    /// [`nrlt_core::run_mode`] through the harness.
    pub fn run_mode(
        &mut self,
        instance: &BenchmarkInstance,
        mode: ClockMode,
        options: &ExperimentOptions,
    ) -> ModeResult {
        self.push_run(format!("{}:{}", instance.name, mode.name()), instance, options);
        nrlt_core::run_mode_telemetry(instance, mode, options, self.tel.as_ref())
    }

    /// [`nrlt_core::run_mode_with`] through the harness.
    pub fn run_mode_with(
        &mut self,
        instance: &BenchmarkInstance,
        mcfg: MeasureConfig,
        options: &ExperimentOptions,
    ) -> ModeResult {
        self.push_run(format!("{}:{}", instance.name, mcfg.mode.name()), instance, options);
        nrlt_core::run_mode_with_telemetry(instance, mcfg, options, self.tel.as_ref())
    }

    /// Record a manifest row for a run the harness did not drive itself
    /// (binaries that call `measure`/`execute` directly).
    pub fn note_run(&mut self, name: &str, config: &str, seed: u64, repetitions: u32) {
        self.manifest.runs.push(RunInfo {
            name: name.to_owned(),
            config: config.to_owned(),
            seed,
            repetitions,
        });
    }

    /// Write the telemetry bundle, if `--telemetry` was given. Returns
    /// the directory written to.
    pub fn finish(mut self) -> Option<PathBuf> {
        let dir = self.dir.take()?;
        let tel = self.tel.take()?;
        self.manifest.wall_seconds = self.started.elapsed().as_secs_f64();
        if let Err(e) = write_exports(&dir, &tel, &self.manifest) {
            eprintln!("warning: could not write telemetry to {}: {e}", dir.display());
            return None;
        }
        eprintln!("telemetry bundle written to {}", dir.display());
        Some(dir)
    }
}

/// Scaled-down experiment options for smoke tests and criterion
/// benches: fewer repetitions.
pub fn quick_options() -> ExperimentOptions {
    ExperimentOptions { repetitions: 2, ..ExperimentOptions::default() }
}

/// Format a percentage with one decimal and sign.
pub fn pct(v: f64) -> String {
    format!("{v:>7.1}")
}

/// Format a Jaccard score.
pub fn score(v: f64) -> String {
    format!("{v:>5.2}")
}

/// Print a standard figure header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// The modes in the paper's table order.
pub fn modes() -> [ClockMode; 6] {
    ClockMode::ALL
}

/// Print a "stacked bar" table: for each clock mode, the contribution of
/// selected call paths to `metric` in %_M — the textual form of the
/// paper's Figs. 5, 6 and 9.
pub fn callpath_bars(result: &ExperimentResult, metric: Metric, min_pct: f64) {
    use std::collections::BTreeMap;
    // Collect the union of significant call paths across modes, keyed by
    // rendered path string (call-path ids are comparable, strings are
    // stable for display).
    let mut rows: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let n_modes = result.modes.len();
    for (i, m) in result.modes.iter().enumerate() {
        for (path, v) in m.mean.map_c(metric) {
            if v >= min_pct {
                rows.entry(m.mean.path_string(path)).or_insert_with(|| vec![0.0; n_modes])[i] = v;
            } else {
                rows.entry("(other)".into()).or_insert_with(|| vec![0.0; n_modes])[i] += v;
            }
        }
    }
    print!("{:<72}", format!("call paths for `{}` in %_M", metric.name()));
    for m in &result.modes {
        print!(" {:>8}", m.mode.name());
    }
    println!();
    let mut entries: Vec<_> = rows.into_iter().collect();
    entries.sort_by(|a, b| b.1[0].partial_cmp(&a.1[0]).unwrap());
    for (path, values) in entries {
        let label = if path.len() > 70 { format!("…{}", &path[path.len() - 69..]) } else { path };
        print!("{label:<72}");
        for v in values {
            print!(" {v:>8.1}");
        }
        println!();
    }
}
