//! # nrlt-bench — experiment harness
//!
//! One binary per table/figure of the paper, each printing the rows or
//! series the paper reports (see DESIGN.md's experiment index), plus
//! criterion benchmarks over the hot components.
//!
//! Absolute numbers come from a simulated machine; per the reproduction
//! protocol the *shapes* (who wins, rough factors, crossovers) are the
//! comparison targets, recorded in EXPERIMENTS.md.

use nrlt_core::prelude::*;
use nrlt_core::ExperimentResult;
use nrlt_telemetry::{write_exports, Manifest, RunInfo, Telemetry};
use std::path::PathBuf;
use std::time::Instant;

/// The standard options used for all paper experiments.
pub fn paper_options() -> ExperimentOptions {
    ExperimentOptions::default()
}

/// Run one named configuration under the standard protocol.
pub fn run_named(instance: &BenchmarkInstance) -> ExperimentResult {
    run_experiment(instance, &paper_options())
}

/// One timed experiment for the perf baseline (`--bench-json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Binary that ran the experiment (e.g. `fig3`).
    pub bin: String,
    /// Run name from the manifest (e.g. `MiniFE-2`).
    pub run: String,
    /// Effective worker count the cells fanned out over.
    pub jobs: usize,
    /// Wall-clock seconds of the experiment call.
    pub wall_seconds: f64,
}

/// Per-binary telemetry + perf-baseline harness.
///
/// Every figure/table binary accepts `--telemetry <dir>` (also
/// `--telemetry=<dir>`). Without the flag the harness is inert: no
/// [`Telemetry`] handle exists, the pipeline runs on its `None` paths,
/// and output is byte-identical to before the flag existed. With the
/// flag, [`Harness::finish`] writes `manifest.json`, `metrics.jsonl`,
/// `pipeline.trace.json`, and `summary.txt` into the directory.
///
/// Two further flags:
///
/// * `--jobs N` (also `--jobs=N`) overrides
///   [`ExperimentOptions::jobs`] for every experiment the harness
///   drives; `0` (the default) means available parallelism. Output is
///   byte-identical for every value — the flag only changes wall time.
/// * `--bench-json <path>` records wall time per experiment into a JSON
///   perf baseline at `path`. Entries are keyed by (binary, run, jobs),
///   so running the same binary at `--jobs 1` and `--jobs 4` against
///   one file accumulates both points for comparison.
pub struct Harness {
    bin: String,
    tel: Option<Telemetry>,
    manifest: Manifest,
    dir: Option<PathBuf>,
    jobs: Option<usize>,
    bench_json: Option<PathBuf>,
    bench_entries: Vec<BenchEntry>,
    started: Instant,
}

impl Harness {
    /// Build a harness for binary `bin`, reading `--telemetry <dir>`,
    /// `--jobs N`, and `--bench-json <path>` from the command line.
    pub fn from_env(bin: &str) -> Harness {
        let mut dir = None;
        let mut jobs = None;
        let mut bench_json = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--telemetry" {
                dir = args.next().map(PathBuf::from);
            } else if let Some(d) = a.strip_prefix("--telemetry=") {
                dir = Some(PathBuf::from(d));
            } else if a == "--jobs" {
                jobs = args.next().and_then(|v| v.parse().ok());
            } else if let Some(v) = a.strip_prefix("--jobs=") {
                jobs = v.parse().ok();
            } else if a == "--bench-json" {
                bench_json = args.next().map(PathBuf::from);
            } else if let Some(v) = a.strip_prefix("--bench-json=") {
                bench_json = Some(PathBuf::from(v));
            }
        }
        Harness {
            bin: bin.to_owned(),
            tel: dir.as_ref().map(|_| Telemetry::new()),
            manifest: Manifest::new(bin),
            dir,
            jobs,
            bench_json,
            bench_entries: Vec::new(),
            started: Instant::now(),
        }
    }

    /// The experiment options with the `--jobs` override applied.
    pub fn apply_jobs(&self, options: &ExperimentOptions) -> ExperimentOptions {
        match self.jobs {
            Some(jobs) => ExperimentOptions { jobs, ..options.clone() },
            None => options.clone(),
        }
    }

    fn record_bench(&mut self, run: String, jobs: usize, wall_seconds: f64) {
        if self.bench_json.is_some() {
            self.bench_entries.push(BenchEntry {
                bin: self.bin.clone(),
                run,
                jobs: nrlt_core::effective_jobs(jobs),
                wall_seconds,
            });
        }
    }

    /// The telemetry sink to thread into the pipeline (`None` without
    /// `--telemetry`).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.tel.as_ref()
    }

    fn push_run(
        &mut self,
        name: String,
        instance: &BenchmarkInstance,
        options: &ExperimentOptions,
    ) {
        self.manifest.runs.push(RunInfo {
            name,
            config: format!(
                "{} nodes × {} ranks × {} threads",
                instance.nodes, instance.layout.ranks, instance.layout.threads_per_rank
            ),
            seed: options.base_seed,
            repetitions: options.repetitions,
        });
    }

    /// [`run_named`] through the harness.
    pub fn run_named(&mut self, instance: &BenchmarkInstance) -> ExperimentResult {
        self.run_experiment(instance, &paper_options())
    }

    /// [`nrlt_core::run_experiment`] through the harness.
    pub fn run_experiment(
        &mut self,
        instance: &BenchmarkInstance,
        options: &ExperimentOptions,
    ) -> ExperimentResult {
        let options = self.apply_jobs(options);
        self.push_run(instance.name.clone(), instance, &options);
        let start = Instant::now();
        let result = nrlt_core::run_experiment_telemetry(instance, &options, self.tel.as_ref());
        self.record_bench(instance.name.clone(), options.jobs, start.elapsed().as_secs_f64());
        result
    }

    /// [`nrlt_core::run_mode`] through the harness.
    pub fn run_mode(
        &mut self,
        instance: &BenchmarkInstance,
        mode: ClockMode,
        options: &ExperimentOptions,
    ) -> ModeResult {
        let options = self.apply_jobs(options);
        let name = format!("{}:{}", instance.name, mode.name());
        self.push_run(name.clone(), instance, &options);
        let start = Instant::now();
        let result = nrlt_core::run_mode_telemetry(instance, mode, &options, self.tel.as_ref());
        self.record_bench(name, options.jobs, start.elapsed().as_secs_f64());
        result
    }

    /// [`nrlt_core::run_mode_with`] through the harness.
    pub fn run_mode_with(
        &mut self,
        instance: &BenchmarkInstance,
        mcfg: MeasureConfig,
        options: &ExperimentOptions,
    ) -> ModeResult {
        let options = self.apply_jobs(options);
        let name = format!("{}:{}", instance.name, mcfg.mode.name());
        self.push_run(name.clone(), instance, &options);
        let start = Instant::now();
        let result =
            nrlt_core::run_mode_with_telemetry(instance, mcfg, &options, self.tel.as_ref());
        self.record_bench(name, options.jobs, start.elapsed().as_secs_f64());
        result
    }

    /// Record a manifest row for a run the harness did not drive itself
    /// (binaries that call `measure`/`execute` directly).
    pub fn note_run(&mut self, name: &str, config: &str, seed: u64, repetitions: u32) {
        self.manifest.runs.push(RunInfo {
            name: name.to_owned(),
            config: config.to_owned(),
            seed,
            repetitions,
        });
    }

    /// Write the perf baseline and the telemetry bundle, as requested by
    /// `--bench-json` and `--telemetry`. Returns the telemetry directory
    /// written to, if any.
    pub fn finish(mut self) -> Option<PathBuf> {
        if let Some(path) = self.bench_json.take() {
            match bench_json::merge_and_write(&path, &self.bench_entries) {
                Ok(()) => eprintln!("perf baseline written to {}", path.display()),
                Err(e) => {
                    eprintln!("warning: could not write perf baseline to {}: {e}", path.display())
                }
            }
        }
        let dir = self.dir.take()?;
        let tel = self.tel.take()?;
        self.manifest.wall_seconds = self.started.elapsed().as_secs_f64();
        if let Err(e) = write_exports(&dir, &tel, &self.manifest) {
            eprintln!("warning: could not write telemetry to {}: {e}", dir.display());
            return None;
        }
        eprintln!("telemetry bundle written to {}", dir.display());
        Some(dir)
    }
}

pub mod bench_json;

/// Scaled-down experiment options for smoke tests and criterion
/// benches: fewer repetitions.
pub fn quick_options() -> ExperimentOptions {
    ExperimentOptions { repetitions: 2, ..ExperimentOptions::default() }
}

/// Format a percentage with one decimal and sign.
pub fn pct(v: f64) -> String {
    format!("{v:>7.1}")
}

/// Format a Jaccard score.
pub fn score(v: f64) -> String {
    format!("{v:>5.2}")
}

/// Print a standard figure header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// The modes in the paper's table order.
pub fn modes() -> [ClockMode; 6] {
    ClockMode::ALL
}

/// Print a "stacked bar" table: for each clock mode, the contribution of
/// selected call paths to `metric` in %_M — the textual form of the
/// paper's Figs. 5, 6 and 9.
pub fn callpath_bars(result: &ExperimentResult, metric: Metric, min_pct: f64) {
    use std::collections::BTreeMap;
    // Collect the union of significant call paths across modes, keyed by
    // rendered path string (call-path ids are comparable, strings are
    // stable for display).
    let mut rows: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let n_modes = result.modes.len();
    for (i, m) in result.modes.iter().enumerate() {
        for (path, v) in m.mean.map_c(metric) {
            if v >= min_pct {
                rows.entry(m.mean.path_string(path)).or_insert_with(|| vec![0.0; n_modes])[i] = v;
            } else {
                rows.entry("(other)".into()).or_insert_with(|| vec![0.0; n_modes])[i] += v;
            }
        }
    }
    print!("{:<72}", format!("call paths for `{}` in %_M", metric.name()));
    for m in &result.modes {
        print!(" {:>8}", m.mode.name());
    }
    println!();
    let mut entries: Vec<_> = rows.into_iter().collect();
    entries.sort_by(|a, b| b.1[0].partial_cmp(&a.1[0]).unwrap());
    for (path, values) in entries {
        let label = if path.len() > 70 { format!("…{}", &path[path.len() - 69..]) } else { path };
        print!("{label:<72}");
        for v in values {
            print!(" {v:>8.1}");
        }
        println!();
    }
}
