//! # nrlt-bench — experiment harness
//!
//! One binary per table/figure of the paper, each printing the rows or
//! series the paper reports (see DESIGN.md's experiment index), plus
//! criterion benchmarks over the hot components.
//!
//! Absolute numbers come from a simulated machine; per the reproduction
//! protocol the *shapes* (who wins, rough factors, crossovers) are the
//! comparison targets, recorded in EXPERIMENTS.md.

use nrlt_core::prelude::*;
use nrlt_core::ExperimentResult;

/// The standard options used for all paper experiments.
pub fn paper_options() -> ExperimentOptions {
    ExperimentOptions::default()
}

/// Run one named configuration under the standard protocol.
pub fn run_named(instance: &BenchmarkInstance) -> ExperimentResult {
    run_experiment(instance, &paper_options())
}

/// Scaled-down experiment options for smoke tests and criterion
/// benches: fewer repetitions.
pub fn quick_options() -> ExperimentOptions {
    ExperimentOptions { repetitions: 2, ..ExperimentOptions::default() }
}

/// Format a percentage with one decimal and sign.
pub fn pct(v: f64) -> String {
    format!("{v:>7.1}")
}

/// Format a Jaccard score.
pub fn score(v: f64) -> String {
    format!("{v:>5.2}")
}

/// Print a standard figure header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// The modes in the paper's table order.
pub fn modes() -> [ClockMode; 6] {
    ClockMode::ALL
}

/// Print a "stacked bar" table: for each clock mode, the contribution of
/// selected call paths to `metric` in %_M — the textual form of the
/// paper's Figs. 5, 6 and 9.
pub fn callpath_bars(result: &ExperimentResult, metric: Metric, min_pct: f64) {
    use std::collections::BTreeMap;
    // Collect the union of significant call paths across modes, keyed by
    // rendered path string (call-path ids are comparable, strings are
    // stable for display).
    let mut rows: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let n_modes = result.modes.len();
    for (i, m) in result.modes.iter().enumerate() {
        for (path, v) in m.mean.map_c(metric) {
            if v >= min_pct {
                rows.entry(m.mean.path_string(path))
                    .or_insert_with(|| vec![0.0; n_modes])[i] = v;
            } else {
                rows.entry("(other)".into())
                    .or_insert_with(|| vec![0.0; n_modes])[i] += v;
            }
        }
    }
    print!("{:<72}", format!("call paths for `{}` in %_M", metric.name()));
    for m in &result.modes {
        print!(" {:>8}", m.mode.name());
    }
    println!();
    let mut entries: Vec<_> = rows.into_iter().collect();
    entries.sort_by(|a, b| b.1[0].partial_cmp(&a.1[0]).unwrap());
    for (path, values) in entries {
        let label = if path.len() > 70 {
            format!("…{}", &path[path.len() - 69..])
        } else {
            path
        };
        print!("{label:<72}");
        for v in values {
            print!(" {v:>8.1}");
        }
        println!();
    }
}
