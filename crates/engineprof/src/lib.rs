//! # nrlt-engineprof — engine self-profiling
//!
//! The telemetry (`nrlt-telemetry`) and observatory (`nrlt-observe`)
//! layers instrument the *simulated application*: phases, wait states,
//! resource contention inside virtual time. This crate instruments the
//! *simulator itself* — the discrete-event engine's hot loop — so the
//! planned engine-speed work can be justified and judged with data
//! instead of guesses (pipit-style KPI reports: named metrics, per-kind
//! cost tables, throughput).
//!
//! Three kinds of facts are collected per run:
//!
//! * **Per-event-kind cost accounting** — for each [`EventKind`]
//!   (kernel advance, loop chunk, pt2pt match, collective, barrier,
//!   noise draw): how many times it fired, how much *virtual* time it
//!   advanced, and how much *wall* time the engine spent processing it,
//!   split into inclusive and exclusive cost (a kernel advance nested
//!   inside a loop chunk is charged exclusively to the kernel, the
//!   chunk keeps only its own bookkeeping cost).
//! * **Occupancy timelines** — exact aggregates (count/sum/max) of
//!   gauge series sampled in the hot loop, keyed by `(series, phase)`:
//!   event-calendar (worklist) depth, matcher queue depths, wildcard
//!   queue depth, remaining loop iterations.
//! * **High-water marks and allocation counts** — peak sizes of the
//!   engine's growable state (pending-request vectors, collective
//!   instances, scratch buffers) and how often hot-loop containers had
//!   to reallocate.
//!
//! ## Strict opt-in, zero work when off
//!
//! The engine takes `Option<&RunProf>`; every instrumentation site is
//! behind `if let Some(p)`. A `None` run constructs no counter struct
//! and performs no accounting work — [`EngineProf::call_count`] proves
//! it (it counts `attach` calls and stays 0).
//!
//! ## Determinism contract
//!
//! Everything *except* wall time is a pure function of the simulated
//! run: counts, virtual nanoseconds, gauge aggregates, high-water
//! marks, allocation counts. The serialized bundle is therefore split
//! in two files: `engineprof.json` holds only the deterministic part
//! (byte-identical across `--jobs` widths and repeats — CI diffs it)
//! and `engineprof.wall.json` holds the wall-clock part (per-kind
//! inclusive/exclusive nanoseconds, events/sec).
//!
//! Aggregation mirrors `nrlt-observe`: one single-threaded [`RunProf`]
//! per experiment cell (cheap `RefCell` interior), [`attach`]ed into a
//! shared [`EngineProf`] sink keyed by run name, so the merged bundle
//! is independent of worker count and completion order.
//!
//! [`attach`]: EngineProf::attach

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub mod export;

pub use export::ProfBundle;

/// The event kinds the engine accounts for, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A kernel advancing virtual time on one location (serial kernels,
    /// per-thread team portions, critical-section bodies).
    KernelAdvance,
    /// One scheduled chunk of an OpenMP worksharing loop (static
    /// per-thread portions and dynamic/guided chunks).
    LoopChunk,
    /// A point-to-point send/recv pair being matched and its wire time
    /// resolved.
    Pt2ptMatch,
    /// A collective instance completing (all participants arrived).
    Collective,
    /// An OpenMP barrier joining a team (including implicit barriers).
    Barrier,
    /// One draw from a noise model stream (CPU jitter, memory jitter,
    /// memory bias, OS detour, network jitter).
    NoiseDraw,
}

impl EventKind {
    /// All kinds in canonical (serialization) order.
    pub const ALL: [EventKind; 6] = [
        EventKind::KernelAdvance,
        EventKind::LoopChunk,
        EventKind::Pt2ptMatch,
        EventKind::Collective,
        EventKind::Barrier,
        EventKind::NoiseDraw,
    ];

    /// Stable snake_case name used in bundles and reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::KernelAdvance => "kernel_advance",
            EventKind::LoopChunk => "loop_chunk",
            EventKind::Pt2ptMatch => "pt2pt_match",
            EventKind::Collective => "collective",
            EventKind::Barrier => "barrier",
            EventKind::NoiseDraw => "noise_draw",
        }
    }

    /// Index into per-kind arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Deterministic per-kind accounting: how often a kind fired and how
/// much virtual time it advanced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Number of events of this kind.
    pub count: u64,
    /// Total virtual nanoseconds attributed to this kind.
    pub virtual_ns: u64,
}

/// Wall-clock per-kind accounting (nondeterministic; excluded from the
/// byte-diffed part of the bundle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindWall {
    /// Wall nanoseconds including nested event kinds.
    pub inclusive_ns: u64,
    /// Wall nanoseconds excluding nested event kinds.
    pub exclusive_ns: u64,
}

/// Exact aggregate of one gauge series within one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeAgg {
    /// Number of samples.
    pub count: u64,
    /// Sum of sampled values (mean = sum / count).
    pub sum: i64,
    /// Maximum sampled value.
    pub max: i64,
}

impl GaugeAgg {
    fn record(&mut self, value: i64) {
        self.count += 1;
        self.sum += value;
        if self.count == 1 || value > self.max {
            self.max = value;
        }
    }

    /// Mean sampled value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One wall-profiling stack frame (live state only, never serialized).
#[derive(Debug, Clone, Copy)]
struct Frame {
    kind: EventKind,
    start: Instant,
    child_ns: u64,
}

/// Everything one run collected.
#[derive(Debug, Clone, Default)]
pub struct ProfData {
    /// Total engine events processed (the worklist-pop count).
    pub events: u64,
    /// Deterministic per-kind stats, indexed by [`EventKind::index`].
    pub kinds: [KindStats; 6],
    /// Wall-clock per-kind stats, indexed by [`EventKind::index`].
    pub wall: [KindWall; 6],
    /// Gauge aggregates keyed by `(series, phase)`.
    pub gauges: BTreeMap<(String, String), GaugeAgg>,
    /// High-water marks keyed by name.
    pub hwms: BTreeMap<String, u64>,
    /// Hot-loop allocation (reallocation/growth) counts keyed by site.
    pub allocs: BTreeMap<String, u64>,
    /// Total wall nanoseconds from run construction to `finish`.
    pub total_wall_ns: u64,
    /// Live wall-profiling stack (empty once finished).
    stack: Vec<Frame>,
}

impl ProfData {
    /// Events per wall second, derived from `events` and
    /// `total_wall_ns`; 0 when no wall time was recorded.
    pub fn events_per_sec(&self) -> f64 {
        if self.total_wall_ns == 0 {
            0.0
        } else {
            self.events as f64 / (self.total_wall_ns as f64 / 1e9)
        }
    }
}

/// Per-run profiler handle. Single-threaded by design: each experiment
/// cell runs on one worker, so interior mutability is a cheap
/// `RefCell`; cells aggregate into [`EngineProf`] when done.
#[derive(Debug)]
pub struct RunProf {
    name: String,
    started: Instant,
    data: RefCell<ProfData>,
}

impl RunProf {
    /// Start profiling a run. Wall time counts from here.
    pub fn new(name: impl Into<String>) -> Self {
        RunProf {
            name: name.into(),
            started: Instant::now(),
            data: RefCell::new(ProfData::default()),
        }
    }

    /// The run's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Open a wall-profiling frame for `kind`.
    pub fn enter(&self, kind: EventKind) {
        self.data.borrow_mut().stack.push(Frame { kind, start: Instant::now(), child_ns: 0 });
    }

    /// Close the innermost frame (which must be `kind`), attributing
    /// `virtual_ns` of simulated time to it and splitting wall time
    /// into inclusive/exclusive shares.
    pub fn leave(&self, kind: EventKind, virtual_ns: u64) {
        let mut d = self.data.borrow_mut();
        let frame = d.stack.pop().expect("leave without matching enter");
        debug_assert_eq!(frame.kind, kind, "mismatched enter/leave");
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        let i = kind.index();
        d.kinds[i].count += 1;
        d.kinds[i].virtual_ns += virtual_ns;
        d.wall[i].inclusive_ns += elapsed;
        d.wall[i].exclusive_ns += elapsed.saturating_sub(frame.child_ns);
        if let Some(parent) = d.stack.last_mut() {
            parent.child_ns += elapsed;
        }
    }

    /// Record one sample of gauge `series` within `phase`.
    pub fn gauge(&self, series: &str, phase: &str, value: i64) {
        let mut d = self.data.borrow_mut();
        match d.gauges.get_mut(&(series.to_owned(), phase.to_owned())) {
            Some(agg) => agg.record(value),
            None => {
                let mut agg = GaugeAgg::default();
                agg.record(value);
                d.gauges.insert((series.to_owned(), phase.to_owned()), agg);
            }
        }
    }

    /// Raise the high-water mark `name` to at least `value`.
    pub fn hwm(&self, name: &str, value: u64) {
        let mut d = self.data.borrow_mut();
        match d.hwms.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                d.hwms.insert(name.to_owned(), value);
            }
        }
    }

    /// Count `n` hot-loop allocations at `site`.
    pub fn alloc(&self, site: &str, n: u64) {
        if n == 0 {
            return;
        }
        let mut d = self.data.borrow_mut();
        *d.allocs.entry(site.to_owned()).or_insert(0) += n;
    }

    /// Set the total engine event count for this run.
    pub fn set_events(&self, n: u64) {
        self.data.borrow_mut().events = n;
    }

    /// Total engine events recorded so far.
    pub fn events(&self) -> u64 {
        self.data.borrow().events
    }

    /// Finish the run: stamp total wall time (counted from
    /// [`RunProf::new`]) and hand the data back for aggregation. Any
    /// frames still open are discarded (debug builds assert the stack
    /// is empty).
    pub fn finish(self) -> (String, ProfData) {
        let mut d = self.data.into_inner();
        debug_assert!(d.stack.is_empty(), "finish with open frames");
        d.stack.clear();
        d.total_wall_ns = self.started.elapsed().as_nanos() as u64;
        (self.name, d)
    }
}

/// Thread-safe sink the per-run profilers aggregate into. Keyed by run
/// name, so the merged bundle is independent of worker count and
/// completion order.
#[derive(Debug, Default)]
pub struct EngineProf {
    calls: AtomicU64,
    runs: Mutex<BTreeMap<String, ProfData>>,
}

impl EngineProf {
    /// An empty sink.
    pub fn new() -> Self {
        EngineProf::default()
    }

    /// Merge one finished run. Later attaches under the same name win
    /// (runs are uniquely named in practice).
    pub fn attach(&self, name: String, data: ProfData) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.runs.lock().expect("engineprof poisoned").insert(name, data);
    }

    /// How many runs were attached — the zero-overhead proof: a
    /// profiler that is threaded as `None` never attaches anything.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Snapshot of all attached runs, sorted by name.
    pub fn runs(&self) -> BTreeMap<String, ProfData> {
        self.runs.lock().expect("engineprof poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(run: &RunProf) {
        run.enter(EventKind::LoopChunk);
        run.enter(EventKind::KernelAdvance);
        run.leave(EventKind::KernelAdvance, 1_000);
        run.enter(EventKind::NoiseDraw);
        run.leave(EventKind::NoiseDraw, 0);
        run.leave(EventKind::LoopChunk, 1_500);
        run.enter(EventKind::Barrier);
        run.leave(EventKind::Barrier, 200);
        run.gauge("matcher.queued_sends", "main", 3);
        run.gauge("matcher.queued_sends", "main", 1);
        run.hwm("engine.worklist", 4);
        run.hwm("engine.worklist", 2);
        run.alloc("rank.pending", 1);
        run.set_events(7);
    }

    #[test]
    fn per_kind_accounting() {
        let run = RunProf::new("r");
        drive(&run);
        let (name, d) = run.finish();
        assert_eq!(name, "r");
        assert_eq!(d.events, 7);
        let k = &d.kinds[EventKind::KernelAdvance.index()];
        assert_eq!((k.count, k.virtual_ns), (1, 1_000));
        let l = &d.kinds[EventKind::LoopChunk.index()];
        assert_eq!((l.count, l.virtual_ns), (1, 1_500));
        assert_eq!(d.kinds[EventKind::NoiseDraw.index()].count, 1);
        assert_eq!(d.kinds[EventKind::Pt2ptMatch.index()].count, 0);
        // Nesting: the loop chunk's inclusive wall covers its children,
        // its exclusive wall does not.
        let lw = &d.wall[EventKind::LoopChunk.index()];
        let kw = &d.wall[EventKind::KernelAdvance.index()];
        let nw = &d.wall[EventKind::NoiseDraw.index()];
        assert!(lw.inclusive_ns >= kw.inclusive_ns + nw.inclusive_ns);
        assert!(lw.exclusive_ns <= lw.inclusive_ns);
        assert!(lw.inclusive_ns - lw.exclusive_ns >= kw.inclusive_ns + nw.inclusive_ns);
    }

    #[test]
    fn gauges_hwms_allocs() {
        let run = RunProf::new("r");
        drive(&run);
        let (_, d) = run.finish();
        let g = &d.gauges[&("matcher.queued_sends".to_owned(), "main".to_owned())];
        assert_eq!((g.count, g.sum, g.max), (2, 4, 3));
        assert_eq!(g.mean(), 2.0);
        assert_eq!(d.hwms["engine.worklist"], 4);
        assert_eq!(d.allocs["rank.pending"], 1);
        assert!(d.total_wall_ns > 0);
        assert!(d.events_per_sec() > 0.0);
    }

    #[test]
    fn gauge_max_handles_negative_first_sample() {
        let run = RunProf::new("r");
        run.gauge("s", "", -5);
        run.gauge("s", "", -9);
        let (_, d) = run.finish();
        let g = &d.gauges[&("s".to_owned(), String::new())];
        assert_eq!((g.count, g.sum, g.max), (2, -14, -5));
    }

    #[test]
    fn attach_is_order_independent() {
        let make = |names: &[&str]| {
            let sink = EngineProf::new();
            for n in names {
                let run = RunProf::new(*n);
                drive(&run);
                let (name, data) = run.finish();
                sink.attach(name, data);
            }
            sink
        };
        let a = make(&["x", "y", "z"]);
        let b = make(&["z", "x", "y"]);
        assert_eq!(a.call_count(), 3);
        let keys: Vec<_> = a.runs().into_keys().collect();
        assert_eq!(keys, b.runs().into_keys().collect::<Vec<_>>());
        assert_eq!(keys, vec!["x", "y", "z"]);
    }

    #[test]
    fn untouched_sink_reports_zero_calls() {
        let sink = EngineProf::new();
        assert_eq!(sink.call_count(), 0);
        assert!(sink.runs().is_empty());
    }
}
