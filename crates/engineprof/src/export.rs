//! Bundle serialization for `--engine-prof <dir>`.
//!
//! Two files, split along the determinism boundary:
//!
//! * `engineprof.json` — the deterministic part: per-run event counts,
//!   per-kind counts and virtual nanoseconds, gauge aggregates,
//!   high-water marks, allocation counts. Byte-identical across
//!   `--jobs` widths and repeats; CI diffs it.
//! * `engineprof.wall.json` — the wall-clock part: per-run total wall
//!   nanoseconds, events/sec, per-kind inclusive/exclusive wall
//!   nanoseconds. Varies run to run; never byte-compared.
//!
//! Both are hand-rolled JSON (this crate is dependency-free, including
//! within the workspace); `nrlt-report engine` parses them back with
//! the shared `nrlt_telemetry::json` parser.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::{EngineProf, EventKind, ProfData};

/// Schema version stamped into both files.
pub const BUNDLE_VERSION: u32 = 1;

/// A snapshot of every attached run, ready to serialize.
#[derive(Debug, Clone, Default)]
pub struct ProfBundle {
    /// Per-run data, keyed (and serialized) by run name.
    pub runs: BTreeMap<String, ProfData>,
}

impl ProfBundle {
    /// Snapshot `prof`'s attached runs.
    pub fn from_prof(prof: &EngineProf) -> Self {
        ProfBundle { runs: prof.runs() }
    }

    /// The deterministic part (`engineprof.json`): everything except
    /// wall-clock readings. Byte-identical for byte-identical runs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"version\": {BUNDLE_VERSION},");
        let _ = writeln!(out, "  \"runs\": [");
        let n = self.runs.len();
        for (i, (name, d)) in self.runs.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"run\": {},", string(name));
            let _ = writeln!(out, "      \"events\": {},", d.events);
            let _ = writeln!(out, "      \"kinds\": [");
            for (j, kind) in EventKind::ALL.iter().enumerate() {
                let s = &d.kinds[kind.index()];
                let _ = writeln!(
                    out,
                    "        {{\"event\": \"{}\", \"count\": {}, \"virtual_ns\": {}}}{}",
                    kind.name(),
                    s.count,
                    s.virtual_ns,
                    comma(j, EventKind::ALL.len())
                );
            }
            let _ = writeln!(out, "      ],");
            let _ = writeln!(out, "      \"gauges\": [");
            for (j, ((series, phase), g)) in d.gauges.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "        {{\"series\": {}, \"phase\": {}, \"count\": {}, \"sum\": {}, \"max\": {}}}{}",
                    string(series),
                    string(phase),
                    g.count,
                    g.sum,
                    g.max,
                    comma(j, d.gauges.len())
                );
            }
            let _ = writeln!(out, "      ],");
            let _ = writeln!(out, "      \"hwm\": [");
            for (j, (name, v)) in d.hwms.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "        {{\"name\": {}, \"value\": {}}}{}",
                    string(name),
                    v,
                    comma(j, d.hwms.len())
                );
            }
            let _ = writeln!(out, "      ],");
            let _ = writeln!(out, "      \"allocs\": [");
            for (j, (site, v)) in d.allocs.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "        {{\"site\": {}, \"count\": {}}}{}",
                    string(site),
                    v,
                    comma(j, d.allocs.len())
                );
            }
            let _ = writeln!(out, "      ]");
            let _ = writeln!(out, "    }}{}", comma(i, n));
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// The wall-clock part (`engineprof.wall.json`).
    pub fn wall_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"version\": {BUNDLE_VERSION},");
        let _ = writeln!(out, "  \"runs\": [");
        let n = self.runs.len();
        for (i, (name, d)) in self.runs.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"run\": {},", string(name));
            let _ = writeln!(out, "      \"total_wall_ns\": {},", d.total_wall_ns);
            let _ = writeln!(out, "      \"events_per_sec\": {:.1},", d.events_per_sec());
            let _ = writeln!(out, "      \"kinds\": [");
            for (j, kind) in EventKind::ALL.iter().enumerate() {
                let w = &d.wall[kind.index()];
                let _ = writeln!(
                    out,
                    "        {{\"event\": \"{}\", \"inclusive_ns\": {}, \"exclusive_ns\": {}}}{}",
                    kind.name(),
                    w.inclusive_ns,
                    w.exclusive_ns,
                    comma(j, EventKind::ALL.len())
                );
            }
            let _ = writeln!(out, "      ]");
            let _ = writeln!(out, "    }}{}", comma(i, n));
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Write `engineprof.json` + `engineprof.wall.json` under `dir`,
    /// creating it if needed.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("engineprof.json"), self.to_json())?;
        std::fs::write(dir.join("engineprof.wall.json"), self.wall_json())?;
        Ok(())
    }
}

fn comma(i: usize, n: usize) -> &'static str {
    if i + 1 < n {
        ","
    } else {
        ""
    }
}

/// Quote `s` as a JSON string literal.
fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunProf;

    fn sample_sink() -> EngineProf {
        let sink = EngineProf::new();
        for name in ["b:rep0", "a:rep0"] {
            let run = RunProf::new(name);
            run.enter(EventKind::KernelAdvance);
            run.leave(EventKind::KernelAdvance, 500);
            run.gauge("matcher.queued_sends", "main", 2);
            run.hwm("engine.worklist", 3);
            run.alloc("rank.pending", 1);
            run.set_events(4);
            let (n, d) = run.finish();
            sink.attach(n, d);
        }
        sink
    }

    #[test]
    fn deterministic_json_is_stable_and_sorted() {
        let a = ProfBundle::from_prof(&sample_sink()).to_json();
        let b = ProfBundle::from_prof(&sample_sink()).to_json();
        assert_eq!(a, b, "same data must serialize identically");
        let ia = a.find("\"a:rep0\"").unwrap();
        let ib = a.find("\"b:rep0\"").unwrap();
        assert!(ia < ib, "runs must serialize in name order");
        assert!(a.contains("\"event\": \"kernel_advance\", \"count\": 1, \"virtual_ns\": 500"));
        assert!(!a.contains("wall"), "deterministic file must not leak wall readings");
    }

    #[test]
    fn wall_json_carries_throughput() {
        let bundle = ProfBundle::from_prof(&sample_sink());
        let w = bundle.wall_json();
        assert!(w.contains("total_wall_ns"));
        assert!(w.contains("events_per_sec"));
        assert!(w.contains("inclusive_ns"));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn write_creates_both_files() {
        let dir = std::env::temp_dir().join(format!("engineprof-test-{}", std::process::id()));
        let bundle = ProfBundle::from_prof(&sample_sink());
        bundle.write(&dir).unwrap();
        assert!(dir.join("engineprof.json").is_file());
        assert!(dir.join("engineprof.wall.json").is_file());
        std::fs::remove_dir_all(&dir).ok();
    }
}
