//! Property tests: message matching is a FIFO bijection regardless of
//! posting order.

use nrlt_mpisim::{Channel, Matcher};
use proptest::prelude::*;

/// A randomized interleaving of sends and receives on a few channels,
/// with equal counts per channel so everything matches eventually.
fn interleavings() -> impl Strategy<Value = Vec<(bool, u8)>> {
    // (is_send, channel id), 3 channels, up to 40 ops per side.
    proptest::collection::vec((any::<bool>(), 0u8..3), 0..80).prop_map(|mut ops| {
        // Balance: append the missing side per channel.
        for ch in 0..3u8 {
            let sends = ops.iter().filter(|&&(s, c)| s && c == ch).count();
            let recvs = ops.iter().filter(|&&(s, c)| !s && c == ch).count();
            for _ in recvs..sends {
                ops.push((false, ch));
            }
            for _ in sends..recvs {
                ops.push((true, ch));
            }
        }
        ops
    })
}

proptest! {
    #[test]
    fn matching_is_a_fifo_bijection(ops in interleavings()) {
        let mut m: Matcher<u64, u64> = Matcher::new();
        let mut send_seq = [0u64; 3];
        let mut recv_seq = [0u64; 3];
        let mut matches: Vec<(u8, u64, u64)> = Vec::new();
        for (is_send, ch) in ops {
            let channel = Channel { src: 0, dst: 1, tag: ch as u32 };
            if is_send {
                let id = send_seq[ch as usize];
                send_seq[ch as usize] += 1;
                if let Some(mt) = m.post_send(channel, 8, id) {
                    matches.push((ch, mt.send.data, mt.recv.data));
                }
            } else {
                let id = recv_seq[ch as usize];
                recv_seq[ch as usize] += 1;
                if let Some(mt) = m.post_recv(channel, 8, id) {
                    matches.push((ch, mt.send.data, mt.recv.data));
                }
            }
        }
        // Everything matched (the strategy balances the channels).
        prop_assert!(m.is_drained(), "{}", m.pending_description());
        // FIFO: the k-th send on a channel pairs with the k-th receive.
        for &(_, s, r) in &matches {
            prop_assert_eq!(s, r, "non-FIFO pairing");
        }
        // Bijection: every sequence number appears exactly once per side.
        for ch in 0..3u8 {
            let mut ids: Vec<u64> = matches
                .iter()
                .filter(|&&(c, _, _)| c == ch)
                .map(|&(_, s, _)| s)
                .collect();
            ids.sort_unstable();
            let expect: Vec<u64> = (0..send_seq[ch as usize]).collect();
            prop_assert_eq!(ids, expect);
        }
    }
}
