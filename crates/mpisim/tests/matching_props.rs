//! Property tests: message matching is a FIFO bijection regardless of
//! posting order. A deterministic splitmix64 generator replaces
//! proptest so the suite runs with no external dependencies.

use nrlt_mpisim::{Channel, Matcher};

/// Deterministic pseudo-random generator (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A randomized interleaving of sends and receives on 3 channels,
/// balanced per channel so everything matches eventually.
fn interleaving(g: &mut Gen) -> Vec<(bool, u8)> {
    let len = g.below(80) as usize;
    let mut ops: Vec<(bool, u8)> =
        (0..len).map(|_| (g.next() & 1 == 0, g.below(3) as u8)).collect();
    for ch in 0..3u8 {
        let sends = ops.iter().filter(|&&(s, c)| s && c == ch).count();
        let recvs = ops.iter().filter(|&&(s, c)| !s && c == ch).count();
        for _ in recvs..sends {
            ops.push((false, ch));
        }
        for _ in sends..recvs {
            ops.push((true, ch));
        }
    }
    ops
}

#[test]
fn matching_is_a_fifo_bijection() {
    let mut g = Gen(0x6d70_6973_696d); // "mpisim"
    for _case in 0..300 {
        let ops = interleaving(&mut g);
        let mut m: Matcher<u64, u64> = Matcher::new();
        let mut send_seq = [0u64; 3];
        let mut recv_seq = [0u64; 3];
        let mut matches: Vec<(u8, u64, u64)> = Vec::new();
        for (is_send, ch) in ops {
            let channel = Channel { src: 0, dst: 1, tag: ch as u32 };
            if is_send {
                let id = send_seq[ch as usize];
                send_seq[ch as usize] += 1;
                if let Some(mt) = m.post_send(channel, 8, id) {
                    matches.push((ch, mt.send.data, mt.recv.data));
                }
            } else {
                let id = recv_seq[ch as usize];
                recv_seq[ch as usize] += 1;
                if let Some(mt) = m.post_recv(channel, 8, id) {
                    matches.push((ch, mt.send.data, mt.recv.data));
                }
            }
        }
        // Everything matched (the interleaving balances the channels).
        assert!(m.is_drained(), "{}", m.pending_description());
        // FIFO: the k-th send on a channel pairs with the k-th receive.
        for &(_, s, r) in &matches {
            assert_eq!(s, r, "non-FIFO pairing");
        }
        // Bijection: every sequence number appears exactly once per side.
        for ch in 0..3u8 {
            let mut ids: Vec<u64> =
                matches.iter().filter(|&&(c, _, _)| c == ch).map(|&(_, s, _)| s).collect();
            ids.sort_unstable();
            let expect: Vec<u64> = (0..send_seq[ch as usize]).collect();
            assert_eq!(ids, expect);
        }
    }
}
