//! Message matching.
//!
//! MPI guarantees non-overtaking: messages between the same (source,
//! destination, tag) pair match in the order they were posted. The
//! benchmarks use no wildcard receives, so matching is fully
//! deterministic — the property the paper relies on for reproducible
//! logical traces (Section II).

use std::collections::{BTreeMap, VecDeque};

use nrlt_engineprof::RunProf;

/// Key of a matching queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Message tag.
    pub tag: u32,
}

/// A posted send waiting for its receive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostedSend<S> {
    /// Caller-supplied payload (times, ids…).
    pub data: S,
    /// Message size.
    pub bytes: u64,
}

/// A posted receive waiting for its send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostedRecv<R> {
    /// Caller-supplied payload.
    pub data: R,
    /// Expected size.
    pub bytes: u64,
}

/// A matched send/receive pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match<S, R> {
    /// Channel the pair met on.
    pub channel: Channel,
    /// Send side.
    pub send: PostedSend<S>,
    /// Receive side.
    pub recv: PostedRecv<R>,
}

/// Running queue statistics, maintained incrementally on every post and
/// match so current depths are O(1) and high-water marks are exact.
/// These power both the engine introspection layer (`nrlt-engineprof`
/// gauges and high-water marks) and the drain checks, and replace the
/// old O(channels) pending scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Sends currently waiting for a receive.
    pub queued_sends: u64,
    /// Receives currently waiting for a send.
    pub queued_recvs: u64,
    /// Peak of `queued_sends` over the matcher's lifetime.
    pub hwm_queued_sends: u64,
    /// Peak of `queued_recvs` over the matcher's lifetime.
    pub hwm_queued_recvs: u64,
    /// Peak depth of any single (source, destination, tag) queue.
    pub hwm_channel_depth: u64,
    /// Per-channel queue structures allocated (an allocation-pressure
    /// signal for the hot loop).
    pub queues_created: u64,
    /// Matches made so far.
    pub matched: u64,
}

/// FIFO matcher between posted sends and posted receives.
///
/// Generic over the payloads each side attaches, so the engine can carry
/// timing state and the analyzer can carry event indices through the same
/// algorithm.
#[derive(Debug)]
pub struct Matcher<S, R> {
    sends: BTreeMap<Channel, VecDeque<PostedSend<S>>>,
    recvs: BTreeMap<Channel, VecDeque<PostedRecv<R>>>,
    stats: MatchStats,
}

impl<S, R> Default for Matcher<S, R> {
    fn default() -> Self {
        Matcher { sends: BTreeMap::new(), recvs: BTreeMap::new(), stats: MatchStats::default() }
    }
}

impl<S, R> Matcher<S, R> {
    /// Empty matcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Post a send; returns the match if a receive was already waiting.
    pub fn post_send(&mut self, channel: Channel, bytes: u64, data: S) -> Option<Match<S, R>> {
        if let Some(queue) = self.recvs.get_mut(&channel) {
            if let Some(recv) = queue.pop_front() {
                self.stats.matched += 1;
                self.stats.queued_recvs -= 1;
                return Some(Match { channel, send: PostedSend { data, bytes }, recv });
            }
        }
        let mut created = false;
        let queue = self.sends.entry(channel).or_insert_with(|| {
            created = true;
            VecDeque::new()
        });
        queue.push_back(PostedSend { data, bytes });
        let depth = queue.len() as u64;
        self.stats.queues_created += created as u64;
        self.stats.queued_sends += 1;
        self.stats.hwm_queued_sends = self.stats.hwm_queued_sends.max(self.stats.queued_sends);
        self.stats.hwm_channel_depth = self.stats.hwm_channel_depth.max(depth);
        None
    }

    /// Post a receive; returns the match if a send was already waiting.
    pub fn post_recv(&mut self, channel: Channel, bytes: u64, data: R) -> Option<Match<S, R>> {
        if let Some(queue) = self.sends.get_mut(&channel) {
            if let Some(send) = queue.pop_front() {
                self.stats.matched += 1;
                self.stats.queued_sends -= 1;
                return Some(Match { channel, send, recv: PostedRecv { data, bytes } });
            }
        }
        let mut created = false;
        let queue = self.recvs.entry(channel).or_insert_with(|| {
            created = true;
            VecDeque::new()
        });
        queue.push_back(PostedRecv { data, bytes });
        let depth = queue.len() as u64;
        self.stats.queues_created += created as u64;
        self.stats.queued_recvs += 1;
        self.stats.hwm_queued_recvs = self.stats.hwm_queued_recvs.max(self.stats.queued_recvs);
        self.stats.hwm_channel_depth = self.stats.hwm_channel_depth.max(depth);
        None
    }

    /// Take the "best" pending send addressed to `dst` with `tag`,
    /// regardless of source — wildcard (`MPI_ANY_SOURCE`) matching. The
    /// FIFO front of each eligible channel competes; `score` orders them
    /// (the engine scores by send-post time, so the earliest send wins,
    /// as on a real network). Ties break by channel for determinism
    /// within one run; across runs the winner is timing-dependent, which
    /// is exactly why wildcard programs lose logical-trace repeatability.
    pub fn take_any_send<K: Ord>(
        &mut self,
        dst: u32,
        tag: u32,
        mut score: impl FnMut(&S) -> K,
    ) -> Option<(Channel, PostedSend<S>)> {
        let best = self
            .sends
            .iter()
            .filter(|(ch, q)| ch.dst == dst && ch.tag == tag && !q.is_empty())
            .map(|(ch, q)| (score(&q.front().unwrap().data), ch.src))
            .min()?;
        let channel = Channel { src: best.1, dst, tag };
        let send = self.sends.get_mut(&channel)?.pop_front()?;
        self.stats.matched += 1;
        self.stats.queued_sends -= 1;
        Some((channel, send))
    }

    /// Remove the most recently posted pending send on `channel` (used by
    /// the engine to hand a fresh send to a waiting wildcard receive).
    pub fn take_last_send(&mut self, channel: Channel) -> Option<PostedSend<S>> {
        let send = self.sends.get_mut(&channel)?.pop_back()?;
        self.stats.queued_sends -= 1;
        Some(send)
    }

    /// Number of matches made so far.
    pub fn matched_count(&self) -> u64 {
        self.stats.matched
    }

    /// Running queue statistics (current depths, high-water marks,
    /// queue allocations).
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// Record the current queue depths as engine-profiler gauges under
    /// `phase`.
    pub fn profile_queues(&self, prof: &RunProf, phase: &str) {
        prof.gauge("matcher.queued_sends", phase, self.stats.queued_sends as i64);
        prof.gauge("matcher.queued_recvs", phase, self.stats.queued_recvs as i64);
    }

    /// Number of sends still waiting.
    pub fn pending_sends(&self) -> usize {
        self.stats.queued_sends as usize
    }

    /// Number of receives still waiting.
    pub fn pending_recvs(&self) -> usize {
        self.stats.queued_recvs as usize
    }

    /// Deepest single (source, destination, tag) queue on either side —
    /// the matching-pressure statistic behind the observatory's
    /// match-queue counters: total depth can look tame while one channel
    /// backs up.
    pub fn max_channel_depth(&self) -> usize {
        self.sends
            .values()
            .map(VecDeque::len)
            .chain(self.recvs.values().map(VecDeque::len))
            .max()
            .unwrap_or(0)
    }

    /// True when nothing is left unmatched — the post-run sanity check
    /// that every message found its partner.
    pub fn is_drained(&self) -> bool {
        self.pending_sends() == 0 && self.pending_recvs() == 0
    }

    /// Describe pending traffic (for deadlock diagnostics).
    pub fn pending_description(&self) -> String {
        let mut parts = Vec::new();
        for (ch, q) in &self.sends {
            if !q.is_empty() {
                parts.push(format!("{} sends {}->{} tag {}", q.len(), ch.src, ch.dst, ch.tag));
            }
        }
        for (ch, q) in &self.recvs {
            if !q.is_empty() {
                parts.push(format!("{} recvs {}->{} tag {}", q.len(), ch.src, ch.dst, ch.tag));
            }
        }
        parts.sort();
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CH: Channel = Channel { src: 0, dst: 1, tag: 5 };

    #[test]
    fn send_then_recv_matches() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        assert!(m.post_send(CH, 100, 11).is_none());
        let mtch = m.post_recv(CH, 100, 22).expect("must match");
        assert_eq!(mtch.send.data, 11);
        assert_eq!(mtch.recv.data, 22);
        assert!(m.is_drained());
        assert_eq!(m.matched_count(), 1);
    }

    #[test]
    fn recv_then_send_matches() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        assert!(m.post_recv(CH, 100, 22).is_none());
        assert!(m.post_send(CH, 100, 11).is_some());
        assert!(m.is_drained());
    }

    #[test]
    fn max_channel_depth_tracks_the_deepest_queue() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        assert_eq!(m.max_channel_depth(), 0);
        m.post_send(CH, 1, 0);
        m.post_send(CH, 1, 1);
        m.post_send(Channel { src: 2, dst: 1, tag: 5 }, 1, 2);
        m.post_recv(Channel { src: 3, dst: 0, tag: 9 }, 1, 0);
        // Total pending is 3 sends + 1 recv, but the deepest single
        // channel holds 2.
        assert_eq!(m.pending_sends(), 3);
        assert_eq!(m.max_channel_depth(), 2);
        m.post_recv(CH, 1, 1);
        m.post_recv(CH, 1, 2);
        assert_eq!(m.max_channel_depth(), 1);
    }

    #[test]
    fn fifo_order_is_respected() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        m.post_send(CH, 1, 100);
        m.post_send(CH, 2, 200);
        let first = m.post_recv(CH, 1, 0).unwrap();
        let second = m.post_recv(CH, 2, 0).unwrap();
        assert_eq!(first.send.data, 100);
        assert_eq!(second.send.data, 200);
    }

    #[test]
    fn different_tags_do_not_match() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        m.post_send(Channel { src: 0, dst: 1, tag: 1 }, 8, 0);
        assert!(m.post_recv(Channel { src: 0, dst: 1, tag: 2 }, 8, 0).is_none());
        assert_eq!(m.pending_sends(), 1);
        assert_eq!(m.pending_recvs(), 1);
        assert!(!m.is_drained());
    }

    #[test]
    fn different_peers_do_not_match() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        m.post_send(Channel { src: 0, dst: 1, tag: 0 }, 8, 0);
        assert!(m.post_recv(Channel { src: 2, dst: 1, tag: 0 }, 8, 0).is_none());
    }

    #[test]
    fn stats_track_depths_and_hwms_incrementally() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        m.post_send(CH, 1, 0);
        m.post_send(CH, 1, 1);
        m.post_recv(Channel { src: 3, dst: 0, tag: 9 }, 1, 0);
        let s = m.stats();
        assert_eq!((s.queued_sends, s.queued_recvs), (2, 1));
        assert_eq!((s.hwm_queued_sends, s.hwm_queued_recvs), (2, 1));
        assert_eq!(s.hwm_channel_depth, 2);
        assert_eq!(s.queues_created, 2);
        m.post_recv(CH, 1, 1);
        m.post_recv(CH, 1, 2);
        let s = m.stats();
        assert_eq!((s.queued_sends, s.queued_recvs), (0, 1));
        assert_eq!(s.matched, 2);
        // High-water marks never move down.
        assert_eq!((s.hwm_queued_sends, s.hwm_channel_depth), (2, 2));
        // take_last_send keeps the send count honest.
        let mut m: Matcher<u32, u32> = Matcher::new();
        m.post_send(CH, 1, 7);
        assert!(m.take_last_send(CH).is_some());
        assert_eq!(m.stats().queued_sends, 0);
        assert!(m.is_drained());
    }

    #[test]
    fn profile_queues_records_gauges() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        m.post_send(CH, 1, 0);
        let prof = RunProf::new("r");
        m.profile_queues(&prof, "main");
        let (_, d) = prof.finish();
        let g = &d.gauges[&("matcher.queued_sends".to_owned(), "main".to_owned())];
        assert_eq!((g.count, g.max), (1, 1));
    }

    #[test]
    fn pending_description_mentions_channels() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        m.post_send(CH, 8, 0);
        let desc = m.pending_description();
        assert!(desc.contains("0->1"), "{desc}");
        assert!(desc.contains("tag 5"), "{desc}");
    }
}
