//! # nrlt-mpisim — MPI semantics and timing models
//!
//! The MPI substrate of the reproduction: deterministic FIFO message
//! matching (no wildcards, as in the paper's benchmarks), eager and
//! rendezvous point-to-point protocols, and algorithmic collective cost
//! models. The discrete-event engine (`nrlt-exec`) drives these models to
//! decide when blocked ranks unblock; the wait intervals they produce are
//! exactly what Scalasca's late-sender / late-receiver / wait-at-N×N
//! patterns measure.

#![warn(missing_docs)]

pub mod collective;
pub mod matching;
pub mod protocol;

pub use collective::{CollectiveModel, CommScope};
pub use matching::{Channel, Match, MatchStats, Matcher, PostedRecv, PostedSend};
pub use protocol::{message_timing, LinkKind, P2pModel, P2pTiming};
