//! Collective operation timing models.
//!
//! Standard algorithmic cost models (dissemination barrier,
//! reduce-scatter/allgather allreduce, pairwise all-to-all). A collective
//! instance completes relative to the *latest* arrival — the source of
//! Scalasca's **Wait at N×N** pattern: every early rank waits from its own
//! arrival until the last participant shows up.

use nrlt_sim::topology::NodeSpec;
use nrlt_trace::CollectiveOp;

/// Communicator scope for picking latency/bandwidth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommScope {
    /// All participants on one node.
    IntraNode,
    /// Participants span nodes.
    InterNode,
}

/// Collective timing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveModel {
    /// Per-stage software overhead, seconds.
    pub stage_overhead: f64,
    /// Per-rank exit stagger, seconds (ranks do not unblock in the same
    /// instant; the root/low ranks of the tree leave first).
    pub exit_stagger: f64,
}

impl Default for CollectiveModel {
    fn default() -> Self {
        CollectiveModel { stage_overhead: 0.2e-6, exit_stagger: 0.05e-6 }
    }
}

impl CollectiveModel {
    /// Algorithmic duration of the data movement once all ranks arrived,
    /// in seconds, for `n` ranks exchanging `bytes` per rank.
    pub fn op_cost(
        &self,
        op: CollectiveOp,
        spec: &NodeSpec,
        scope: CommScope,
        n: u32,
        bytes: u64,
    ) -> f64 {
        let (lat, bw) = match scope {
            CommScope::IntraNode => (spec.shm_latency, spec.shm_bandwidth),
            CommScope::InterNode => (spec.net_latency, spec.net_bandwidth),
        };
        if n <= 1 {
            return lat;
        }
        let stages = (n as f64).log2().ceil();
        let b = bytes as f64;
        match op {
            // Dissemination barrier: log2(n) rounds of tiny messages.
            CollectiveOp::Barrier => stages * (lat + self.stage_overhead),
            // Rabenseifner-style: reduce-scatter + allgather, each moving
            // ~b bytes total over log stages.
            CollectiveOp::Allreduce => 2.0 * stages * (lat + self.stage_overhead) + 2.0 * b / bw,
            // Pairwise exchange: n-1 partners, b bytes each way.
            CollectiveOp::Alltoall => {
                (n - 1) as f64 * (lat * 0.5 + self.stage_overhead) + (n - 1) as f64 * b / bw
            }
            // Ring allgather: n-1 steps of b bytes.
            CollectiveOp::Allgather => {
                (n - 1) as f64 * self.stage_overhead + stages * lat + (n - 1) as f64 * b / bw
            }
            // Binomial tree.
            CollectiveOp::Bcast | CollectiveOp::Reduce => {
                stages * (lat + self.stage_overhead + b / bw)
            }
        }
    }

    /// Completion times for every rank, given their arrival times
    /// (seconds). All ranks unblock after the data movement that starts
    /// at the latest arrival, with a small deterministic stagger by rank.
    ///
    /// `noise` multiplies the data-movement part only (network noise does
    /// not bend the participants' own arrival times).
    pub fn completion_times(
        &self,
        op: CollectiveOp,
        spec: &NodeSpec,
        scope: CommScope,
        bytes: u64,
        arrivals: &[f64],
        noise: f64,
    ) -> Vec<f64> {
        let n = arrivals.len() as u32;
        let latest = arrivals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let cost = self.op_cost(op, spec, scope, n, bytes) * noise;
        arrivals
            .iter()
            .enumerate()
            .map(|(rank, _)| latest + cost + rank as f64 * self.exit_stagger)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> NodeSpec {
        NodeSpec::jureca_dc()
    }

    #[test]
    fn single_rank_collective_is_cheap() {
        let m = CollectiveModel::default();
        let c = m.op_cost(CollectiveOp::Allreduce, &spec(), CommScope::IntraNode, 1, 8);
        assert!(c < 1e-5);
    }

    #[test]
    fn alltoall_scales_linearly_with_ranks() {
        let m = CollectiveModel::default();
        let c8 = m.op_cost(CollectiveOp::Alltoall, &spec(), CommScope::InterNode, 8, 4096);
        let c128 = m.op_cost(CollectiveOp::Alltoall, &spec(), CommScope::InterNode, 128, 4096);
        assert!(c128 > c8 * 10.0, "alltoall must grow ~linearly in ranks");
    }

    #[test]
    fn allreduce_scales_logarithmically() {
        let m = CollectiveModel::default();
        let c8 = m.op_cost(CollectiveOp::Allreduce, &spec(), CommScope::InterNode, 8, 8);
        let c128 = m.op_cost(CollectiveOp::Allreduce, &spec(), CommScope::InterNode, 128, 8);
        // log2(128)/log2(8) = 7/3 ≈ 2.3
        assert!(c128 < c8 * 3.0);
        assert!(c128 > c8 * 1.5);
    }

    #[test]
    fn intra_node_cheaper_than_inter_node() {
        let m = CollectiveModel::default();
        let intra = m.op_cost(CollectiveOp::Allreduce, &spec(), CommScope::IntraNode, 8, 8);
        let inter = m.op_cost(CollectiveOp::Allreduce, &spec(), CommScope::InterNode, 8, 8);
        assert!(intra < inter);
    }

    #[test]
    fn completion_waits_for_latest() {
        let m = CollectiveModel::default();
        let arrivals = [0.0, 5.0, 1.0];
        let done = m.completion_times(
            CollectiveOp::Allreduce,
            &spec(),
            CommScope::IntraNode,
            8,
            &arrivals,
            1.0,
        );
        for &d in &done {
            assert!(d > 5.0, "no rank may finish before the last arrival");
        }
        // Early ranks waited; the latest rank barely waits.
        assert!(done[0] - arrivals[0] > done[1] - arrivals[1]);
    }

    #[test]
    fn stagger_orders_exits() {
        let m = CollectiveModel::default();
        let done = m.completion_times(
            CollectiveOp::Barrier,
            &spec(),
            CommScope::IntraNode,
            0,
            &[0.0, 0.0, 0.0, 0.0],
            1.0,
        );
        for w in done.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn noise_multiplies_cost_only() {
        let m = CollectiveModel::default();
        let arrivals = [0.0, 10.0];
        let quiet = m.completion_times(
            CollectiveOp::Allreduce,
            &spec(),
            CommScope::InterNode,
            1 << 20,
            &arrivals,
            1.0,
        );
        let noisy = m.completion_times(
            CollectiveOp::Allreduce,
            &spec(),
            CommScope::InterNode,
            1 << 20,
            &arrivals,
            3.0,
        );
        assert!(noisy[0] > quiet[0]);
        // Both still bounded below by the latest arrival.
        assert!(quiet[0] > 10.0 && noisy[0] > 10.0);
    }
}
