//! Point-to-point transfer protocols and timing.
//!
//! Small messages use the *eager* protocol: the sender copies the payload
//! out and returns immediately; the data waits at the receiver. Large
//! messages use *rendezvous*: the sender blocks until the receive is
//! posted — the mechanism behind Scalasca's **Late Receiver** pattern,
//! just as an unposted send behind a waiting receive produces **Late
//! Sender**.

use nrlt_sim::topology::NodeSpec;

/// Which fabric a message travels over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Both ranks on the same node: shared-memory transport.
    SharedMem,
    /// Different nodes: the interconnect.
    Network,
}

/// Point-to-point protocol parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct P2pModel {
    /// Messages up to this size (bytes) are sent eagerly.
    pub eager_threshold: u64,
    /// Fixed software overhead per send call, seconds.
    pub send_overhead: f64,
    /// Fixed software overhead per receive completion, seconds.
    pub recv_overhead: f64,
}

impl Default for P2pModel {
    fn default() -> Self {
        // Typical MPICH/OpenMPI defaults: eager up to 64 KiB over IB.
        P2pModel { eager_threshold: 64 * 1024, send_overhead: 0.3e-6, recv_overhead: 0.3e-6 }
    }
}

impl P2pModel {
    /// True if a message of `bytes` uses the eager protocol.
    pub fn is_eager(&self, bytes: u64) -> bool {
        bytes <= self.eager_threshold
    }

    /// Wire time for `bytes` over `link`, seconds (latency + bandwidth
    /// term). Noise multiplies this externally.
    pub fn transfer_time(&self, spec: &NodeSpec, link: LinkKind, bytes: u64) -> f64 {
        let (lat, bw) = match link {
            LinkKind::SharedMem => (spec.shm_latency, spec.shm_bandwidth),
            LinkKind::Network => (spec.net_latency, spec.net_bandwidth),
        };
        lat + bytes as f64 / bw
    }
}

/// Timing of one matched point-to-point message, computed from the two
/// posting times. All values in seconds of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2pTiming {
    /// When the sender's call returns.
    pub send_complete: f64,
    /// When the payload is fully available at the receiver.
    pub data_arrival: f64,
    /// When the receiver's completion (recv/wait) can return, given it is
    /// already blocked: `max(recv_post, data_arrival) + recv_overhead`.
    pub recv_complete: f64,
}

/// Compute the timing of a matched message.
///
/// * `send_post` — when the send was issued (enter of `MPI_Send`/`Isend`).
/// * `recv_post` — when the receive was posted.
/// * `noise` — multiplicative factor on the wire time (network noise).
pub fn message_timing(
    model: &P2pModel,
    spec: &NodeSpec,
    link: LinkKind,
    bytes: u64,
    send_post: f64,
    recv_post: f64,
    noise: f64,
) -> P2pTiming {
    let wire = model.transfer_time(spec, link, bytes) * noise;
    if model.is_eager(bytes) {
        // Sender returns after local copy-out; data flows regardless of
        // the receiver.
        let send_complete = send_post + model.send_overhead;
        let data_arrival = send_post + model.send_overhead + wire;
        let recv_complete = recv_post.max(data_arrival) + model.recv_overhead;
        P2pTiming { send_complete, data_arrival, recv_complete }
    } else {
        // Rendezvous: transfer starts only when both sides are ready.
        let handshake = send_post.max(recv_post) + model.send_overhead;
        let data_arrival = handshake + wire;
        P2pTiming {
            send_complete: data_arrival,
            data_arrival,
            recv_complete: data_arrival + model.recv_overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> NodeSpec {
        NodeSpec::jureca_dc()
    }

    #[test]
    fn eager_threshold_default() {
        let m = P2pModel::default();
        assert!(m.is_eager(1024));
        assert!(m.is_eager(64 * 1024));
        assert!(!m.is_eager(64 * 1024 + 1));
    }

    #[test]
    fn shared_memory_faster_than_network() {
        let m = P2pModel::default();
        let s = spec();
        assert!(
            m.transfer_time(&s, LinkKind::SharedMem, 4096)
                < m.transfer_time(&s, LinkKind::Network, 4096)
        );
    }

    #[test]
    fn eager_sender_returns_early() {
        let m = P2pModel::default();
        let t = message_timing(&m, &spec(), LinkKind::Network, 1024, 10.0, 100.0, 1.0);
        // Sender is done long before the receiver shows up.
        assert!(t.send_complete < 11.0);
        // Receiver completes when it posts (data already waiting).
        assert!(t.recv_complete >= 100.0);
        assert!(t.recv_complete < 100.1);
    }

    #[test]
    fn eager_late_sender_blocks_receiver() {
        let m = P2pModel::default();
        // Receiver posted at 0, sender at 50: receiver waits ~50s.
        let t = message_timing(&m, &spec(), LinkKind::Network, 1024, 50.0, 0.0, 1.0);
        assert!(t.recv_complete > 50.0);
    }

    #[test]
    fn rendezvous_sender_blocks_for_receiver() {
        let m = P2pModel::default();
        let big = 10 * 1024 * 1024;
        // Send posted at 10, recv at 60: sender cannot finish before 60.
        let t = message_timing(&m, &spec(), LinkKind::Network, big, 10.0, 60.0, 1.0);
        assert!(t.send_complete > 60.0, "late receiver must block the sender");
        assert_eq!(t.send_complete, t.data_arrival);
    }

    #[test]
    fn noise_scales_wire_time() {
        let m = P2pModel::default();
        let quiet = message_timing(&m, &spec(), LinkKind::Network, 1 << 20, 0.0, 0.0, 1.0);
        let noisy = message_timing(&m, &spec(), LinkKind::Network, 1 << 20, 0.0, 0.0, 2.0);
        assert!(noisy.data_arrival > quiet.data_arrival);
    }

    #[test]
    fn bigger_messages_take_longer() {
        let m = P2pModel::default();
        let s = spec();
        let t1 = m.transfer_time(&s, LinkKind::Network, 1 << 10);
        let t2 = m.transfer_time(&s, LinkKind::Network, 1 << 26);
        assert!(t2 > t1 * 100.0);
    }
}
